//! Define your own walk algorithm from a DSL string — no engine changes.
//!
//! Registers a *decay-biased* walk (revisiting the previous node is
//! penalised by `lambda`, a workload not among the built-ins) at session
//! build time, runs it end-to-end through `submit`/`drain`, and shows
//! that Flexi-Runtime's per-step sampler selection picked the non-trivial
//! eRJS kernel — which is only possible because Flexi-Compiler derived a
//! bound estimator from the DSL source automatically.
//!
//! ```text
//! cargo run --release --example custom_walker
//! ```

use flexiwalker::prelude::*;

fn main() {
    // 1. The walk algorithm, as data. The DSL environment provides `edge`,
    //    `cur`, `prev`, `has_prev`, `step`, the arrays `h`/`adj`/`label`/
    //    `deg`, user arrays (see WalkerDef::array), and `linked(a, b)`.
    let decay = WalkerDef::dsl(
        "decay",
        "get_weight(edge) {
             h_e = h[edge];
             if (has_prev == 0) return h_e;
             if (adj[edge] == prev) return h_e * lambda;
             return h_e;
         }",
    )
    .hyperparam("lambda", 0.25);

    // 2. Register it next to the built-ins ('node2vec', 'metapath',
    //    'sopr', 'uniform') — they are ordinary registry entries too.
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .register_walker(decay)
        .build();

    // 3. Load a scale-free graph and resolve the walker. `load_walker`
    //    lowers the DSL through Flexi-Compiler exactly once (parse →
    //    path enumeration → bound/sum estimator generation) and surfaces
    //    compile errors here, typed, instead of at walk time.
    let csr = gen::rmat(10, 16_384, gen::RmatParams::SOCIAL, 7);
    let csr = WeightModel::UniformReal.apply(csr, 7);
    let graph = session.load_graph(csr);
    let walker = session.load_walker("decay").expect("decay walker compiles");
    let compiled: &CompiledWalker = walker.get().expect("resolved");
    println!(
        "lowered {:?}: estimators generated = {}, second order = {}",
        compiled.name(),
        compiled.artifacts().compiled.is_some(),
        compiled.second_order(),
    );

    // 4. Run it end-to-end through the batching executor. Requests can
    //    address the walker by handle or simply by name.
    let n = graph.graph().num_nodes() as NodeId;
    let queries: Vec<NodeId> = (0..n).collect();
    session.submit(
        WalkRequest::new(&graph, &walker, &queries[..queries.len() / 2])
            .steps(40)
            .record_paths(true),
    );
    session.submit(
        WalkRequest::new(&graph, "decay", &queries[queries.len() / 2..])
            .steps(40)
            .record_paths(true),
    );

    let mut tally = SamplerTally::new();
    let mut walks = 0usize;
    for (_, result) in session.drain() {
        let report = result.expect("drain succeeds");
        walks += report.queries;
        tally.merge(&report.sampler_steps);
    }
    println!("{walks} walks drained; per-sampler steps: {tally}");

    // 5. The proof of runtime adaptation: the estimated-bound rejection
    //    kernel (eRJS) ran — a user-registered DSL walker gets the same
    //    cost-model selection as the built-ins.
    assert!(
        tally.get(sampler_ids::ERJS) > 0,
        "sampler selection stayed trivial: {tally}"
    );
    assert!(tally.get(sampler_ids::ERVS) > 0, "mixed selection expected");
    println!(
        "runtime adaptation live: eRJS took {} steps, eRVS {}",
        tally.get(sampler_ids::ERJS),
        tally.get(sampler_ids::ERVS)
    );
}
