//! Temporal walks end-to-end: timestamped edges, time windows, recency
//! bias, and live timestamped ingest.
//!
//! Builds a graph whose edges carry an (opaque, monotone) timestamp,
//! then shows the four temporal layers working together:
//!
//! 1. the forward-in-time walkers (`temporal_uniform` and the recency
//!    kernels `temporal_exp` / `temporal_linear`) — ordinary walker
//!    registry entries;
//! 2. [`TimeWindow`]-restricted requests, served from the per-epoch
//!    mask cache;
//! 3. the temporal CDF sampler registered *next to* eRVS/eRJS, so the
//!    cost model argmins over all three;
//! 4. timestamped ingest through `apply_updates`, after which the newest
//!    slice of the graph becomes walkable.
//!
//! ```text
//! cargo run --release --example temporal_walk
//! ```

use flexiwalker::prelude::*;
use std::sync::Arc;

/// Deterministic example randomness (splitmix64 step).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const NODES: usize = 4096;

fn main() {
    // 1. A timestamped graph: stamps model one day of interactions,
    //    [0, 86400) seconds.
    let mut rng = 7u64;
    let mut b = CsrBuilder::new(NODES);
    for src in 0..NODES as NodeId {
        for _ in 0..4 + (mix(&mut rng) % 5) {
            b.push_full_at(
                src,
                (mix(&mut rng) % NODES as u64) as NodeId,
                0.5 + (mix(&mut rng) % 8) as f32,
                0,
                mix(&mut rng) % 86_400,
            );
        }
    }
    let csr = b.build().expect("timestamped graph");
    println!(
        "graph: {} nodes, {} timestamped edges",
        csr.num_nodes(),
        csr.num_edges()
    );

    // 2. A session with the temporal CDF sampler registered alongside
    //    the built-in eRVS/eRJS pair.
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .register_sampler(Arc::new(TcdfSampler))
        .build();
    let graph = session.load_graph(csr);
    let queries: Vec<NodeId> = (0..256).map(|q| (q * 17 % NODES) as NodeId).collect();

    // 3. The three temporal walkers over the full day. The registry
    //    names ("temporal_exp", ...) carry the paper's short-clock
    //    hyperparameters; here the stamps span a day, so the recency
    //    kernels are instantiated natively with day-scaled decay — the
    //    same structs the registry wraps. The walk clock starts at the
    //    window's lower bound and only moves forward: each traversed
    //    edge is no older than the one before it.
    let exp = TemporalExp {
        lambda: 1.0 / 21_600.0, // quarter-day e-folding time
    };
    let lin = TemporalLinear { span: 86_400.0 }; // hard cutoff: one day
    let walk = |session: &mut Session, req: WalkRequest| {
        session
            .run(req.steps(20).record_paths(true))
            .expect("serves")
    };
    let runs = [
        (
            "temporal_uniform",
            walk(
                &mut session,
                WalkRequest::new(&graph, "temporal_uniform", queries.clone()),
            ),
        ),
        (
            "exp (day-scaled)",
            walk(
                &mut session,
                WalkRequest::new(&graph, &exp, queries.clone()),
            ),
        ),
        (
            "linear (1d span)",
            walk(
                &mut session,
                WalkRequest::new(&graph, &lin, queries.clone()),
            ),
        ),
    ];
    println!();
    println!("walker           | steps | avg path");
    println!("-----------------+-------+---------");
    for (name, report) in &runs {
        let paths = report.paths.as_ref().unwrap();
        let avg = paths.iter().map(Vec::len).sum::<usize>() as f64 / paths.len() as f64;
        println!("{name:<17}| {:>5} | {avg:>7.2}", report.steps_taken);
    }

    // 4. Time windows: the same workload over the morning, the evening,
    //    and a slice from the future (empty — every walk strands).
    println!();
    println!("window           | steps taken");
    println!("-----------------+------------");
    for (name, window) in [
        ("morning [0,12h)", TimeWindow::until(43_200)),
        ("evening [12h,1d)", TimeWindow::new(43_200, 86_400)),
        ("tomorrow [1d,-)", TimeWindow::since(86_400)),
    ] {
        let report = session
            .run(
                WalkRequest::new(&graph, &exp, queries.clone())
                    .steps(20)
                    .window(window),
            )
            .expect("windowed walk serves");
        println!("{name:<17}| {}", report.steps_taken);
    }

    // The temporal CDF strategy can also be forced wholesale
    // (`SelectionStrategy::Only`), the Fig. 11-style ablation: every
    // sampling step lands on tcdf.
    let mut forced = FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .register_sampler(Arc::new(TcdfSampler))
        .strategy(SelectionStrategy::Only(sampler_ids::TCDF))
        .build();
    let fg = forced.load_graph(graph.graph().as_ref().clone());
    let report = forced
        .run(
            WalkRequest::new(&fg, &exp, queries.clone())
                .steps(20)
                .window(TimeWindow::new(43_200, 86_400)),
        )
        .expect("forced tcdf serves");
    println!();
    println!(
        "forced tcdf on the evening window: {} steps taken, every one of {} \
         sampling decisions via tcdf",
        report.steps_taken,
        report.sampler_steps.get(sampler_ids::TCDF)
    );

    // 5. Live timestamped ingest: tomorrow's edges arrive, the epoch
    //    advances, and the previously empty window becomes walkable.
    let batch: Vec<GraphUpdate> = (0..2_000)
        .map(|_| GraphUpdate::AddEdgeAt {
            src: (mix(&mut rng) % NODES as u64) as NodeId,
            dst: (mix(&mut rng) % NODES as u64) as NodeId,
            weight: 1.0 + (mix(&mut rng) % 4) as f32,
            label: 0,
            time: 86_400 + mix(&mut rng) % 86_400,
        })
        .collect();
    let outcome = session
        .apply_updates(&graph, &batch)
        .expect("ingest applies");
    let report = session
        .run(
            WalkRequest::new(&graph, &exp, queries.clone())
                .steps(20)
                .window(TimeWindow::since(86_400)),
        )
        .expect("post-ingest walk serves");
    println!();
    println!(
        "after ingesting {} edges (epoch {}): tomorrow's window now takes {} steps",
        batch.len(),
        outcome.version.epoch,
        report.steps_taken
    );
    assert!(report.steps_taken > 0, "the ingested slice is walkable");

    println!();
    println!("{}", session.stats());
}
