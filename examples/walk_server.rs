//! Always-on serving: concurrent clients, live updates, latency SLOs.
//!
//! Spins up a [`WalkServer`] and drives it the way a deployment would:
//! several closed-loop client threads submit walk requests while a writer
//! thread streams graph-update batches into the same admission queue.
//! Walks admitted before an update serve at the old epoch, walks admitted
//! after it at the new one — ingest never stalls the readers, and the
//! per-request latency distribution (p50/p95/p99) comes back in
//! [`ServerStats`]. A second, capacity-1 server demonstrates the
//! `Reject` overload policy failing fast instead of queueing.
//!
//! ```text
//! cargo run --release --example walk_server
//! ```

use flexiwalker::prelude::*;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 24;
const UPDATES: usize = 6;

fn main() {
    let host = std::thread::available_parallelism().map_or(1, |t| t.get());
    let csr =
        WeightModel::UniformReal.apply(gen::rmat(10, 16_384, gen::RmatParams::SOCIAL, 42), 42);
    let num_nodes = csr.num_nodes();
    let graph = GraphHandle::new(csr);

    // Default admission: a 256-deep queue with the `Block` policy —
    // producers feel backpressure, nothing is dropped.
    let server = WalkServer::builder()
        .device(DeviceSpec::a6000())
        .workers(host.max(2))
        .serve();

    std::thread::scope(|scope| {
        // Closed-loop readers: submit, wait, repeat — alternating walkers.
        for client in 0..CLIENTS {
            let server = &server;
            let graph = &graph;
            scope.spawn(move || {
                for r in 0..REQUESTS_PER_CLIENT {
                    let base = (client * REQUESTS_PER_CLIENT + r) * 64 % num_nodes;
                    let queries: Vec<NodeId> = (0..64)
                        .map(|i| ((base + i) % num_nodes) as NodeId)
                        .collect();
                    let walker = if r % 2 == 0 { "node2vec" } else { "uniform" };
                    server
                        .submit(WalkRequest::new(graph, walker, queries).steps(20))
                        .expect("admitted")
                        .wait()
                        .expect("served");
                }
            });
        }
        // One writer streaming epoch updates through the same queue.
        let server = &server;
        let graph = &graph;
        scope.spawn(move || {
            for u in 0..UPDATES {
                server
                    .apply_updates(
                        graph,
                        vec![GraphUpdate::AddEdge {
                            src: ((u * 977) % num_nodes) as NodeId,
                            dst: ((u * 983) % num_nodes) as NodeId,
                            weight: 2.0,
                            label: 0,
                        }],
                    )
                    .expect("admitted")
                    .wait()
                    .expect("applied");
            }
        });
    });
    assert_eq!(
        graph.epoch(),
        UPDATES as u64,
        "every batch ingested an epoch"
    );

    let stats = server.shutdown();
    assert_eq!(stats.served, (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert_eq!(stats.admission.rejected, 0, "Block never drops");
    println!(
        "served {} walk requests from {CLIENTS} clients while ingesting {} epochs",
        stats.served, stats.updates_applied
    );
    println!("{stats}");

    // Overload behaviour is a policy choice: a tiny Reject server fails
    // the excess fast instead of queueing it.
    let strict = WalkServer::builder()
        .device(DeviceSpec::a6000())
        .capacity(1)
        .admission(AdmissionPolicy::Reject)
        .serve();
    let queries: Vec<NodeId> = (0..num_nodes.min(4096) as NodeId).collect();
    let mut accepted = 0;
    let mut rejected = 0;
    let tickets: Vec<WalkTicket> = (0..64)
        .filter_map(|_| {
            match strict.submit(WalkRequest::new(&graph, "node2vec", queries.clone())) {
                Ok(t) => {
                    accepted += 1;
                    Some(t)
                }
                Err(ServeError::Rejected) => {
                    rejected += 1;
                    None
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        })
        .collect();
    for t in tickets {
        t.wait().expect("admitted requests still serve");
    }
    drop(strict);
    assert!(accepted >= 1);
    println!("strict capacity-1 Reject server: {accepted} accepted, {rejected} rejected fast");
}
