//! Quickstart: run adaptive dynamic random walks through the session API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flexiwalker::prelude::*;

fn main() {
    // 1. Build a graph. Here: a scale-free R-MAT graph with 1024 nodes and
    //    uniform [1, 5) edge property weights — the paper's default
    //    weighted setting.
    let graph = gen::rmat(10, 16_384, gen::RmatParams::SOCIAL, 42);
    let graph = WeightModel::UniformReal.apply(graph, 42);
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. Pick a workload. Weighted Node2Vec with the paper's a=2, b=0.5.
    let workload = Node2Vec::paper(true);

    // 3. Open a session on a simulated A6000 and launch one walk per node,
    //    80 steps each. The session compiles the workload, preprocesses
    //    the graph and profiles the device once, then caches all three.
    let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let queries: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
    let report = session
        .run(
            WalkRequest::new(&graph, &workload, &queries)
                .steps(80)
                .record_paths(true)
                .host_threads(std::thread::available_parallelism().map_or(1, |n| n.get())),
        )
        .expect("walk run failed");

    // 4. Inspect the results.
    println!(
        "simulated kernel time: {:.3} ms ({} steps total)",
        report.sim_seconds * 1e3,
        report.steps_taken
    );
    println!("runtime adaptation per sampler: {}", report.sampler_steps);
    println!(
        "overheads: profile {:.3} ms, preprocess {:.3} ms",
        report.profile_seconds * 1e3,
        report.preprocess_seconds * 1e3
    );
    let paths = report.paths.as_ref().expect("recorded");
    let avg_len = paths.iter().map(Vec::len).sum::<usize>() as f64 / paths.len() as f64;
    println!("first walk: {:?}", &paths[0][..paths[0].len().min(10)]);
    println!("average path length: {avg_len:.1} nodes");

    // 5. Submit again: the cached preparation makes the overheads vanish.
    let again = session
        .run(WalkRequest::new(&graph, &workload, &queries).steps(80))
        .expect("second run failed");
    println!(
        "second submission overheads: profile {:.3} ms, preprocess {:.3} ms (cached)",
        again.profile_seconds * 1e3,
        again.preprocess_seconds * 1e3
    );
}
