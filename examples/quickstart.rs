//! Quickstart: the graph-handle lifecycle of the session API —
//! `load_graph` → `submit` → `apply_updates` → `drain`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flexiwalker::prelude::*;

fn main() {
    // 1. Build a graph. Here: a scale-free R-MAT graph with 1024 nodes and
    //    uniform [1, 5) edge property weights — the paper's default
    //    weighted setting.
    let csr = gen::rmat(10, 16_384, gen::RmatParams::SOCIAL, 42);
    let csr = WeightModel::UniformReal.apply(csr, 42);
    println!(
        "graph: {} nodes, {} edges",
        csr.num_nodes(),
        csr.num_edges()
    );

    // 2. Open a session on a simulated A6000 and register the graph. The
    //    session owns it under an epoch-versioned handle; the content
    //    digest — the cache-key seed — is computed here, once. Drains fan
    //    pending requests across host worker threads (one per core by
    //    default; tune with `.workers(n)`) with bit-identical output at
    //    any width — see the parallel_service example.
    let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let graph = session.load_graph(csr);
    let n = graph.graph().num_nodes() as NodeId;

    // 3. Pick a walker. The built-ins are ordinary registry entries
    //    ("node2vec" here is weighted Node2Vec with the paper's a=2,
    //    b=0.5); your own DSL or native walkers register the same way —
    //    see the custom_walker example. A request could also just say
    //    `"node2vec"` and let the session resolve the name at drain time.
    let workload = session.load_walker("node2vec").expect("built-in resolves");

    // 4. Launch one walk per node, 80 steps each. The session compiles the
    //    workload, preprocesses the graph and profiles the device once,
    //    then caches all three under the graph's current version.
    let queries: Vec<NodeId> = (0..n).collect();
    let report = session
        .run(
            WalkRequest::new(&graph, &workload, &queries)
                .steps(80)
                .record_paths(true)
                .host_threads(std::thread::available_parallelism().map_or(1, |t| t.get())),
        )
        .expect("walk run failed");
    println!(
        "epoch {}: simulated {:.3} ms ({} steps; per-sampler: {})",
        report.graph_version.epoch,
        report.sim_seconds * 1e3,
        report.steps_taken,
        report.sampler_steps
    );
    println!(
        "first-run overheads: profile {:.3} ms, preprocess {:.3} ms",
        report.profile_seconds * 1e3,
        report.preprocess_seconds * 1e3
    );

    // 5. Submit again: cached preparation, zero overheads.
    let again = session
        .run(WalkRequest::new(&graph, &workload, &queries).steps(80))
        .expect("second run failed");
    println!(
        "cached-run overheads: profile {:.3} ms, preprocess {:.3} ms",
        again.profile_seconds * 1e3,
        again.preprocess_seconds * 1e3
    );

    // 6. Live update: crank a few edge weights and insert an edge. The
    //    epoch advances and only the dirty nodes' aggregates refresh.
    let outcome = session
        .apply_updates(
            &graph,
            &[
                GraphUpdate::SetWeight {
                    edge: 0,
                    weight: 50.0,
                },
                GraphUpdate::AddEdge {
                    src: 0,
                    dst: n - 1,
                    weight: 25.0,
                    label: 0,
                },
            ],
        )
        .expect("update failed");
    println!(
        "applied update batch: now {}, {} dirty node(s) refreshed",
        outcome.version,
        outcome.dirty_nodes.len()
    );

    // 7. Walks keep serving — over the new topology, from the
    //    incrementally refreshed caches. No re-hash, no full preprocess.
    let after = session
        .run(WalkRequest::new(&graph, &workload, &queries).steps(80))
        .expect("post-update run failed");
    println!(
        "epoch {}: simulated {:.3} ms",
        after.graph_version.epoch,
        after.sim_seconds * 1e3,
    );
    println!("{}", session.stats());
}
