//! Second-order PageRank via dynamic random walks.
//!
//! Estimates node importance by counting walk visits under the 2nd-order
//! PageRank transition rule (Eq. 3 of the paper), which biases transitions
//! by the previous node's connectivity. Compares the resulting ranking
//! against plain (first-order) walk visits to show the history effect.
//! One session serves both workloads; the graph profile is shared.
//!
//! ```text
//! cargo run --release --example second_order_pagerank
//! ```

use flexiwalker::prelude::*;
use std::collections::HashMap;

fn visit_counts(report: &RunReport) -> HashMap<u32, usize> {
    let mut counts = HashMap::new();
    for path in report.paths.as_ref().expect("recorded") {
        for &v in path {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    counts
}

fn top_k(counts: &HashMap<u32, usize>, k: usize) -> Vec<(u32, usize)> {
    let mut v: Vec<(u32, usize)> = counts.iter().map(|(&n, &c)| (n, c)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

fn main() {
    let csr = gen::rmat(11, 32_768, gen::RmatParams::WEB, 9);
    let csr = WeightModel::UniformReal.apply(csr, 9);
    println!(
        "web-like graph: {} nodes, {} edges",
        csr.num_nodes(),
        csr.num_edges()
    );

    let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let graph = session.load_graph(csr);
    let csr = graph.graph();
    let queries: Vec<NodeId> = (0..csr.num_nodes() as NodeId).collect();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Second-order PageRank walks (γ = 0.2).
    let second_order = SecondOrderPr::paper();
    let second = session
        .run(
            WalkRequest::new(&graph, &second_order, &queries)
                .steps(40)
                .record_paths(true)
                .host_threads(threads),
        )
        .expect("2nd-order run failed");
    // First-order baseline: property-weighted uniform walks.
    let uniform = UniformWalk;
    let first = session
        .run(
            WalkRequest::new(&graph, &uniform, &queries)
                .steps(40)
                .record_paths(true)
                .host_threads(threads),
        )
        .expect("1st-order run failed");

    let second_counts = visit_counts(&second);
    let first_counts = visit_counts(&first);

    println!("\ntop-10 nodes by 2nd-order PageRank visits:");
    for (node, visits) in top_k(&second_counts, 10) {
        let first_visits = first_counts.get(&node).copied().unwrap_or(0);
        println!(
            "  node {node:>5}  out-degree {:>5}  2nd-order visits {visits:>6}  1st-order {first_visits:>6}",
            csr.degree(node)
        );
    }
    println!(
        "\nkernel mix for the 2nd-order run: {}",
        second.sampler_steps
    );
    println!(
        "simulated time: {:.2} ms (2nd-order) vs {:.2} ms (1st-order)",
        second.sim_seconds * 1e3,
        first.sim_seconds * 1e3
    );
}
