//! Scale-out with first-class session topologies (paper §6.6 and §7.2).
//!
//! One session API, three topologies:
//!
//! - `Topology::multi(n)` duplicates the graph on `n` simulated devices
//!   and splits each request's queries across them — near-linear speedup,
//!   but every device must hold the whole graph;
//! - `Topology::partitioned(n)` hash-partitions the *graph*: each device
//!   holds ~1/n of the edges, walkers migrate over an NVLink-like link,
//!   and graphs that overflow one device's VRAM still serve.
//!
//! Walk output is bit-identical across all of them — only the simulated
//! clock, memory model and migration census change. (The raw
//! `MultiDeviceEngine` keeps the paper's hash-vs-range query-mapping
//! comparison of Fig. 15.)
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use flexiwalker::prelude::*;

fn drain(spec: &DeviceSpec, topology: Topology, csr: &Csr, queries: &[NodeId]) -> RunReport {
    let mut session = FlexiWalker::builder()
        .device(spec.clone())
        .topology(topology)
        .build();
    let graph = session.load_graph(csr.clone());
    session
        .run(WalkRequest::new(&graph, "node2vec", queries).steps(20))
        .expect("run failed")
}

fn main() {
    let csr = gen::rmat(12, 131_072, gen::RmatParams::SOCIAL, 3);
    let csr = WeightModel::UniformReal.apply(csr, 3);
    let queries: Vec<NodeId> = (0..csr.num_nodes() as NodeId).collect();

    println!("duplicated graph (Topology::multi), simulated A6000s:");
    let mut base = None;
    for devices in 1..=4usize {
        let report = drain(
            &DeviceSpec::a6000(),
            Topology::multi(devices),
            &csr,
            &queries,
        );
        let secs = report.sim_seconds;
        let base_secs = *base.get_or_insert(secs);
        println!(
            "  {devices} device(s): {:>8.3} ms  speedup {:>4.2}x  ({} steps)",
            secs * 1e3,
            base_secs / secs,
            report.steps_taken
        );
    }

    // The partitioned mode's raison d'être: a device whose VRAM holds
    // only ~40% of the graph.
    let mut small = DeviceSpec::a6000();
    small.vram_bytes = csr.memory_bytes() * 2 / 5 + csr.row_ptr().len() * 8;
    println!();
    println!(
        "constrained device: graph {:.1} MB, VRAM {:.1} MB",
        csr.memory_bytes() as f64 / 1e6,
        small.vram_bytes as f64 / 1e6
    );
    let mut single = FlexiWalker::builder().device(small.clone()).build();
    let g = single.load_graph(csr.clone());
    let err = single
        .run(WalkRequest::new(&g, "node2vec", &queries).steps(20))
        .expect_err("the whole graph cannot fit one constrained device");
    println!("  Topology::Single       -> {err}");
    let report = drain(&small, Topology::partitioned(4), &csr, &queries);
    let shards = report.shards.as_ref().expect("partitioned shard census");
    println!(
        "  Topology::partitioned(4) -> {:.3} ms, {} migrations ({:.1}% of steps), {:.3} ms on the link",
        report.sim_seconds * 1e3,
        shards.migrations,
        shards.migrations as f64 / report.steps_taken.max(1) as f64 * 100.0,
        shards.link_seconds * 1e3,
    );
    println!("  per-shard steps: {:?}", shards.per_shard_steps);

    println!();
    println!("duplicated mode scales near-linearly but duplicates VRAM;");
    println!("partitioned mode fits 1/n of the graph per device and pays the");
    println!("paper's expected migration toll on the interconnect instead.");
}
