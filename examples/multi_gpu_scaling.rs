//! Multi-GPU scaling with hash- vs range-partitioned queries (paper §6.6).
//!
//! Duplicates the graph on 1–4 simulated devices, distributes walk queries
//! by each policy, and reports the saturated-time speedup. Hash mapping
//! balances hub-heavy query sets; contiguous ranges concentrate hot nodes
//! on one device, which is why the paper rejects range mapping.
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use flexiwalker::core::multi_device::{MultiDeviceEngine, Partitioning};
use flexiwalker::prelude::*;

fn main() {
    let graph = gen::rmat(12, 131_072, gen::RmatParams::SOCIAL, 3);
    let graph = GraphHandle::new(WeightModel::UniformReal.apply(graph, 3));
    let workload = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..graph.graph().num_nodes() as NodeId).collect();
    let request = WalkRequest::new(&graph, &workload, &queries)
        .steps(20)
        .host_threads(std::thread::available_parallelism().map_or(1, |n| n.get()));

    for partitioning in [Partitioning::Hash, Partitioning::Range] {
        println!("{partitioning:?} partitioning:");
        let mut base = None;
        for devices in 1..=4usize {
            let mut engine = MultiDeviceEngine::new(DeviceSpec::a6000(), devices);
            engine.partitioning = partitioning;
            let report = engine.run(&request).expect("run failed");
            let secs = report.saturated_seconds;
            let base_secs = *base.get_or_insert(secs);
            println!(
                "  {devices} device(s): {:>8.3} ms  speedup {:>4.2}x  ({} steps)",
                secs * 1e3,
                base_secs / secs,
                report.steps_taken
            );
        }
    }
    println!();
    println!("hash mapping spreads hub-adjacent queries across devices and");
    println!("scales near-linearly; range mapping leaves one device with the");
    println!("heaviest contiguous id block and trails it.");
}
