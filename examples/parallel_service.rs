//! Parallel service: the same request stream, served live and offline.
//!
//! A [`WalkServer`] keeps a session alive on its own thread: requests and
//! update batches are admitted concurrently through a bounded queue and
//! drained against epoch-pinned snapshots, multi-worker under the hood.
//! The serving guarantee is that this changes *nothing* about the walks —
//! a served request is bit-identical to the same request drained offline
//! through a plain 1-worker [`Session`] at the same epoch. This example
//! serves a mixed two-graph stream with a mid-stream update through both
//! paths, verifies the transcripts match, and prints the session stats.
//!
//! ```text
//! cargo run --release --example parallel_service
//! ```

use flexiwalker::prelude::*;

fn graphs() -> (Csr, Csr) {
    (
        WeightModel::UniformReal.apply(gen::rmat(10, 16_384, gen::RmatParams::SOCIAL, 7), 7),
        WeightModel::UniformReal.apply(gen::rmat(10, 16_384, gen::RmatParams::WEB, 8), 8),
    )
}

/// Eight requests alternating between two graphs, with a weight update
/// landing on the social graph mid-stream: requests admitted before it
/// execute at epoch 0, later social-graph requests at epoch 1.
fn request(social: &GraphHandle, web: &GraphHandle, batch: u32) -> WalkRequest {
    let graph = if batch % 2 == 0 { social } else { web };
    let queries: Vec<NodeId> = (batch * 64..(batch + 1) * 64).collect();
    WalkRequest::new(graph, "node2vec", queries)
        .steps(20)
        .record_paths(true)
}

const UPDATE: GraphUpdate = GraphUpdate::SetWeight {
    edge: 0,
    weight: 9.0,
};

/// Serves the stream through a live multi-worker `WalkServer`.
fn served(workers: usize) -> (Vec<Option<Vec<Vec<NodeId>>>>, ServerStats) {
    let server = WalkServer::builder()
        .device(DeviceSpec::a6000())
        .workers(workers)
        .serve();
    let (social, web) = graphs();
    let (social, web) = (GraphHandle::new(social), GraphHandle::new(web));
    let mut tickets = Vec::new();
    for batch in 0..4 {
        tickets.push(
            server
                .submit(request(&social, &web, batch))
                .expect("admitted"),
        );
    }
    server
        .apply_updates(&social, vec![UPDATE])
        .expect("admitted")
        .wait()
        .expect("update applies");
    for batch in 4..8 {
        tickets.push(
            server
                .submit(request(&social, &web, batch))
                .expect("admitted"),
        );
    }
    let paths = tickets
        .into_iter()
        .map(|t| t.wait().expect("served").paths)
        .collect();
    (paths, server.shutdown())
}

/// Replays the stream offline through a sequential batch session,
/// draining at the update boundary.
fn offline() -> Vec<Option<Vec<Vec<NodeId>>>> {
    let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let (social, web) = graphs();
    let (social, web) = (session.load_graph(social), session.load_graph(web));
    let mut paths = Vec::new();
    let drain = |session: &mut Session, paths: &mut Vec<_>| {
        paths.extend(
            session
                .drain()
                .into_iter()
                .map(|(_, r)| r.expect("drain succeeds").paths),
        );
    };
    for batch in 0..4 {
        session.submit(request(&social, &web, batch));
    }
    drain(&mut session, &mut paths);
    session
        .apply_updates(&social, &[UPDATE])
        .expect("update applies");
    for batch in 4..8 {
        session.submit(request(&social, &web, batch));
    }
    drain(&mut session, &mut paths);
    paths
}

fn main() {
    let host = std::thread::available_parallelism().map_or(1, |t| t.get());
    let workers = host.max(2);

    let (live, stats) = served(workers);
    let reference = offline();

    assert_eq!(
        live, reference,
        "served walks must be bit-identical to offline drains"
    );
    println!("served 8 requests over 2 graphs (host parallelism: {host})");
    println!("WalkServer({workers} workers) transcript == offline workers(1) transcript: true");
    println!(
        "serve latency: p50 {:.2}ms  p99 {:.2}ms over {} cycles, {} update batch applied",
        stats.serve_latency.p50() * 1e3,
        stats.serve_latency.p99() * 1e3,
        stats.serve_cycles,
        stats.updates_applied,
    );
    println!("{}", stats.session);
}
