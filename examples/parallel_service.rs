//! Parallel drain: serving a request stream across host worker threads.
//!
//! A session configured with `workers(n)` fans its pending queue over `n`
//! threads, grouped by `(graph id, epoch, device)`, and merges the
//! reports back in submission order — the output is bit-identical to the
//! sequential path at every worker count. This example serves the same
//! traffic through a 1-worker and a multi-worker session, verifies the
//! transcripts match, and prints the executor counters.
//!
//! ```text
//! cargo run --release --example parallel_service
//! ```

use flexiwalker::prelude::*;

/// Submits the same mixed stream — two graphs, a mid-stream update — and
/// returns every drained path set in ticket order.
fn serve(workers: usize) -> (Vec<Option<Vec<Vec<NodeId>>>>, SessionStats) {
    let workload = Node2Vec::paper(true);
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .workers(workers)
        .build();

    let social = session.load_graph(
        WeightModel::UniformReal.apply(gen::rmat(10, 16_384, gen::RmatParams::SOCIAL, 7), 7),
    );
    let web = session.load_graph(
        WeightModel::UniformReal.apply(gen::rmat(10, 16_384, gen::RmatParams::WEB, 8), 8),
    );

    // Eight requests alternating between the two graphs.
    for batch in 0..8u32 {
        let graph = if batch % 2 == 0 { &social } else { &web };
        let queries: Vec<NodeId> = (batch * 64..(batch + 1) * 64).collect();
        session.submit(
            WalkRequest::new(graph, &workload, queries)
                .steps(20)
                .record_paths(true),
        );
    }
    // A weight update lands on the social graph before the drain: its
    // requests execute at epoch 1, the web graph's at epoch 0 — two batch
    // groups in one drain, no cross-talk.
    session
        .apply_updates(
            &social,
            &[GraphUpdate::SetWeight {
                edge: 0,
                weight: 9.0,
            }],
        )
        .expect("update applies");

    let paths = session
        .drain()
        .into_iter()
        .map(|(_, r)| r.expect("drain succeeds").paths)
        .collect();
    (paths, session.stats())
}

fn main() {
    let host = std::thread::available_parallelism().map_or(1, |t| t.get());
    let workers = host.max(2);

    let (sequential, _) = serve(1);
    let (parallel, stats) = serve(workers);

    assert_eq!(
        sequential, parallel,
        "drain output must be bit-identical at any worker count"
    );
    println!("served 8 requests over 2 graphs (host parallelism: {host})");
    println!("workers({workers}) transcript == workers(1) transcript: true");
    println!(
        "parallel drains: {}, batch groups: {} (2 graphs x 1 epoch each)",
        stats.parallel_drains, stats.drain_groups
    );
    for (slot, n) in stats.worker_requests.iter().enumerate() {
        println!("  worker {slot}: {n} request(s)");
    }
}
