//! Out-of-core block-scheduled execution: serve graphs bigger than the
//! memory that holds them.
//!
//! `Topology::out_of_core(resident_budget, block_bytes)` spills the
//! graph into fixed-size CSR blocks behind a bounded resident cache.
//! A drain replays every walk through whole-block activations —
//! resident blocks first, then most-pending-first — so at any instant
//! at most `resident_budget` bytes of adjacency are live, while walk
//! output stays bit-identical to an all-resident single-device run.
//!
//! This example serves an R-MAT graph through budgets from "almost
//! everything fits" down to "an eighth fits", shows the block-cache
//! economics at each rung, and demonstrates that a mid-stream update
//! batch re-spills only the dirty blocks.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use flexiwalker::prelude::*;

fn main() {
    let csr = gen::rmat(12, 65_536, gen::RmatParams::SOCIAL, 9);
    let csr = WeightModel::UniformReal.apply(csr, 9);
    let graph_bytes = csr.memory_bytes();
    let queries: Vec<NodeId> = (0..512).collect();

    // The all-resident reference: everything fits, no block layer.
    let mut single = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let g = single.load_graph(csr.clone());
    let reference = single
        .run(WalkRequest::new(&g, "node2vec", queries.clone()).steps(12))
        .expect("reference run");
    println!(
        "graph: {:.1} KB, {} nodes / {} edges",
        graph_bytes as f64 / 1e3,
        csr.num_nodes(),
        csr.num_edges()
    );
    println!(
        "all-resident reference: {} steps, {:.3} ms simulated\n",
        reference.steps_taken,
        reference.sim_seconds * 1e3
    );

    println!("out-of-core rungs (budget = graph / oversize):");
    for oversize in [2usize, 4, 8] {
        let budget = graph_bytes / oversize;
        let mut session = FlexiWalker::builder()
            .device(DeviceSpec::a6000())
            .topology(Topology::out_of_core(budget, (budget / 4).max(1024)))
            .build();
        let g = session.load_graph(csr.clone());
        let report = session
            .run(WalkRequest::new(&g, "node2vec", queries.clone()).steps(12))
            .expect("out-of-core run");
        assert_eq!(report.steps_taken, reference.steps_taken);
        assert_eq!(report.sampler_steps, reference.sampler_steps);
        let blocks = report.blocks.expect("out-of-core runs report block stats");
        println!(
            "  {oversize}x oversize: {:>4} blocks, {:>5} loads, {:>5} hits \
             ({:>3.0}% hit rate), {:>5} evictions, {:.3} ms NVMe",
            blocks.blocks,
            blocks.loads,
            blocks.hits,
            100.0 * blocks.hit_rate(),
            blocks.evictions,
            blocks.io_seconds * 1e3
        );
    }

    // Mid-stream updates migrate the cached block runtime: only blocks
    // owning dirty nodes are re-spilled, and their stale resident copies
    // drop from the cache.
    let budget = graph_bytes / 4;
    let mut session = FlexiWalker::builder()
        .device(DeviceSpec::a6000())
        .topology(Topology::out_of_core(budget, (budget / 4).max(1024)))
        .build();
    let g = session.load_graph(csr.clone());
    session
        .run(WalkRequest::new(&g, "node2vec", queries.clone()).steps(12))
        .expect("cold drain");
    let cold_spills = session.stats().block_spills;
    // A weight-only batch: the two dirty source nodes pin down exactly
    // which blocks re-spill. (A batch that changes the spilled record
    // width — say, labeling an unlabeled graph — dirties every block.)
    let outcome = session
        .apply_updates(
            &g,
            &[
                GraphUpdate::SetWeight {
                    edge: 0,
                    weight: 3.0,
                },
                GraphUpdate::SetWeight {
                    edge: 777,
                    weight: 0.25,
                },
            ],
        )
        .expect("update batch");
    session
        .run(WalkRequest::new(&g, "node2vec", queries).steps(12))
        .expect("warm drain");
    let stats = session.stats();
    println!(
        "\nupdate batch: {} block(s) re-spilled of {} (cold spill), epoch {}",
        outcome.blocks_migrated, cold_spills, outcome.version.epoch
    );
    println!("{stats}");
}
