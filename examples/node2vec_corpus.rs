//! Generate a Node2Vec random-walk corpus for embedding training.
//!
//! Node2Vec's original use is producing node sequences that a skip-gram
//! model consumes. This example emits such a corpus (one walk per line) for
//! a dataset proxy, using the paper's in-out/return parameters. The
//! session API shines here: every round reuses the cached compile,
//! preprocessing and profile, so only the first submission pays overheads.
//!
//! ```text
//! cargo run --release --example node2vec_corpus [dataset] [walks_per_node]
//! ```

use flexiwalker::prelude::*;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ds_name = args.get(1).map_or("YT", String::as_str);
    let walks_per_node: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);

    let spec = proxy(ds_name).unwrap_or_else(|| {
        eprintln!("unknown dataset {ds_name}; try YT, CP, LJ, OK, EU, ...");
        std::process::exit(2);
    });
    // Shrink the proxy so the example runs in a second.
    let graph = spec.build_scaled(4, 7);
    let graph = WeightModel::UniformReal.apply(graph, 7);
    println!(
        "# corpus for {} proxy: {} nodes, {} edges",
        spec.full_name,
        graph.num_nodes(),
        graph.num_edges()
    );

    let workload = Node2Vec::paper(true);
    let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let n = graph.num_nodes() as NodeId;
    let graph = session.load_graph(graph);
    let queries: Vec<NodeId> = (0..n).collect();
    let mut corpus_lines = 0usize;
    let mut overhead_ms = 0.0f64;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    for round in 0..walks_per_node {
        let report = session
            .run(
                WalkRequest::new(&graph, &workload, &queries)
                    .steps(40)
                    .record_paths(true)
                    .seed(0xC0FFEE + round as u64)
                    .host_threads(threads),
            )
            .expect("walk run failed");
        overhead_ms += (report.profile_seconds + report.preprocess_seconds) * 1e3;
        for path in report.paths.as_ref().expect("recorded") {
            if path.len() < 2 {
                continue;
            }
            let line: Vec<String> = path.iter().map(u32::to_string).collect();
            writeln!(out, "{}", line.join(" ")).expect("stdout write");
            corpus_lines += 1;
        }
    }
    out.flush().expect("stdout flush");
    eprintln!(
        "# wrote {corpus_lines} walks ({walks_per_node} per node); \
         total prep overhead {overhead_ms:.3} ms (cached after round one)"
    );
}
