//! MetaPath walks over a heterogeneous (edge-labeled) graph.
//!
//! Models a bibliographic network in the metapath2vec style: authors write
//! papers, papers appear at venues. The schema (A→P, P→V, V→P, P→A)
//! constrains every step to the matching relation; walks that cannot
//! satisfy the schema terminate early — exactly the dead-end behavior
//! MetaPath engines must handle.
//!
//! ```text
//! cargo run --release --example metapath_hetero
//! ```

use flexiwalker::prelude::*;

// Edge labels (relation types).
const WRITES: u8 = 0; // author -> paper
const APPEARS_AT: u8 = 1; // paper -> venue
const PUBLISHES: u8 = 2; // venue -> paper
const WRITTEN_BY: u8 = 3; // paper -> author

fn main() {
    // Build a small academic graph: 40 authors, 120 papers, 8 venues.
    let authors = 40u32;
    let papers = 120u32;
    let venues = 8u32;
    let n = (authors + papers + venues) as usize;
    let paper_id = |p: u32| authors + p;
    let venue_id = |v: u32| authors + papers + v;

    let mut rng = flexiwalker::rng::SplitMix64::new(2026);
    let mut b = CsrBuilder::new(n);
    for p in 0..papers {
        // 1-3 authors per paper, one venue.
        let k = 1 + rng.bounded(3) as u32;
        for _ in 0..k {
            let a = rng.bounded(u64::from(authors)) as u32;
            b.push_full(a, paper_id(p), 1.0, WRITES);
            b.push_full(paper_id(p), a, 1.0, WRITTEN_BY);
        }
        let v = rng.bounded(u64::from(venues)) as u32;
        b.push_full(paper_id(p), venue_id(v), 1.0, APPEARS_AT);
        b.push_full(venue_id(v), paper_id(p), 1.0, PUBLISHES);
    }
    let graph = b.build().expect("valid graph");
    println!(
        "heterogeneous graph: {} nodes ({} authors, {} papers, {} venues), {} edges",
        n,
        authors,
        papers,
        venues,
        graph.num_edges()
    );

    // Schema: author -> paper -> venue -> paper -> author (APVPA).
    let workload = MetaPath {
        schema: vec![WRITES, APPEARS_AT, PUBLISHES, WRITTEN_BY],
        weighted: false,
    };

    let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let graph = session.load_graph(graph);
    let queries: Vec<NodeId> = (0..authors).collect();
    let report = session
        .run(WalkRequest::new(&graph, &workload, &queries).record_paths(true))
        .expect("walk run failed");

    let paths = report.paths.as_ref().expect("recorded");
    let complete = paths.iter().filter(|p| p.len() == 5).count();
    println!(
        "APVPA walks: {} complete of {} started (dead ends terminate early)",
        complete,
        paths.len()
    );
    for path in paths.iter().filter(|p| p.len() == 5).take(3) {
        let describe = |v: u32| {
            if v < authors {
                format!("author{v}")
            } else if v < authors + papers {
                format!("paper{}", v - authors)
            } else {
                format!("venue{}", v - authors - papers)
            }
        };
        let pretty: Vec<String> = path.iter().map(|&v| describe(v)).collect();
        println!("  {}", pretty.join(" -> "));
    }
    // Every complete walk ends at an author: schema soundness check.
    assert!(paths
        .iter()
        .filter(|p| p.len() == 5)
        .all(|p| p[4] < authors));
    println!("all complete walks end at an author (schema respected)");
}
