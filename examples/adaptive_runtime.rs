//! Watch Flexi-Runtime adapt to weight skew.
//!
//! Sweeps the edge-property Pareto shape α from 1.0 (heavy tail) to 4.0
//! (mild) and reports which kernel the cost model selects and how the
//! adaptive engine's time compares to forcing either kernel — a live
//! rendition of the paper's Figs. 7a, 11 and 14.
//!
//! ```text
//! cargo run --release --example adaptive_runtime
//! ```

use flexiwalker::prelude::*;

fn main() {
    let base = gen::rmat(11, 65_536, gen::RmatParams::WEB, 5);
    let workload = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..512u32).collect();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("alpha | eRVS-only(ms) | eRJS-only(ms) | adaptive(ms) | eRJS share");
    println!("------+---------------+---------------+--------------+-----------");
    for alpha in [1.0, 1.5, 2.0, 2.5, 3.0, 4.0] {
        let graph = GraphHandle::new(WeightModel::Pareto { alpha }.apply(base.clone(), 5));
        let time_of = |strategy: SelectionStrategy| {
            let mut session = FlexiWalker::builder()
                .device(DeviceSpec::a6000())
                .strategy(strategy)
                .build();
            let report = session
                .run(
                    WalkRequest::new(&graph, &workload, &queries)
                        .steps(80)
                        .host_threads(threads),
                )
                .expect("run failed");
            (report.sim_seconds * 1e3, report)
        };
        let (rvs_ms, _) = time_of(SelectionStrategy::RVS_ONLY);
        let (rjs_ms, _) = time_of(SelectionStrategy::RJS_ONLY);
        let (ada_ms, ada) = time_of(SelectionStrategy::CostModel);
        let rjs_steps = ada.sampler_steps.get(sampler_ids::ERJS);
        let share = rjs_steps as f64 / ada.sampler_steps.total().max(1) as f64;
        println!(
            " {alpha:<4} | {rvs_ms:>13.3} | {rjs_ms:>13.3} | {ada_ms:>12.3} | {:>8.1}%",
            share * 100.0
        );
    }
    println!();
    println!("reading: as alpha grows (milder skew), the cost model shifts");
    println!("steps from eRVS to eRJS, and the adaptive engine tracks the");
    println!("faster of the two forced modes across the whole sweep.");
}
