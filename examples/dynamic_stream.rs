//! Dynamic stream: walk drains interleaved with live edge-insertion
//! batches on an evolving power-law graph.
//!
//! Each round grows a hub preferentially (power-law densification) and
//! cranks the weight skew of the hot edges, then drains a fresh batch of
//! walks — all over one `GraphHandle`, with the session refreshing only
//! the dirty-node aggregates at every epoch. Watch Flexi-Runtime re-select
//! samplers as the degree/weight skew shifts: flat weights favour eRJS
//! (rejection against a tight bound), a heavy tail pushes steps to eRVS.
//!
//! ```text
//! cargo run --release --example dynamic_stream
//! ```

use flexiwalker::prelude::*;

fn main() {
    // A modest scale-free base: 2^11 nodes, average degree 16.
    let csr = gen::rmat(11, 32_768, gen::RmatParams::SOCIAL, 7);
    let csr = WeightModel::UniformReal.apply(csr, 7);
    let n = csr.num_nodes() as NodeId;

    let mut session = FlexiWalker::builder().device(DeviceSpec::a6000()).build();
    let graph = session.load_graph(csr);
    let workload = Node2Vec::paper(true);
    let queries: Vec<NodeId> = (0..256u32).collect();
    let mut rng = flexiwalker::rng::SplitMix64::new(0xD1CE);

    println!("epoch | edges  | dirty | eRJS share | eRVS share | drain(ms)");
    println!("------+--------+-------+------------+------------+----------");
    for round in 0..8u32 {
        // Drain a walk batch over the current version.
        let report = session
            .run(
                WalkRequest::new(&graph, &workload, &queries)
                    .steps(30)
                    .host_threads(std::thread::available_parallelism().map_or(1, |t| t.get())),
            )
            .expect("drain failed");
        let total = report.sampler_steps.total().max(1) as f64;
        let rjs = report.sampler_steps.get(sampler_ids::ERJS) as f64 / total;
        let rvs = report.sampler_steps.get(sampler_ids::ERVS) as f64 / total;
        println!(
            " {:>4} | {:>6} | {:>5} | {:>9.1}% | {:>9.1}% | {:>8.3}",
            report.graph_version.epoch,
            graph.graph().num_edges(),
            "-",
            rjs * 100.0,
            rvs * 100.0,
            report.sim_seconds * 1e3,
        );

        // Evolve: preferential insertions into a hub plus a weight-skew
        // crank — each round makes the tail heavier.
        let hub = (round % 4) as NodeId;
        let mut batch = Vec::new();
        for _ in 0..64 {
            batch.push(GraphUpdate::AddEdge {
                src: hub,
                dst: rng.bounded(u64::from(n)) as NodeId,
                weight: 1.0 + (1 << round) as f32, // Exponentially heavier.
                label: 0,
            });
        }
        let num_edges = graph.graph().num_edges();
        for _ in 0..16 {
            batch.push(GraphUpdate::SetWeight {
                edge: rng.bounded(num_edges as u64) as usize,
                weight: (1 << round) as f32 * 4.0,
            });
        }
        let outcome = session
            .apply_updates(&graph, &batch)
            .expect("update failed");
        println!(
            "      |        | {:>5} | (applied batch -> {}, structural: {})",
            outcome.dirty_nodes.len(),
            outcome.version,
            outcome.structural
        );
    }

    println!();
    println!("{}", session.stats());
    println!("reading: as insertions pile weight onto hub edges, the weight");
    println!("tail grows heavier and the cost model shifts steps from eRJS");
    println!("toward eRVS — runtime adaptation over a live update stream.");
}
