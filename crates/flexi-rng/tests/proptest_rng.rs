//! Property-style tests for the RNG crate, driven by seeded sweeps.
//!
//! The original suite used an external property-testing harness; these
//! tests keep the same properties but generate their cases from a seeded
//! [`SplitMix64`] so the whole workspace builds offline with zero external
//! dependencies. Each property is exercised over a few hundred random
//! cases; failures print the offending case.

use flexi_rng::{Philox4x32, RandomSource, SplitMix64, Xoshiro256pp};

const CASES: usize = 256;

/// Deterministic case generator shared by every property below.
fn gen() -> SplitMix64 {
    SplitMix64::new(0xF1E7_7E57_CA5E_5EED)
}

/// O(1) skip must land exactly where sequential draws do, for any seed,
/// stream and distance.
#[test]
fn philox_skip_equals_sequential() {
    let mut g = gen();
    for _ in 0..CASES {
        let (seed, stream, n) = (g.next_u64(), g.next_u64(), g.bounded(4096));
        let mut seq = Philox4x32::new(seed, stream);
        let mut jmp = Philox4x32::new(seed, stream);
        for _ in 0..n {
            seq.next_u32();
        }
        jmp.skip(n);
        assert_eq!(
            seq.next_u32(),
            jmp.next_u32(),
            "seed {seed} stream {stream} n {n}"
        );
    }
}

/// Seek is absolute: two different routes to a position agree.
#[test]
fn philox_seek_is_absolute() {
    let mut g = gen();
    for _ in 0..CASES {
        let (seed, a, b) = (g.next_u64(), g.bounded(2048), g.bounded(2048));
        let mut x = Philox4x32::new(seed, 0);
        let mut y = Philox4x32::new(seed, 0);
        x.seek(a);
        x.seek(b);
        y.seek(b);
        assert_eq!(x.next_u32(), y.next_u32(), "seed {seed} a {a} b {b}");
    }
}

/// Position tracks every draw.
#[test]
fn philox_position_counts_draws() {
    let mut g = gen();
    for _ in 0..CASES {
        let (seed, n) = (g.next_u64(), g.bounded(512));
        let mut p = Philox4x32::new(seed, 3);
        for _ in 0..n {
            p.next_u32();
        }
        assert_eq!(p.position(), n, "seed {seed} n {n}");
    }
}

/// Distinct streams of the same seed never produce identical prefixes.
#[test]
fn philox_streams_differ() {
    let mut g = gen();
    for _ in 0..CASES {
        let (seed, s1, s2) = (g.next_u64(), g.next_u64(), g.next_u64());
        if s1 == s2 {
            continue;
        }
        let mut a = Philox4x32::new(seed, s1);
        let mut b = Philox4x32::new(seed, s2);
        let pa: Vec<u32> = (0..4).map(|_| a.next_u32()).collect();
        let pb: Vec<u32> = (0..4).map(|_| b.next_u32()).collect();
        assert_ne!(pa, pb, "seed {seed} streams {s1} vs {s2}");
    }
}

/// Uniform draws stay inside their documented intervals.
#[test]
fn uniform_draws_in_range() {
    let mut g = gen();
    for _ in 0..CASES {
        let seed = g.next_u64();
        let mut p = Philox4x32::new(seed, 0);
        for _ in 0..64 {
            let f = p.uniform_f32();
            assert!(f > 0.0 && f <= 1.0, "seed {seed}: f32 {f}");
            let d = p.uniform_f64();
            assert!(d > 0.0 && d <= 1.0, "seed {seed}: f64 {d}");
        }
    }
}

/// Lemire bounded sampling respects its bound for any positive bound.
#[test]
fn splitmix_bounded_in_range() {
    let mut g = gen();
    for _ in 0..CASES {
        let seed = g.next_u64();
        let bound = 1 + g.next_u64() % (u64::MAX - 1);
        let mut s = SplitMix64::new(seed);
        for _ in 0..32 {
            let v = s.bounded(bound);
            assert!(v < bound, "seed {seed} bound {bound} drew {v}");
        }
    }
}

/// Shuffle is always a permutation.
#[test]
fn splitmix_shuffle_permutes() {
    let mut g = gen();
    for _ in 0..CASES {
        let (seed, len) = (g.next_u64(), g.bounded(200) as usize);
        let mut s = SplitMix64::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        s.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..len).collect::<Vec<_>>(),
            "seed {seed} len {len}"
        );
    }
}

/// Xoshiro jumps produce pairwise distinct stream prefixes.
#[test]
fn xoshiro_jumps_disjoint() {
    let mut g = gen();
    for _ in 0..CASES {
        let seed = g.next_u64();
        let base = Xoshiro256pp::new(seed);
        let mut s0 = base.clone();
        let mut s1 = base.nth_jump(1);
        let p0: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let p1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_ne!(p0, p1, "seed {seed}");
    }
}
