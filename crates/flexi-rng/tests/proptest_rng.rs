//! Property-based tests for the RNG crate.

use flexi_rng::{Philox4x32, RandomSource, SplitMix64, Xoshiro256pp};
use proptest::prelude::*;

proptest! {
    /// O(1) skip must land exactly where sequential draws do, for any
    /// seed, stream and distance.
    #[test]
    fn philox_skip_equals_sequential(seed: u64, stream: u64, n in 0u64..4096) {
        let mut seq = Philox4x32::new(seed, stream);
        let mut jmp = Philox4x32::new(seed, stream);
        for _ in 0..n {
            seq.next_u32();
        }
        jmp.skip(n);
        prop_assert_eq!(seq.next_u32(), jmp.next_u32());
    }

    /// Seek is absolute: two different routes to a position agree.
    #[test]
    fn philox_seek_is_absolute(seed: u64, a in 0u64..2048, b in 0u64..2048) {
        let mut x = Philox4x32::new(seed, 0);
        let mut y = Philox4x32::new(seed, 0);
        x.seek(a);
        x.seek(b);
        y.seek(b);
        prop_assert_eq!(x.next_u32(), y.next_u32());
    }

    /// Position tracks every draw.
    #[test]
    fn philox_position_counts_draws(seed: u64, n in 0u64..512) {
        let mut g = Philox4x32::new(seed, 3);
        for _ in 0..n {
            g.next_u32();
        }
        prop_assert_eq!(g.position(), n);
    }

    /// Distinct streams of the same seed never produce identical prefixes.
    #[test]
    fn philox_streams_differ(seed: u64, s1: u64, s2: u64) {
        prop_assume!(s1 != s2);
        let mut a = Philox4x32::new(seed, s1);
        let mut b = Philox4x32::new(seed, s2);
        let pa: Vec<u32> = (0..4).map(|_| a.next_u32()).collect();
        let pb: Vec<u32> = (0..4).map(|_| b.next_u32()).collect();
        prop_assert_ne!(pa, pb);
    }

    /// Uniform draws stay inside their documented intervals.
    #[test]
    fn uniform_draws_in_range(seed: u64) {
        let mut g = Philox4x32::new(seed, 0);
        for _ in 0..64 {
            let f = g.uniform_f32();
            prop_assert!(f > 0.0 && f <= 1.0);
            let d = g.uniform_f64();
            prop_assert!(d > 0.0 && d <= 1.0);
        }
    }

    /// Lemire bounded sampling respects its bound for any positive bound.
    #[test]
    fn splitmix_bounded_in_range(seed: u64, bound in 1u64..u64::MAX) {
        let mut g = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(g.bounded(bound) < bound);
        }
    }

    /// Shuffle is always a permutation.
    #[test]
    fn splitmix_shuffle_permutes(seed: u64, len in 0usize..200) {
        let mut g = SplitMix64::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Xoshiro jumps produce pairwise distinct stream prefixes.
    #[test]
    fn xoshiro_jumps_disjoint(seed: u64) {
        let base = Xoshiro256pp::new(seed);
        let mut s0 = base.clone();
        let mut s1 = base.nth_jump(1);
        let p0: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let p1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        prop_assert_ne!(p0, p1);
    }
}
