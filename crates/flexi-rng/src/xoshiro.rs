//! Xoshiro256++: fast shift-register generator with polynomial jump.
//!
//! Used where raw speed matters more than counter addressing (e.g. the CPU
//! baseline engines, which in the original systems use per-thread sequential
//! generators). `jump()` advances the state by 2^128 draws, giving up to
//! 2^128 non-overlapping subsequences for coarse thread separation.

use crate::{RandomSource, SplitMix64};

/// Xoshiro256++ generator (Blackman & Vigna).
///
/// # Examples
///
/// ```
/// use flexi_rng::{RandomSource, Xoshiro256pp};
///
/// let mut a = Xoshiro256pp::new(5);
/// let mut b = a.clone();
/// b.jump();
/// // Jumped stream diverges from the original.
/// assert_ne!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator, expanding `seed` through SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // A state of all zeros is the one forbidden fixed point; SplitMix64
        // cannot produce four consecutive zeros, so this is safe.
        Self {
            s: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Advances the state by 2^128 steps.
    ///
    /// Calling `jump()` k times on clones yields k non-overlapping
    /// subsequences of length 2^128.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.step();
            }
        }
        self.s = acc;
    }

    /// Returns a clone advanced by `n` jumps, for indexed thread streams.
    pub fn nth_jump(&self, n: usize) -> Self {
        let mut g = self.clone();
        for _ in 0..n {
            g.jump();
        }
        g
    }
}

impl RandomSource for Xoshiro256pp {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = Xoshiro256pp::new(42);
        let mut b = Xoshiro256pp::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Xoshiro256pp::new(1);
        let mut b = Xoshiro256pp::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let base = Xoshiro256pp::new(7);
        let mut s0 = base.clone();
        let mut s1 = base.nth_jump(1);
        let mut s2 = base.nth_jump(2);
        let p0: Vec<u64> = (0..16).map(|_| s0.next_u64()).collect();
        let p1: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        let p2: Vec<u64> = (0..16).map(|_| s2.next_u64()).collect();
        assert_ne!(p0, p1);
        assert_ne!(p1, p2);
        assert_ne!(p0, p2);
    }

    #[test]
    fn jump_is_deterministic() {
        let mut a = Xoshiro256pp::new(3);
        let mut b = Xoshiro256pp::new(3);
        a.jump();
        b.jump();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn mean_is_balanced() {
        let mut g = Xoshiro256pp::new(1234);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| g.uniform_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
