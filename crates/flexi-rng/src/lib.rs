//! Pseudo-random number generation for FlexiWalker.
//!
//! GPU random-walk kernels need three properties from their generator that
//! ordinary sequential PRNGs do not provide out of the box:
//!
//! 1. **Independent per-lane streams** — every SIMT lane draws from its own
//!    statistically independent stream so that concurrent sampling trials do
//!    not correlate.
//! 2. **O(1) jump-ahead** — the eRVS *jump* optimisation (paper §3.2) skips a
//!    computed number of random draws; a counter-based generator makes the
//!    skip a constant-time counter addition instead of a loop.
//! 3. **Reproducibility** — a (seed, stream, counter) triple fully determines
//!    every draw, which the test-suite and the deterministic simulator rely
//!    on.
//!
//! The primary generator is [`Philox4x32`], the counter-based generator
//! family used by cuRAND (which the paper uses on real hardware). A cheap
//! [`SplitMix64`] is provided for seeding and auxiliary shuffling, and
//! [`Xoshiro256pp`] offers a fast shift-register alternative with a
//! polynomial `jump()` for coarse stream separation.

pub mod dist;
pub mod philox;
pub mod splitmix;
pub mod xoshiro;

pub use dist::{Exponential, Pareto, Uniform01, UniformRange};
pub use philox::{Philox4x32, PhiloxStream};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// Minimal uniform-source trait implemented by every generator in this crate.
///
/// All higher-level distributions ([`dist`]) are defined against this trait so
/// samplers can be written once and tested against multiple generators.
pub trait RandomSource {
    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly distributed random bits.
    ///
    /// The default combines two `next_u32` draws.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniform `f32` in the half-open interval `(0, 1]`.
    ///
    /// The open-at-zero convention matters: eRVS computes `u^(1/w)` and
    /// `ln(u)`, both of which are undefined at `u = 0`.
    fn uniform_f32(&mut self) -> f32 {
        // 24 mantissa bits; add 1 so the result is in (0, 1].
        let bits = self.next_u32() >> 8;
        (bits as f32 + 1.0) * (1.0 / 16_777_216.0)
    }

    /// Returns a uniform `f64` in the half-open interval `(0, 1]`.
    fn uniform_f64(&mut self) -> f64 {
        let bits = self.next_u64() >> 11;
        (bits as f64 + 1.0) * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Skips the next `n` 32-bit draws.
    ///
    /// Counter-based generators override this with O(1) counter arithmetic;
    /// the default falls back to drawing and discarding.
    fn skip(&mut self, n: u64) {
        for _ in 0..n {
            self.next_u32();
        }
    }
}

impl<R: RandomSource + ?Sized> RandomSource for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn uniform_f32(&mut self) -> f32 {
        (**self).uniform_f32()
    }

    fn uniform_f64(&mut self) -> f64 {
        (**self).uniform_f64()
    }

    fn skip(&mut self, n: u64) {
        (**self).skip(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic sawtooth source for exercising trait defaults.
    struct Saw(u32);

    impl RandomSource for Saw {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x9E37_79B9);
            self.0
        }
    }

    #[test]
    fn uniform_f32_is_in_unit_interval() {
        let mut s = Saw(0);
        for _ in 0..10_000 {
            let u = s.uniform_f32();
            assert!(u > 0.0 && u <= 1.0, "u = {u} outside (0, 1]");
        }
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut s = Saw(7);
        for _ in 0..10_000 {
            let u = s.uniform_f64();
            assert!(u > 0.0 && u <= 1.0, "u = {u} outside (0, 1]");
        }
    }

    #[test]
    fn default_skip_matches_manual_draws() {
        let mut a = Saw(42);
        let mut b = Saw(42);
        a.skip(17);
        for _ in 0..17 {
            b.next_u32();
        }
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn next_u64_combines_two_u32() {
        let mut a = Saw(1);
        let mut b = Saw(1);
        let hi = b.next_u32() as u64;
        let lo = b.next_u32() as u64;
        assert_eq!(a.next_u64(), (hi << 32) | lo);
    }
}
