//! Sampling distributions built on [`RandomSource`].
//!
//! These cover everything the paper's evaluation needs: uniform property
//! weights drawn from `[1, 5)` and labels from `{0..4}` (paper §6.1), the
//! Pareto power-law weights of Figs. 7/10/11/14 (`np.random.pareto(α)`
//! equivalent), and the exponential draws behind eRVS key generation.

use crate::RandomSource;

/// Uniform distribution on `(0, 1]`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Uniform01;

impl Uniform01 {
    /// Samples a uniform `f64` in `(0, 1]`.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> f64 {
        rng.uniform_f64()
    }
}

/// Uniform distribution on a half-open real interval `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "require lo < hi, got [{lo}, {hi})");
        Self { lo, hi }
    }

    /// Samples a value in `[lo, hi)`.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> f64 {
        // uniform_f64 is (0, 1]; flip to [0, 1) so `lo` is attainable and
        // `hi` is not, matching numpy's convention used by the paper.
        let u = 1.0 - rng.uniform_f64();
        self.lo + u * (self.hi - self.lo)
    }
}

/// Exponential distribution with rate `lambda`.
///
/// Used by the statistical identity behind eRVS: `u^(1/w)` keys are
/// equivalent to `Exp(w)`-distributed arrival times (Efraimidis–Spirakis).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0` or `lambda` is non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "rate must be positive and finite, got {lambda}"
        );
        Self { lambda }
    }

    /// Samples by inversion: `-ln(u) / λ`.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> f64 {
        -rng.uniform_f64().ln() / self.lambda
    }
}

/// Pareto (power-law) distribution, matching `numpy.random.pareto(alpha)`.
///
/// numpy's `pareto(α)` returns `X - 1` where `X` is classical Pareto with
/// scale 1, i.e. samples live on `[0, ∞)` with density `α / (1+x)^(α+1)`.
/// The paper initialises skewed edge-property weights this way with
/// `α ∈ [1, 4]`; lower `α` means heavier tail.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` or `alpha` is non-finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "shape must be positive and finite, got {alpha}"
        );
        Self { alpha }
    }

    /// Samples `u^(-1/α) - 1` (inverse-CDF method, numpy-compatible).
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> f64 {
        rng.uniform_f64().powf(-1.0 / self.alpha) - 1.0
    }

    /// The distribution's shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Samples a uniform integer from `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn uniform_index<R: RandomSource>(rng: &mut R, bound: usize) -> usize {
    assert!(bound > 0, "uniform_index bound must be positive");
    // Rejection-free multiply-shift; bias is negligible for bound << 2^64
    // but we use 128-bit multiply to keep it exact for graph-scale bounds.
    let x = rng.next_u64();
    ((u128::from(x) * bound as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Philox4x32;

    fn rng() -> Philox4x32 {
        Philox4x32::new(0xFEED, 0)
    }

    #[test]
    fn uniform_range_stays_in_bounds() {
        let d = UniformRange::new(1.0, 5.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((1.0..5.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn uniform_range_mean_is_midpoint() {
        let d = UniformRange::new(1.0, 5.0);
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / f64::from(n);
        assert!((mean - 3.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_range_rejects_inverted_bounds() {
        UniformRange::new(5.0, 1.0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let d = Exponential::new(2.0);
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::new(0.1);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        Exponential::new(0.0);
    }

    #[test]
    fn pareto_is_nonnegative_and_heavy_tailed() {
        let d = Pareto::new(1.0);
        let mut r = rng();
        let mut max = 0.0f64;
        for _ in 0..100_000 {
            let x = d.sample(&mut r);
            assert!(x >= 0.0);
            max = max.max(x);
        }
        // α = 1 has infinite mean; over 1e5 draws the max should be huge.
        assert!(max > 100.0, "max = {max}: tail looks too light for α=1");
    }

    #[test]
    fn pareto_mean_matches_theory_for_alpha_3() {
        // numpy pareto(α) has mean 1/(α-1) for α > 1; α=3 → 0.5.
        let d = Pareto::new(3.0);
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn pareto_higher_alpha_is_less_skewed() {
        let mut r = rng();
        let p99 = |alpha: f64, r: &mut Philox4x32| {
            let d = Pareto::new(alpha);
            let mut v: Vec<f64> = (0..20_000).map(|_| d.sample(r)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            v[(v.len() as f64 * 0.99) as usize]
        };
        let tail_1 = p99(1.0, &mut r);
        let tail_4 = p99(4.0, &mut r);
        assert!(
            tail_1 > 10.0 * tail_4,
            "α=1 p99 {tail_1} not ≫ α=4 p99 {tail_4}"
        );
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn pareto_rejects_negative_alpha() {
        Pareto::new(-1.0);
    }

    #[test]
    fn uniform_index_covers_range() {
        let mut r = rng();
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[uniform_index(&mut r, 7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn uniform_index_rejects_zero() {
        uniform_index(&mut rng(), 0);
    }
}
