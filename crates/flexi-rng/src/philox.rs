//! Philox4x32-10 counter-based pseudo-random generator.
//!
//! Philox (Salmon et al., SC'11, "Parallel random numbers: as easy as
//! 1, 2, 3") is the default generator of cuRAND, which FlexiWalker uses on
//! real GPUs. Instead of evolving hidden state, Philox applies a 10-round
//! bijective mixing function to a 128-bit *counter* under a 64-bit *key*:
//!
//! ```text
//! output_block = philox10(key, counter); counter += 1
//! ```
//!
//! Two properties make it ideal for SIMT sampling kernels:
//!
//! - **Streams**: every (seed, stream-id) pair keys an independent sequence,
//!   so each simulated lane owns a private stream with zero shared state.
//! - **O(1) skip-ahead**: advancing `n` draws is a counter addition, which is
//!   what makes the eRVS jump technique (paper §3.2) essentially free.

use crate::RandomSource;

const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;
const ROUNDS: usize = 10;

/// One 128-bit output block of the Philox4x32-10 bijection.
#[inline]
fn philox_block(key: [u32; 2], counter: [u32; 4]) -> [u32; 4] {
    let mut c = counter;
    let mut k = key;
    for _ in 0..ROUNDS {
        let p0 = u64::from(PHILOX_M0) * u64::from(c[0]);
        let p1 = u64::from(PHILOX_M1) * u64::from(c[2]);
        let hi0 = (p0 >> 32) as u32;
        let lo0 = p0 as u32;
        let hi1 = (p1 >> 32) as u32;
        let lo1 = p1 as u32;
        c = [hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0];
        k[0] = k[0].wrapping_add(PHILOX_W0);
        k[1] = k[1].wrapping_add(PHILOX_W1);
    }
    c
}

/// Philox4x32-10 generator with a (seed, stream) key and 128-bit counter.
///
/// Each call to [`RandomSource::next_u32`] consumes one of the four words of
/// the current block, generating a new block every fourth call. Skip-ahead is
/// exact: word-level positions are tracked so `skip(n)` lands on precisely
/// the same draw as `n` sequential calls.
///
/// # Examples
///
/// ```
/// use flexi_rng::{Philox4x32, RandomSource};
///
/// let mut a = Philox4x32::new(1234, 0);
/// let mut b = Philox4x32::new(1234, 0);
/// b.skip(1000);
/// for _ in 0..1000 {
///     a.next_u32();
/// }
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Clone, Debug)]
pub struct Philox4x32 {
    key: [u32; 2],
    /// Block counter (counts 128-bit blocks, little-endian limbs).
    counter: [u32; 4],
    /// Current block contents.
    block: [u32; 4],
    /// Next word index within `block`; 4 means "block exhausted".
    word: usize,
}

impl Philox4x32 {
    /// Creates a generator keyed by `(seed, stream)`.
    ///
    /// Distinct `(seed, stream)` pairs produce statistically independent
    /// sequences; this is how per-lane streams are provisioned.
    pub fn new(seed: u64, stream: u64) -> Self {
        // Mix the stream id into the high counter limbs so that even
        // identical seeds with adjacent stream ids decorrelate immediately.
        let key = [seed as u32, (seed >> 32) as u32];
        let counter = [0, 0, stream as u32, (stream >> 32) as u32];
        let mut g = Self {
            key,
            counter,
            block: [0; 4],
            word: 4,
        };
        g.refill();
        g
    }

    /// Total number of 32-bit words consumed so far.
    pub fn position(&self) -> u64 {
        let blocks = (u64::from(self.counter[1]) << 32) | u64::from(self.counter[0]);
        // `refill` advances the counter eagerly, so the live block is
        // `blocks - 1` and `word` words of it have been consumed.
        blocks
            .wrapping_sub(1)
            .wrapping_mul(4)
            .wrapping_add(self.word as u64)
    }

    fn refill(&mut self) {
        self.block = philox_block(self.key, self.counter);
        // 128-bit increment over the low two limbs (the stream id occupies
        // the high limbs and is never carried into).
        let (lo, carry) = self.counter[0].overflowing_add(1);
        self.counter[0] = lo;
        if carry {
            self.counter[1] = self.counter[1].wrapping_add(1);
        }
        self.word = 0;
    }

    /// Repositions the generator to absolute word offset `pos`.
    pub fn seek(&mut self, pos: u64) {
        let block = pos / 4;
        let word = (pos % 4) as usize;
        self.counter[0] = block as u32;
        self.counter[1] = (block >> 32) as u32;
        self.refill();
        self.word = word;
    }
}

impl RandomSource for Philox4x32 {
    fn next_u32(&mut self) -> u32 {
        if self.word == 4 {
            self.refill();
        }
        let v = self.block[self.word];
        self.word += 1;
        v
    }

    fn skip(&mut self, n: u64) {
        let pos = self.position().wrapping_add(n);
        self.seek(pos);
    }
}

/// A factory for per-lane Philox streams sharing one experiment seed.
///
/// GPU kernels index this by global lane id; the CPU reference paths index it
/// by walker id. Both obtain reproducible independent generators.
#[derive(Clone, Copy, Debug)]
pub struct PhiloxStream {
    seed: u64,
}

impl PhiloxStream {
    /// Creates a stream factory for the experiment `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Returns the generator for `stream` (lane id, walker id, ...).
    pub fn stream(&self, stream: u64) -> Philox4x32 {
        Philox4x32::new(self.seed, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_function_is_deterministic() {
        let a = philox_block([1, 2], [3, 4, 5, 6]);
        let b = philox_block([1, 2], [3, 4, 5, 6]);
        assert_eq!(a, b);
    }

    #[test]
    fn block_function_depends_on_key_and_counter() {
        let base = philox_block([1, 2], [3, 4, 5, 6]);
        assert_ne!(base, philox_block([1, 3], [3, 4, 5, 6]));
        assert_ne!(base, philox_block([1, 2], [3, 4, 5, 7]));
    }

    #[test]
    fn sequences_are_reproducible() {
        let mut a = Philox4x32::new(99, 7);
        let mut b = Philox4x32::new(99, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Philox4x32::new(99, 0);
        let mut b = Philox4x32::new(99, 1);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Philox4x32::new(1, 0);
        let mut b = Philox4x32::new(2, 0);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn skip_matches_sequential_draws_across_block_boundaries() {
        for n in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1023] {
            let mut seq = Philox4x32::new(2024, 3);
            let mut jmp = Philox4x32::new(2024, 3);
            for _ in 0..n {
                seq.next_u32();
            }
            jmp.skip(n);
            assert_eq!(seq.next_u32(), jmp.next_u32(), "skip({n}) diverged");
        }
    }

    #[test]
    fn seek_is_absolute() {
        let mut g = Philox4x32::new(5, 5);
        let mut h = Philox4x32::new(5, 5);
        for _ in 0..37 {
            g.next_u32();
        }
        h.seek(37);
        assert_eq!(g.next_u32(), h.next_u32());
        // Seeking backwards replays earlier output.
        let mut i = Philox4x32::new(5, 5);
        let first = i.next_u32();
        i.seek(0);
        assert_eq!(i.next_u32(), first);
    }

    #[test]
    fn position_tracks_draws() {
        let mut g = Philox4x32::new(11, 0);
        assert_eq!(g.position(), 0);
        for expect in 1..=10 {
            g.next_u32();
            assert_eq!(g.position(), expect);
        }
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Sanity check: mean of uniform f64 draws is near 0.5.
        let mut g = Philox4x32::new(123, 456);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.uniform_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn monobit_balance() {
        // Count set bits over many words; expect ~50%.
        let mut g = Philox4x32::new(777, 0);
        let mut ones = 0u64;
        let words = 10_000u64;
        for _ in 0..words {
            ones += u64::from(g.next_u32().count_ones());
        }
        let frac = ones as f64 / (words as f64 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction = {frac}");
    }

    #[test]
    fn stream_factory_reproduces() {
        let f = PhiloxStream::new(42);
        let mut a = f.stream(9);
        let mut b = f.stream(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
