//! SplitMix64: a tiny, fast mixing generator used for seeding and shuffles.
//!
//! SplitMix64 (Steele et al., OOPSLA'14) passes BigCrush and is the standard
//! seed-expansion function for xoshiro-family generators. It is *not* used
//! inside sampling kernels (Philox owns that role) but drives graph
//! generation, permutation shuffles, and seed derivation.

use crate::RandomSource;

/// SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use flexi_rng::{RandomSource, SplitMix64};
///
/// let mut g = SplitMix64::new(7);
/// let x = g.next_u64();
/// let y = g.next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advances the state and returns the next 64-bit output.
    ///
    /// Named after the canonical C reference implementation.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded(0) is meaningless");
        // Lemire's multiply-shift with rejection to remove modulo bias.
        loop {
            let x = self.next();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl RandomSource for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // Reference values for seed 0 from the canonical C implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn bounded_respects_bound() {
        let mut g = SplitMix64::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..100 {
                assert!(g.bounded(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bounded(0)")]
    fn bounded_zero_panics() {
        SplitMix64::new(1).bounded(0);
    }

    #[test]
    fn bounded_covers_small_range() {
        let mut g = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[g.bounded(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values of [0,5) produced");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_empty_and_singleton_are_noops() {
        let mut g = SplitMix64::new(1);
        let mut empty: Vec<u8> = vec![];
        g.shuffle(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![42];
        g.shuffle(&mut one);
        assert_eq!(one, vec![42]);
    }
}
