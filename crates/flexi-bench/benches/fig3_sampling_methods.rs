//! Fig. 3 wall-clock bench: the four base sampling engines on weighted
//! Node2Vec over the YT proxy.

use criterion::{criterion_group, criterion_main, Criterion};
use flexi_baselines::{CSawGpu, FlowWalkerGpu, NextDoorGpu, SkywalkerGpu};
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_core::{Node2Vec, WalkEngine};

fn bench(c: &mut Criterion) {
    let p = Profile::test();
    let g = dataset(&p, "YT", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let cfg = config_for(&p, "YT", &g, qs.len());
    let spec = device_for("YT", &g);
    let w = Node2Vec::paper(true);
    let engines: Vec<Box<dyn WalkEngine>> = vec![
        Box::new(CSawGpu::new(spec.clone())),
        Box::new(SkywalkerGpu::new(spec.clone())),
        Box::new(FlowWalkerGpu::new(spec.clone())),
        Box::new(NextDoorGpu::new(spec)),
    ];
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for e in &engines {
        group.bench_function(e.name(), |b| {
            b.iter(|| e.run(&g, &w, &qs, &cfg).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
