//! Fig. 3 wall-clock bench: the four base sampling engines on weighted
//! Node2Vec over the YT proxy.

use flexi_baselines::{CSawGpu, FlowWalkerGpu, NextDoorGpu, SkywalkerGpu};
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_bench::microbench::BenchGroup;
use flexi_core::{Node2Vec, WalkEngine, WalkRequest};

fn main() {
    let p = Profile::test();
    let g = dataset(&p, "YT", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let cfg = config_for(&p, "YT", &g, qs.len());
    let spec = device_for("YT", &g);
    let w = Node2Vec::paper(true);
    let req = WalkRequest::new(g.clone(), &w, &qs).with_config(cfg);
    let engines: Vec<Box<dyn WalkEngine>> = vec![
        Box::new(CSawGpu::new(spec.clone())),
        Box::new(SkywalkerGpu::new(spec.clone())),
        Box::new(FlowWalkerGpu::new(spec.clone())),
        Box::new(NextDoorGpu::new(spec)),
    ];
    let mut group = BenchGroup::new("fig3").sample_size(10);
    for e in &engines {
        group.bench_function(e.name(), || {
            e.run(&req).expect("run");
        });
    }
    group.finish();
}
