//! Table 2 wall-clock bench: the full engine roster on weighted Node2Vec.

use flexi_baselines::{
    CSawGpu, CpuSpec, FlowWalkerGpu, NextDoorGpu, SkywalkerGpu, SoWalkerCpu, ThunderRwCpu,
};
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_bench::microbench::BenchGroup;
use flexi_core::{FlexiWalkerEngine, Node2Vec, WalkEngine, WalkRequest};

fn main() {
    let p = Profile::test();
    let g = dataset(&p, "CP", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let mut cfg = config_for(&p, "CP", &g, qs.len());
    cfg.time_budget = f64::MAX;
    let spec = device_for("CP", &g);
    let w = Node2Vec::paper(true);
    let req = WalkRequest::new(g.clone(), &w, &qs).with_config(cfg);
    let engines: Vec<Box<dyn WalkEngine>> = vec![
        Box::new(SoWalkerCpu::new(CpuSpec::epyc_9124p())),
        Box::new(ThunderRwCpu::new(CpuSpec::epyc_9124p())),
        Box::new(CSawGpu::new(spec.clone())),
        Box::new(NextDoorGpu::new(spec.clone())),
        Box::new(SkywalkerGpu::new(spec.clone())),
        Box::new(FlowWalkerGpu::new(spec.clone())),
        Box::new(FlexiWalkerEngine::new(spec)),
    ];
    let mut group = BenchGroup::new("table2").sample_size(10);
    for e in &engines {
        group.bench_function(e.name(), || {
            e.run(&req).expect("run");
        });
    }
    group.finish();
}
