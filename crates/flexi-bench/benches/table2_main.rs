//! Table 2 wall-clock bench: the full engine roster on weighted Node2Vec.

use criterion::{criterion_group, criterion_main, Criterion};
use flexi_baselines::{
    CSawGpu, CpuSpec, FlowWalkerGpu, NextDoorGpu, SkywalkerGpu, SoWalkerCpu, ThunderRwCpu,
};
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_core::{FlexiWalkerEngine, Node2Vec, WalkEngine};

fn bench(c: &mut Criterion) {
    let p = Profile::test();
    let g = dataset(&p, "CP", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let mut cfg = config_for(&p, "CP", &g, qs.len());
    cfg.time_budget = f64::MAX;
    let spec = device_for("CP", &g);
    let w = Node2Vec::paper(true);
    let engines: Vec<Box<dyn WalkEngine>> = vec![
        Box::new(SoWalkerCpu::new(CpuSpec::epyc_9124p())),
        Box::new(ThunderRwCpu::new(CpuSpec::epyc_9124p())),
        Box::new(CSawGpu::new(spec.clone())),
        Box::new(NextDoorGpu::new(spec.clone())),
        Box::new(SkywalkerGpu::new(spec.clone())),
        Box::new(FlowWalkerGpu::new(spec.clone())),
        Box::new(FlexiWalkerEngine::new(spec)),
    ];
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for e in &engines {
        group.bench_function(e.name(), |b| {
            b.iter(|| e.run(&g, &w, &qs, &cfg).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
