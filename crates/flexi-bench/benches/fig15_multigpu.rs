//! Fig. 15 wall-clock bench: multi-device execution, 1 vs 4 devices.

use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_bench::microbench::BenchGroup;
use flexi_core::multi_device::MultiDeviceEngine;
use flexi_core::{Node2Vec, WalkEngine, WalkRequest};

fn main() {
    let p = Profile::test();
    let g = dataset(&p, "EU", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let mut cfg = config_for(&p, "EU", &g, qs.len());
    cfg.time_budget = f64::MAX;
    let spec = device_for("EU", &g);
    let w = Node2Vec::paper(true);
    let req = WalkRequest::new(g.clone(), &w, &qs).with_config(cfg);
    let mut group = BenchGroup::new("fig15").sample_size(10);
    for devices in [1usize, 4] {
        let engine = MultiDeviceEngine::new(spec.clone(), devices);
        group.bench_function(format!("{devices}gpu"), || {
            engine.run(&req).expect("run");
        });
    }
    group.finish();
}
