//! Fig. 10 wall-clock bench: power-law and degree-based weights.

use criterion::{criterion_group, criterion_main, Criterion};
use flexi_baselines::{FlowWalkerGpu, NextDoorGpu};
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_core::{FlexiWalkerEngine, Node2Vec, WalkEngine};

fn bench(c: &mut Criterion) {
    let p = Profile::test();
    let w = Node2Vec::paper(true);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for (label, setup) in [
        ("pareto1", WeightSetup::Pareto(1.0)),
        ("degree", WeightSetup::DegreeBased),
    ] {
        let g = dataset(&p, "YT", setup, false);
        let qs = queries(&g, &p);
        let mut cfg = config_for(&p, "YT", &g, qs.len());
        cfg.time_budget = f64::MAX;
        let spec = device_for("YT", &g);
        let engines: Vec<Box<dyn WalkEngine>> = vec![
            Box::new(NextDoorGpu::new(spec.clone())),
            Box::new(FlowWalkerGpu::new(spec.clone())),
            Box::new(FlexiWalkerEngine::new(spec)),
        ];
        for e in &engines {
            group.bench_function(format!("{}/{label}", e.name()), |b| {
                b.iter(|| e.run(&g, &w, &qs, &cfg).expect("run"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
