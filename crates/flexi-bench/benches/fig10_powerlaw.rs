//! Fig. 10 wall-clock bench: power-law and degree-based weights.

use flexi_baselines::{FlowWalkerGpu, NextDoorGpu};
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_bench::microbench::BenchGroup;
use flexi_core::{FlexiWalkerEngine, Node2Vec, WalkEngine, WalkRequest};

fn main() {
    let p = Profile::test();
    let w = Node2Vec::paper(true);
    let mut group = BenchGroup::new("fig10").sample_size(10);
    for (label, setup) in [
        ("pareto1", WeightSetup::Pareto(1.0)),
        ("degree", WeightSetup::DegreeBased),
    ] {
        let g = dataset(&p, "YT", setup, false);
        let qs = queries(&g, &p);
        let mut cfg = config_for(&p, "YT", &g, qs.len());
        cfg.time_budget = f64::MAX;
        let spec = device_for("YT", &g);
        let req = WalkRequest::new(g.clone(), &w, &qs).with_config(cfg);
        let engines: Vec<Box<dyn WalkEngine>> = vec![
            Box::new(NextDoorGpu::new(spec.clone())),
            Box::new(FlowWalkerGpu::new(spec.clone())),
            Box::new(FlexiWalkerEngine::new(spec)),
        ];
        for e in &engines {
            group.bench_function(format!("{}/{label}", e.name()), || {
                e.run(&req).expect("run");
            });
        }
    }
    group.finish();
}
