//! Fig. 11 wall-clock bench: runtime-component ablation.

use flexi_baselines::FlowWalkerGpu;
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_bench::microbench::BenchGroup;
use flexi_core::{FlexiWalkerEngine, Node2Vec, SelectionStrategy, WalkEngine, WalkRequest};

fn main() {
    let p = Profile::test();
    let g = dataset(&p, "YT", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let mut cfg = config_for(&p, "YT", &g, qs.len());
    cfg.time_budget = f64::MAX;
    let spec = device_for("YT", &g);
    let w = Node2Vec::paper(true);
    let req = WalkRequest::new(g.clone(), &w, &qs).with_config(cfg);
    let mut group = BenchGroup::new("fig11").sample_size(10);
    let fw = FlowWalkerGpu::new(spec.clone());
    group.bench_function("FlowWalker", || {
        fw.run(&req).expect("run");
    });
    for (label, strategy) in [
        ("eRVS-only", SelectionStrategy::RVS_ONLY),
        ("eRJS-only", SelectionStrategy::RJS_ONLY),
        ("adaptive", SelectionStrategy::CostModel),
    ] {
        let engine = FlexiWalkerEngine::with_strategy(spec.clone(), strategy);
        group.bench_function(label, || {
            engine.run(&req).expect("run");
        });
    }
    group.finish();
}
