//! Fig. 11 wall-clock bench: runtime-component ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use flexi_baselines::FlowWalkerGpu;
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_core::{FlexiWalkerEngine, Node2Vec, SelectionStrategy, WalkEngine};

fn bench(c: &mut Criterion) {
    let p = Profile::test();
    let g = dataset(&p, "YT", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let mut cfg = config_for(&p, "YT", &g, qs.len());
    cfg.time_budget = f64::MAX;
    let spec = device_for("YT", &g);
    let w = Node2Vec::paper(true);
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    let fw = FlowWalkerGpu::new(spec.clone());
    group.bench_function("FlowWalker", |b| {
        b.iter(|| fw.run(&g, &w, &qs, &cfg).expect("run"));
    });
    for (label, strategy) in [
        ("eRVS-only", SelectionStrategy::RvsOnly),
        ("eRJS-only", SelectionStrategy::RjsOnly),
        ("adaptive", SelectionStrategy::CostModel),
    ] {
        let engine = FlexiWalkerEngine::with_strategy(spec.clone(), strategy);
        group.bench_function(label, |b| {
            b.iter(|| engine.run(&g, &w, &qs, &cfg).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
