//! Fig. 12 wall-clock bench: kernel-stage ablations (EXP/JUMP, Est.Max).

use flexi_baselines::{FlowWalkerGpu, NextDoorGpu};
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_bench::microbench::BenchGroup;
use flexi_core::{FlexiWalkerEngine, Node2Vec, SelectionStrategy, WalkEngine, WalkRequest};
use flexi_sampling::kernels::ErvsMode;

fn main() {
    let p = Profile::test();
    let g = dataset(&p, "YT", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let mut cfg = config_for(&p, "YT", &g, qs.len());
    cfg.time_budget = f64::MAX;
    let spec = device_for("YT", &g);
    let w = Node2Vec::paper(true);
    let req = WalkRequest::new(g.clone(), &w, &qs).with_config(cfg);
    let mut group = BenchGroup::new("fig12").sample_size(10);

    // (a) Reservoir stages.
    let fw = FlowWalkerGpu::new(spec.clone());
    group.bench_function("rvs/FlowWalker", || {
        fw.run(&req).expect("run");
    });
    let exp = FlexiWalkerEngine::with_strategy(spec.clone(), SelectionStrategy::RVS_ONLY)
        .with_ervs_mode(ErvsMode::Exp);
    group.bench_function("rvs/+EXP", || {
        exp.run(&req).expect("run");
    });
    let jump = FlexiWalkerEngine::with_strategy(spec.clone(), SelectionStrategy::RVS_ONLY);
    group.bench_function("rvs/+JUMP", || {
        jump.run(&req).expect("run");
    });

    // (b) Rejection bound estimation.
    let nd = NextDoorGpu::new(spec.clone());
    group.bench_function("rjs/NextDoor", || {
        nd.run(&req).expect("run");
    });
    let est = FlexiWalkerEngine::with_strategy(spec, SelectionStrategy::RJS_ONLY);
    group.bench_function("rjs/+EstMax", || {
        est.run(&req).expect("run");
    });
    group.finish();
}
