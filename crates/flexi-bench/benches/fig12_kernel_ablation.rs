//! Fig. 12 wall-clock bench: kernel-stage ablations (EXP/JUMP, Est.Max).

use criterion::{criterion_group, criterion_main, Criterion};
use flexi_baselines::{FlowWalkerGpu, NextDoorGpu};
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_core::{FlexiWalkerEngine, Node2Vec, SelectionStrategy, WalkEngine};
use flexi_sampling::kernels::ErvsMode;

fn bench(c: &mut Criterion) {
    let p = Profile::test();
    let g = dataset(&p, "YT", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let mut cfg = config_for(&p, "YT", &g, qs.len());
    cfg.time_budget = f64::MAX;
    let spec = device_for("YT", &g);
    let w = Node2Vec::paper(true);
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);

    // (a) Reservoir stages.
    let fw = FlowWalkerGpu::new(spec.clone());
    group.bench_function("rvs/FlowWalker", |b| {
        b.iter(|| fw.run(&g, &w, &qs, &cfg).expect("run"));
    });
    let mut exp = FlexiWalkerEngine::with_strategy(spec.clone(), SelectionStrategy::RvsOnly);
    exp.ervs_mode = ErvsMode::Exp;
    group.bench_function("rvs/+EXP", |b| {
        b.iter(|| exp.run(&g, &w, &qs, &cfg).expect("run"));
    });
    let jump = FlexiWalkerEngine::with_strategy(spec.clone(), SelectionStrategy::RvsOnly);
    group.bench_function("rvs/+JUMP", |b| {
        b.iter(|| jump.run(&g, &w, &qs, &cfg).expect("run"));
    });

    // (b) Rejection bound estimation.
    let nd = NextDoorGpu::new(spec.clone());
    group.bench_function("rjs/NextDoor", |b| {
        b.iter(|| nd.run(&g, &w, &qs, &cfg).expect("run"));
    });
    let est = FlexiWalkerEngine::with_strategy(spec, SelectionStrategy::RjsOnly);
    group.bench_function("rjs/+EstMax", |b| {
        b.iter(|| est.run(&g, &w, &qs, &cfg).expect("run"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
