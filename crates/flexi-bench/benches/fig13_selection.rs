//! Fig. 13 wall-clock bench: sampler-selection strategies.

use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_bench::microbench::BenchGroup;
use flexi_core::{FlexiWalkerEngine, Node2Vec, SelectionStrategy, WalkEngine, WalkRequest};

fn main() {
    let p = Profile::test();
    let g = dataset(&p, "CP", WeightSetup::Uniform, false);
    let qs = queries(&g, &p);
    let mut cfg = config_for(&p, "CP", &g, qs.len());
    cfg.time_budget = f64::MAX;
    let spec = device_for("CP", &g);
    let w = Node2Vec::paper(true);
    let req = WalkRequest::new(g.clone(), &w, &qs).with_config(cfg);
    let mut group = BenchGroup::new("fig13").sample_size(10);
    for (label, strategy) in [
        ("random", SelectionStrategy::Random),
        ("degree", SelectionStrategy::paper_degree_baseline()),
        ("cost-model", SelectionStrategy::CostModel),
    ] {
        let engine = FlexiWalkerEngine::with_strategy(spec.clone(), strategy);
        group.bench_function(label, || {
            engine.run(&req).expect("run");
        });
    }
    group.finish();
}
