//! Fig. 7a wall-clock bench: eRVS vs eRJS under mild and heavy weight skew.

use criterion::{criterion_group, criterion_main, Criterion};
use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_core::{FlexiWalkerEngine, Node2Vec, SelectionStrategy, WalkEngine};

fn bench(c: &mut Criterion) {
    let p = Profile::test();
    let w = Node2Vec::paper(true);
    let mut group = c.benchmark_group("fig7a");
    group.sample_size(10);
    for alpha in [1.0, 4.0] {
        let g = dataset(&p, "EU", WeightSetup::Pareto(alpha), false);
        let qs = queries(&g, &p);
        let mut cfg = config_for(&p, "EU", &g, qs.len());
        cfg.time_budget = f64::MAX;
        let spec = device_for("EU", &g);
        for (label, strategy) in [
            ("eRVS", SelectionStrategy::RvsOnly),
            ("eRJS", SelectionStrategy::RjsOnly),
        ] {
            let engine = FlexiWalkerEngine::with_strategy(spec.clone(), strategy);
            group.bench_function(format!("{label}/alpha{alpha}"), |b| {
                b.iter(|| engine.run(&g, &w, &qs, &cfg).expect("run"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
