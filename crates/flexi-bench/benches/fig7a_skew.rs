//! Fig. 7a wall-clock bench: eRVS vs eRJS under mild and heavy weight skew.

use flexi_bench::harness::{config_for, dataset, device_for, queries, Profile, WeightSetup};
use flexi_bench::microbench::BenchGroup;
use flexi_core::{FlexiWalkerEngine, Node2Vec, SelectionStrategy, WalkEngine, WalkRequest};

fn main() {
    let p = Profile::test();
    let w = Node2Vec::paper(true);
    let mut group = BenchGroup::new("fig7a").sample_size(10);
    for alpha in [1.0, 4.0] {
        let g = dataset(&p, "EU", WeightSetup::Pareto(alpha), false);
        let qs = queries(&g, &p);
        let mut cfg = config_for(&p, "EU", &g, qs.len());
        cfg.time_budget = f64::MAX;
        let spec = device_for("EU", &g);
        let req = WalkRequest::new(g.clone(), &w, &qs).with_config(cfg);
        for (label, strategy) in [
            ("eRVS", SelectionStrategy::RVS_ONLY),
            ("eRJS", SelectionStrategy::RJS_ONLY),
        ] {
            let engine = FlexiWalkerEngine::with_strategy(spec.clone(), strategy);
            group.bench_function(format!("{label}/alpha{alpha}"), || {
                engine.run(&req).expect("run");
            });
        }
    }
    group.finish();
}
