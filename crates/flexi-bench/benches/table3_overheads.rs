//! Table 3 wall-clock bench: profiling and preprocessing overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use flexi_bench::harness::{dataset, device_for, Profile, WeightSetup};
use flexi_compiler::{compile, CompileOutcome};
use flexi_core::preprocess::Aggregates;
use flexi_core::profile::run_profile;
use flexi_core::{DynamicWalk, Node2Vec};
use flexi_gpu_sim::Device;

fn bench(c: &mut Criterion) {
    let p = Profile::test();
    let g = dataset(&p, "EU", WeightSetup::Uniform, false);
    let spec = device_for("EU", &g);
    let w = Node2Vec::paper(true);
    let compiled = match compile(&w.spec()).unwrap() {
        CompileOutcome::Supported(c) => c,
        _ => panic!("node2vec compiles"),
    };
    let mut group = c.benchmark_group("table3");
    group.sample_size(20);
    group.bench_function("compile", |b| {
        b.iter(|| compile(&w.spec()).expect("compiles"));
    });
    group.bench_function("preprocess", |b| {
        b.iter(|| Aggregates::compute(&g, &compiled.preprocess, &spec));
    });
    let device = Device::new(spec.clone());
    group.bench_function("profile", |b| {
        b.iter(|| run_profile(&device, &g, w.bytes_per_weight(&g), 42));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
