//! Table 3 wall-clock bench: profiling and preprocessing overhead.

use flexi_bench::harness::{dataset, device_for, Profile, WeightSetup};
use flexi_bench::microbench::BenchGroup;
use flexi_compiler::{compile, CompileOutcome};
use flexi_core::preprocess::Aggregates;
use flexi_core::profile::run_profile;
use flexi_core::{DynamicWalk, Node2Vec};
use flexi_gpu_sim::Device;

fn main() {
    let p = Profile::test();
    let g = dataset(&p, "EU", WeightSetup::Uniform, false);
    let spec = device_for("EU", &g);
    let w = Node2Vec::paper(true);
    let compiled = match compile(&w.spec()).unwrap() {
        CompileOutcome::Supported(c) => c,
        _ => panic!("node2vec compiles"),
    };
    let mut group = BenchGroup::new("table3").sample_size(20);
    group.bench_function("compile", || {
        compile(&w.spec()).expect("compiles");
    });
    group.bench_function("preprocess", || {
        Aggregates::compute(&g, &compiled.preprocess, &spec);
    });
    let device = Device::new(spec.clone());
    group.bench_function("profile", || {
        run_profile(&device, &g, w.bytes_per_weight(&g), 42);
    });
    group.finish();
}
