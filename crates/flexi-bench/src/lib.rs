//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Two entry points share this library:
//!
//! - the `repro` binary (`cargo run -p flexi-bench --release --bin repro --
//!   <experiment>`) prints each table/figure's rows;
//! - the micro-benches (`cargo bench`, built on [`microbench`]) measure
//!   wall-clock time of the same engine configurations at reduced scale.
//!
//! [`harness`] holds the shared machinery: run profiles, the dataset
//! cache, VRAM/time-budget scaling (so OOM/OOT reproduce at proxy scale),
//! and outcome formatting. [`experiments`] implements one function per
//! paper artifact (`fig3`, `table2`, …) as indexed in `DESIGN.md` §4.
//! [`json`] is the std-only emitter behind the `BENCH_<id>.json` artifact
//! pipeline (`repro --json`, the `bench-gate` CI job).

pub mod experiments;
pub mod harness;
pub mod json;
pub mod microbench;

pub use harness::{Outcome, Profile, RunSummary, Table};
