//! Dependency-free wall-clock micro-benchmark harness.
//!
//! The bench targets in `benches/` are plain binaries (`harness = false`)
//! built on this module: each benchmark runs a warm-up iteration, then a
//! fixed number of timed samples, and prints mean/min/max wall time. The
//! goal is regression visibility (`cargo bench` works offline with no
//! external harness), not statistics-grade measurement.

use std::time::{Duration, Instant};

/// A named group of benchmarks, mirroring the usual group API.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Starts a group; prints its header immediately.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("# bench group: {name}");
        Self { name, samples: 10 }
    }

    /// Sets the number of timed samples per benchmark (default 10).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f`: one untimed warm-up, then `samples` timed runs.
    pub fn bench_function(&mut self, label: impl AsRef<str>, mut f: impl FnMut()) {
        f(); // Warm-up (fills caches, first-touch allocations).
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            f();
            times.push(start.elapsed());
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = times.iter().min().expect("samples >= 1");
        let max = times.iter().max().expect("samples >= 1");
        println!(
            "{}/{:<28} mean {:>10}  min {:>10}  max {:>10}  ({} samples)",
            self.name,
            label.as_ref(),
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            times.len(),
        );
    }

    /// Ends the group.
    pub fn finish(self) {
        println!();
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_warmup_plus_samples() {
        let mut calls = 0usize;
        let mut group = BenchGroup::new("test").sample_size(3);
        group.bench_function("counter", || calls += 1);
        group.finish();
        assert_eq!(calls, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn duration_formatting_covers_magnitudes() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000 s");
    }
}
