//! One function per paper artifact (see `DESIGN.md` §4 for the index).
//!
//! Every function returns printable [`Table`]s whose *shape* — who wins,
//! by roughly what factor, where crossovers fall — mirrors the paper's
//! figure or table. Absolute values are simulated milliseconds at proxy
//! scale, extrapolated to the paper's one-query-per-node convention.

use crate::harness::{
    config_for, dataset, device_for, extrapolate_ms, geomean, queries, run, Outcome, Profile,
    Table, WeightSetup,
};
use flexi_baselines::{
    CSawGpu, CpuSpec, FlowWalkerGpu, KnightKingCpu, NextDoorGpu, SkywalkerGpu, SoWalkerCpu,
    ThunderRwCpu,
};
use flexi_core::energy::energy_of;
use flexi_core::multi_device::MultiDeviceEngine;
use flexi_core::{
    sampler_ids, DynamicWalk, FlexiWalkerEngine, MetaPath, Node2Vec, SecondOrderPr,
    SelectionStrategy, WalkEngine, WalkRequest, WalkState,
};
use flexi_graph::stats::{coefficient_of_variation, histogram};
use flexi_graph::GraphHandle;
use flexi_sampling::kernels::ErvsMode;
use std::sync::Arc;

/// All experiment ids `repro` accepts.
pub const ALL_IDS: [&str; 14] = [
    "fig3", "fig7a", "fig7b", "table2", "fig10", "fig11", "fig12", "fig13", "fig14", "table3",
    "fig15", "fig16", "int8", "ablation",
];

/// Dispatches an experiment by id.
///
/// Returns `None` for unknown ids.
pub fn run_experiment(id: &str, p: &Profile) -> Option<Vec<Table>> {
    Some(match id {
        "fig3" => fig3(p),
        "fig7a" => vec![fig7a(p)],
        "fig7b" => vec![fig7b(p)],
        "table2" => table2(p),
        "fig10" => vec![fig10(p)],
        "fig11" => vec![fig11(p)],
        "fig12" => fig12(p),
        "fig13" => vec![fig13(p)],
        "fig14" => vec![fig14(p)],
        "table3" => vec![table3(p)],
        "fig15" => vec![fig15(p)],
        "fig16" => fig16(p),
        "int8" => vec![int8(p)],
        "ablation" => ablation(p),
        _ => return None,
    })
}

const PARETO_ALPHAS: [f64; 6] = [1.0, 1.5, 2.0, 2.5, 3.0, 4.0];

fn alpha_label(a: f64) -> String {
    format!("a={a}")
}

/// Fig. 3: base sampling methods on (un)weighted Node2Vec, normalised to
/// ITS (C-SAW). Expected shape: ITS/ALS slowest; RJS best unweighted; RVS
/// best weighted.
pub fn fig3(p: &Profile) -> Vec<Table> {
    let datasets_list = ["YT", "CP", "OK", "EU"];
    let mut tables = Vec::new();
    for (weighted, title) in [(false, "unweighted Node2Vec"), (true, "weighted Node2Vec")] {
        let mut t = Table::new(
            "fig3",
            format!("exec time normalised to ITS — {title}"),
            vec![
                "dataset".into(),
                "ITS(C-SAW)".into(),
                "ALS(Skywalker)".into(),
                "RVS(FlowWalker)".into(),
                "RJS(NextDoor)".into(),
            ],
        );
        let w = Node2Vec::paper(weighted);
        let setup = if weighted {
            WeightSetup::Uniform
        } else {
            WeightSetup::Unweighted
        };
        for name in datasets_list {
            let g = dataset(p, name, setup, false);
            let qs = queries(&g, p);
            let mut cfg = config_for(p, name, &g, qs.len());
            cfg.time_budget = f64::MAX; // Fig. 3 reports all methods.
            let spec = device_for(name, &g);
            let g = GraphHandle::new(g);
            let outcomes: Vec<Outcome> = [
                Box::new(CSawGpu::new(spec.clone())) as Box<dyn WalkEngine>,
                Box::new(SkywalkerGpu::new(spec.clone())),
                Box::new(FlowWalkerGpu::new(spec.clone())),
                Box::new(NextDoorGpu::new(spec.clone())),
            ]
            .iter()
            .map(|e| run(e.as_ref(), &g, &w, &qs, &cfg))
            .collect();
            let its = outcomes[0].ms().unwrap_or(f64::NAN);
            let mut row = vec![name.to_string()];
            for o in &outcomes {
                row.push(match o.ms() {
                    Some(ms) => format!("{:.2}", ms / its),
                    None => o.to_string(),
                });
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    tables
}

/// Fig. 7a: eRVS vs eRJS sensitivity to weight skew on EU. Expected
/// shape: eRVS flat; eRJS degrades sharply as α → 1.
pub fn fig7a(p: &Profile) -> Table {
    let mut t = Table::new(
        "fig7a",
        "eRVS/eRJS skew sensitivity, weighted Node2Vec on EU (ms)",
        vec!["distribution".into(), "eRVS".into(), "eRJS".into()],
    );
    let w = Node2Vec::paper(true);
    for alpha in PARETO_ALPHAS {
        let g = dataset(p, "EU", WeightSetup::Pareto(alpha), false);
        let qs = queries(&g, p);
        let mut cfg = config_for(p, "EU", &g, qs.len());
        cfg.time_budget = f64::MAX;
        let spec = device_for("EU", &g);
        let g = GraphHandle::new(g);
        let rvs = FlexiWalkerEngine::with_strategy(spec.clone(), SelectionStrategy::RVS_ONLY);
        let rjs = FlexiWalkerEngine::with_strategy(spec, SelectionStrategy::RJS_ONLY);
        t.push_row(vec![
            alpha_label(alpha),
            run(&rvs, &g, &w, &qs, &cfg).to_string(),
            run(&rjs, &g, &w, &qs, &cfg).to_string(),
        ]);
    }
    t
}

/// Fig. 7b: histogram of per-node coefficient of variation of the edge
/// weight sum across sampling steps (2nd-order PageRank on EU). Expected
/// shape: substantial mass at high CV — runtime weight variation is real.
pub fn fig7b(p: &Profile) -> Table {
    let g = dataset(p, "EU", WeightSetup::Uniform, false);
    let qs = queries(&g, p);
    let w = SecondOrderPr::paper();
    let mut cfg = config_for(p, "EU", &g, qs.len());
    cfg.record_paths = true;
    cfg.time_budget = f64::MAX;
    let engine = FlexiWalkerEngine::new(device_for("EU", &g));
    let report = engine
        .run(&WalkRequest::new(g.clone(), &w, &qs).with_config(cfg))
        .expect("walk succeeds");
    // For every visited (node, prev) instance, record the node's dynamic
    // weight sum; CV per node across instances.
    let mut sums: std::collections::HashMap<u32, Vec<f64>> = std::collections::HashMap::new();
    for path in report.paths.as_ref().expect("recorded") {
        for (step, win) in path.windows(2).enumerate() {
            let st = WalkState {
                cur: win[1],
                prev: Some(win[0]),
                step: step + 1,
                time: 0,
            };
            let total: f64 = g
                .edge_range(st.cur)
                .map(|e| f64::from(w.weight(&g, &st, e)))
                .sum();
            sums.entry(st.cur).or_default().push(total);
        }
    }
    let cvs: Vec<f64> = sums
        .values()
        .filter(|v| v.len() >= 3)
        .filter_map(|v| coefficient_of_variation(v))
        .collect();
    let bins = histogram(&cvs, 0.0, 80.0, 8);
    let mut t = Table::new(
        "fig7b",
        "runtime weight variation: CV histogram (2nd PR on EU)",
        vec!["cv_upper_bound".into(), "node_count".into()],
    );
    for (i, count) in bins.iter().enumerate() {
        t.push_row(vec![format!("{}", (i + 1) * 10), count.to_string()]);
    }
    t
}

/// The Table 2 engine roster, in paper column order.
fn table2_engines(spec: &flexi_gpu_sim::DeviceSpec) -> Vec<Box<dyn WalkEngine>> {
    vec![
        Box::new(SoWalkerCpu::new(CpuSpec::epyc_9124p())),
        Box::new(ThunderRwCpu::new(CpuSpec::epyc_9124p())),
        Box::new(CSawGpu::new(spec.clone())),
        Box::new(NextDoorGpu::new(spec.clone())),
        Box::new(SkywalkerGpu::new(spec.clone())),
        Box::new(FlowWalkerGpu::new(spec.clone())),
        Box::new(FlexiWalkerEngine::new(spec.clone())),
    ]
}

/// Table 2: execution time of every system × workload × dataset under
/// uniform property weights. Expected shape: FlexiWalker wins nearly
/// everywhere; ITS/ALS systems hit OOT on weighted workloads at scale.
pub fn table2(p: &Profile) -> Vec<Table> {
    let workloads: Vec<(&str, Arc<dyn DynamicWalk>, WeightSetup, bool)> = vec![
        (
            "unweighted Node2Vec",
            Arc::new(Node2Vec::paper(false)),
            WeightSetup::Unweighted,
            false,
        ),
        (
            "weighted Node2Vec",
            Arc::new(Node2Vec::paper(true)),
            WeightSetup::Uniform,
            false,
        ),
        (
            "unweighted MetaPath",
            Arc::new(MetaPath::paper(false)),
            WeightSetup::Unweighted,
            true,
        ),
        (
            "weighted MetaPath",
            Arc::new(MetaPath::paper(true)),
            WeightSetup::Uniform,
            true,
        ),
        (
            "2nd-order PageRank",
            Arc::new(SecondOrderPr::paper()),
            WeightSetup::Uniform,
            false,
        ),
    ];
    let mut tables = Vec::new();
    for (title, w, setup, labels) in &workloads {
        let mut t = Table::new(
            "table2",
            format!("execution time (ms), uniform property weights — {title}"),
            vec![
                "dataset".into(),
                "SOWalker".into(),
                "ThunderRW".into(),
                "C-SAW".into(),
                "NextDoor".into(),
                "Skywalker".into(),
                "FlowWalker".into(),
                "FlexiWalker".into(),
            ],
        );
        for ds in flexi_graph::ALL_DATASETS.iter() {
            let g = dataset(p, ds.name, *setup, *labels);
            let qs = queries(&g, p);
            let cfg = config_for(p, ds.name, &g, qs.len());
            let spec = device_for(ds.name, &g);
            let g = GraphHandle::new(g);
            let mut row = vec![ds.name.to_string()];
            for engine in table2_engines(&spec) {
                row.push(run(engine.as_ref(), &g, Arc::clone(w), &qs, &cfg).to_string());
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    tables
}

/// Fig. 10: power-law and degree-based property weights, NextDoor vs
/// FlowWalker vs FlexiWalker. Expected shape: FlexiWalker tracks the
/// better baseline everywhere; NextDoor collapses at low α.
pub fn fig10(p: &Profile) -> Table {
    let mut t = Table::new(
        "fig10",
        "power-law / degree-based weights, weighted Node2Vec (ms)",
        vec![
            "dataset/dist".into(),
            "NextDoor".into(),
            "FlowWalker".into(),
            "FlexiWalker".into(),
        ],
    );
    for name in ["YT", "EU", "SK"] {
        let mut setups: Vec<(String, WeightSetup)> = PARETO_ALPHAS
            .iter()
            .map(|&a| (alpha_label(a), WeightSetup::Pareto(a)))
            .collect();
        setups.push(("degree".into(), WeightSetup::DegreeBased));
        for (label, setup) in setups {
            let g = dataset(p, name, setup, false);
            let qs = queries(&g, p);
            let cfg = config_for(p, name, &g, qs.len());
            let spec = device_for(name, &g);
            let g = GraphHandle::new(g);
            let w = Node2Vec::paper(true);
            t.push_row(vec![
                format!("{name} {label}"),
                run(&NextDoorGpu::new(spec.clone()), &g, &w, &qs, &cfg).to_string(),
                run(&FlowWalkerGpu::new(spec.clone()), &g, &w, &qs, &cfg).to_string(),
                run(&FlexiWalkerEngine::new(spec), &g, &w, &qs, &cfg).to_string(),
            ]);
        }
    }
    t
}

/// Fig. 11: runtime-component ablation. Expected shape: the adaptive
/// engine tracks the better of eRJS-only/eRVS-only across skews; eRJS-only
/// collapses at α = 1.
pub fn fig11(p: &Profile) -> Table {
    let mut t = Table::new(
        "fig11",
        "runtime component ablation, weighted Node2Vec (ms)",
        vec![
            "dataset/dist".into(),
            "FlowWalker".into(),
            "eRVS-only".into(),
            "eRJS-only".into(),
            "FlexiWalker".into(),
        ],
    );
    for name in ["YT", "EU", "SK"] {
        let mut setups: Vec<(String, WeightSetup)> = vec![("uniform".into(), WeightSetup::Uniform)];
        setups.extend(
            PARETO_ALPHAS
                .iter()
                .map(|&a| (alpha_label(a), WeightSetup::Pareto(a))),
        );
        for (label, setup) in setups {
            let g = dataset(p, name, setup, false);
            let qs = queries(&g, p);
            let mut cfg = config_for(p, name, &g, qs.len());
            cfg.time_budget = f64::MAX;
            let spec = device_for(name, &g);
            let g = GraphHandle::new(g);
            let w = Node2Vec::paper(true);
            t.push_row(vec![
                format!("{name} {label}"),
                run(&FlowWalkerGpu::new(spec.clone()), &g, &w, &qs, &cfg).to_string(),
                run(
                    &FlexiWalkerEngine::with_strategy(spec.clone(), SelectionStrategy::RVS_ONLY),
                    &g,
                    &w,
                    &qs,
                    &cfg,
                )
                .to_string(),
                run(
                    &FlexiWalkerEngine::with_strategy(spec.clone(), SelectionStrategy::RJS_ONLY),
                    &g,
                    &w,
                    &qs,
                    &cfg,
                )
                .to_string(),
                run(&FlexiWalkerEngine::new(spec), &g, &w, &qs, &cfg).to_string(),
            ]);
        }
    }
    t
}

/// Fig. 12: kernel-level ablations for (a) eRVS stages and (b) eRJS bound
/// estimation, under uniform and heavily skewed (α = 1) weights.
pub fn fig12(p: &Profile) -> Vec<Table> {
    let datasets_list = ["YT", "EU", "AB", "UK", "SK"];
    let w = Node2Vec::paper(true);
    let mut a = Table::new(
        "fig12",
        "(a) reservoir ablation: exec time normalised to FlowWalker",
        vec![
            "dataset/dist".into(),
            "FlowWalker".into(),
            "+EXP".into(),
            "+JUMP".into(),
        ],
    );
    let mut b = Table::new(
        "fig12",
        "(b) rejection ablation: NextDoor vs +Est.Max (ms)",
        vec![
            "dataset/dist".into(),
            "NextDoor".into(),
            "+Est.Max".into(),
            "speedup".into(),
        ],
    );
    for name in datasets_list {
        for (label, setup) in [
            ("uniform", WeightSetup::Uniform),
            ("a=1", WeightSetup::Pareto(1.0)),
        ] {
            let g = dataset(p, name, setup, false);
            let qs = queries(&g, p);
            let mut cfg = config_for(p, name, &g, qs.len());
            cfg.time_budget = f64::MAX;
            let spec = device_for(name, &g);
            let g = GraphHandle::new(g);

            // (a) FlowWalker → +EXP → +JUMP.
            let fw = run(&FlowWalkerGpu::new(spec.clone()), &g, &w, &qs, &cfg);
            let exp_engine =
                FlexiWalkerEngine::with_strategy(spec.clone(), SelectionStrategy::RVS_ONLY)
                    .with_ervs_mode(ErvsMode::Exp);
            let exp = run(&exp_engine, &g, &w, &qs, &cfg);
            let jump_engine =
                FlexiWalkerEngine::with_strategy(spec.clone(), SelectionStrategy::RVS_ONLY);
            let jump = run(&jump_engine, &g, &w, &qs, &cfg);
            let base = fw.ms().unwrap_or(f64::NAN);
            a.push_row(vec![
                format!("{name} {label}"),
                "1.00".into(),
                exp.ms().map_or("-".into(), |m| format!("{:.2}", m / base)),
                jump.ms().map_or("-".into(), |m| format!("{:.2}", m / base)),
            ]);

            // (b) NextDoor (exact max, transit-scattered) vs eRJS bound.
            let nd = run(&NextDoorGpu::new(spec.clone()), &g, &w, &qs, &cfg);
            let est = run(
                &FlexiWalkerEngine::with_strategy(spec, SelectionStrategy::RJS_ONLY),
                &g,
                &w,
                &qs,
                &cfg,
            );
            let speedup = match (nd.ms(), est.ms()) {
                (Some(x), Some(y)) if y > 0.0 => format!("{:.1}x", x / y),
                _ => "-".into(),
            };
            b.push_row(vec![
                format!("{name} {label}"),
                nd.to_string(),
                est.to_string(),
                speedup,
            ]);
        }
    }
    vec![a, b]
}

/// Fig. 13: sampler-selection strategies (random / degree-based / cost
/// model), speedup normalised to degree-based. Expected shape: cost model
/// ≥ degree-based ≥ random.
pub fn fig13(p: &Profile) -> Table {
    let mut t = Table::new(
        "fig13",
        "selection strategy speedup vs degree-based, weighted Node2Vec",
        vec![
            "dataset".into(),
            "Random".into(),
            "Degree-based".into(),
            "FlexiWalker".into(),
        ],
    );
    let w = Node2Vec::paper(true);
    for ds in flexi_graph::ALL_DATASETS.iter() {
        let g = dataset(p, ds.name, WeightSetup::Uniform, false);
        let qs = queries(&g, p);
        let mut cfg = config_for(p, ds.name, &g, qs.len());
        cfg.time_budget = f64::MAX;
        let spec = device_for(ds.name, &g);
        let g = GraphHandle::new(g);
        let strategies = [
            SelectionStrategy::Random,
            SelectionStrategy::paper_degree_baseline(),
            SelectionStrategy::CostModel,
        ];
        let times: Vec<Option<f64>> = strategies
            .iter()
            .map(|s| {
                run(
                    &FlexiWalkerEngine::with_strategy(spec.clone(), *s),
                    &g,
                    &w,
                    &qs,
                    &cfg,
                )
                .ms()
            })
            .collect();
        let base = times[1].unwrap_or(f64::NAN);
        let mut row = vec![ds.name.to_string()];
        for tm in &times {
            row.push(tm.map_or("-".into(), |m| format!("{:.2}", base / m)));
        }
        t.push_row(row);
    }
    t
}

/// Fig. 14: fraction of steps choosing each kernel across weight skews.
/// Expected shape: eRJS share grows with α (less skew), eRVS dominates at
/// α = 1.
pub fn fig14(p: &Profile) -> Table {
    let mut t = Table::new(
        "fig14",
        "chosen sampling method ratio (% of steps)",
        vec!["dataset/dist".into(), "eRVS %".into(), "eRJS %".into()],
    );
    let w = Node2Vec::paper(true);
    for name in ["YT", "EU", "SK"] {
        for alpha in PARETO_ALPHAS {
            let g = dataset(p, name, WeightSetup::Pareto(alpha), false);
            let qs = queries(&g, p);
            let mut cfg = config_for(p, name, &g, qs.len());
            cfg.time_budget = f64::MAX;
            let engine = FlexiWalkerEngine::new(device_for(name, &g));
            let report = engine
                .run(&WalkRequest::new(g.clone(), &w, &qs).with_config(cfg))
                .expect("run succeeds");
            let rjs = report.sampler_steps.get(sampler_ids::ERJS);
            let rvs = report.sampler_steps.get(sampler_ids::ERVS);
            let total = (rjs + rvs).max(1) as f64;
            t.push_row(vec![
                format!("{name} {}", alpha_label(alpha)),
                format!("{:.1}", rvs as f64 / total * 100.0),
                format!("{:.1}", rjs as f64 / total * 100.0),
            ]);
        }
    }
    t
}

/// Table 3: profiling and preprocessing overhead per dataset. Expected
/// shape: overheads are a small percentage of execution time.
pub fn table3(p: &Profile) -> Table {
    let mut t = Table::new(
        "table3",
        "profile / preprocessing time (ms) and share of exec time",
        vec![
            "dataset".into(),
            "profile".into(),
            "preproc".into(),
            "total".into(),
            "% of exec".into(),
        ],
    );
    let w = Node2Vec::paper(true);
    for ds in flexi_graph::ALL_DATASETS.iter() {
        let g = dataset(p, ds.name, WeightSetup::Uniform, false);
        let qs = queries(&g, p);
        let mut cfg = config_for(p, ds.name, &g, qs.len());
        cfg.time_budget = f64::MAX;
        let engine = FlexiWalkerEngine::new(device_for(ds.name, &g));
        let report = engine
            .run(&WalkRequest::new(g.clone(), &w, &qs).with_config(cfg))
            .expect("run succeeds");
        let profile_ms = report.profile_seconds * 1e3;
        let preproc_ms = report.preprocess_seconds * 1e3;
        let exec_ms = extrapolate_ms(&report, &g, qs.len());
        t.push_row(vec![
            ds.name.to_string(),
            format!("{profile_ms:.3}"),
            format!("{preproc_ms:.3}"),
            format!("{:.3}", profile_ms + preproc_ms),
            format!("{:.2}", (profile_ms + preproc_ms) / exec_ms * 100.0),
        ]);
    }
    t
}

/// Fig. 15: multi-GPU scalability with hash-partitioned queries.
/// Expected shape: near-linear speedup to 4 devices.
pub fn fig15(p: &Profile) -> Table {
    let mut t = Table::new(
        "fig15",
        "multi-GPU speedup vs 1 GPU, weighted Node2Vec",
        vec![
            "dataset".into(),
            "1 GPU".into(),
            "2 GPUs".into(),
            "3 GPUs".into(),
            "4 GPUs".into(),
        ],
    );
    let w = Node2Vec::paper(true);
    for name in ["FS", "EU", "AB", "TW", "SK"] {
        let g = dataset(p, name, WeightSetup::Uniform, false);
        let qs = queries(&g, p);
        let mut cfg = config_for(p, name, &g, qs.len());
        cfg.time_budget = f64::MAX;
        let spec = device_for(name, &g);
        let req = WalkRequest::new(g.clone(), &w, &qs).with_config(cfg);
        let base = MultiDeviceEngine::new(spec.clone(), 1)
            .run(&req)
            .expect("run succeeds")
            .saturated_seconds;
        let mut row = vec![name.to_string()];
        for d in 1..=4usize {
            let secs = MultiDeviceEngine::new(spec.clone(), d)
                .run(&req)
                .expect("run succeeds")
                .saturated_seconds;
            row.push(format!("{:.2}", base / secs));
        }
        t.push_row(row);
    }
    t
}

/// Fig. 16: energy efficiency (joules/query) and peak watts.
/// Expected shape: FlexiWalker lowest J/query; CPU engines lowest watts
/// but far more joules.
pub fn fig16(p: &Profile) -> Vec<Table> {
    let mut tj = Table::new(
        "fig16",
        "energy per query (J/query), weighted Node2Vec",
        vec![
            "dataset".into(),
            "KnightKing".into(),
            "ThunderRW".into(),
            "FlowWalker".into(),
            "FlexiWalker".into(),
        ],
    );
    let mut tw = Table::new(
        "fig16",
        "peak power (W)",
        vec![
            "dataset".into(),
            "KnightKing".into(),
            "ThunderRW".into(),
            "FlowWalker".into(),
            "FlexiWalker".into(),
        ],
    );
    let w = Node2Vec::paper(true);
    for name in ["FS", "AB", "UK", "TW", "SK"] {
        let g = dataset(p, name, WeightSetup::Uniform, false);
        let qs = queries(&g, p);
        let mut cfg = config_for(p, name, &g, qs.len());
        cfg.time_budget = f64::MAX;
        let spec = device_for(name, &g);
        let engines: Vec<Box<dyn WalkEngine>> = vec![
            Box::new(KnightKingCpu::new(CpuSpec::epyc_9124p())),
            Box::new(ThunderRwCpu::new(CpuSpec::epyc_9124p())),
            Box::new(FlowWalkerGpu::new(spec.clone())),
            Box::new(FlexiWalkerEngine::new(spec)),
        ];
        let mut row_j = vec![name.to_string()];
        let mut row_w = vec![name.to_string()];
        for e in &engines {
            match e.run(&WalkRequest::new(g.clone(), &w, &qs).with_config(cfg.clone())) {
                Ok(report) => {
                    let energy = energy_of(&report);
                    row_j.push(format!("{:.3e}", energy.joules_per_query));
                    row_w.push(format!("{:.0}", energy.max_watts));
                }
                Err(_) => {
                    row_j.push("OOT".into());
                    row_w.push("-".into());
                }
            }
        }
        tj.push_row(row_j);
        tw.push_row(row_w);
    }
    vec![tj, tw]
}

/// §7.2: INT8 property weights — FlexiWalker vs FlowWalker with quantised
/// weights. Expected shape: FlexiWalker keeps a large geomean speedup.
pub fn int8(p: &Profile) -> Table {
    let mut t = Table::new(
        "int8",
        "INT8 property weights, weighted Node2Vec (ms)",
        vec![
            "dataset".into(),
            "FlowWalker".into(),
            "FlexiWalker".into(),
            "speedup".into(),
        ],
    );
    let w = Node2Vec::paper(true);
    let mut speedups = Vec::new();
    for ds in flexi_graph::ALL_DATASETS.iter() {
        let g = dataset(p, ds.name, WeightSetup::UniformInt8, false);
        let qs = queries(&g, p);
        let mut cfg = config_for(p, ds.name, &g, qs.len());
        cfg.time_budget = f64::MAX;
        let spec = device_for(ds.name, &g);
        let g = GraphHandle::new(g);
        let fw = run(&FlowWalkerGpu::new(spec.clone()), &g, &w, &qs, &cfg);
        let fx = run(&FlexiWalkerEngine::new(spec), &g, &w, &qs, &cfg);
        let speedup = match (fw.ms(), fx.ms()) {
            (Some(a), Some(b)) if b > 0.0 => {
                speedups.push(a / b);
                format!("{:.2}x", a / b)
            }
            _ => "-".into(),
        };
        t.push_row(vec![
            ds.name.to_string(),
            fw.to_string(),
            fx.to_string(),
            speedup,
        ]);
    }
    if let Some(gm) = geomean(&speedups) {
        t.push_row(vec![
            "geomean".into(),
            String::new(),
            String::new(),
            format!("{gm:.2}x"),
        ]);
    }
    t
}

/// Design-choice ablations beyond the paper's figures (DESIGN.md §6):
/// (a) sensitivity of the adaptive engine to the profiled cost ratio —
/// how wrong can the profile be before selection quality degrades; and
/// (b) profiling on/off — what the §5.1 kernels actually buy.
pub fn ablation(p: &Profile) -> Vec<Table> {
    let w = Node2Vec::paper(true);

    // (a) Cost-ratio sweep on EU, uniform + skewed weights.
    let mut a = Table::new(
        "ablation",
        "(a) cost-model ratio sensitivity on EU (ms; profiled value marked)",
        vec!["ratio".into(), "uniform".into(), "a=1.5".into()],
    );
    let profiled = {
        let g = dataset(p, "EU", WeightSetup::Uniform, false);
        let device = flexi_gpu_sim::Device::new(device_for("EU", &g));
        flexi_core::profile::run_profile(&device, &g, w.bytes_per_weight(&g), p.seed)
            .edge_cost_ratio
    };
    for ratio in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let mut row = vec![if (ratio / profiled).max(profiled / ratio) < 1.5 {
            format!("{ratio} (~profiled)")
        } else {
            format!("{ratio}")
        }];
        for setup in [WeightSetup::Uniform, WeightSetup::Pareto(1.5)] {
            let g = dataset(p, "EU", setup, false);
            let qs = queries(&g, p);
            let mut cfg = config_for(p, "EU", &g, qs.len());
            cfg.time_budget = f64::MAX;
            let mut engine = FlexiWalkerEngine::new(device_for("EU", &g));
            engine.skip_profile = true;
            let g = GraphHandle::new(g);
            // Force the swept ratio by bypassing profiling: strategy stays
            // CostModel with the default ratio replaced through a custom
            // engine run per ratio.
            let out = run_with_ratio(&engine, ratio, &g, &w, &qs, &cfg);
            row.push(out.to_string());
        }
        a.push_row(row);
    }

    // (b) Profiling on/off across three datasets.
    let mut b = Table::new(
        "ablation",
        "(b) profiling kernels on/off (ms)",
        vec!["dataset".into(), "profiled".into(), "default ratio".into()],
    );
    for name in ["YT", "EU", "SK"] {
        let g = dataset(p, name, WeightSetup::Uniform, false);
        let qs = queries(&g, p);
        let mut cfg = config_for(p, name, &g, qs.len());
        cfg.time_budget = f64::MAX;
        let on = FlexiWalkerEngine::new(device_for(name, &g));
        let mut off = FlexiWalkerEngine::new(device_for(name, &g));
        off.skip_profile = true;
        let g = GraphHandle::new(g);
        b.push_row(vec![
            name.to_string(),
            run(&on, &g, &w, &qs, &cfg).to_string(),
            run(&off, &g, &w, &qs, &cfg).to_string(),
        ]);
    }
    vec![a, b]
}

/// Runs the engine with Eq. 11's ratio pinned to `ratio`.
fn run_with_ratio(
    engine: &FlexiWalkerEngine,
    ratio: f64,
    g: &GraphHandle,
    w: impl flexi_core::IntoWalker,
    qs: &[flexi_graph::NodeId],
    cfg: &flexi_core::WalkConfig,
) -> Outcome {
    let mut pinned = engine.clone();
    pinned.cost_ratio_override = Some(ratio);
    run(&pinned, g, w, qs, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_shows_ervs_flat_and_erjs_skew_sensitive() {
        let p = Profile::test();
        let t = fig7a(&p);
        assert_eq!(t.rows.len(), PARETO_ALPHAS.len());
        // eRJS at α=1 must be slower than eRJS at α=4.
        let rjs_skewed = t.cell_f64(0, 2).expect("time");
        let rjs_flat = t.cell_f64(t.rows.len() - 1, 2).expect("time");
        assert!(
            rjs_skewed > rjs_flat,
            "eRJS should degrade with skew: α=1 {rjs_skewed} vs α=4 {rjs_flat}"
        );
    }

    #[test]
    fn fig14_erjs_share_grows_with_alpha() {
        let p = Profile::test();
        let t = fig14(&p);
        // First 6 rows are YT across α = 1..4: eRJS% should not decrease
        // dramatically; compare α=1 vs α=4.
        let rjs_at_1 = t.cell_f64(0, 2).unwrap();
        let rjs_at_4 = t.cell_f64(5, 2).unwrap();
        assert!(
            rjs_at_4 >= rjs_at_1,
            "eRJS share should grow with α: {rjs_at_1} -> {rjs_at_4}"
        );
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("fig99", &Profile::test()).is_none());
    }
}
