//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--full] [--quick] [--shrink N] [--queries N]
//! repro all [--full]
//! repro list
//! ```

use flexi_bench::experiments::{run_experiment, ALL_IDS};
use flexi_bench::Profile;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let mut profile = Profile::quick();
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => profile = Profile::full(),
            "--quick" => profile = Profile::quick(),
            "--shrink" => {
                i += 1;
                profile.shrink = parse_num(&args, i, "--shrink");
            }
            "--queries" => {
                i += 1;
                profile.query_budget = parse_num(&args, i, "--queries");
            }
            "--steps" => {
                i += 1;
                profile.steps = parse_num(&args, i, "--steps");
            }
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                print_usage();
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    ids.dedup();
    println!(
        "# FlexiWalker reproduction (shrink {}, {} queries, {} steps, {} host threads)\n",
        profile.shrink, profile.query_budget, profile.steps, profile.host_threads
    );
    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, &profile) {
            Some(tables) => {
                for t in tables {
                    println!("{}", t.render());
                }
                println!(
                    "({id} regenerated in {:.1}s wall time)\n",
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("unknown experiment {id:?}; `repro list` shows valid ids");
                std::process::exit(2);
            }
        }
    }
}

fn parse_num<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a numeric argument");
        std::process::exit(2);
    })
}

fn print_usage() {
    eprintln!(
        "usage: repro <experiment>... [--full|--quick] [--shrink N] [--queries N] [--steps N]\n\
         experiments: {} | all | list",
        ALL_IDS.join(" | ")
    );
}
