//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--full] [--quick] [--shrink N] [--queries N] [--json DIR]
//! repro all [--full]
//! repro list
//! ```
//!
//! With `--json DIR`, every experiment additionally writes a
//! machine-readable `DIR/BENCH_<experiment>.json` artifact: the tables as
//! structured rows plus a throughput / kernel-time / sampler-tally summary
//! probe — the format CI uploads and the bench trajectory is built from.

use flexi_bench::experiments::{run_experiment, ALL_IDS};
use flexi_bench::json::Json;
use flexi_bench::{Profile, RunSummary, Table};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let mut profile = Profile::quick();
    let mut ids: Vec<String> = Vec::new();
    let mut json_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => profile = Profile::full(),
            "--quick" => profile = Profile::quick(),
            "--shrink" => {
                i += 1;
                profile.shrink = parse_num(&args, i, "--shrink");
            }
            "--queries" => {
                i += 1;
                profile.query_budget = parse_num(&args, i, "--queries");
            }
            "--steps" => {
                i += 1;
                profile.steps = parse_num(&args, i, "--steps");
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => json_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--json requires a directory argument");
                        std::process::exit(2);
                    }
                }
            }
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                print_usage();
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    ids.dedup();
    println!(
        "# FlexiWalker reproduction (shrink {}, {} queries, {} steps, {} host threads)\n",
        profile.shrink, profile.query_budget, profile.steps, profile.host_threads
    );
    // Validate ids up front: the summary probe below is a real walk run,
    // too expensive to spend on a typo.
    if let Some(bad) = ids.iter().find(|id| !ALL_IDS.contains(&id.as_str())) {
        eprintln!("unknown experiment {bad:?}; `repro list` shows valid ids");
        std::process::exit(2);
    }
    // One summary probe shared by every artifact of this invocation.
    let summary = json_dir.as_ref().map(|dir| {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --json directory {}: {e}", dir.display());
            std::process::exit(2);
        }
        RunSummary::probe(&profile)
    });
    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, &profile) {
            Some(tables) => {
                for t in &tables {
                    println!("{}", t.render());
                }
                let wall = start.elapsed().as_secs_f64();
                println!("({id} regenerated in {wall:.1}s wall time)\n");
                if let (Some(dir), Some(summary)) = (&json_dir, &summary) {
                    write_artifact(dir, id, &profile, wall, summary, &tables);
                }
            }
            None => {
                eprintln!("unknown experiment {id:?}; `repro list` shows valid ids");
                std::process::exit(2);
            }
        }
    }
}

/// Writes `DIR/BENCH_<id>.json` for one regenerated experiment.
fn write_artifact(
    dir: &Path,
    id: &str,
    profile: &Profile,
    wall_seconds: f64,
    summary: &RunSummary,
    tables: &[Table],
) {
    let doc = Json::obj([
        ("experiment", Json::from(id)),
        (
            "profile",
            Json::obj([
                ("shrink", Json::from(u64::from(profile.shrink))),
                ("query_budget", Json::from(profile.query_budget)),
                ("steps", Json::from(profile.steps)),
                ("host_threads", Json::from(profile.host_threads)),
                ("seed", Json::from(profile.seed)),
            ]),
        ),
        ("wall_seconds", Json::from(wall_seconds)),
        ("summary", summary.to_json()),
        ("tables", Json::arr(tables.iter().map(Table::to_json))),
    ]);
    let path = dir.join(format!("BENCH_{id}.json"));
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("(artifact written to {})\n", path.display());
}

fn parse_num<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a numeric argument");
        std::process::exit(2);
    })
}

fn print_usage() {
    eprintln!(
        "usage: repro <experiment>... [--full|--quick] [--shrink N] [--queries N] [--steps N] \
         [--json DIR]\n\
         experiments: {} | all | list",
        ALL_IDS.join(" | ")
    );
}
