//! Shared machinery for the reproduction experiments.

use crate::json::Json;
use flexi_core::{
    block_schedule, BlockStats, DiskSpec, EngineError, FlexiWalkerEngine, IntoWalker,
    LatencyHistogram, Node2Vec, RunReport, SamplerTally, StageTiming, WalkConfig, WalkEngine,
    WalkRequest,
};
use flexi_gpu_sim::DeviceSpec;
use flexi_graph::{datasets, props, Csr, GraphHandle, NodeId, WeightModel};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Experiment scale knobs.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Dataset shrink (powers of two below the registered proxy size).
    pub shrink: u32,
    /// Maximum walk queries per run (results are extrapolated to the
    /// paper's one-query-per-node convention).
    pub query_budget: usize,
    /// Walk steps (the paper uses 80).
    pub steps: usize,
    /// Host threads for warp execution.
    pub host_threads: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Profile {
    /// Fast profile used by `repro` by default (~minutes for everything).
    pub fn quick() -> Self {
        Self {
            shrink: 4,
            query_budget: 256,
            steps: 80,
            host_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            seed: 0xF1E7,
        }
    }

    /// Full proxy scale (`repro --full`).
    pub fn full() -> Self {
        Self {
            shrink: 0,
            query_budget: 1024,
            ..Self::quick()
        }
    }

    /// Tiny profile for unit tests of the harness itself.
    pub fn test() -> Self {
        Self {
            shrink: 6,
            query_budget: 64,
            steps: 10,
            host_threads: 1,
            seed: 7,
        }
    }
}

/// Result of one engine × dataset × workload cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Outcome {
    /// Extrapolated full-query-set execution time in milliseconds.
    Millis(f64),
    /// Device memory exhausted.
    Oom,
    /// Exceeded the (scaled) 12-hour budget.
    Oot,
    /// The engine cannot run this workload.
    Unsupported,
}

impl Outcome {
    /// The time in ms, if the run completed.
    pub fn ms(&self) -> Option<f64> {
        match self {
            Self::Millis(v) => Some(*v),
            _ => None,
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Millis(v) => {
                if *v >= 100.0 {
                    write!(f, "{v:.0}")
                } else if *v >= 1.0 {
                    write!(f, "{v:.2}")
                } else {
                    write!(f, "{v:.4}")
                }
            }
            Self::Oom => write!(f, "OOM"),
            Self::Oot => write!(f, "OOT"),
            Self::Unsupported => write!(f, "-"),
        }
    }
}

/// A printable result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id (`fig3`, `table2`, …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Column headers (first column is the row label).
    pub header: Vec<String>,
    /// Rows: label + cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, header: Vec<String>) -> Self {
        Self {
            id,
            title: title.into(),
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Parses a numeric cell back out (for assertions in tests).
    pub fn cell_f64(&self, row: usize, col: usize) -> Option<f64> {
        self.rows.get(row)?.get(col)?.parse().ok()
    }

    /// The table as a JSON value (for the `BENCH_<id>.json` artifacts).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(self.id)),
            ("title", Json::from(self.title.clone())),
            (
                "header",
                Json::arr(self.header.iter().map(|h| Json::from(h.clone()))),
            ),
            (
                "rows",
                Json::arr(self.rows.iter().map(|row| {
                    Json::arr(row.iter().map(|cell| match cell.parse::<f64>() {
                        // Numeric cells round-trip as numbers so consumers
                        // need no re-parsing; OOM/OOT/labels stay strings.
                        Ok(v) if v.is_finite() => Json::Num(v),
                        _ => Json::from(cell.clone()),
                    }))
                })),
            ),
        ])
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("## {} — {}\n", self.id, self.title);
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<width$}  ", width = widths[0]));
                } else {
                    line.push_str(&format!("{cell:>width$}  ", width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// How a dataset's edge properties are initialised for an experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightSetup {
    /// `h ≡ 1` (unweighted workloads).
    Unweighted,
    /// `h ~ U[1, 5)` (the paper's default weighted setting).
    Uniform,
    /// `h ~ 1 + pareto(α)`.
    Pareto(f64),
    /// `h(v, u) = d(u)`.
    DegreeBased,
    /// Uniform weights quantised to INT8 (§7.2).
    UniformInt8,
}

// Topology cache: generation is the expensive part; weights are re-applied
// per request.
type TopologyCache = HashMap<(String, u32), Arc<Csr>>;
static TOPOLOGY_CACHE: Mutex<Option<TopologyCache>> = Mutex::new(None);

fn base_topology(name: &str, shrink: u32, seed: u64) -> Arc<Csr> {
    let mut guard = TOPOLOGY_CACHE.lock().expect("topology cache lock");
    let cache = guard.get_or_insert_with(HashMap::new);
    let key = (name.to_string(), shrink);
    if let Some(g) = cache.get(&key) {
        return Arc::clone(g);
    }
    let spec = datasets::proxy(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
    let g = Arc::new(spec.build_scaled(shrink, seed));
    cache.insert(key, Arc::clone(&g));
    g
}

/// Materialises a dataset proxy with the requested weights and labels.
pub fn dataset(p: &Profile, name: &str, weights: WeightSetup, labels: bool) -> Csr {
    let base = base_topology(name, p.shrink, p.seed);
    let g = (*base).clone();
    let g = match weights {
        WeightSetup::Unweighted => WeightModel::Unweighted.apply(g, p.seed),
        WeightSetup::Uniform => WeightModel::UniformReal.apply(g, p.seed),
        WeightSetup::Pareto(alpha) => WeightModel::Pareto { alpha }.apply(g, p.seed),
        WeightSetup::DegreeBased => WeightModel::DegreeBased.apply(g, p.seed),
        WeightSetup::UniformInt8 => {
            let g = WeightModel::UniformReal.apply(g, p.seed);
            let q = g.props().quantize_int8();
            g.with_props(q).expect("same length")
        }
    };
    if labels {
        props::assign_uniform_labels(g, 5, p.seed)
    } else {
        g
    }
}

/// Deterministic stride-sample of walk queries across the node id space.
pub fn queries(g: &Csr, p: &Profile) -> Vec<NodeId> {
    let n = g.num_nodes();
    let budget = p.query_budget.min(n.max(1));
    let stride = (n / budget.max(1)).max(1);
    (0..n)
        .step_by(stride)
        .take(budget)
        .map(|v| v as NodeId)
        .collect()
}

/// Scale factor between the proxy and the original dataset.
fn scale_ratio(name: &str, g: &Csr) -> f64 {
    let spec = datasets::proxy(name).expect("known dataset");
    (g.num_edges() as f64 / spec.orig_edges_count as f64).min(1.0)
}

/// Device for a dataset run: A6000 with VRAM scaled by the proxy ratio so
/// memory pressure reproduces at proxy scale.
pub fn device_for(name: &str, g: &Csr) -> DeviceSpec {
    let mut spec = DeviceSpec::a6000();
    let ratio = scale_ratio(name, g);
    spec.vram_bytes = ((spec.vram_bytes as f64) * ratio).max(1024.0) as usize;
    spec
}

/// Walk configuration for a dataset run, including the scaled OOT budget.
pub fn config_for(p: &Profile, name: &str, g: &Csr, queries_len: usize) -> WalkConfig {
    let ratio = scale_ratio(name, g);
    // 12 h at real scale, shrunk by the proxy ratio and by the fraction of
    // nodes actually queried (results are extrapolated back).
    let budget = 12.0 * 3600.0 * ratio * (queries_len as f64 / g.num_nodes().max(1) as f64);
    WalkConfig {
        steps: p.steps,
        record_paths: false,
        time_budget: budget.max(1e-6),
        host_threads: p.host_threads,
        seed: p.seed,
    }
}

/// Runs an engine and converts the result into an extrapolated [`Outcome`].
///
/// The paper launches one query per node; we run `queries.len()` of them
/// and scale the simulated time linearly (walks are query-parallel).
pub fn run(
    engine: &dyn WalkEngine,
    g: &GraphHandle,
    w: impl IntoWalker,
    qs: &[NodeId],
    cfg: &WalkConfig,
) -> Outcome {
    match engine.run(&WalkRequest::new(g, w, qs).with_config(cfg.clone())) {
        Ok(report) => Outcome::Millis(extrapolate_ms(&report, &g.graph(), qs.len())),
        Err(EngineError::OutOfMemory { .. }) => Outcome::Oom,
        Err(EngineError::OutOfTime { .. }) => Outcome::Oot,
        Err(
            EngineError::Unsupported(_)
            | EngineError::UnknownWalker { .. }
            | EngineError::WalkerCompile { .. }
            | EngineError::Io(_),
        ) => Outcome::Unsupported,
    }
}

/// Extrapolates a run's simulated time to the full one-query-per-node set.
pub fn extrapolate_ms(report: &RunReport, g: &Csr, queries_run: usize) -> f64 {
    let factor = g.num_nodes().max(1) as f64 / queries_run.max(1) as f64;
    // Extrapolate from the saturated-device time: at paper scale (one
    // query per node) every launch fills the device, so the makespan of an
    // underfilled proxy launch would overstate the full run.
    report.saturated_seconds * factor * 1e3
}

/// Machine-readable summary of one representative FlexiWalker run at the
/// given profile — the throughput / kernel-time / sampler-tally block
/// `repro --json` records in every `BENCH_<id>.json` artifact so the
/// bench trajectory has comparable scalars even for table-shaped
/// experiments.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Dataset the probe ran on.
    pub dataset: &'static str,
    /// Walk queries executed.
    pub queries: usize,
    /// Steps per walk.
    pub steps: usize,
    /// Host wall time of the probe run in seconds.
    pub wall_seconds: f64,
    /// Queries per wall second.
    pub throughput_qps: f64,
    /// Simulated kernel time of the main walk in seconds.
    pub kernel_seconds: f64,
    /// Sampling steps per strategy, keyed by sampler id.
    pub sampler_steps: Vec<(String, u64)>,
    /// Per-request wall-time distribution of the probe's chunked launches
    /// (p50/p95/p99 — the same schema the serve bench gates on).
    pub latency: LatencyHistogram,
    /// Out-of-core accounting of one recorded chunk replayed through a
    /// spilled block store bounded at a quarter of the graph — the
    /// `block_loads`/`block_hits`/`block_evictions` scalars the bench
    /// trajectory tracks alongside throughput.
    pub blocks: BlockStats,
    /// Host wall seconds per probe stage — prepare (dataset + engine
    /// setup), launch (the chunked walk loop) and replay (the block
    /// probe) — in the same [`StageTiming`] schema the session drains
    /// report, so every `repro --json` artifact carries the per-stage
    /// block. The probe is single-threaded, so its merge tail equals its
    /// replay time; the pipeline-overlap evidence comes from the
    /// session-driven drain benches.
    pub stages: StageTiming,
}

/// Request chunks the probe splits its query set into — each chunk's wall
/// time is one latency sample.
const PROBE_CHUNKS: usize = 8;

impl RunSummary {
    /// Runs the probe: weighted Node2Vec on the YT proxy under `p`.
    ///
    /// The query set is served as eight separate request chunks with
    /// advancing [`WalkRequest::query_offset`]s: per-query Philox streams
    /// make the chunked walks bit-identical to one monolithic launch,
    /// while each chunk's wall time becomes one sample of the latency
    /// distribution.
    pub fn probe(p: &Profile) -> Self {
        let probe_start = Instant::now();
        let name = "YT";
        let g = dataset(p, name, WeightSetup::Uniform, false);
        let qs = queries(&g, p);
        let mut cfg = config_for(p, name, &g, qs.len());
        cfg.time_budget = f64::MAX;
        let engine = FlexiWalkerEngine::new(device_for(name, &g));
        let g = GraphHandle::new(g);
        let walker = Node2Vec::paper(true);
        let prepare_seconds = probe_start.elapsed().as_secs_f64();
        let chunk_len = qs.len().div_ceil(PROBE_CHUNKS).max(1);
        let mut latency = LatencyHistogram::new();
        let mut kernel_seconds = 0.0;
        let mut tally = SamplerTally::new();
        let mut offset = 0u64;
        let start = Instant::now();
        for chunk in qs.chunks(chunk_len) {
            let req = WalkRequest::new(&g, &walker, chunk)
                .with_config(cfg.clone())
                .query_offset(offset);
            let launched = Instant::now();
            let report = engine.run(&req).expect("probe run succeeds");
            latency.record_seconds(launched.elapsed().as_secs_f64());
            kernel_seconds += report.sim_seconds;
            tally.merge(&report.sampler_steps);
            offset += chunk.len() as u64;
        }
        let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
        // Out-of-core probe: replay one recorded chunk through a spilled
        // block store whose resident budget admits a quarter of the
        // graph, so every artifact carries comparable block-cache
        // scalars.
        let mut oc_cfg = cfg.clone();
        oc_cfg.record_paths = true;
        let chunk = &qs[..chunk_len.min(qs.len())];
        let report = engine
            .run(&WalkRequest::new(&g, &walker, chunk).with_config(oc_cfg))
            .expect("block probe run succeeds");
        let paths = report.paths.expect("block probe records paths");
        let csr = g.graph();
        let budget = (csr.memory_bytes() / 4).max(1);
        let replay_start = Instant::now();
        let rt = flexi_graph::BlockRuntime::build(&csr, (budget / 4).max(1), budget)
            .expect("block probe spill succeeds");
        let blocks =
            block_schedule(&paths, &rt, &DiskSpec::nvme()).expect("block probe replay succeeds");
        let replay_seconds = replay_start.elapsed().as_secs_f64();
        let stages = StageTiming {
            prepare_seconds,
            launch_seconds: wall_seconds,
            merge_seconds: 0.0,
            replay_seconds,
            // Single-threaded probe: the replay runs after the last
            // launch, so none of it is hidden.
            merge_tail_seconds: replay_seconds,
            wall_seconds: probe_start.elapsed().as_secs_f64(),
        };
        Self {
            dataset: name,
            queries: qs.len(),
            steps: p.steps,
            wall_seconds,
            throughput_qps: qs.len() as f64 / wall_seconds,
            kernel_seconds,
            sampler_steps: tally.iter().map(|(id, n)| (id.to_string(), n)).collect(),
            latency,
            blocks,
            stages,
        }
    }

    /// The summary as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", Json::from(self.dataset)),
            ("queries", Json::from(self.queries)),
            ("steps", Json::from(self.steps)),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("throughput_qps", Json::from(self.throughput_qps)),
            ("kernel_seconds", Json::from(self.kernel_seconds)),
            (
                "sampler_steps",
                Json::obj(
                    self.sampler_steps
                        .iter()
                        .map(|(id, n)| (id.clone(), Json::from(*n))),
                ),
            ),
            ("latency", crate::json::latency_obj(&self.latency)),
            ("stages", crate::json::stages_obj(&self.stages)),
            (
                "blocks",
                Json::obj([
                    ("count", Json::from(self.blocks.blocks)),
                    ("block_loads", Json::from(self.blocks.loads)),
                    ("block_hits", Json::from(self.blocks.hits)),
                    ("block_evictions", Json::from(self.blocks.evictions)),
                    ("hit_rate", Json::from(self.blocks.hit_rate())),
                    ("io_seconds", Json::from(self.blocks.io_seconds)),
                ]),
            ),
        ])
    }
}

/// Geometric mean of positive values; `None` if empty.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexi_core::{FlexiWalkerEngine, Node2Vec};

    #[test]
    fn dataset_cache_returns_consistent_topology() {
        let p = Profile::test();
        let a = dataset(&p, "YT", WeightSetup::Uniform, false);
        let b = dataset(&p, "YT", WeightSetup::Pareto(2.0), false);
        assert_eq!(a.col_idx(), b.col_idx());
        assert_ne!(
            (0..a.num_edges()).map(|e| a.prop(e)).collect::<Vec<_>>(),
            (0..b.num_edges()).map(|e| b.prop(e)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn weight_setups_produce_expected_props() {
        let p = Profile::test();
        let unweighted = dataset(&p, "YT", WeightSetup::Unweighted, false);
        assert!(!unweighted.is_weighted());
        let int8 = dataset(&p, "YT", WeightSetup::UniformInt8, false);
        assert_eq!(int8.props().bytes_per_weight(), 1);
        let labeled = dataset(&p, "YT", WeightSetup::Uniform, true);
        assert!(labeled.has_labels());
    }

    #[test]
    fn queries_are_bounded_and_deterministic() {
        let p = Profile::test();
        let g = dataset(&p, "CP", WeightSetup::Uniform, false);
        let q1 = queries(&g, &p);
        let q2 = queries(&g, &p);
        assert_eq!(q1, q2);
        assert!(q1.len() <= p.query_budget);
        assert!(!q1.is_empty());
    }

    #[test]
    fn vram_scaling_shrinks_with_dataset() {
        let p = Profile::test();
        let g = dataset(&p, "SK", WeightSetup::Uniform, false);
        let spec = device_for("SK", &g);
        assert!(spec.vram_bytes < DeviceSpec::a6000().vram_bytes / 100);
        // The graph itself must still fit.
        assert!(spec.vram_bytes > g.memory_bytes());
    }

    #[test]
    fn run_produces_time_for_flexiwalker() {
        let p = Profile::test();
        let g = dataset(&p, "YT", WeightSetup::Uniform, false);
        let qs = queries(&g, &p);
        let cfg = config_for(&p, "YT", &g, qs.len());
        let engine = FlexiWalkerEngine::new(device_for("YT", &g));
        let g = GraphHandle::new(g);
        let out = run(&engine, &g, &Node2Vec::paper(true), &qs, &cfg);
        assert!(out.ms().expect("completed") > 0.0, "{out}");
    }

    #[test]
    fn table_renders_and_parses() {
        let mut t = Table::new("t", "demo", vec!["ds".into(), "a".into(), "b".into()]);
        t.push_row(vec!["YT".into(), "1.25".into(), "OOM".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("OOM"));
        assert_eq!(t.cell_f64(0, 1), Some(1.25));
        assert_eq!(t.cell_f64(0, 2), None);
    }

    #[test]
    fn table_to_json_keeps_numbers_and_labels() {
        let mut t = Table::new("t", "demo", vec!["ds".into(), "a".into(), "b".into()]);
        t.push_row(vec!["YT".into(), "1.25".into(), "OOM".into()]);
        let s = t.to_json().render();
        assert!(s.contains("\"id\": \"t\""));
        assert!(s.contains("1.25"));
        assert!(s.contains("\"OOM\""));
        assert!(s.contains("\"YT\""));
    }

    #[test]
    fn run_summary_probe_reports_throughput_and_tallies() {
        let p = Profile::test();
        let s = RunSummary::probe(&p);
        assert!(s.throughput_qps > 0.0);
        assert!(s.kernel_seconds > 0.0);
        assert!(s.queries > 0);
        assert!(!s.sampler_steps.is_empty());
        assert!((1..=PROBE_CHUNKS as u64).contains(&s.latency.count()));
        assert!(s.latency.p99() >= s.latency.p50());
        let doc = s.to_json().render();
        assert!(crate::json::extract_number(&doc, "throughput_qps").unwrap() > 0.0);
        assert!(crate::json::extract_number(&doc, "p99_ms").unwrap() > 0.0);
        assert_eq!(
            crate::json::extract_number(&doc, "count"),
            Some(s.latency.count() as f64)
        );
        // The per-stage block rides every artifact: the probe's launch
        // loop dominates its stage wall time, and the single-threaded
        // replay is entirely unhidden tail.
        assert!(crate::json::extract_number(&doc, "launch_seconds").unwrap() > 0.0);
        assert!(
            crate::json::extract_number(&doc, "stage_wall_seconds").unwrap()
                >= crate::json::extract_number(&doc, "launch_seconds").unwrap()
        );
        assert_eq!(s.stages.merge_tail_seconds, s.stages.replay_seconds);
    }

    #[test]
    fn geomean_math() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_none());
    }

    #[test]
    fn outcome_formatting() {
        assert_eq!(Outcome::Millis(1234.6).to_string(), "1235");
        assert_eq!(Outcome::Millis(12.345).to_string(), "12.35");
        assert_eq!(Outcome::Millis(0.5).to_string(), "0.5000");
        assert_eq!(Outcome::Oom.to_string(), "OOM");
        assert_eq!(Outcome::Oot.to_string(), "OOT");
        assert_eq!(Outcome::Unsupported.to_string(), "-");
    }
}
