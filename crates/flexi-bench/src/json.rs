//! Minimal, dependency-free JSON emission (and just enough extraction to
//! gate benches against a checked-in baseline).
//!
//! The bench pipeline writes `BENCH_<id>.json` artifacts — machine-readable
//! mirrors of the repro tables plus throughput / kernel-time / sampler-tally
//! summaries — that CI uploads and the `bench-gate` job compares against
//! baselines in `benches/baselines/`. The workspace is offline and std-only,
//! so instead of serde this module provides a tiny value tree with a stable
//! renderer, and [`extract_number`] for reading one numeric field back out
//! of a baseline file.

use flexi_core::{LatencyHistogram, StageTiming};
use std::fmt::Write as _;

/// A JSON value tree. Object member order is preserved as inserted, so
/// rendered artifacts diff cleanly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Self {
        Json::Arr(values.into_iter().collect())
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The canonical latency block every bench artifact embeds — p50/p95/p99
/// milliseconds plus mean, max and sample count — so the serve bench, the
/// drain benches and `repro --json` summaries all emit one comparable
/// schema.
pub fn latency_obj(hist: &LatencyHistogram) -> Json {
    Json::obj([
        ("count", Json::from(hist.count())),
        ("p50_ms", Json::from(hist.p50() * 1e3)),
        ("p95_ms", Json::from(hist.p95() * 1e3)),
        ("p99_ms", Json::from(hist.p99() * 1e3)),
        ("mean_ms", Json::from(hist.mean() * 1e3)),
        ("max_ms", Json::from(hist.max() * 1e3)),
    ])
}

/// The canonical per-stage timing block — prepare/launch/merge/replay
/// busy seconds, the unhidden merge tail, the execute-phase wall time and
/// the derived overlap fraction — shared by every `repro --json` artifact
/// and the drain benches, so the pipeline gate can read one schema.
pub fn stages_obj(stages: &StageTiming) -> Json {
    Json::obj([
        ("prepare_seconds", Json::from(stages.prepare_seconds)),
        ("launch_seconds", Json::from(stages.launch_seconds)),
        ("merge_seconds", Json::from(stages.merge_seconds)),
        ("replay_seconds", Json::from(stages.replay_seconds)),
        ("merge_tail_seconds", Json::from(stages.merge_tail_seconds)),
        ("stage_wall_seconds", Json::from(stages.wall_seconds)),
        ("overlap_fraction", Json::from(stages.overlap_fraction())),
    ])
}

/// Extracts the first number stored under `"key":` in a JSON document.
///
/// This is deliberately not a parser: the bench gate only needs to read a
/// handful of scalar fields back out of artifacts this module produced.
/// Keys nested under different objects are not disambiguated — gate
/// baselines keep their gated scalars at unique keys.
pub fn extract_number(src: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = src.find(&needle)? + needle.len();
    let rest = src[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let doc = Json::obj([
            ("name", Json::from("parallel_drain")),
            ("ok", Json::from(true)),
            ("speedup", Json::from(2.5)),
            ("tags", Json::arr([Json::from("a"), Json::Null])),
            ("empty", Json::obj::<String>([])),
        ]);
        let s = doc.render();
        assert!(s.contains("\"name\": \"parallel_drain\""));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"speedup\": 2.5"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::from("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn latency_obj_emits_the_shared_schema() {
        let mut h = LatencyHistogram::new();
        for us in [100u64, 200, 400, 120_000] {
            h.record_seconds(us as f64 * 1e-6);
        }
        let doc = latency_obj(&h).render();
        assert_eq!(extract_number(&doc, "count"), Some(4.0));
        let p50 = extract_number(&doc, "p50_ms").unwrap();
        let p99 = extract_number(&doc, "p99_ms").unwrap();
        assert!(p50 > 0.0 && p99 >= p50);
        assert!(extract_number(&doc, "max_ms").unwrap() >= 120.0);
    }

    #[test]
    fn stages_obj_emits_the_shared_schema() {
        let stages = StageTiming {
            prepare_seconds: 0.5,
            launch_seconds: 2.0,
            merge_seconds: 0.75,
            replay_seconds: 0.25,
            merge_tail_seconds: 0.25,
            wall_seconds: 2.25,
        };
        let doc = stages_obj(&stages).render();
        assert_eq!(extract_number(&doc, "prepare_seconds"), Some(0.5));
        assert_eq!(extract_number(&doc, "launch_seconds"), Some(2.0));
        assert_eq!(extract_number(&doc, "merge_seconds"), Some(0.75));
        assert_eq!(extract_number(&doc, "replay_seconds"), Some(0.25));
        assert_eq!(extract_number(&doc, "merge_tail_seconds"), Some(0.25));
        assert_eq!(extract_number(&doc, "stage_wall_seconds"), Some(2.25));
        assert_eq!(extract_number(&doc, "overlap_fraction"), Some(0.75));
    }

    #[test]
    fn extracts_numbers_back_out() {
        let doc = Json::obj([
            ("throughput_qps", Json::from(1234.5)),
            ("workers", Json::from(4u64)),
            ("neg", Json::from(-2.0)),
        ])
        .render();
        assert_eq!(extract_number(&doc, "throughput_qps"), Some(1234.5));
        assert_eq!(extract_number(&doc, "workers"), Some(4.0));
        assert_eq!(extract_number(&doc, "neg"), Some(-2.0));
        assert_eq!(extract_number(&doc, "missing"), None);
    }
}
