//! Property-based tests for the sampling algorithms: for *any* weight
//! vector, every sampler must return a valid index with positive weight,
//! and the eRJS bound property must hold for any bound ≥ max.

use flexi_rng::Philox4x32;
use flexi_sampling::scalar::{
    exact_max, sample_ervs_exp, sample_ervs_jump, sample_its, sample_linear_cdf,
    sample_rejection, sample_reservoir_prefix,
};
use flexi_sampling::AliasTable;
use proptest::prelude::*;

fn weights() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.0f32..50.0, 1..200)
}

fn check_valid(idx: Option<usize>, ws: &[f32]) -> Result<(), TestCaseError> {
    let total: f64 = ws.iter().map(|&w| f64::from(w)).sum();
    match idx {
        Some(i) => {
            prop_assert!(i < ws.len(), "index {i} out of range");
            prop_assert!(ws[i] > 0.0, "picked zero-weight index {i}");
        }
        None => prop_assert!(total <= 0.0, "None despite positive total {total}"),
    }
    Ok(())
}

proptest! {
    /// Every scan-based sampler returns a valid positive-weight index.
    #[test]
    fn scan_samplers_return_valid_indices(ws in weights(), seed: u64) {
        let mut rng = Philox4x32::new(seed, 0);
        check_valid(sample_linear_cdf(&ws, &mut rng).0, &ws)?;
        check_valid(sample_its(&ws, &mut rng).0, &ws)?;
        check_valid(sample_reservoir_prefix(&ws, &mut rng).0, &ws)?;
        check_valid(sample_ervs_exp(&ws, &mut rng).0, &ws)?;
        check_valid(sample_ervs_jump(&ws, &mut rng).0, &ws)?;
    }

    /// Rejection sampling with any bound ≥ max returns valid indices.
    #[test]
    fn rejection_valid_for_any_dominating_bound(ws in weights(), seed: u64, slack in 1.0f32..50.0) {
        let (mx, _) = exact_max(&ws);
        prop_assume!(mx > 0.0);
        let mut rng = Philox4x32::new(seed, 1);
        let (idx, _) = sample_rejection(&ws, mx * slack, &mut rng);
        check_valid(idx, &ws)?;
    }

    /// Looser bounds can only increase (never decrease) expected trials.
    #[test]
    fn rejection_trials_monotone_in_bound(ws in weights(), seed: u64) {
        let (mx, _) = exact_max(&ws);
        prop_assume!(mx > 0.0);
        let runs = 64;
        let count = |bound: f32| {
            let mut rng = Philox4x32::new(seed, 2);
            let mut probes = 0u64;
            for _ in 0..runs {
                probes += sample_rejection(&ws, bound, &mut rng).1.probe_reads;
            }
            probes
        };
        let tight = count(mx);
        let loose = count(mx * 16.0);
        prop_assert!(loose >= tight, "loose {loose} < tight {tight}");
    }

    /// The alias table is a faithful encoding: per-outcome probabilities
    /// reconstruct the normalised weights and sum to one.
    #[test]
    fn alias_table_encodes_distribution(ws in weights()) {
        let total: f64 = ws.iter().map(|&w| f64::from(w)).sum();
        prop_assume!(total > 0.0);
        let Some(t) = AliasTable::build(&ws) else {
            return Err(TestCaseError::fail("build failed on positive total"));
        };
        let mut sum = 0.0;
        for (i, &w) in ws.iter().enumerate() {
            let p = t.outcome_probability(i);
            let expect = f64::from(w) / total;
            prop_assert!((p - expect).abs() < 1e-6, "outcome {i}: {p} vs {expect}");
            sum += p;
        }
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// eRVS jump RNG usage is bounded by 2 + 2 draws per record update,
    /// which can never exceed 2 + 2n (adversarially ascending weights make
    /// every element a record; typical inputs see ~ln n updates).
    #[test]
    fn jump_rng_draws_bounded_by_updates(ws in weights(), seed: u64) {
        let mut rng = Philox4x32::new(seed, 3);
        let (_, jump) = sample_ervs_jump(&ws, &mut rng);
        prop_assert!(
            jump.rng_draws <= 2 + 2 * ws.len() as u64,
            "jump drew {} times for {} weights", jump.rng_draws, ws.len()
        );
    }

    /// On long flat-ish weight lists the jump saves most draws vs exp keys
    /// (the Fig. 12a claim), regardless of seed.
    #[test]
    fn jump_saves_rng_on_long_flat_lists(seed: u64, jitter in 0.0f32..0.5) {
        let ws: Vec<f32> = (0..512).map(|i| 1.0 + jitter * ((i % 7) as f32)).collect();
        let mut r1 = Philox4x32::new(seed, 3);
        let mut r2 = Philox4x32::new(seed, 3);
        let (_, exp) = sample_ervs_exp(&ws, &mut r1);
        let (_, jump) = sample_ervs_jump(&ws, &mut r2);
        prop_assert!(
            jump.rng_draws * 4 < exp.rng_draws,
            "jump {} not ≪ exp {}", jump.rng_draws, exp.rng_draws
        );
    }

    /// Reservoir-style samplers read each weight exactly once.
    #[test]
    fn ervs_reads_weights_once(ws in weights(), seed: u64) {
        let mut rng = Philox4x32::new(seed, 4);
        let (_, exp) = sample_ervs_exp(&ws, &mut rng);
        prop_assert_eq!(exp.weight_evals, ws.len() as u64);
        prop_assert_eq!(exp.aux_ops, 0);
        let (_, jump) = sample_ervs_jump(&ws, &mut rng);
        prop_assert_eq!(jump.weight_evals, ws.len() as u64);
    }

    /// All-zero inputs uniformly return None from every sampler.
    #[test]
    fn zero_weights_return_none(len in 1usize..100, seed: u64) {
        let ws = vec![0.0f32; len];
        let mut rng = Philox4x32::new(seed, 5);
        prop_assert_eq!(sample_linear_cdf(&ws, &mut rng).0, None);
        prop_assert_eq!(sample_its(&ws, &mut rng).0, None);
        prop_assert_eq!(sample_reservoir_prefix(&ws, &mut rng).0, None);
        prop_assert_eq!(sample_ervs_exp(&ws, &mut rng).0, None);
        prop_assert_eq!(sample_ervs_jump(&ws, &mut rng).0, None);
        prop_assert_eq!(sample_rejection(&ws, 1.0, &mut rng).0, None);
    }
}
