//! Property-style tests for the sampling algorithms, driven by seeded
//! sweeps: for *any* weight vector, every sampler must return a valid
//! index with positive weight, and the eRJS bound property must hold for
//! any bound ≥ max.
//!
//! The original suite used an external property-testing harness; the
//! cases here are generated from a seeded [`SplitMix64`] so the workspace
//! builds offline with zero external dependencies.

use flexi_rng::{Philox4x32, RandomSource, SplitMix64};
use flexi_sampling::scalar::{
    exact_max, sample_ervs_exp, sample_ervs_jump, sample_its, sample_linear_cdf, sample_rejection,
    sample_reservoir_prefix,
};
use flexi_sampling::AliasTable;

const CASES: usize = 200;

fn gen() -> SplitMix64 {
    SplitMix64::new(0x5A3D_7E57_0000_0001)
}

/// A random weight vector: 1..200 entries in `[0, 50)`.
fn random_weights(g: &mut SplitMix64) -> Vec<f32> {
    let len = 1 + g.bounded(199) as usize;
    (0..len)
        .map(|_| (g.bounded(50_000) as f32) / 1000.0)
        .collect()
}

fn check_valid(idx: Option<usize>, ws: &[f32], context: &str) {
    let total: f64 = ws.iter().map(|&w| f64::from(w)).sum();
    match idx {
        Some(i) => {
            assert!(i < ws.len(), "{context}: index {i} out of range");
            assert!(ws[i] > 0.0, "{context}: picked zero-weight index {i}");
        }
        None => assert!(
            total <= 0.0,
            "{context}: None despite positive total {total}"
        ),
    }
}

/// Every scan-based sampler returns a valid positive-weight index.
#[test]
fn scan_samplers_return_valid_indices() {
    let mut g = gen();
    for case in 0..CASES {
        let ws = random_weights(&mut g);
        let mut rng = Philox4x32::new(g.next_u64(), 0);
        check_valid(sample_linear_cdf(&ws, &mut rng).0, &ws, "linear");
        check_valid(sample_its(&ws, &mut rng).0, &ws, "its");
        check_valid(sample_reservoir_prefix(&ws, &mut rng).0, &ws, "rvs");
        check_valid(sample_ervs_exp(&ws, &mut rng).0, &ws, "ervs-exp");
        check_valid(sample_ervs_jump(&ws, &mut rng).0, &ws, "ervs-jump");
        let _ = case;
    }
}

/// Rejection sampling with any bound ≥ max returns valid indices.
#[test]
fn rejection_valid_for_any_dominating_bound() {
    let mut g = gen();
    for _ in 0..CASES {
        let ws = random_weights(&mut g);
        let (mx, _) = exact_max(&ws);
        if mx <= 0.0 {
            continue;
        }
        let slack = 1.0 + (g.bounded(49_000) as f32) / 1000.0;
        let mut rng = Philox4x32::new(g.next_u64(), 1);
        let (idx, _) = sample_rejection(&ws, mx * slack, &mut rng);
        check_valid(idx, &ws, "rejection");
    }
}

/// Looser bounds can only increase (never decrease) expected trials.
#[test]
fn rejection_trials_monotone_in_bound() {
    let mut g = gen();
    for _ in 0..CASES {
        let ws = random_weights(&mut g);
        let (mx, _) = exact_max(&ws);
        if mx <= 0.0 {
            continue;
        }
        let seed = g.next_u64();
        let runs = 64;
        let count = |bound: f32| {
            let mut rng = Philox4x32::new(seed, 2);
            let mut probes = 0u64;
            for _ in 0..runs {
                probes += sample_rejection(&ws, bound, &mut rng).1.probe_reads;
            }
            probes
        };
        let tight = count(mx);
        let loose = count(mx * 16.0);
        assert!(loose >= tight, "loose {loose} < tight {tight}");
    }
}

/// The alias table is a faithful encoding: per-outcome probabilities
/// reconstruct the normalised weights and sum to one.
#[test]
fn alias_table_encodes_distribution() {
    let mut g = gen();
    for _ in 0..CASES {
        let ws = random_weights(&mut g);
        let total: f64 = ws.iter().map(|&w| f64::from(w)).sum();
        if total <= 0.0 {
            continue;
        }
        let t = AliasTable::build(&ws).expect("build succeeds on positive total");
        let mut sum = 0.0;
        for (i, &w) in ws.iter().enumerate() {
            let p = t.outcome_probability(i);
            let expect = f64::from(w) / total;
            assert!((p - expect).abs() < 1e-6, "outcome {i}: {p} vs {expect}");
            sum += p;
        }
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

/// eRVS jump RNG usage is bounded by 2 + 2 draws per record update, which
/// can never exceed 2 + 2n (adversarially ascending weights make every
/// element a record; typical inputs see ~ln n updates).
#[test]
fn jump_rng_draws_bounded_by_updates() {
    let mut g = gen();
    for _ in 0..CASES {
        let ws = random_weights(&mut g);
        let mut rng = Philox4x32::new(g.next_u64(), 3);
        let (_, jump) = sample_ervs_jump(&ws, &mut rng);
        assert!(
            jump.rng_draws <= 2 + 2 * ws.len() as u64,
            "jump drew {} times for {} weights",
            jump.rng_draws,
            ws.len()
        );
    }
}

/// On long flat-ish weight lists the jump saves most draws vs exp keys
/// (the Fig. 12a claim), regardless of seed.
#[test]
fn jump_saves_rng_on_long_flat_lists() {
    let mut g = gen();
    for _ in 0..CASES {
        let seed = g.next_u64();
        let jitter = (g.bounded(500) as f32) / 1000.0;
        let ws: Vec<f32> = (0..512).map(|i| 1.0 + jitter * ((i % 7) as f32)).collect();
        let mut r1 = Philox4x32::new(seed, 3);
        let mut r2 = Philox4x32::new(seed, 3);
        let (_, exp) = sample_ervs_exp(&ws, &mut r1);
        let (_, jump) = sample_ervs_jump(&ws, &mut r2);
        assert!(
            jump.rng_draws * 4 < exp.rng_draws,
            "jump {} not ≪ exp {}",
            jump.rng_draws,
            exp.rng_draws
        );
    }
}

/// Reservoir-style samplers read each weight exactly once.
#[test]
fn ervs_reads_weights_once() {
    let mut g = gen();
    for _ in 0..CASES {
        let ws = random_weights(&mut g);
        let mut rng = Philox4x32::new(g.next_u64(), 4);
        let (_, exp) = sample_ervs_exp(&ws, &mut rng);
        assert_eq!(exp.weight_evals, ws.len() as u64);
        assert_eq!(exp.aux_ops, 0);
        let (_, jump) = sample_ervs_jump(&ws, &mut rng);
        assert_eq!(jump.weight_evals, ws.len() as u64);
    }
}

/// All-zero inputs uniformly return None from every sampler.
#[test]
fn zero_weights_return_none() {
    let mut g = gen();
    for _ in 0..CASES {
        let len = 1 + g.bounded(99) as usize;
        let ws = vec![0.0f32; len];
        let mut rng = Philox4x32::new(g.next_u64(), 5);
        assert_eq!(sample_linear_cdf(&ws, &mut rng).0, None);
        assert_eq!(sample_its(&ws, &mut rng).0, None);
        assert_eq!(sample_reservoir_prefix(&ws, &mut rng).0, None);
        assert_eq!(sample_ervs_exp(&ws, &mut rng).0, None);
        assert_eq!(sample_ervs_jump(&ws, &mut rng).0, None);
        assert_eq!(sample_rejection(&ws, 1.0, &mut rng).0, None);
    }
}
