//! Alias-method tables (Walker 1977), as used by Skywalker.
//!
//! An alias table answers weighted-sampling queries in O(1) after an O(n)
//! build. For *static* walks the build is amortised across all steps; for
//! *dynamic* walks the table must be rebuilt at every step because the
//! transition weights depend on walker history — this per-step rebuild is
//! exactly the overhead the paper's Fig. 3 shows sinking ALS-based systems.

use flexi_rng::RandomSource;

/// A Walker alias table over `n` outcomes.
///
/// # Examples
///
/// ```
/// use flexi_sampling::AliasTable;
/// use flexi_rng::Philox4x32;
///
/// let t = AliasTable::build(&[1.0, 3.0]).unwrap();
/// let mut rng = Philox4x32::new(7, 0);
/// let mut hits = [0u32; 2];
/// for _ in 0..10_000 {
///     hits[t.sample(&mut rng)] += 1;
/// }
/// assert!(hits[1] > 2 * hits[0]);
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table with Vose's O(n) two-stack algorithm.
    ///
    /// Returns `None` if `weights` is empty, sums to zero, or contains a
    /// negative or non-finite entry.
    pub fn build(weights: &[f32]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let mut sum = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            sum += f64::from(w);
        }
        if sum <= 0.0 {
            return None;
        }
        let scale = n as f64 / sum;
        let mut prob: Vec<f64> = weights.iter().map(|&w| f64::from(w) * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Donate the large bucket's excess to fill the small bucket.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining buckets are numerically ~1.
        for i in large.into_iter().chain(small) {
            prob[i as usize] = 1.0;
        }
        Some(Self { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a built table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Samples an outcome with two uniform draws and one table probe.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let col = ((u128::from(rng.next_u64()) * n as u128) >> 64) as usize;
        let u = rng.uniform_f64();
        if u <= self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }

    /// The stay-probability of bucket `col` (the alias method's `prob[]`).
    pub fn bucket_prob(&self, col: usize) -> f64 {
        self.prob[col]
    }

    /// The alias target of bucket `col` (the alias method's `alias[]`).
    pub fn bucket_alias(&self, col: usize) -> usize {
        self.alias[col] as usize
    }

    /// The exact probability this table assigns to outcome `i`.
    ///
    /// Used by tests to confirm the build preserved the input distribution.
    pub fn outcome_probability(&self, i: usize) -> f64 {
        let n = self.prob.len() as f64;
        let mut p = self.prob[i] / n;
        for (j, &a) in self.alias.iter().enumerate() {
            if a as usize == i {
                p += (1.0 - self.prob[j]) / n;
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stat;
    use flexi_rng::Philox4x32;

    #[test]
    fn build_rejects_degenerate_inputs() {
        assert!(AliasTable::build(&[]).is_none());
        assert!(AliasTable::build(&[0.0, 0.0]).is_none());
        assert!(AliasTable::build(&[1.0, -1.0]).is_none());
        assert!(AliasTable::build(&[f32::NAN]).is_none());
        assert!(AliasTable::build(&[f32::INFINITY]).is_none());
    }

    #[test]
    fn table_probabilities_match_weights_exactly() {
        let weights = [3.0f32, 2.0, 4.0, 1.0];
        let t = AliasTable::build(&weights).unwrap();
        let probs = stat::normalize(&weights);
        for (i, &p) in probs.iter().enumerate() {
            assert!(
                (t.outcome_probability(i) - p).abs() < 1e-12,
                "outcome {i}: table {} vs exact {p}",
                t.outcome_probability(i)
            );
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let weights = [3.0f32, 2.0, 4.0, 1.0];
        let t = AliasTable::build(&weights).unwrap();
        let mut rng = Philox4x32::new(123, 0);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&weights), "alias");
    }

    #[test]
    fn single_outcome_always_wins() {
        let t = AliasTable::build(&[5.0]).unwrap();
        let mut rng = Philox4x32::new(1, 0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_outcomes_are_never_sampled() {
        let t = AliasTable::build(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = Philox4x32::new(5, 0);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight outcome {s}");
        }
    }

    #[test]
    fn highly_skewed_weights_build_correctly() {
        let mut weights = vec![1e-6f32; 100];
        weights[42] = 1e6;
        let t = AliasTable::build(&weights).unwrap();
        let p = t.outcome_probability(42);
        assert!(p > 0.999, "p = {p}");
    }

    #[test]
    fn uniform_weights_give_uniform_table() {
        let t = AliasTable::build(&[2.0; 8]).unwrap();
        for i in 0..8 {
            assert!((t.outcome_probability(i) - 0.125).abs() < 1e-12);
        }
    }
}
