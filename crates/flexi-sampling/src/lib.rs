//! Weighted neighbor-sampling algorithms for dynamic random walks.
//!
//! Implements the four base sampling strategies the paper surveys (Fig. 2)
//! and the two optimised kernels it contributes (§3):
//!
//! | Method | Module | Used by |
//! |---|---|---|
//! | Alias sampling (ALS) | [`alias`] | Skywalker |
//! | Inverse-transform (ITS) | [`scalar::sample_its`] | C-SAW, ThunderRW |
//! | Rejection (RJS) | [`scalar::sample_rejection`] | NextDoor, KnightKing |
//! | Reservoir (RVS, prefix-sum) | [`scalar::sample_reservoir_prefix`] | FlowWalker |
//! | **eRVS** (exp-keys + jump) | [`scalar::sample_ervs_exp`], [`scalar::sample_ervs_jump`] | FlexiWalker |
//! | **eRJS** (bound estimation) | [`scalar::sample_rejection`] with estimated bound | FlexiWalker |
//!
//! Every method exists in two forms:
//!
//! - **scalar** ([`scalar`]) — straight-line reference implementations used
//!   by the CPU baseline engines and by the statistical test-suite;
//! - **warp kernels** ([`kernels`]) — SIMT implementations on
//!   [`flexi_gpu_sim::WarpCtx`] that additionally charge the memory
//!   transactions, RNG draws and warp-intrinsic steps each strategy costs,
//!   reproducing the paper's performance hierarchy.
//!
//! Both forms meet in the [`sampler`] module: the [`Sampler`] trait wraps a
//! strategy's identity, kernel entry points and cost-model coefficients,
//! and the [`SamplerRegistry`] is the pluggable set Flexi-Runtime selects
//! over — third-party strategies register there without engine changes.
//!
//! The [`stat`] module provides the chi-square goodness-of-fit helper the
//! correctness tests use to verify every sampler draws from the exact
//! target distribution `p(i) = w̃_i / Σ w̃`.

pub mod alias;
pub mod kernels;
pub mod sampler;
pub mod scalar;
pub mod stat;
pub mod state;
pub mod temporal;

pub use alias::AliasTable;
pub use sampler::{
    ids, AliasSampler, CostInputs, ErjsSampler, ErvsSampler, ExactMaxRjsSampler, Granularity,
    ItsSampler, ReservoirPrefixSampler, Sampler, SamplerId, SamplerRegistry,
};
pub use scalar::ScalarCost;
pub use state::{NodeState, StateTable};
pub use temporal::TcdfSampler;

/// Maximum rejection-sampling trials before falling back to a linear scan.
///
/// A pathological bound (or an adversarial weight distribution) could make
/// pure rejection loop for a very long time; all rejection paths in this
/// repository bail out to an exact linear-CDF sample after this many trials,
/// preserving the output distribution while bounding worst-case work.
pub const MAX_REJECTION_TRIALS: u32 = 4096;
