//! The pluggable sampling-strategy abstraction (the "extensible" in
//! FlexiWalker).
//!
//! The paper's framing is that new dynamic-walk sampling strategies plug
//! into the engine and Flexi-Runtime adapts over them per node, per step.
//! This module is that seam:
//!
//! - [`Sampler`] — one neighbor-sampling strategy: an identifier, a scalar
//!   reference implementation, a warp-kernel entry point, and the
//!   first-order cost coefficients Flexi-Runtime feeds into its selection
//!   (the generalisation of the paper's Eq. 9–11 two-way comparison);
//! - [`SamplerRegistry`] — the ordered set of strategies an engine run may
//!   select between. Third-party strategies implement [`Sampler`] and are
//!   registered without touching the engine.
//!
//! The six strategies the paper discusses ship as built-ins: the two
//! optimised Flexi-Kernels ([`ErvsSampler`], [`ErjsSampler`]) and the four
//! baseline methods ([`ItsSampler`], [`AliasSampler`],
//! [`ReservoirPrefixSampler`], [`ExactMaxRjsSampler`]).

use crate::alias::AliasTable;
use crate::kernels::{
    lane_rejection, warp_alias, warp_ervs, warp_its, warp_max_reduce_scattered,
    warp_reservoir_prefix, ErvsMode, NeighborView,
};
use crate::scalar::{
    exact_max, sample_alias, sample_ervs_exp, sample_ervs_jump, sample_its, sample_rejection,
    sample_reservoir_prefix, ScalarCost,
};
use crate::state::NodeState;
use flexi_gpu_sim::WarpCtx;
use flexi_rng::RandomSource;
use std::sync::Arc;

/// Identifier of a sampling strategy, the key of [`SamplerRegistry`] and of
/// per-sampler step counts in run reports.
pub type SamplerId = &'static str;

/// Well-known ids of the built-in strategies.
pub mod ids {
    use super::SamplerId;

    /// Optimised reservoir sampling (exponential keys + jump), §3.2.
    pub const ERVS: SamplerId = "ervs";
    /// Optimised rejection sampling with estimated bound, §3.3.
    pub const ERJS: SamplerId = "erjs";
    /// Inverse-transform sampling (C-SAW).
    pub const ITS: SamplerId = "its";
    /// Alias sampling with per-step table builds (Skywalker).
    pub const ALS: SamplerId = "als";
    /// Prefix-sum reservoir sampling (FlowWalker).
    pub const RVS: SamplerId = "rvs";
    /// Rejection sampling with exact per-step max (NextDoor, KnightKing).
    pub const RJS: SamplerId = "rjs";
    /// Temporal CDF sampling for time-windowed walks
    /// ([`TcdfSampler`](crate::temporal::TcdfSampler)).
    pub const TCDF: SamplerId = "tcdf";
}

/// How a strategy occupies the warp during one sampling step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// Thread-granular: each lane samples its own query independently
    /// (rejection-style trials).
    Lane,
    /// Warp-granular: all 32 lanes cooperate on one query's neighbor list
    /// (scan/reduce-style kernels).
    Warp,
}

/// Inputs to a strategy's first-order cost estimate for one candidate
/// sampling step — the generalisation of the paper's Eq. 9–11.
#[derive(Clone, Copy, Debug)]
pub struct CostInputs {
    /// Out-degree of the walker's current node.
    pub deg: f64,
    /// Estimated max transition weight `max(w̃)` (compiler bound), if any.
    pub max_est: Option<f64>,
    /// Estimated weight sum `Σw̃` (compiler sum estimator), if any.
    pub sum_est: Option<f64>,
    /// Profiled `EdgeCost_random / EdgeCost_sequential` ratio (Eq. 11's
    /// `EdgeCost_RJS / EdgeCost_RVS`), measured by the §5.1 kernels.
    pub edge_cost_ratio: f64,
}

/// One pluggable neighbor-sampling strategy.
///
/// Implementations must draw from the *exact* target distribution
/// `p(i) = w̃_i / Σ w̃` — Flexi-Runtime switches strategies per step, which
/// is only sound if every strategy samples the same distribution.
pub trait Sampler: Send + Sync {
    /// Stable identifier (registry key, report key).
    fn id(&self) -> SamplerId;

    /// Human-readable name for tables and logs.
    fn name(&self) -> &'static str {
        self.id()
    }

    /// Warp-occupancy class of the kernel entry point.
    fn granularity(&self) -> Granularity;

    /// Whether [`Sampler::sample_lane`] requires an upper bound on the
    /// transition weights (rejection-style strategies).
    fn needs_bound(&self) -> bool {
        false
    }

    /// Expected cost of sampling one step at a node described by `inp`, in
    /// units of one sequential per-edge access.
    ///
    /// `None` means the strategy cannot run (or cannot be priced) at this
    /// node — e.g. rejection sampling without a usable bound estimate. The
    /// cost-model selection skips such strategies.
    fn step_cost(&self, inp: &CostInputs) -> Option<f64>;

    /// Warp-granular kernel entry point (granularity [`Granularity::Warp`]).
    ///
    /// The whole warp cooperates on `view`; returns the sampled neighbor
    /// index, or `None` if all weights are zero.
    fn sample_warp(&self, ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
        let _ = (ctx, view);
        unimplemented!("{} has no warp-granular kernel", self.id())
    }

    /// Thread-granular kernel entry point (granularity [`Granularity::Lane`])
    /// on `lane`, with an optional weight upper bound.
    fn sample_lane(
        &self,
        ctx: &mut WarpCtx,
        lane: usize,
        view: &NeighborView<'_>,
        bound: Option<f32>,
    ) -> Option<usize> {
        let _ = (ctx, lane, view, bound);
        unimplemented!("{} has no thread-granular kernel", self.id())
    }

    /// Scalar reference implementation used by CPU engines and the
    /// statistical test-suite.
    fn sample_scalar(
        &self,
        weights: &[f32],
        bound: Option<f32>,
        rng: &mut dyn RandomSource,
    ) -> (Option<usize>, ScalarCost);

    // ---- Optional incremental-state entry points -------------------------

    /// Whether this strategy can serve steps from a prebuilt, incrementally
    /// maintained per-node artifact ([`NodeState`]).
    ///
    /// Only sound for weight functions that do not depend on walker
    /// history — the engine gates the state path on the compiler's
    /// static-weight analysis.
    fn supports_state(&self) -> bool {
        false
    }

    /// Builds this strategy's per-node artifact from one node's transition
    /// weights (`None` for dead-end / all-zero neighborhoods, and the
    /// default for strategies without state support).
    fn build_node_state(&self, weights: &[f32]) -> Option<NodeState> {
        let _ = weights;
        None
    }

    /// Expected cost of sampling one step *from a prebuilt artifact*, in
    /// the same units as [`Sampler::step_cost`]. This is what the
    /// update-aware cost model prices instead of `step_cost` when the
    /// node's artifact is resident.
    fn state_step_cost(&self, inp: &CostInputs) -> Option<f64> {
        let _ = inp;
        None
    }

    /// Expected cost of re-deriving one dirty node's artifact after an
    /// update batch — the per-node O(Δ) maintenance charge the cost model
    /// amortises against churn when argmin-ing (a strategy that samples
    /// fast but rebuilds slow should lose under heavy churn).
    fn state_update_cost(&self, inp: &CostInputs) -> Option<f64> {
        let _ = inp;
        None
    }
}

/// The ordered set of strategies an engine run selects between.
///
/// Registration order is significant: when the cost model prices two
/// strategies identically, the earlier registration wins. The paper's
/// default pair registers eRVS before eRJS so that Eq. 11's strict
/// inequality (`ratio · max < sum`) is reproduced exactly.
#[derive(Clone)]
pub struct SamplerRegistry {
    samplers: Vec<Arc<dyn Sampler>>,
}

impl SamplerRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self {
            samplers: Vec::new(),
        }
    }

    /// The paper's Flexi-Kernel pair: eRVS (full `+JUMP` kernel) then eRJS.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register(Arc::new(ErvsSampler::default()));
        r.register(Arc::new(ErjsSampler));
        r
    }

    /// The built-in pair plus the four surveyed baseline strategies
    /// (ITS, ALS, prefix-sum RVS, exact-max RJS).
    pub fn with_baselines() -> Self {
        let mut r = Self::builtin();
        r.register(Arc::new(ItsSampler));
        r.register(Arc::new(AliasSampler));
        r.register(Arc::new(ReservoirPrefixSampler));
        r.register(Arc::new(ExactMaxRjsSampler));
        r
    }

    /// Registers `sampler`, replacing any existing strategy with the same
    /// id (in place, keeping its selection priority).
    pub fn register(&mut self, sampler: Arc<dyn Sampler>) {
        match self.samplers.iter_mut().find(|s| s.id() == sampler.id()) {
            Some(slot) => *slot = sampler,
            None => self.samplers.push(sampler),
        }
    }

    /// Looks a strategy up by id.
    pub fn get(&self, id: &str) -> Option<&Arc<dyn Sampler>> {
        self.samplers.iter().find(|s| s.id() == id)
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: &str) -> bool {
        self.get(id).is_some()
    }

    /// Registered ids, in priority order.
    pub fn ids(&self) -> Vec<SamplerId> {
        self.samplers.iter().map(|s| s.id()).collect()
    }

    /// Iterates strategies in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Sampler>> {
        self.samplers.iter()
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.samplers.len()
    }

    /// Whether no strategy is registered.
    pub fn is_empty(&self) -> bool {
        self.samplers.is_empty()
    }
}

impl Default for SamplerRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl std::fmt::Debug for SamplerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SamplerRegistry").field(&self.ids()).finish()
    }
}

// ---- Built-in strategies --------------------------------------------------

/// eRVS: the paper's optimised reservoir kernel (§3.2) — exponential keys
/// plus the exponential-jump trick. One coalesced weight pass, `O(log n)`
/// RNG draws.
#[derive(Clone, Copy, Debug)]
pub struct ErvsSampler {
    /// Optimisation stage (the Fig. 12a ablation axis).
    pub mode: ErvsMode,
}

impl Default for ErvsSampler {
    fn default() -> Self {
        Self {
            mode: ErvsMode::ExpJump,
        }
    }
}

impl ErvsSampler {
    /// eRVS at the given optimisation stage.
    pub fn with_mode(mode: ErvsMode) -> Self {
        Self { mode }
    }
}

impl Sampler for ErvsSampler {
    fn id(&self) -> SamplerId {
        ids::ERVS
    }

    fn granularity(&self) -> Granularity {
        Granularity::Warp
    }

    fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Eq. 9: Cost_RVS = EdgeCost_seq · deg. Always runnable — this is
        // the sound fallback every registry should contain.
        Some(inp.deg)
    }

    fn sample_warp(&self, ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
        warp_ervs(ctx, view, self.mode)
    }

    fn sample_scalar(
        &self,
        weights: &[f32],
        _bound: Option<f32>,
        mut rng: &mut dyn RandomSource,
    ) -> (Option<usize>, ScalarCost) {
        match self.mode {
            ErvsMode::Exp => sample_ervs_exp(weights, &mut rng),
            ErvsMode::ExpJump => sample_ervs_jump(weights, &mut rng),
        }
    }
}

/// eRJS: the paper's optimised rejection kernel (§3.3) — thread-granular
/// trials against a compiler-estimated upper bound, no max reduction.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErjsSampler;

impl Sampler for ErjsSampler {
    fn id(&self) -> SamplerId {
        ids::ERJS
    }

    fn granularity(&self) -> Granularity {
        Granularity::Lane
    }

    fn needs_bound(&self) -> bool {
        true
    }

    fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Eq. 10: Cost_RJS = EdgeCost_rand · deg · max(w̃) / Σw̃ (expected
        // trials × random-probe cost). Unpriceable without estimates.
        match (inp.max_est, inp.sum_est) {
            (Some(mx), Some(sm)) if mx.is_finite() && sm.is_finite() && mx > 0.0 && sm > 0.0 => {
                Some(inp.edge_cost_ratio * inp.deg * mx / sm)
            }
            _ => None,
        }
    }

    fn sample_lane(
        &self,
        ctx: &mut WarpCtx,
        lane: usize,
        view: &NeighborView<'_>,
        bound: Option<f32>,
    ) -> Option<usize> {
        // No usable bound means the estimator declined: treat as a dead end
        // (the runtime should not have selected eRJS here).
        let bound = bound?;
        lane_rejection(ctx, lane, view, bound).0
    }

    fn sample_scalar(
        &self,
        weights: &[f32],
        bound: Option<f32>,
        mut rng: &mut dyn RandomSource,
    ) -> (Option<usize>, ScalarCost) {
        match bound {
            Some(b) => sample_rejection(weights, b, &mut rng),
            None => {
                // Scalar fallback: pay the exact max (KnightKing's cost).
                let (mx, mut cost) = exact_max(weights);
                if mx <= 0.0 {
                    return (None, cost);
                }
                let (picked, c2) = sample_rejection(weights, mx, &mut rng);
                cost.add(&c2);
                (picked, cost)
            }
        }
    }
}

/// Inverse-transform sampling with per-step prefix sums (C-SAW).
#[derive(Clone, Copy, Debug, Default)]
pub struct ItsSampler;

impl Sampler for ItsSampler {
    fn id(&self) -> SamplerId {
        ids::ITS
    }

    fn granularity(&self) -> Granularity {
        Granularity::Warp
    }

    fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Weight pass + staging round-trip + CDF store/normalise passes,
        // then a binary search of random probes.
        Some(5.0 * inp.deg + inp.edge_cost_ratio * inp.deg.max(1.0).log2())
    }

    fn sample_warp(&self, ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
        warp_its(ctx, view)
    }

    fn sample_scalar(
        &self,
        weights: &[f32],
        _bound: Option<f32>,
        mut rng: &mut dyn RandomSource,
    ) -> (Option<usize>, ScalarCost) {
        sample_its(weights, &mut rng)
    }

    fn supports_state(&self) -> bool {
        true
    }

    fn build_node_state(&self, weights: &[f32]) -> Option<NodeState> {
        NodeState::build_cdf(weights)
    }

    fn state_step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // The CDF is prebuilt: only the binary-search inversion remains.
        Some(inp.edge_cost_ratio * inp.deg.max(1.0).log2().max(1.0))
    }

    fn state_update_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Segment re-prefix of one dirty node: weight pass + CDF store.
        Some(2.0 * inp.deg)
    }
}

/// Alias sampling with per-step table construction (Skywalker).
#[derive(Clone, Copy, Debug, Default)]
pub struct AliasSampler;

impl Sampler for AliasSampler {
    fn id(&self) -> SamplerId {
        ids::ALS
    }

    fn granularity(&self) -> Granularity {
        Granularity::Warp
    }

    fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Weight pass + two-stack table build (read-modify-write of the
        // prob/alias pair, ~2 visits per bucket) + table stores.
        Some(7.0 * inp.deg + 2.0 * inp.edge_cost_ratio)
    }

    fn sample_warp(&self, ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
        warp_alias(ctx, view)
    }

    fn sample_scalar(
        &self,
        weights: &[f32],
        _bound: Option<f32>,
        mut rng: &mut dyn RandomSource,
    ) -> (Option<usize>, ScalarCost) {
        sample_alias(weights, &mut rng)
    }

    fn supports_state(&self) -> bool {
        true
    }

    fn build_node_state(&self, weights: &[f32]) -> Option<NodeState> {
        AliasTable::build(weights).map(NodeState::Alias)
    }

    fn state_step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // The table is prebuilt: two draws and one random bucket probe —
        // the O(1) sample the alias method promises once construction is
        // amortised across an epoch.
        Some(2.0 * inp.edge_cost_ratio)
    }

    fn state_update_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Vose rebuild of one dirty node's table (bias re-factorisation):
        // same two-stack traffic as the stateless per-step build.
        Some(7.0 * inp.deg)
    }
}

/// Prefix-sum parallel reservoir sampling (FlowWalker).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReservoirPrefixSampler;

impl Sampler for ReservoirPrefixSampler {
    fn id(&self) -> SamplerId {
        ids::RVS
    }

    fn granularity(&self) -> Granularity {
        Granularity::Warp
    }

    fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Double weight traffic (weights + prefix re-read) plus one RNG
        // draw per neighbor.
        Some(2.5 * inp.deg)
    }

    fn sample_warp(&self, ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
        warp_reservoir_prefix(ctx, view)
    }

    fn sample_scalar(
        &self,
        weights: &[f32],
        _bound: Option<f32>,
        mut rng: &mut dyn RandomSource,
    ) -> (Option<usize>, ScalarCost) {
        sample_reservoir_prefix(weights, &mut rng)
    }
}

/// Rejection sampling with an exact per-step max reduction (NextDoor's
/// dynamic path, KnightKing): the strategy eRJS's bound estimation
/// replaces.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactMaxRjsSampler;

impl Sampler for ExactMaxRjsSampler {
    fn id(&self) -> SamplerId {
        ids::RJS
    }

    fn granularity(&self) -> Granularity {
        Granularity::Lane
    }

    fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Scattered max reduction over every edge, then the expected
        // rejection trials (assume 2 when the skew is unknown).
        let trials = match (inp.max_est, inp.sum_est) {
            (Some(mx), Some(sm)) if sm > 0.0 && mx > 0.0 => inp.deg * mx / sm,
            _ => 2.0,
        };
        Some(inp.edge_cost_ratio * (inp.deg + trials))
    }

    fn sample_lane(
        &self,
        ctx: &mut WarpCtx,
        lane: usize,
        view: &NeighborView<'_>,
        bound: Option<f32>,
    ) -> Option<usize> {
        // A statically known bound skips the reduction (NextDoor's
        // "partial" dynamic support); otherwise pay the transit-scattered
        // exact max.
        let bound = match bound {
            Some(b) => b,
            None => warp_max_reduce_scattered(ctx, view),
        };
        if bound > 0.0 {
            lane_rejection(ctx, lane, view, bound).0
        } else {
            None
        }
    }

    fn sample_scalar(
        &self,
        weights: &[f32],
        bound: Option<f32>,
        mut rng: &mut dyn RandomSource,
    ) -> (Option<usize>, ScalarCost) {
        let (bound, mut cost) = match bound {
            Some(b) => (b, ScalarCost::default()),
            None => exact_max(weights),
        };
        if bound <= 0.0 {
            return (None, cost);
        }
        let (picked, c2) = sample_rejection(weights, bound, &mut rng);
        cost.add(&c2);
        (picked, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stat;
    use flexi_rng::Philox4x32;

    const WEIGHTS: [f32; 5] = [3.0, 2.0, 4.0, 1.0, 0.5];

    fn all_builtins() -> SamplerRegistry {
        SamplerRegistry::with_baselines()
    }

    #[test]
    fn registry_preserves_priority_order() {
        let r = SamplerRegistry::builtin();
        assert_eq!(r.ids(), vec![ids::ERVS, ids::ERJS]);
        assert!(r.contains(ids::ERJS));
        assert!(!r.contains("nonsense"));
    }

    #[test]
    fn register_replaces_in_place() {
        let mut r = SamplerRegistry::builtin();
        r.register(Arc::new(ErvsSampler::with_mode(ErvsMode::Exp)));
        assert_eq!(r.len(), 2);
        assert_eq!(r.ids(), vec![ids::ERVS, ids::ERJS], "priority kept");
    }

    #[test]
    fn ervs_cost_is_eq9_and_erjs_cost_is_eq10() {
        let inp = CostInputs {
            deg: 100.0,
            max_est: Some(2.0),
            sum_est: Some(100.0),
            edge_cost_ratio: 8.0,
        };
        assert_eq!(ErvsSampler::default().step_cost(&inp), Some(100.0));
        assert_eq!(ErjsSampler.step_cost(&inp), Some(8.0 * 100.0 * 2.0 / 100.0));
    }

    #[test]
    fn erjs_is_unpriceable_without_estimates() {
        let inp = CostInputs {
            deg: 10.0,
            max_est: None,
            sum_est: Some(5.0),
            edge_cost_ratio: 8.0,
        };
        assert_eq!(ErjsSampler.step_cost(&inp), None);
        // eRVS remains runnable: the sound fallback.
        assert!(ErvsSampler::default().step_cost(&inp).is_some());
    }

    #[test]
    fn every_builtin_scalar_entry_matches_distribution() {
        for sampler in all_builtins().iter() {
            let mut counts = vec![0u64; WEIGHTS.len()];
            for trial in 0..40_000u64 {
                let mut rng = Philox4x32::new(trial, 0x5A);
                let (picked, _) = sampler.sample_scalar(&WEIGHTS, Some(4.0), &mut rng);
                counts[picked.expect("positive weights")] += 1;
            }
            stat::assert_matches_distribution(
                &counts,
                &stat::normalize(&WEIGHTS),
                &format!("scalar {}", sampler.id()),
            );
        }
    }

    #[test]
    fn every_builtin_kernel_entry_matches_distribution() {
        for sampler in all_builtins().iter() {
            let wf = |i: usize| WEIGHTS[i];
            let view = NeighborView::new(&wf, WEIGHTS.len(), 8);
            let mut counts = vec![0u64; WEIGHTS.len()];
            for trial in 0..40_000u64 {
                let mut ctx = WarpCtx::new(trial as usize, 0xD1);
                let picked = match sampler.granularity() {
                    Granularity::Warp => sampler.sample_warp(&mut ctx, &view),
                    Granularity::Lane => sampler.sample_lane(&mut ctx, 0, &view, Some(4.0)),
                };
                counts[picked.expect("positive weights")] += 1;
            }
            stat::assert_matches_distribution(
                &counts,
                &stat::normalize(&WEIGHTS),
                &format!("kernel {}", sampler.id()),
            );
        }
    }

    #[test]
    fn exact_max_rjs_reduces_when_bound_missing() {
        let wf = |i: usize| WEIGHTS[i];
        let view = NeighborView::new(&wf, WEIGHTS.len(), 8);
        let mut ctx = WarpCtx::new(0, 0xBB);
        let picked = ExactMaxRjsSampler.sample_lane(&mut ctx, 0, &view, None);
        assert!(picked.is_some());
        // The scattered reduction charges random transactions per edge.
        assert!(ctx.stats().random_transactions >= WEIGHTS.len() as u64);
    }

    #[test]
    fn erjs_without_bound_is_dead_end_on_device() {
        let wf = |i: usize| WEIGHTS[i];
        let view = NeighborView::new(&wf, WEIGHTS.len(), 8);
        let mut ctx = WarpCtx::new(0, 0xBC);
        assert_eq!(ErjsSampler.sample_lane(&mut ctx, 0, &view, None), None);
    }
}
