//! Scalar (single-threaded) reference implementations of every sampler.
//!
//! These are the ground truth for the statistical test-suite and the inner
//! loops of the CPU baseline engines. Each function returns the sampled
//! index together with a [`ScalarCost`] describing the abstract work done,
//! which the CPU engines convert into simulated time.

use crate::alias::AliasTable;
use crate::MAX_REJECTION_TRIALS;
use flexi_rng::RandomSource;

/// Abstract operation counts of one scalar sampling call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScalarCost {
    /// Transition-weight evaluations (each implies touching `h` and the
    /// adjacency entry of that neighbor).
    pub weight_evals: u64,
    /// Uniform random draws.
    pub rng_draws: u64,
    /// Auxiliary-structure element operations (prefix-sum adds, alias-table
    /// bucket moves).
    pub aux_ops: u64,
    /// Random probes into memory (rejection trials, binary-search steps,
    /// alias-table lookups).
    pub probe_reads: u64,
}

impl ScalarCost {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &ScalarCost) {
        self.weight_evals += other.weight_evals;
        self.rng_draws += other.rng_draws;
        self.aux_ops += other.aux_ops;
        self.probe_reads += other.probe_reads;
    }
}

/// Draws a uniform `f64` strictly inside `(0, 1)`.
///
/// `RandomSource::uniform_f64` is `(0, 1]`; the exponential-key and jump
/// computations take logarithms of both `u` and the keys, so the endpoints
/// must be excluded.
fn open01<R: RandomSource>(rng: &mut R, cost: &mut ScalarCost) -> f64 {
    loop {
        cost.rng_draws += 1;
        let u = rng.uniform_f64();
        if u < 1.0 {
            return u;
        }
    }
}

/// Exact weighted sample by linear CDF scan — the ground-truth sampler.
///
/// Returns `None` if `weights` is empty or sums to zero.
pub fn sample_linear_cdf<R: RandomSource>(
    weights: &[f32],
    rng: &mut R,
) -> (Option<usize>, ScalarCost) {
    let mut cost = ScalarCost {
        weight_evals: weights.len() as u64,
        ..Default::default()
    };
    let total: f64 = weights.iter().map(|&w| f64::from(w)).sum();
    if total <= 0.0 {
        return (None, cost);
    }
    cost.rng_draws += 1;
    let target = rng.uniform_f64() * total;
    let mut acc = 0.0f64;
    for (i, &w) in weights.iter().enumerate() {
        acc += f64::from(w);
        if target <= acc && w > 0.0 {
            return (Some(i), cost);
        }
    }
    // Numerical slack: return the last positive-weight index.
    let last = weights.iter().rposition(|&w| w > 0.0);
    (last, cost)
}

/// Inverse-transform sampling (ITS): prefix sum + binary search (C-SAW).
pub fn sample_its<R: RandomSource>(weights: &[f32], rng: &mut R) -> (Option<usize>, ScalarCost) {
    let n = weights.len();
    let mut cost = ScalarCost {
        weight_evals: n as u64,
        aux_ops: n as u64,
        ..Default::default()
    };
    if n == 0 {
        return (None, cost);
    }
    let mut prefix = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for &w in weights {
        acc += f64::from(w);
        prefix.push(acc);
    }
    if acc <= 0.0 {
        return (None, cost);
    }
    cost.rng_draws += 1;
    let target = rng.uniform_f64() * acc;
    // Binary search for the first prefix >= target.
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        cost.probe_reads += 1;
        let mid = (lo + hi) / 2;
        if prefix[mid] < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    // Skip any zero-weight run the search may have landed on.
    let mut i = lo;
    while i < n && weights[i] <= 0.0 {
        i += 1;
    }
    if i == n {
        i = weights.iter().rposition(|&w| w > 0.0).unwrap_or(lo);
    }
    (Some(i), cost)
}

/// Alias sampling (ALS): per-call table build + O(1) lookup (Skywalker).
///
/// For dynamic walks the table cannot be cached, so the O(n) build is paid
/// on every step — the overhead Fig. 3 attributes to ALS systems.
pub fn sample_alias<R: RandomSource>(weights: &[f32], rng: &mut R) -> (Option<usize>, ScalarCost) {
    let n = weights.len();
    let mut cost = ScalarCost {
        weight_evals: n as u64,
        // Mean reduce + bucket classification + redistribution ≈ 3 passes.
        aux_ops: 3 * n as u64,
        ..Default::default()
    };
    let Some(table) = AliasTable::build(weights) else {
        return (None, cost);
    };
    cost.rng_draws += 2;
    cost.probe_reads += 1;
    (Some(table.sample(rng)), cost)
}

/// Rejection sampling (RJS) against an upper bound on the max weight.
///
/// `bound` must satisfy `bound >= max(weights)`; any such bound leaves the
/// output distribution exact (paper §3.3, Eqs. 5–8) — looser bounds only
/// increase the expected number of trials. After
/// [`MAX_REJECTION_TRIALS`] failed trials the sampler falls back to an
/// exact linear-CDF scan so adversarial bounds cannot hang a walk.
///
/// Weights are evaluated lazily through `weight_of`, matching how dynamic
/// walks compute transition weights only for probed neighbors — this is
/// the entire memory-traffic advantage of RJS.
pub fn sample_rejection_fn<R: RandomSource>(
    weight_of: impl Fn(usize) -> f32,
    n: usize,
    bound: f32,
    rng: &mut R,
) -> (Option<usize>, ScalarCost) {
    let mut cost = ScalarCost::default();
    // NaN-rejecting guard (see `lane_rejection`).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if n == 0 || !(bound > 0.0) {
        return (None, cost);
    }
    for _ in 0..MAX_REJECTION_TRIALS {
        cost.rng_draws += 2;
        cost.probe_reads += 1;
        cost.weight_evals += 1;
        let x = ((u128::from(rng.next_u64()) * n as u128) >> 64) as usize;
        let y = rng.uniform_f64() * f64::from(bound);
        let w = weight_of(x);
        debug_assert!(
            f64::from(w) <= f64::from(bound) * (1.0 + 1e-5),
            "rejection bound {bound} below weight {w}"
        );
        if y <= f64::from(w) && w > 0.0 {
            return (Some(x), cost);
        }
    }
    // Fallback: exact scan (cost of one full pass).
    let weights: Vec<f32> = (0..n).map(weight_of).collect();
    let (idx, scan_cost) = sample_linear_cdf(&weights, rng);
    cost.add(&scan_cost);
    (idx, cost)
}

/// Slice-based convenience wrapper around [`sample_rejection_fn`].
pub fn sample_rejection<R: RandomSource>(
    weights: &[f32],
    bound: f32,
    rng: &mut R,
) -> (Option<usize>, ScalarCost) {
    sample_rejection_fn(|i| weights[i], weights.len(), bound, rng)
}

/// Baseline reservoir sampling with prefix sums (FlowWalker's RVS).
///
/// Visits neighbors in order, replacing the candidate `i` with probability
/// `w_i / W_i` where `W_i` is the running prefix sum. Requires the full
/// weight list *and* the prefix sums — the double memory traffic eRVS
/// removes — plus one RNG draw per neighbor.
pub fn sample_reservoir_prefix<R: RandomSource>(
    weights: &[f32],
    rng: &mut R,
) -> (Option<usize>, ScalarCost) {
    let n = weights.len();
    let cost = ScalarCost {
        weight_evals: n as u64,
        aux_ops: n as u64, // Prefix-sum construction.
        rng_draws: n as u64,
        ..Default::default()
    };
    let mut candidate = None;
    let mut running = 0.0f64;
    for (i, &w) in weights.iter().enumerate() {
        let u = rng.uniform_f64();
        if w <= 0.0 {
            continue;
        }
        running += f64::from(w);
        if u <= f64::from(w) / running {
            candidate = Some(i);
        }
    }
    (candidate, cost)
}

/// eRVS without the jump: Efraimidis–Spirakis exponential keys.
///
/// Assigns each neighbor the key `u_i^(1/w_i)` and returns the argmax
/// (paper Algorithm 1). One pass over the weights (no prefix sums) but
/// still one RNG draw per neighbor — this is the `+EXP` stage of the
/// Fig. 12a ablation.
pub fn sample_ervs_exp<R: RandomSource>(
    weights: &[f32],
    rng: &mut R,
) -> (Option<usize>, ScalarCost) {
    let n = weights.len();
    let cost = ScalarCost {
        weight_evals: n as u64,
        rng_draws: n as u64,
        ..Default::default()
    };
    let mut best: Option<(usize, f64)> = None;
    for (i, &w) in weights.iter().enumerate() {
        let u = rng.uniform_f64();
        if w <= 0.0 {
            continue;
        }
        let key = u.powf(1.0 / f64::from(w));
        if best.is_none_or(|(_, k)| key >= k) {
            best = Some((i, key));
        }
    }
    (best.map(|(i, _)| i), cost)
}

/// Full eRVS: exponential keys with the exponential-jump skip (A-ExpJ).
///
/// Instead of drawing a key per neighbor, the sampler draws the *skip
/// distance* `X = ln(u) / ln(k_g)` and jumps directly to the neighbor whose
/// running weight crosses it (paper Eq. 4), replacing the key with a draw
/// truncated to `(k_g, 1)`. RNG draws drop from `O(n)` to
/// `O(#record-updates)` ≈ `O(log n)` — the `+JUMP` stage of Fig. 12a.
/// Weight reads remain one pass (the running sum still needs every weight).
pub fn sample_ervs_jump<R: RandomSource>(
    weights: &[f32],
    rng: &mut R,
) -> (Option<usize>, ScalarCost) {
    let n = weights.len();
    let mut cost = ScalarCost {
        weight_evals: n as u64,
        ..Default::default()
    };
    // Find the first positive weight to seed the reservoir.
    let Some(first) = weights.iter().position(|&w| w > 0.0) else {
        return (None, cost);
    };
    let u = open01(rng, &mut cost);
    let mut k_g = u.powf(1.0 / f64::from(weights[first]));
    let mut best = first;
    // Skip threshold: amount of *weight* to consume before the next update.
    let mut x_w = open01(rng, &mut cost).ln() / k_g.ln();
    for (i, &w) in weights.iter().enumerate().skip(first + 1) {
        if w <= 0.0 {
            continue;
        }
        let w = f64::from(w);
        if x_w > w {
            x_w -= w;
            continue;
        }
        // This neighbor breaks the record. Its key, conditioned on beating
        // k_g, is Uniform(k_g^w, 1)^(1/w).
        let t = k_g.powf(w);
        let u2 = t + (1.0 - t) * open01(rng, &mut cost);
        k_g = u2.powf(1.0 / w);
        best = i;
        x_w = open01(rng, &mut cost).ln() / k_g.ln();
    }
    (Some(best), cost)
}

/// Computes `max(weights)` by full scan — the reduction eRJS eliminates.
pub fn exact_max(weights: &[f32]) -> (f32, ScalarCost) {
    let cost = ScalarCost {
        weight_evals: weights.len() as u64,
        aux_ops: weights.len() as u64,
        ..Default::default()
    };
    let m = weights.iter().copied().fold(0.0f32, f32::max);
    (m, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stat;
    use flexi_rng::Philox4x32;

    const TRIALS: usize = 60_000;
    const WEIGHTS: [f32; 5] = [3.0, 2.0, 4.0, 1.0, 0.5];

    fn run<F>(mut sampler: F) -> Vec<u64>
    where
        F: FnMut(&mut Philox4x32) -> Option<usize>,
    {
        let mut rng = Philox4x32::new(0xC0FFEE, 0);
        let mut counts = vec![0u64; WEIGHTS.len()];
        for _ in 0..TRIALS {
            let i = sampler(&mut rng).expect("positive-total weights");
            counts[i] += 1;
        }
        counts
    }

    #[test]
    fn linear_cdf_matches_distribution() {
        let counts = run(|rng| sample_linear_cdf(&WEIGHTS, rng).0);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "linear_cdf");
    }

    #[test]
    fn its_matches_distribution() {
        let counts = run(|rng| sample_its(&WEIGHTS, rng).0);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "its");
    }

    #[test]
    fn alias_matches_distribution() {
        let counts = run(|rng| sample_alias(&WEIGHTS, rng).0);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "alias");
    }

    #[test]
    fn rejection_with_exact_bound_matches_distribution() {
        let counts = run(|rng| sample_rejection(&WEIGHTS, 4.0, rng).0);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "rjs exact");
    }

    #[test]
    fn rejection_with_loose_bound_matches_distribution() {
        // The core eRJS claim (Eqs. 5-8): any bound >= max preserves the
        // distribution exactly.
        let counts = run(|rng| sample_rejection(&WEIGHTS, 40.0, rng).0);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "rjs loose");
    }

    #[test]
    fn rejection_loose_bound_costs_more_trials() {
        let mut rng = Philox4x32::new(7, 0);
        let mut tight = ScalarCost::default();
        let mut loose = ScalarCost::default();
        for _ in 0..2000 {
            tight.add(&sample_rejection(&WEIGHTS, 4.0, &mut rng).1);
            loose.add(&sample_rejection(&WEIGHTS, 40.0, &mut rng).1);
        }
        assert!(
            loose.probe_reads > 3 * tight.probe_reads,
            "loose {} vs tight {}",
            loose.probe_reads,
            tight.probe_reads
        );
    }

    #[test]
    fn reservoir_prefix_matches_distribution() {
        let counts = run(|rng| sample_reservoir_prefix(&WEIGHTS, rng).0);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "rvs prefix");
    }

    #[test]
    fn ervs_exp_matches_distribution() {
        let counts = run(|rng| sample_ervs_exp(&WEIGHTS, rng).0);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "ervs exp");
    }

    #[test]
    fn ervs_jump_matches_distribution() {
        let counts = run(|rng| sample_ervs_jump(&WEIGHTS, rng).0);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "ervs jump");
    }

    #[test]
    fn ervs_jump_uses_far_fewer_rng_draws() {
        let long: Vec<f32> = (0..1000).map(|i| 1.0 + (i % 7) as f32).collect();
        let mut rng = Philox4x32::new(3, 0);
        let (_, exp_cost) = sample_ervs_exp(&long, &mut rng);
        let (_, jump_cost) = sample_ervs_jump(&long, &mut rng);
        assert_eq!(exp_cost.rng_draws, 1000);
        assert!(
            jump_cost.rng_draws < 200,
            "jump drew {} times",
            jump_cost.rng_draws
        );
    }

    #[test]
    fn zero_weight_entries_are_never_selected() {
        let weights = [0.0f32, 2.0, 0.0, 3.0, 0.0];
        let mut rng = Philox4x32::new(11, 0);
        for _ in 0..2000 {
            for idx in [
                sample_linear_cdf(&weights, &mut rng).0,
                sample_its(&weights, &mut rng).0,
                sample_rejection(&weights, 3.0, &mut rng).0,
                sample_reservoir_prefix(&weights, &mut rng).0,
                sample_ervs_exp(&weights, &mut rng).0,
                sample_ervs_jump(&weights, &mut rng).0,
            ] {
                let i = idx.expect("total weight positive");
                assert!(i == 1 || i == 3, "selected zero-weight index {i}");
            }
        }
    }

    #[test]
    fn empty_and_all_zero_inputs_return_none() {
        let mut rng = Philox4x32::new(1, 0);
        let empty: [f32; 0] = [];
        let zeros = [0.0f32; 4];
        assert_eq!(sample_linear_cdf(&empty, &mut rng).0, None);
        assert_eq!(sample_linear_cdf(&zeros, &mut rng).0, None);
        assert_eq!(sample_its(&empty, &mut rng).0, None);
        assert_eq!(sample_its(&zeros, &mut rng).0, None);
        assert_eq!(sample_alias(&zeros, &mut rng).0, None);
        assert_eq!(sample_rejection(&empty, 1.0, &mut rng).0, None);
        assert_eq!(sample_reservoir_prefix(&zeros, &mut rng).0, None);
        assert_eq!(sample_ervs_exp(&zeros, &mut rng).0, None);
        assert_eq!(sample_ervs_jump(&zeros, &mut rng).0, None);
    }

    #[test]
    fn single_entry_is_always_selected() {
        let mut rng = Philox4x32::new(2, 0);
        let w = [7.0f32];
        assert_eq!(sample_linear_cdf(&w, &mut rng).0, Some(0));
        assert_eq!(sample_its(&w, &mut rng).0, Some(0));
        assert_eq!(sample_alias(&w, &mut rng).0, Some(0));
        assert_eq!(sample_rejection(&w, 7.0, &mut rng).0, Some(0));
        assert_eq!(sample_reservoir_prefix(&w, &mut rng).0, Some(0));
        assert_eq!(sample_ervs_exp(&w, &mut rng).0, Some(0));
        assert_eq!(sample_ervs_jump(&w, &mut rng).0, Some(0));
    }

    #[test]
    fn rejection_invalid_bound_returns_none() {
        let mut rng = Philox4x32::new(2, 0);
        assert_eq!(sample_rejection(&WEIGHTS, 0.0, &mut rng).0, None);
        assert_eq!(sample_rejection(&WEIGHTS, -1.0, &mut rng).0, None);
        assert_eq!(sample_rejection(&WEIGHTS, f32::NAN, &mut rng).0, None);
    }

    #[test]
    fn exact_max_scans_all() {
        let (m, c) = exact_max(&WEIGHTS);
        assert_eq!(m, 4.0);
        assert_eq!(c.weight_evals, 5);
    }

    #[test]
    fn costs_reflect_algorithm_structure() {
        let mut rng = Philox4x32::new(9, 0);
        let (_, its) = sample_its(&WEIGHTS, &mut rng);
        assert_eq!(its.weight_evals, 5);
        assert_eq!(its.aux_ops, 5);
        let (_, rvs) = sample_reservoir_prefix(&WEIGHTS, &mut rng);
        assert_eq!(rvs.rng_draws, 5);
        let (_, exp) = sample_ervs_exp(&WEIGHTS, &mut rng);
        assert_eq!(exp.rng_draws, 5);
        assert_eq!(exp.aux_ops, 0, "eRVS needs no auxiliary structure");
    }
}
