//! Prebuilt, incrementally maintainable per-node sampler state.
//!
//! The heavyweight strategies (ALS alias tables, ITS/tcdf CDFs) pay an
//! O(deg) construction on *every step* when run statelessly — the Fig. 3
//! cliff. For walkers whose transition weights do not depend on walker
//! history, that construction can instead be done **once per node per
//! graph epoch** and reused by every step that lands on the node; an
//! update batch then re-derives only the dirty nodes' artifacts (O(Δ),
//! the Bingo-style maintenance the ROADMAP names) instead of the whole
//! graph (O(|V|)).
//!
//! This module holds the artifact itself:
//!
//! - [`NodeState`] — one node's prebuilt structure: an alias table or a
//!   cumulative-distribution prefix, with scalar and warp sampling entry
//!   points that draw from the exact target distribution;
//! - [`StateTable`] — the per-graph collection, `Arc`-sharing node
//!   entries so an epoch migration clones the index in O(|V|) pointer
//!   bumps and rebuilds only the dirty nodes.
//!
//! Which strategy owns which artifact is declared on the [`Sampler`]
//! trait (`supports_state` / `build_node_state` / `state_step_cost` /
//! `state_update_cost`); the graph-handle cache that versions these
//! tables by epoch lives in `flexi-graph`, and the engine wiring in
//! `flexi-core`.
//!
//! [`Sampler`]: crate::sampler::Sampler

use crate::alias::AliasTable;
use crate::scalar::ScalarCost;
use flexi_gpu_sim::WarpCtx;
use flexi_rng::RandomSource;
use std::sync::Arc;

/// One node's prebuilt sampling structure.
///
/// Both variants answer "draw a neighbor index `i` with probability
/// `w_i / Σw`" without touching the weight array at sample time — the
/// per-step work drops from O(deg) to O(1) (alias) or O(log deg) (CDF).
#[derive(Clone, Debug)]
pub enum NodeState {
    /// Walker alias table: two draws, one random table probe.
    Alias(AliasTable),
    /// Cumulative weight prefix: one draw, a binary-search inversion.
    /// `prefix[i] = Σ_{j ≤ i} max(w_j, 0)` in f64.
    Cdf(Vec<f64>),
}

impl NodeState {
    /// Builds the CDF variant from one node's transition weights.
    ///
    /// Returns `None` for empty or all-dead neighborhoods (no positive
    /// weight), mirroring [`AliasTable::build`].
    pub fn build_cdf(weights: &[f32]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let mut acc = 0.0f64;
        let prefix: Vec<f64> = weights
            .iter()
            .map(|&w| {
                if w.is_finite() {
                    acc += f64::from(w.max(0.0));
                }
                acc
            })
            .collect();
        if acc <= 0.0 {
            return None;
        }
        Some(Self::Cdf(prefix))
    }

    /// Number of outcomes the artifact covers.
    pub fn len(&self) -> usize {
        match self {
            Self::Alias(t) => t.len(),
            Self::Cdf(p) => p.len(),
        }
    }

    /// Whether the artifact covers no outcomes (never true once built).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Warp-kernel entry point: samples one neighbor index from the
    /// prebuilt structure, drawing from `lane`'s RNG stream and charging
    /// `ctx` for the table probes.
    pub fn sample_warp(&self, ctx: &mut WarpCtx, lane: usize) -> Option<usize> {
        match self {
            Self::Alias(t) => {
                let col = ctx.draw_index(lane, t.len());
                let u = ctx.draw_f64(lane);
                // One random probe fetches the bucket's (prob, alias) pair.
                ctx.read_random(12);
                Some(if u <= t.bucket_prob(col) {
                    col
                } else {
                    t.bucket_alias(col)
                })
            }
            Self::Cdf(prefix) => {
                let n = prefix.len();
                let total = *prefix.last()?;
                if total <= 0.0 {
                    return None;
                }
                let target = ctx.draw_f64(lane) * total;
                let (mut lo, mut hi) = (0usize, n - 1);
                while lo < hi {
                    // Each probe is one random read of a prefix entry.
                    ctx.alu(1);
                    ctx.read_random(8);
                    let mid = (lo + hi) / 2;
                    if prefix[mid] < target {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                cdf_finish(prefix, lo)
            }
        }
    }

    /// Scalar reference entry point — the same draw sequence as
    /// [`NodeState::sample_warp`], so a bound stream produces identical
    /// picks through either.
    pub fn sample_scalar(&self, rng: &mut dyn RandomSource) -> (Option<usize>, ScalarCost) {
        let mut cost = ScalarCost::default();
        match self {
            Self::Alias(t) => {
                cost.rng_draws = 2;
                cost.probe_reads = 1;
                // Mirrors WarpCtx::draw_index (u32 multiply-shift), then
                // the alias method's stay-or-alias test.
                let x = rng.next_u32();
                let col = ((u64::from(x) * t.len() as u64) >> 32) as usize;
                let u = rng.uniform_f64();
                let picked = if u <= t.bucket_prob(col) {
                    col
                } else {
                    t.bucket_alias(col)
                };
                (Some(picked), cost)
            }
            Self::Cdf(prefix) => {
                let n = prefix.len();
                let total = match prefix.last() {
                    Some(&t) if t > 0.0 => t,
                    _ => return (None, cost),
                };
                cost.rng_draws = 1;
                let target = rng.uniform_f64() * total;
                let (mut lo, mut hi) = (0usize, n - 1);
                while lo < hi {
                    cost.probe_reads += 1;
                    let mid = (lo + hi) / 2;
                    if prefix[mid] < target {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                (cdf_finish(prefix, lo), cost)
            }
        }
    }
}

/// Maps an inverted-CDF position to a *positive-weight* outcome: the
/// target can land exactly on a run of zero-weight entries (their prefix
/// is flat), in which case the next live outcome owns the mass.
fn cdf_finish(prefix: &[f64], at: usize) -> Option<usize> {
    let live = |i: usize| prefix[i] > if i == 0 { 0.0 } else { prefix[i - 1] };
    let n = prefix.len();
    let mut i = at;
    while i < n && !live(i) {
        i += 1;
    }
    if i == n {
        return (0..n).rev().find(|&j| live(j));
    }
    Some(i)
}

/// The per-graph sampler-state artifact: one optional [`NodeState`] per
/// source node (`None` for dead-end or all-zero neighborhoods).
///
/// Node entries are `Arc`-shared, so migrating the table across a graph
/// epoch clones the index cheaply and replaces only the dirty nodes —
/// the table's maintenance cost scales with Δ, not |V|. Because each
/// node's artifact is a pure function of that node's weight vector,
/// patching dirty nodes is **bit-identical** to a from-scratch rebuild.
#[derive(Clone, Debug, Default)]
pub struct StateTable {
    nodes: Vec<Option<Arc<NodeState>>>,
}

impl StateTable {
    /// Wraps per-node artifacts (index = node id).
    pub fn new(nodes: Vec<Option<Arc<NodeState>>>) -> Self {
        Self { nodes }
    }

    /// Number of source nodes covered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the table covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The artifact for node `v`, if it has one.
    pub fn node(&self, v: usize) -> Option<&NodeState> {
        self.nodes.get(v).and_then(|s| s.as_deref())
    }

    /// Number of nodes holding a built artifact (live, non-dead-end).
    pub fn built_nodes(&self) -> usize {
        self.nodes.iter().filter(|s| s.is_some()).count()
    }

    /// A copy of this table with the given nodes' artifacts replaced —
    /// the O(Δ) epoch-migration step. Untouched nodes share their
    /// existing artifacts.
    pub fn patched(&self, dirty: impl IntoIterator<Item = (usize, Option<NodeState>)>) -> Self {
        let mut nodes = self.nodes.clone();
        for (v, state) in dirty {
            if v < nodes.len() {
                nodes[v] = state.map(Arc::new);
            }
        }
        Self { nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stat;
    use flexi_rng::Philox4x32;

    const WEIGHTS: [f32; 5] = [3.0, 2.0, 4.0, 1.0, 0.5];
    const MASKED: [f32; 8] = [0.0, 0.0, 3.0, 0.0, 1.0, 0.0, 0.0, 2.0];

    #[test]
    fn cdf_build_rejects_degenerate_inputs() {
        assert!(NodeState::build_cdf(&[]).is_none());
        assert!(NodeState::build_cdf(&[0.0, 0.0]).is_none());
        assert!(NodeState::build_cdf(&[f32::NAN]).is_none());
    }

    #[test]
    fn alias_state_scalar_matches_distribution() {
        let s = NodeState::Alias(AliasTable::build(&WEIGHTS).unwrap());
        let mut counts = vec![0u64; WEIGHTS.len()];
        for trial in 0..40_000u64 {
            let mut rng = Philox4x32::new(trial, 0xA1);
            let (picked, _) = s.sample_scalar(&mut rng);
            counts[picked.expect("positive weights")] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "alias state");
    }

    #[test]
    fn cdf_state_scalar_matches_distribution_on_masked_weights() {
        let s = NodeState::build_cdf(&MASKED).unwrap();
        let mut counts = vec![0u64; MASKED.len()];
        for trial in 0..40_000u64 {
            let mut rng = Philox4x32::new(trial, 0xA2);
            let (picked, _) = s.sample_scalar(&mut rng);
            counts[picked.expect("positive weights")] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&MASKED), "cdf state");
    }

    #[test]
    fn warp_and_scalar_entry_points_agree_per_stream() {
        for weights in [&WEIGHTS[..], &MASKED[..]] {
            for state in [
                NodeState::Alias(AliasTable::build(weights).unwrap()),
                NodeState::build_cdf(weights).unwrap(),
            ] {
                for trial in 0..500u64 {
                    let mut ctx = WarpCtx::new(0, 0);
                    ctx.bind_stream(Philox4x32::new(trial, 0xA3));
                    let via_warp = state.sample_warp(&mut ctx, 0);
                    let mut rng = Philox4x32::new(trial, 0xA3);
                    let (via_scalar, _) = state.sample_scalar(&mut rng);
                    assert_eq!(via_warp, via_scalar, "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn warp_sampling_charges_probes_not_weight_passes() {
        let s = NodeState::Alias(AliasTable::build(&WEIGHTS).unwrap());
        let mut ctx = WarpCtx::new(0, 0x77);
        s.sample_warp(&mut ctx, 0).unwrap();
        assert!(ctx.stats().random_transactions >= 1);
        assert_eq!(
            ctx.stats().coalesced_transactions,
            0,
            "no per-step weight pass"
        );
    }

    #[test]
    fn state_table_patching_is_o_delta_and_matches_rebuild() {
        let build = |weights: &[&[f32]]| {
            StateTable::new(
                weights
                    .iter()
                    .map(|w| NodeState::build_cdf(w).map(Arc::new))
                    .collect(),
            )
        };
        let before: [&[f32]; 3] = [&[1.0, 2.0], &[3.0], &[]];
        let after: [&[f32]; 3] = [&[1.0, 2.0], &[5.0, 1.0], &[]];
        let t = build(&before);
        assert_eq!(t.len(), 3);
        assert_eq!(t.built_nodes(), 2);
        // Patch only node 1; node 0's artifact must be *shared*, not rebuilt.
        let patched = t.patched([(1, NodeState::build_cdf(after[1]))]);
        assert!(Arc::ptr_eq(
            t.nodes[0].as_ref().unwrap(),
            patched.nodes[0].as_ref().unwrap()
        ));
        let rebuilt = build(&after);
        for v in 0..3 {
            match (patched.node(v), rebuilt.node(v)) {
                (Some(NodeState::Cdf(a)), Some(NodeState::Cdf(b))) => assert_eq!(a, b),
                (None, None) => {}
                other => panic!("node {v} mismatch: {other:?}"),
            }
        }
    }
}
