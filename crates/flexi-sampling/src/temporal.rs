//! Temporal CDF sampling — the registry entry backing time-windowed walks.
//!
//! Time-biased walkers (exponential/linear recency kernels over a
//! [`TimeWindow`](../../flexi_graph/temporal/struct.TimeWindow.html)-masked
//! neighborhood) produce weight vectors that are *mostly zero*: every
//! masked or backwards-in-time edge weighs nothing. Rejection-style
//! strategies degrade badly there (the acceptance rate collapses with the
//! live fraction), and reservoir kernels still pay an RNG draw per dead
//! neighbor. The temporal CDF strategy instead materialises the running
//! sum in one coalesced pass — dead edges contribute nothing and cost no
//! RNG — and inverts it with a single draw.
//!
//! [`TcdfSampler`] is deliberately **not** part of
//! [`SamplerRegistry::builtin`](crate::SamplerRegistry::builtin): the
//! paper's evaluated pair stays exactly eRVS + eRJS. Temporal sessions
//! register it explicitly and the cost model argmins over it like any
//! other entry.

use crate::kernels::NeighborView;
use crate::sampler::{ids, CostInputs, Granularity, Sampler, SamplerId};
use crate::scalar::ScalarCost;
use crate::state::NodeState;
use flexi_gpu_sim::{WarpCtx, WARP_SIZE};
use flexi_rng::RandomSource;

/// Temporal CDF sampling: one coalesced weight pass accumulating the
/// running sum, one RNG draw, one inversion scan.
///
/// Draws from the exact target distribution `p(i) = w̃_i / Σ w̃` (the
/// registry contract), so Flexi-Runtime may interleave it freely with the
/// other strategies.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcdfSampler;

impl Sampler for TcdfSampler {
    fn id(&self) -> SamplerId {
        ids::TCDF
    }

    fn name(&self) -> &'static str {
        "temporal CDF"
    }

    fn granularity(&self) -> Granularity {
        Granularity::Warp
    }

    fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // One weight pass + the in-register running sum (≈ one sequential
        // unit per edge together), then an inversion whose random probes
        // amortise to a binary-search-depth handful. Always priceable —
        // no bound estimate involved.
        Some(2.0 * inp.deg + inp.edge_cost_ratio * inp.deg.max(1.0).log2())
    }

    fn sample_warp(&self, ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
        warp_tcdf(ctx, view)
    }

    fn sample_scalar(
        &self,
        weights: &[f32],
        _bound: Option<f32>,
        rng: &mut dyn RandomSource,
    ) -> (Option<usize>, ScalarCost) {
        sample_linear_cdf(weights, rng)
    }

    fn supports_state(&self) -> bool {
        true
    }

    fn build_node_state(&self, weights: &[f32]) -> Option<NodeState> {
        NodeState::build_cdf(weights)
    }

    fn state_step_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Prebuilt running sum: only the inversion's random probes remain.
        Some(inp.edge_cost_ratio * inp.deg.max(1.0).log2().max(1.0))
    }

    fn state_update_cost(&self, inp: &CostInputs) -> Option<f64> {
        // Re-prefix one dirty node's segment: a single coalesced pass.
        Some(2.0 * inp.deg)
    }
}

/// The warp kernel: chunked prefix sums over the live weights (one
/// coalesced pass, the running total carried in registers), then a single
/// draw inverted by a scan charged at binary-search depth.
pub fn warp_tcdf(ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
    let n = view.deg;
    if n == 0 {
        return None;
    }
    ctx.read_coalesced(n * view.bytes_per_weight);
    // The CDF never leaves the warp: per-chunk Hillis-Steele prefix sums
    // with the chunk carry shuffled along — no staging round-trip, the
    // structural saving over ITS on mostly-masked neighborhoods.
    let mut prefix = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    let chunks = n.div_ceil(WARP_SIZE);
    for c in 0..chunks {
        let mut vals = [0.0f32; WARP_SIZE];
        for (lane, v) in vals.iter_mut().enumerate() {
            let i = c * WARP_SIZE + lane;
            if i < n {
                *v = (view.weight)(i).max(0.0);
            }
        }
        let ps = ctx.prefix_sum_f32(&vals);
        for (lane, &p) in ps.iter().enumerate() {
            let i = c * WARP_SIZE + lane;
            if i < n {
                prefix.push(acc + f64::from(p));
            }
        }
        acc += f64::from(ps[WARP_SIZE - 1]);
        ctx.alu(WARP_SIZE as u64);
    }
    let total = *prefix.last().expect("n > 0");
    if total <= 0.0 {
        return None;
    }
    let target = ctx.draw_f64(0) * total;
    // Register-resident inversion: binary search over the prefix vector,
    // each probe a shuffle from the owning lane (no memory traffic).
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        ctx.alu(1);
        let mid = (lo + hi) / 2;
        if prefix[mid] < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    finish_pick(view, n, lo)
}

/// Scalar reference: running sum in one pass, one draw, inversion scan.
pub fn sample_linear_cdf(
    weights: &[f32],
    rng: &mut dyn RandomSource,
) -> (Option<usize>, ScalarCost) {
    let n = weights.len();
    let mut cost = ScalarCost {
        weight_evals: n as u64,
        aux_ops: n as u64,
        ..Default::default()
    };
    if n == 0 {
        return (None, cost);
    }
    let total: f64 = weights.iter().map(|&w| f64::from(w.max(0.0))).sum();
    if total <= 0.0 {
        return (None, cost);
    }
    cost.rng_draws = 1;
    let target = rng.uniform_f64() * total;
    let mut acc = 0.0f64;
    for (i, &w) in weights.iter().enumerate() {
        acc += f64::from(w.max(0.0));
        cost.probe_reads += 1;
        if acc >= target && w > 0.0 {
            return (Some(i), cost);
        }
    }
    // Rounding pushed the target past the last positive entry.
    (weights.iter().rposition(|&w| w > 0.0), cost)
}

/// Maps the inverted CDF position to a *positive-weight* neighbor: a zero
/// slot can be hit when the target lands exactly on a run of dead edges.
fn finish_pick(view: &NeighborView<'_>, n: usize, at: usize) -> Option<usize> {
    let mut i = at;
    while i < n && (view.weight)(i) <= 0.0 {
        i += 1;
    }
    if i == n {
        return (0..n).rev().find(|&j| (view.weight)(j) > 0.0);
    }
    Some(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stat;
    use crate::SamplerRegistry;
    use flexi_rng::Philox4x32;

    // A temporal-looking vector: most edges masked to zero.
    const WEIGHTS: [f32; 8] = [0.0, 0.0, 3.0, 0.0, 1.0, 0.0, 0.0, 2.0];

    #[test]
    fn scalar_matches_distribution_on_masked_weights() {
        let mut counts = vec![0u64; WEIGHTS.len()];
        for trial in 0..40_000u64 {
            let mut rng = Philox4x32::new(trial, 0x7C);
            let (picked, _) = TcdfSampler.sample_scalar(&WEIGHTS, None, &mut rng);
            counts[picked.expect("positive weights")] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "scalar tcdf");
    }

    #[test]
    fn warp_kernel_matches_distribution() {
        let wf = |i: usize| WEIGHTS[i];
        let view = NeighborView::new(&wf, WEIGHTS.len(), 12);
        let mut counts = vec![0u64; WEIGHTS.len()];
        for trial in 0..40_000u64 {
            let mut ctx = WarpCtx::new(trial as usize, 0x7D);
            let picked = TcdfSampler.sample_warp(&mut ctx, &view);
            counts[picked.expect("positive weights")] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "warp tcdf");
    }

    #[test]
    fn dead_neighborhoods_and_empty_views_are_none() {
        let dead = [0.0f32; 4];
        let mut rng = Philox4x32::new(1, 2);
        assert_eq!(TcdfSampler.sample_scalar(&dead, None, &mut rng).0, None);
        let wf = |_: usize| 0.0f32;
        let mut ctx = WarpCtx::new(0, 3);
        assert_eq!(
            TcdfSampler.sample_warp(&mut ctx, &NeighborView::new(&wf, 4, 12)),
            None
        );
        assert_eq!(
            TcdfSampler.sample_warp(&mut ctx, &NeighborView::new(&wf, 0, 12)),
            None
        );
    }

    #[test]
    fn cost_is_priceable_without_bounds_and_charges_weight_pass() {
        let inp = CostInputs {
            deg: 64.0,
            max_est: None,
            sum_est: None,
            edge_cost_ratio: 8.0,
        };
        let cost = TcdfSampler.step_cost(&inp).expect("bound-free");
        assert!((cost - (128.0 + 8.0 * 6.0)).abs() < 1e-9);
        assert!(!TcdfSampler.needs_bound());
        // The kernel's accounting reflects the single coalesced pass.
        let wf = |i: usize| WEIGHTS[i];
        let view = NeighborView::new(&wf, WEIGHTS.len(), 12);
        let mut ctx = WarpCtx::new(0, 0x7E);
        TcdfSampler.sample_warp(&mut ctx, &view).unwrap();
        assert!(ctx.stats().coalesced_transactions >= 1);
        assert_eq!(ctx.stats().random_transactions, 0, "CDF stays in registers");
    }

    #[test]
    fn tcdf_stays_out_of_the_builtin_registries() {
        assert!(!SamplerRegistry::builtin().contains(ids::TCDF));
        assert!(!SamplerRegistry::with_baselines().contains(ids::TCDF));
        let mut r = SamplerRegistry::builtin();
        r.register(std::sync::Arc::new(TcdfSampler));
        assert_eq!(
            r.ids().last().copied(),
            Some(ids::TCDF),
            "appended after the pair"
        );
        assert_eq!(r.len(), 3);
    }
}
