//! Warp-level (SIMT) sampling kernels with memory-cost accounting.
//!
//! Each kernel mirrors its scalar counterpart in [`crate::scalar`] but is
//! expressed as lockstep 32-lane execution on a [`WarpCtx`], charging the
//! DRAM transactions, RNG draws and warp-intrinsic steps the real CUDA
//! kernel would issue. The charged quantities are what the paper's analysis
//! (§3, §4.1) says distinguishes the strategies:
//!
//! - ITS/ALS pay auxiliary-structure construction *per step*;
//! - baseline RJS pays a full max-reduction per step (NextDoor);
//! - baseline RVS pays prefix sums (double weight traffic) and one RNG draw
//!   per neighbor (FlowWalker);
//! - eRVS pays a single weight pass and ~`O(log n)` RNG draws;
//! - eRJS pays only probed weights, given a bound from the estimator.

use crate::MAX_REJECTION_TRIALS;
use flexi_gpu_sim::{WarpCtx, WARP_SIZE};

/// A warp's view of the current node's neighbor transition weights.
///
/// `weight(i)` lazily evaluates the *dynamic* transition weight
/// `w̃(v, uᵢ) = w(v, uᵢ) · h(v, uᵢ)` of the `i`-th neighbor;
/// `bytes_per_weight` is the DRAM traffic one evaluation touches
/// (adjacency entry + property weight, and for second-order workloads the
/// `dist(v', uᵢ)` probe).
pub struct NeighborView<'a> {
    /// Lazy transition-weight evaluator.
    pub weight: &'a dyn Fn(usize) -> f32,
    /// Number of neighbors.
    pub deg: usize,
    /// DRAM bytes touched per single-neighbor weight evaluation.
    pub bytes_per_weight: usize,
}

impl<'a> NeighborView<'a> {
    /// Convenience constructor.
    pub fn new(weight: &'a dyn Fn(usize) -> f32, deg: usize, bytes_per_weight: usize) -> Self {
        Self {
            weight,
            deg,
            bytes_per_weight,
        }
    }

    #[inline]
    fn eval(&self, i: usize) -> f32 {
        (self.weight)(i)
    }
}

/// Charges one warp-wide coalesced pass over `count` weights.
fn charge_weight_pass(ctx: &mut WarpCtx, view: &NeighborView<'_>, count: usize) {
    ctx.read_coalesced(count * view.bytes_per_weight);
}

/// Inverse-transform sampling, C-SAW style (Fig. 2c).
///
/// Full weight pass → staging round-trip → warp prefix sums → normalised
/// CDF stored back → binary search by a single lane. Charged: the weight
/// pass, the weight staging write/read, the CDF store plus its
/// normalisation read-modify-write, `log₂ deg` random probes, and the
/// per-chunk shuffle stages with their serial chunk-carry dependency.
#[allow(clippy::needless_range_loop)]
pub fn warp_its(ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
    let n = view.deg;
    if n == 0 {
        return None;
    }
    charge_weight_pass(ctx, view, n);
    // The computed weights are staged to memory and re-read by the
    // prefix-sum pass (registers cannot hold an arbitrary-degree list).
    ctx.write_coalesced(n * 4);
    ctx.read_coalesced(n * 4);
    // Prefix-sum the weights chunk by chunk (Hillis-Steele per chunk).
    let mut prefix = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    let chunks = n.div_ceil(WARP_SIZE);
    for c in 0..chunks {
        let mut vals = [0.0f32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            let i = c * WARP_SIZE + lane;
            if i < n {
                vals[lane] = view.eval(i).max(0.0);
            }
        }
        let ps = ctx.prefix_sum_f32(&vals);
        for lane in 0..WARP_SIZE {
            let i = c * WARP_SIZE + lane;
            if i < n {
                prefix.push(acc + f64::from(ps[lane]));
            }
        }
        acc += f64::from(ps[WARP_SIZE - 1]);
        ctx.alu(WARP_SIZE as u64);
    }
    // Store the CDF, then normalise it in place (C-SAW materialises the
    // normalised distribution in memory: one write pass, one read-modify-
    // write pass, plus the serial chunk-carry dependency chain).
    ctx.write_coalesced(n * 4);
    ctx.read_coalesced(n * 4);
    ctx.write_coalesced(n * 4);
    ctx.alu(n as u64);
    let total = *prefix.last().expect("n > 0");
    if total <= 0.0 {
        return None;
    }
    let target = ctx.draw_f64(0) * total;
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        ctx.read_random(4);
        let mid = (lo + hi) / 2;
        if prefix[mid] < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let mut i = lo;
    while i < n && view.eval(i) <= 0.0 {
        i += 1;
    }
    if i == n {
        i = (0..n).rev().find(|&j| view.eval(j) > 0.0)?;
    }
    Some(i)
}

/// Alias sampling, Skywalker style (Fig. 2b).
///
/// Full weight pass → mean reduction → table construction (two arrays
/// written) → 2 RNG draws + one random table probe. The per-step table
/// build is the dominant charge.
pub fn warp_alias(ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
    let n = view.deg;
    if n == 0 {
        return None;
    }
    charge_weight_pass(ctx, view, n);
    let weights: Vec<f32> = (0..n).map(|i| view.eval(i)).collect();
    // Mean reduction (per-chunk butterfly).
    let chunks = n.div_ceil(WARP_SIZE) as u64;
    for _ in 0..chunks {
        let zero = [0.0f32; WARP_SIZE];
        ctx.reduce_sum_f32(&zero);
    }
    // Table construction: classify buckets, then redistribute excess —
    // every bucket is visited on average twice while the two-stack
    // balancing donates overweight mass (read-modify-write of the
    // prob/alias pair each time) — then store the final arrays.
    ctx.alu(3 * n as u64);
    ctx.read_coalesced(n * 8);
    ctx.write_coalesced(n * 8);
    ctx.read_coalesced(n * 8);
    ctx.write_coalesced(n * 8);
    let table = crate::alias::AliasTable::build(&weights)?;
    // Sample: two draws, one random probe into the table.
    let col = ctx.draw_index(0, n);
    let u = ctx.draw_f64(0);
    ctx.read_random(8);
    let pick = if u <= table.bucket_prob(col) {
        col
    } else {
        table.bucket_alias(col)
    };
    Some(pick)
}

/// Rejection sampling trials on a single lane (Fig. 2d).
///
/// `bound` must dominate every transition weight. Each trial costs two RNG
/// draws and two scattered reads (the probed adjacency entry and its
/// property/history data live in separate arrays). Returns the accepted
/// neighbor and the number of trials; falls back to an exact scan
/// (charged coalesced) after [`MAX_REJECTION_TRIALS`].
pub fn lane_rejection(
    ctx: &mut WarpCtx,
    lane: usize,
    view: &NeighborView<'_>,
    bound: f32,
) -> (Option<usize>, u32) {
    let n = view.deg;
    // NaN-rejecting guard: `!(bound > 0)` is false for any positive bound
    // and true for zero, negatives and NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if n == 0 || !(bound > 0.0) {
        return (None, 0);
    }
    for trial in 1..=MAX_REJECTION_TRIALS {
        let x = ctx.draw_index(lane, n);
        let y = ctx.draw_f32(lane) * bound;
        // A probed weight evaluation gathers from separate arrays (the
        // adjacency entry and the property/history data live apart), so it
        // costs two scattered transactions.
        ctx.read_random(4);
        ctx.read_random(view.bytes_per_weight.saturating_sub(4).max(4));
        ctx.alu(2);
        let w = view.eval(x);
        if w > 0.0 && y <= w {
            return (Some(x), trial);
        }
    }
    // Exact fallback: one coalesced pass + linear CDF with lane RNG.
    charge_weight_pass(ctx, view, n);
    ctx.alu(n as u64);
    let weights: Vec<f32> = (0..n).map(|i| view.eval(i)).collect();
    let total: f64 = weights.iter().map(|&w| f64::from(w)).sum();
    if total <= 0.0 {
        return (None, MAX_REJECTION_TRIALS);
    }
    let target = ctx.draw_f64(lane) * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += f64::from(w);
        if target <= acc && w > 0.0 {
            return (Some(i), MAX_REJECTION_TRIALS);
        }
    }
    (weights.iter().rposition(|&w| w > 0.0), MAX_REJECTION_TRIALS)
}

/// NextDoor's per-step exact max-weight reduction (the cost eRJS removes).
///
/// Full coalesced weight pass plus per-chunk butterfly reductions; returns
/// the exact maximum.
#[allow(clippy::needless_range_loop)]
pub fn warp_max_reduce(ctx: &mut WarpCtx, view: &NeighborView<'_>) -> f32 {
    let n = view.deg;
    if n == 0 {
        return 0.0;
    }
    charge_weight_pass(ctx, view, n);
    let chunks = n.div_ceil(WARP_SIZE);
    let mut max = 0.0f32;
    for c in 0..chunks {
        let mut vals = [0.0f32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            let i = c * WARP_SIZE + lane;
            if i < n {
                vals[lane] = view.eval(i);
            }
        }
        max = max.max(ctx.reduce_max_f32(&vals));
    }
    max
}

/// NextDoor's max reduction under transit parallelism for *history-
/// dependent* weights.
///
/// NextDoor groups walkers by transit node, but a dynamic walk's weights
/// depend on each walker's `prev`, so the per-walker weight evaluations
/// gather from scattered locations (the `dist(prev, ·)` probes) instead of
/// one coalesced stream. Every weight read is charged as a random
/// transaction — this is the overhead Fig. 12b shows eRJS eliminating.
#[allow(clippy::needless_range_loop)]
pub fn warp_max_reduce_scattered(ctx: &mut WarpCtx, view: &NeighborView<'_>) -> f32 {
    let n = view.deg;
    if n == 0 {
        return 0.0;
    }
    let chunks = n.div_ceil(WARP_SIZE);
    let mut max = 0.0f32;
    for c in 0..chunks {
        let mut vals = [0.0f32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            let i = c * WARP_SIZE + lane;
            if i < n {
                // Same two-array gather as a rejection probe, per edge.
                ctx.read_random(4);
                ctx.read_random(view.bytes_per_weight.saturating_sub(4).max(4));
                vals[lane] = view.eval(i);
            }
        }
        max = max.max(ctx.reduce_max_f32(&vals));
    }
    max
}

/// Baseline reservoir sampling with prefix sums, FlowWalker style (Fig. 2e).
///
/// Two coalesced passes over the weights (weights + prefix sums), one RNG
/// draw per neighbor, argmax reduce. Accepting the *last* index whose
/// `u ≤ w_i / W_i` reproduces sequential reservoir semantics exactly.
#[allow(clippy::needless_range_loop)]
pub fn warp_reservoir_prefix(ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
    let n = view.deg;
    if n == 0 {
        return None;
    }
    // Pass 1: weights for the prefix-sum build.
    charge_weight_pass(ctx, view, n);
    // Pass 2: FlowWalker re-reads weight/prefix pairs during comparison.
    charge_weight_pass(ctx, view, n);
    let chunks = n.div_ceil(WARP_SIZE);
    let mut candidate = None;
    let mut running = 0.0f64;
    for c in 0..chunks {
        // Per-chunk prefix sums and comparisons in lockstep.
        let mut vals = [0.0f32; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            let i = c * WARP_SIZE + lane;
            if i < n {
                vals[lane] = view.eval(i).max(0.0);
            }
        }
        let ps = ctx.prefix_sum_f32(&vals);
        for lane in 0..WARP_SIZE {
            let i = c * WARP_SIZE + lane;
            if i >= n {
                continue;
            }
            let u = f64::from(ctx.draw_f32(lane));
            let w = f64::from(vals[lane]);
            if w <= 0.0 {
                continue;
            }
            let w_total = running + f64::from(ps[lane]);
            if u <= w / w_total {
                candidate = Some(i);
            }
        }
        running += f64::from(ps[WARP_SIZE - 1]);
        ctx.alu(WARP_SIZE as u64);
    }
    // Final argmax reduce to pick the winning lane's candidate.
    let dummy = [0.0f32; WARP_SIZE];
    ctx.reduce_argmax_f32(&dummy);
    candidate
}

/// Which eRVS optimisation stages to apply (the Fig. 12a ablation axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErvsMode {
    /// Exponential keys only (`+EXP`): one weight pass, one draw/neighbor.
    Exp,
    /// Exponential keys + jump (`+JUMP`): one weight pass, `O(log n)` draws.
    ExpJump,
}

/// eRVS: the paper's optimised reservoir kernel (§3.2, Fig. 4).
///
/// Lane `l` owns the neighbor stripe `{l, l+32, l+64, …}`. Iteration 1
/// computes one key per lane and reduces to the global max `k_g`; in
/// [`ErvsMode::ExpJump`] each lane then runs the exponential-jump scan over
/// its stripe (thresholds seeded from `k_g`, truncated redraws on record
/// updates), and a final argmax reduction picks the winner.
pub fn warp_ervs(ctx: &mut WarpCtx, view: &NeighborView<'_>, mode: ErvsMode) -> Option<usize> {
    let n = view.deg;
    if n == 0 {
        return None;
    }
    // Single coalesced weight pass — no prefix sums (the `EXP` saving).
    charge_weight_pass(ctx, view, n);

    // Iteration 1: one key per lane for the first up-to-32 neighbors.
    let mut lane_key = [f64::NEG_INFINITY; WARP_SIZE];
    let mut lane_best = [usize::MAX; WARP_SIZE];
    let active = n.min(WARP_SIZE);
    let mut keys32 = [f32::NEG_INFINITY; WARP_SIZE];
    for lane in 0..active {
        let w = view.eval(lane);
        if w > 0.0 {
            let u = open01_lane(ctx, lane);
            let k = u.powf(1.0 / f64::from(w));
            lane_key[lane] = k;
            lane_best[lane] = lane;
            keys32[lane] = k as f32;
        }
    }
    let (_, kg32) = ctx.reduce_argmax_f32(&keys32);
    let k_g = f64::from(kg32);

    match mode {
        ErvsMode::Exp => {
            // Every remaining neighbor gets a key; lanes keep local maxima.
            for i in WARP_SIZE..n {
                let lane = i % WARP_SIZE;
                let w = view.eval(i);
                if w <= 0.0 {
                    continue;
                }
                let u = open01_lane(ctx, lane);
                let k = u.powf(1.0 / f64::from(w));
                ctx.alu(2);
                if k >= lane_key[lane] {
                    lane_key[lane] = k;
                    lane_best[lane] = i;
                }
            }
        }
        ErvsMode::ExpJump => {
            // Per-lane A-ExpJ over the stripe, seeded at the global max.
            if k_g > f64::NEG_INFINITY {
                for lane in 0..active {
                    let mut k_cur = k_g;
                    let mut x_w = open01_lane(ctx, lane).ln() / k_cur.ln();
                    let mut i = lane + WARP_SIZE;
                    while i < n {
                        let w = f64::from(view.eval(i).max(0.0));
                        ctx.alu(1);
                        if w > 0.0 {
                            if x_w <= w {
                                // Record update with a truncated redraw.
                                let t = k_cur.powf(w);
                                let u2 = t + (1.0 - t) * open01_lane(ctx, lane);
                                k_cur = u2.powf(1.0 / w);
                                lane_key[lane] = k_cur;
                                lane_best[lane] = i;
                                x_w = open01_lane(ctx, lane).ln() / k_cur.ln();
                            } else {
                                x_w -= w;
                            }
                        }
                        i += WARP_SIZE;
                    }
                }
            }
        }
    }

    // Final argmax reduce across lanes.
    let mut finals = [f32::NEG_INFINITY; WARP_SIZE];
    for lane in 0..WARP_SIZE {
        if lane_best[lane] != usize::MAX {
            finals[lane] = lane_key[lane] as f32;
        }
    }
    let (win_lane, win_key) = ctx.reduce_argmax_f32(&finals);
    if win_key == f32::NEG_INFINITY {
        return None;
    }
    Some(lane_best[win_lane])
}

/// Draws a uniform `f64` strictly inside `(0, 1)` on `lane`.
fn open01_lane(ctx: &mut WarpCtx, lane: usize) -> f64 {
    loop {
        let u = ctx.draw_f64(lane);
        if u < 1.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stat;

    const WEIGHTS: [f32; 5] = [3.0, 2.0, 4.0, 1.0, 0.5];
    const TRIALS: usize = 60_000;

    fn run_warp<F>(weights: &[f32], mut f: F) -> Vec<u64>
    where
        F: FnMut(&mut WarpCtx, &NeighborView<'_>) -> Option<usize>,
    {
        let wf = |i: usize| weights[i];
        let v = NeighborView::new(&wf, weights.len(), 8);
        let mut counts = vec![0u64; weights.len()];
        for trial in 0..TRIALS {
            let mut ctx = WarpCtx::new(trial, 0xAB);
            let i = f(&mut ctx, &v).expect("positive weights");
            counts[i] += 1;
        }
        counts
    }

    #[test]
    fn warp_its_matches_distribution() {
        let counts = run_warp(&WEIGHTS, warp_its);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "warp its");
    }

    #[test]
    fn warp_reservoir_prefix_matches_distribution() {
        let counts = run_warp(&WEIGHTS, warp_reservoir_prefix);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "warp rvs");
    }

    #[test]
    fn warp_ervs_exp_matches_distribution() {
        let counts = run_warp(&WEIGHTS, |ctx, v| warp_ervs(ctx, v, ErvsMode::Exp));
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "warp ervs exp");
    }

    #[test]
    fn warp_ervs_jump_matches_distribution() {
        let counts = run_warp(&WEIGHTS, |ctx, v| warp_ervs(ctx, v, ErvsMode::ExpJump));
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "warp ervs jump");
    }

    #[test]
    fn warp_alias_matches_distribution() {
        let counts = run_warp(&WEIGHTS, warp_alias);
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "warp alias");
    }

    #[test]
    fn warp_ervs_jump_matches_on_long_lists() {
        // Exercise multiple stripes per lane (n >> 32).
        let weights: Vec<f32> = (0..150).map(|i| 1.0 + (i % 5) as f32).collect();
        let counts = run_warp(&weights, |ctx, v| warp_ervs(ctx, v, ErvsMode::ExpJump));
        stat::assert_matches_distribution(&counts, &stat::normalize(&weights), "ervs jump 150");
    }

    #[test]
    fn lane_rejection_matches_distribution() {
        let wf = |i: usize| WEIGHTS[i];
        let v = NeighborView::new(&wf, WEIGHTS.len(), 8);
        let mut counts = vec![0u64; WEIGHTS.len()];
        for trial in 0..TRIALS {
            let mut ctx = WarpCtx::new(trial, 0xEF);
            let (i, _) = lane_rejection(&mut ctx, trial % WARP_SIZE, &v, 4.0);
            counts[i.unwrap()] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "lane rjs");
    }

    #[test]
    fn lane_rejection_loose_bound_still_exact() {
        let wf = |i: usize| WEIGHTS[i];
        let v = NeighborView::new(&wf, WEIGHTS.len(), 8);
        let mut counts = vec![0u64; WEIGHTS.len()];
        for trial in 0..TRIALS {
            let mut ctx = WarpCtx::new(trial, 0xEE);
            let (i, _) = lane_rejection(&mut ctx, 0, &v, 16.0);
            counts[i.unwrap()] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&WEIGHTS), "lane rjs loose");
    }

    #[test]
    fn warp_max_reduce_is_exact() {
        let wf = |i: usize| WEIGHTS[i];
        let v = NeighborView::new(&wf, WEIGHTS.len(), 8);
        let mut ctx = WarpCtx::new(0, 1);
        assert_eq!(warp_max_reduce(&mut ctx, &v), 4.0);
        // Cost: a full coalesced pass was charged.
        assert!(ctx.stats().coalesced_transactions > 0);
    }

    #[test]
    fn ervs_costs_less_memory_than_prefix_reservoir() {
        let weights: Vec<f32> = (0..256).map(|i| 1.0 + (i % 3) as f32).collect();
        let wf = |i: usize| weights[i];
        let v = NeighborView::new(&wf, weights.len(), 8);
        let mut ctx_rvs = WarpCtx::new(0, 2);
        warp_reservoir_prefix(&mut ctx_rvs, &v);
        let mut ctx_ervs = WarpCtx::new(0, 2);
        warp_ervs(&mut ctx_ervs, &v, ErvsMode::ExpJump);
        assert!(
            ctx_ervs.stats().coalesced_transactions * 2
                <= ctx_rvs.stats().coalesced_transactions + 1,
            "eRVS {} vs RVS {} transactions",
            ctx_ervs.stats().coalesced_transactions,
            ctx_rvs.stats().coalesced_transactions
        );
    }

    #[test]
    fn ervs_jump_draws_fewer_rngs_than_exp() {
        let weights: Vec<f32> = (0..1024).map(|i| 1.0 + (i % 3) as f32).collect();
        let wf = |i: usize| weights[i];
        let v = NeighborView::new(&wf, weights.len(), 8);
        let mut ctx_exp = WarpCtx::new(0, 3);
        warp_ervs(&mut ctx_exp, &v, ErvsMode::Exp);
        let mut ctx_jump = WarpCtx::new(0, 3);
        warp_ervs(&mut ctx_jump, &v, ErvsMode::ExpJump);
        assert!(
            ctx_jump.stats().rng_draws * 2 < ctx_exp.stats().rng_draws,
            "jump {} vs exp {} draws",
            ctx_jump.stats().rng_draws,
            ctx_exp.stats().rng_draws
        );
    }

    #[test]
    fn empty_views_return_none() {
        let wf = |_: usize| 0.0f32;
        let v = NeighborView::new(&wf, 0, 8);
        let mut ctx = WarpCtx::new(0, 1);
        assert_eq!(warp_its(&mut ctx, &v), None);
        assert_eq!(warp_alias(&mut ctx, &v), None);
        assert_eq!(warp_reservoir_prefix(&mut ctx, &v), None);
        assert_eq!(warp_ervs(&mut ctx, &v, ErvsMode::Exp), None);
        assert_eq!(warp_ervs(&mut ctx, &v, ErvsMode::ExpJump), None);
        assert_eq!(lane_rejection(&mut ctx, 0, &v, 1.0).0, None);
    }

    #[test]
    fn all_zero_weights_return_none() {
        let wf = |_: usize| 0.0f32;
        let v = NeighborView::new(&wf, 6, 8);
        let mut ctx = WarpCtx::new(0, 1);
        assert_eq!(warp_its(&mut ctx, &v), None);
        assert_eq!(warp_alias(&mut ctx, &v), None);
        assert_eq!(warp_reservoir_prefix(&mut ctx, &v), None);
        assert_eq!(warp_ervs(&mut ctx, &v, ErvsMode::ExpJump), None);
        assert_eq!(lane_rejection(&mut ctx, 0, &v, 1.0).0, None);
    }
}
