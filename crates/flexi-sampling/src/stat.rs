//! Statistical helpers for verifying sampler correctness.

/// Pearson chi-square goodness-of-fit statistic.
///
/// Compares observed `counts` against `probs` (which must sum to ~1) over
/// `n = counts.sum()` trials. Bins with expected count below 1e-9 are
/// skipped (zero-probability outcomes must have zero observations, which is
/// asserted).
///
/// # Panics
///
/// Panics if lengths differ, or if a zero-probability bin has observations.
pub fn chi_square_statistic(counts: &[u64], probs: &[f64]) -> f64 {
    assert_eq!(counts.len(), probs.len(), "bin count mismatch");
    let n: u64 = counts.iter().sum();
    let mut stat = 0.0;
    for (&c, &p) in counts.iter().zip(probs) {
        let expected = n as f64 * p;
        if expected < 1e-9 {
            assert_eq!(c, 0, "observed samples in a zero-probability bin");
            continue;
        }
        let d = c as f64 - expected;
        stat += d * d / expected;
    }
    stat
}

/// Conservative chi-square critical value at significance ~0.001.
///
/// Uses the Wilson–Hilferty cube-root approximation of the chi-square
/// quantile, which is accurate to well under 1% for `df >= 3`; for tiny
/// `df` a lookup covers the exact values.
pub fn chi_square_critical_001(df: usize) -> f64 {
    // Exact 0.001 upper-tail critical values for small df.
    const SMALL: [f64; 6] = [0.0, 10.828, 13.816, 16.266, 18.467, 20.515];
    if df < SMALL.len() {
        return SMALL[df];
    }
    // Wilson–Hilferty: X ≈ df * (1 - 2/(9 df) + z * sqrt(2/(9 df)))^3,
    // with z = 3.0902 for the 0.999 quantile.
    let d = df as f64;
    let z = 3.0902;
    let t = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
    d * t * t * t
}

/// Asserts that `counts` is consistent with `probs` at significance 0.001.
///
/// The degrees of freedom are `(#bins with nonzero probability) - 1`.
///
/// # Panics
///
/// Panics (test failure) if the hypothesis is rejected.
pub fn assert_matches_distribution(counts: &[u64], probs: &[f64], context: &str) {
    let stat = chi_square_statistic(counts, probs);
    let df = probs
        .iter()
        .filter(|&&p| p > 1e-9)
        .count()
        .saturating_sub(1);
    if df == 0 {
        return;
    }
    let crit = chi_square_critical_001(df);
    assert!(
        stat < crit,
        "{context}: chi-square {stat:.2} >= critical {crit:.2} (df {df}); counts {counts:?}"
    );
}

/// Normalises weights into a probability vector.
///
/// # Panics
///
/// Panics if the weights sum to zero or contain negatives.
pub fn normalize(weights: &[f32]) -> Vec<f64> {
    let sum: f64 = weights.iter().map(|&w| f64::from(w)).sum();
    assert!(sum > 0.0, "weights must have positive sum");
    weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0, "negative weight {w}");
            f64::from(w) / sum
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistic_is_zero_for_perfect_fit() {
        let stat = chi_square_statistic(&[50, 50], &[0.5, 0.5]);
        assert!(stat.abs() < 1e-12);
    }

    #[test]
    fn statistic_grows_with_misfit() {
        let near = chi_square_statistic(&[55, 45], &[0.5, 0.5]);
        let far = chi_square_statistic(&[90, 10], &[0.5, 0.5]);
        assert!(far > near);
    }

    #[test]
    #[should_panic(expected = "zero-probability bin")]
    fn zero_probability_bin_with_counts_panics() {
        chi_square_statistic(&[1, 99], &[0.0, 1.0]);
    }

    #[test]
    fn critical_values_match_tables() {
        // Published 0.001 critical values: df=1 → 10.83, df=10 → 29.59,
        // df=30 → 59.70.
        assert!((chi_square_critical_001(1) - 10.828).abs() < 0.01);
        assert!((chi_square_critical_001(10) - 29.588).abs() < 0.3);
        assert!((chi_square_critical_001(30) - 59.703).abs() < 0.5);
    }

    #[test]
    fn assert_matches_accepts_true_distribution() {
        // 10_000 fair-coin flips split 5040/4960 — clearly consistent.
        assert_matches_distribution(&[5040, 4960], &[0.5, 0.5], "coin");
    }

    #[test]
    #[should_panic(expected = "chi-square")]
    fn assert_matches_rejects_biased_sample() {
        assert_matches_distribution(&[9000, 1000], &[0.5, 0.5], "rigged");
    }

    #[test]
    fn normalize_produces_probabilities() {
        let p = normalize(&[1.0, 3.0]);
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn normalize_rejects_all_zero() {
        normalize(&[0.0, 0.0]);
    }
}
