//! GPU baseline engines: C-SAW, NextDoor, Skywalker, FlowWalker.
//!
//! All four share the persistent-warp query loop of the FlexiWalker engine
//! but run a *fixed* sampling kernel, so measured deltas against
//! FlexiWalker isolate exactly the algorithmic differences the paper
//! claims: per-step auxiliary-structure builds (ITS/ALS), exact max
//! reductions (NextDoor), and prefix-sum reservoir traffic (FlowWalker).
//! Auxiliary device allocations are charged against VRAM so oversized runs
//! report the paper's OOM entries.

use flexi_core::{
    DynamicWalk, EngineError, QueryQueue, RunReport, SamplerTally, WalkEngine, WalkRequest,
    WalkState,
};
use flexi_gpu_sim::{Device, DeviceSpec, SimError, WarpCtx, WARP_SIZE};
use flexi_graph::{Csr, NodeId};
use flexi_sampling::kernels::NeighborView;
use flexi_sampling::{
    AliasSampler, ExactMaxRjsSampler, Granularity, ItsSampler, ReservoirPrefixSampler, Sampler,
    SamplerId,
};

/// Which fixed kernel a GPU baseline runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpuBaselineKind {
    /// Inverse-transform sampling (C-SAW).
    Its,
    /// Rejection with exact per-step max reduction (NextDoor).
    RjsExactMax,
    /// Alias table rebuilt per step (Skywalker).
    Alias,
    /// Prefix-sum reservoir (FlowWalker).
    RvsPrefix,
}

impl GpuBaselineKind {
    /// The registry strategy implementing this baseline's kernel — the
    /// same [`Sampler`] objects FlexiWalker can register, reused here with
    /// a fixed choice instead of runtime adaptation.
    fn sampler(self) -> &'static dyn Sampler {
        match self {
            Self::Its => &ItsSampler,
            Self::RjsExactMax => &ExactMaxRjsSampler,
            Self::Alias => &AliasSampler,
            Self::RvsPrefix => &ReservoirPrefixSampler,
        }
    }

    /// Report key for the fixed kernel.
    fn sampler_id(self) -> SamplerId {
        self.sampler().id()
    }
}

/// Shared implementation of all four GPU baselines.
#[derive(Clone, Debug)]
struct GpuBaseline {
    spec: DeviceSpec,
    kind: GpuBaselineKind,
    name: &'static str,
}

impl GpuBaseline {
    /// Auxiliary device memory this system allocates besides the graph.
    fn aux_bytes(&self, g: &Csr, queries: usize) -> usize {
        let active_warps = queries
            .div_ceil(WARP_SIZE)
            .min(self.spec.total_warp_slots())
            .max(1);
        let max_deg = (0..g.num_nodes())
            .map(|v| g.degree(v as u32))
            .max()
            .unwrap_or(0);
        match self.kind {
            // C-SAW materialises a normalised CDF per active warp.
            GpuBaselineKind::Its => max_deg * 4 * active_warps,
            // NextDoor's transit-parallel sort buffers scale with the edge
            // array (paper §6.2: "internally uses sorting ... requires
            // additional memory").
            GpuBaselineKind::RjsExactMax => 16 * g.num_edges() + 64 * queries,
            // Skywalker keeps prob+alias arrays per active warp.
            GpuBaselineKind::Alias => max_deg * 8 * active_warps,
            // FlowWalker's reservoir state is O(1) per query.
            GpuBaselineKind::RvsPrefix => 32 * queries,
        }
    }

    fn run_impl(&self, req: &WalkRequest) -> Result<RunReport, EngineError> {
        let snap = req.snapshot();
        let g: &Csr = &snap.graph;
        let walker = req.walker.get()?;
        let w = walker.walk_dyn();
        // NextDoor-class engines skip their max reduction only when the
        // compiled bound is a kernel-wide constant; derived once per run.
        let const_bound = walker.static_bound();
        let queries: &[NodeId] = &req.queries;
        let cfg = &req.config;
        let device = Device::new(self.spec.clone());
        let need = g.memory_bytes() + self.aux_bytes(g, queries.len());
        device.pool().try_alloc(need).map_err(|e| match e {
            SimError::OutOfMemory {
                requested,
                available,
            } => EngineError::OutOfMemory {
                requested,
                available,
            },
        })?;

        let steps = w.preferred_steps().unwrap_or(cfg.steps);
        let queue = QueryQueue::new(queries.len());
        let num_warps = queries
            .len()
            .div_ceil(WARP_SIZE)
            .min(self.spec.total_warp_slots())
            .max(1);
        let kind = self.kind;
        let bytes_per_weight = w.bytes_per_weight(g);
        let record = cfg.record_paths;

        let kernel = |ctx: &mut WarpCtx| {
            baseline_warp(
                ctx,
                g,
                w,
                &queue,
                queries,
                steps,
                record,
                kind,
                bytes_per_weight,
                const_bound,
            )
        };
        let launch = if cfg.host_threads > 1 {
            device.launch_parallel(num_warps, cfg.host_threads, cfg.seed, kernel)
        } else {
            device.launch(num_warps, cfg.seed, kernel)
        };
        if launch.sim_seconds > cfg.time_budget {
            return Err(EngineError::OutOfTime {
                budget_secs: cfg.time_budget,
            });
        }
        let mut steps_taken = 0;
        let mut paths = record.then(|| vec![Vec::new(); queries.len()]);
        for out in &launch.outputs {
            for (q, path, s) in out {
                steps_taken += s;
                if let Some(paths) = &mut paths {
                    paths[*q] = path.clone();
                }
            }
        }
        let saturated_seconds = self
            .spec
            .saturated_seconds(&launch.stats)
            .min(launch.sim_seconds);
        let mut sampler_steps = SamplerTally::new();
        sampler_steps.record(self.kind.sampler_id(), steps_taken);
        Ok(RunReport {
            engine: self.name,
            graph_version: snap.version,
            sim_seconds: launch.sim_seconds,
            saturated_seconds,
            stats: launch.stats,
            queries: queries.len(),
            steps_taken,
            paths,
            sampler_steps,
            sampler_state_builds: 0,
            sampler_state_hits: 0,
            profile_seconds: 0.0,
            preprocess_seconds: 0.0,
            warnings: Vec::new(),
            watts: self.spec.load_watts,
            shards: None,
            blocks: None,
        })
    }
}

type WarpFinished = Vec<(usize, Vec<NodeId>, u64)>;

/// One warp of a fixed-kernel baseline: 32 lanes of queries, each stepped
/// with the system's sampler until the batch drains.
#[allow(clippy::too_many_arguments)]
fn baseline_warp(
    ctx: &mut WarpCtx,
    g: &Csr,
    w: &dyn DynamicWalk,
    queue: &QueryQueue,
    queries: &[NodeId],
    steps: usize,
    record: bool,
    kind: GpuBaselineKind,
    bytes_per_weight: usize,
    const_bound: Option<f32>,
) -> WarpFinished {
    struct Lane {
        query: usize,
        state: WalkState,
        path: Vec<NodeId>,
        steps_taken: u64,
    }
    let mut out = Vec::new();
    let mut lanes: [Option<Lane>; WARP_SIZE] = std::array::from_fn(|_| None);
    loop {
        let mut any = false;
        for slot in lanes.iter_mut() {
            if slot.is_none() {
                ctx.atomic();
                if let Some(q) = queue.pop() {
                    let start = queries[q];
                    let mut path = Vec::new();
                    if record {
                        path.push(start);
                    }
                    *slot = Some(Lane {
                        query: q,
                        state: WalkState::start(start),
                        path,
                        steps_taken: 0,
                    });
                }
            }
            any |= slot.is_some();
        }
        if !any {
            break;
        }
        #[allow(clippy::needless_range_loop)]
        for l in 0..WARP_SIZE {
            let Some(lane) = lanes[l].as_mut() else {
                continue;
            };
            let deg = g.degree(lane.state.cur);
            if lane.state.step >= steps || deg == 0 {
                let lane = lanes[l].take().expect("checked Some");
                out.push((lane.query, lane.path, lane.steps_taken));
                continue;
            }
            let state = lane.state;
            let range = g.edge_range(state.cur);
            let wf = |i: usize| w.weight(g, &state, range.start + i);
            let view = NeighborView::new(&wf, deg, bytes_per_weight);
            let sampler = kind.sampler();
            let picked = match sampler.granularity() {
                Granularity::Warp => sampler.sample_warp(ctx, &view),
                // NextDoor skips its max reduction only when the bound is a
                // static hyperparameter constant (unweighted Node2Vec /
                // MetaPath — its "partial" dynamic support); a `None` bound
                // makes the sampler pay the transit-scattered exact max.
                Granularity::Lane => sampler.sample_lane(ctx, l, &view, const_bound),
            };
            let lane = lanes[l].as_mut().expect("still Some");
            match picked {
                Some(i) => {
                    let next = g.neighbor(lane.state.cur, i);
                    lane.state.advance(next);
                    lane.steps_taken += 1;
                    if record {
                        lane.path.push(next);
                    }
                }
                None => {
                    let lane = lanes[l].take().expect("checked Some");
                    out.push((lane.query, lane.path, lane.steps_taken));
                }
            }
        }
    }
    out
}

macro_rules! baseline_engine {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $kind:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $ty {
            inner: GpuBaseline,
        }

        impl $ty {
            /// Creates the engine on the given device.
            pub fn new(spec: DeviceSpec) -> Self {
                Self {
                    inner: GpuBaseline {
                        spec,
                        kind: $kind,
                        name: $name,
                    },
                }
            }
        }

        impl WalkEngine for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn run(&self, req: &WalkRequest) -> Result<RunReport, EngineError> {
                self.inner.run_impl(req)
            }
        }
    };
}

baseline_engine!(
    /// C-SAW (Pandey et al., SC'20): warp-centric inverse-transform
    /// sampling, dynamic-extended per the paper's methodology.
    CSawGpu,
    "C-SAW",
    GpuBaselineKind::Its
);

baseline_engine!(
    /// NextDoor (Jangda et al., EuroSys'21): transit-parallel rejection
    /// sampling with an exact per-step max reduction.
    NextDoorGpu,
    "NextDoor",
    GpuBaselineKind::RjsExactMax
);

baseline_engine!(
    /// Skywalker (Wang et al., PACT'21): alias-method sampling with
    /// per-step table construction for dynamic walks.
    SkywalkerGpu,
    "Skywalker",
    GpuBaselineKind::Alias
);

baseline_engine!(
    /// FlowWalker (Mei et al., VLDB'24): the state-of-the-art dynamic-walk
    /// GPU framework, prefix-sum parallel reservoir sampling.
    FlowWalkerGpu,
    "FlowWalker",
    GpuBaselineKind::RvsPrefix
);

#[cfg(test)]
mod tests {
    use super::*;
    use flexi_core::{FlexiWalkerEngine, Node2Vec, UniformWalk, WalkConfig};
    use flexi_graph::{gen, CsrBuilder, WeightModel};
    use flexi_sampling::stat;

    fn graph() -> Csr {
        let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 99);
        WeightModel::UniformReal.apply(g, 99)
    }

    fn cfg() -> WalkConfig {
        WalkConfig {
            steps: 10,
            record_paths: true,
            ..WalkConfig::default()
        }
    }

    fn run(
        engine: &dyn WalkEngine,
        g: &Csr,
        w: impl flexi_core::IntoWalker,
        queries: &[NodeId],
        c: &WalkConfig,
    ) -> Result<RunReport, EngineError> {
        engine.run(&WalkRequest::new(g.clone(), w, queries).with_config(c.clone()))
    }

    #[test]
    fn all_gpu_baselines_produce_valid_walks() {
        let g = graph();
        let queries: Vec<NodeId> = (0..64).collect();
        let w = Node2Vec::paper(true);
        for e in crate::gpu_baselines(DeviceSpec::tiny()) {
            let r = run(e.as_ref(), &g, &w, &queries, &cfg()).unwrap();
            assert!(r.sim_seconds > 0.0, "{}", e.name());
            assert_eq!(r.queries, 64);
            assert_eq!(
                r.sampler_steps.total(),
                r.steps_taken,
                "{} must report its fixed kernel's steps",
                e.name()
            );
            for path in r.paths.as_ref().unwrap() {
                for pair in path.windows(2) {
                    assert!(
                        g.has_edge(pair[0], pair[1]),
                        "{} walked a non-edge",
                        e.name()
                    );
                }
            }
        }
    }

    #[test]
    fn baseline_single_step_distributions_match() {
        let mut b = CsrBuilder::new(5);
        let weights = [1.0f32, 2.0, 3.0, 4.0];
        for (i, &wgt) in weights.iter().enumerate() {
            b.push_weighted(0, (i + 1) as u32, wgt);
        }
        let g = b.build().unwrap();
        let w = UniformWalk;
        for engine in crate::gpu_baselines(DeviceSpec::tiny()) {
            let mut counts = vec![0u64; 4];
            for seed in 0..4000u64 {
                let mut c = cfg();
                c.steps = 1;
                c.seed = seed;
                let r = run(engine.as_ref(), &g, &w, &[0], &c).unwrap();
                let path = &r.paths.as_ref().unwrap()[0];
                counts[(path[1] - 1) as usize] += 1;
            }
            stat::assert_matches_distribution(&counts, &stat::normalize(&weights), engine.name());
        }
    }

    #[test]
    fn flexiwalker_beats_every_baseline_on_weighted_node2vec() {
        // The headline claim of Table 2 at proxy scale.
        let g = graph();
        let queries: Vec<NodeId> = (0..128).collect();
        let w = Node2Vec::paper(true);
        let mut c = cfg();
        c.record_paths = false;
        let flexi = run(
            &FlexiWalkerEngine::new(DeviceSpec::a6000()),
            &g,
            &w,
            &queries,
            &c,
        )
        .unwrap();
        for e in crate::gpu_baselines(DeviceSpec::a6000()) {
            let r = run(e.as_ref(), &g, &w, &queries, &c).unwrap();
            assert!(
                flexi.sim_seconds < r.sim_seconds,
                "FlexiWalker ({}) not faster than {} ({})",
                flexi.sim_seconds,
                e.name(),
                r.sim_seconds
            );
        }
    }

    #[test]
    fn its_and_alias_pay_auxiliary_build_costs() {
        // Fig. 3's mechanism: ITS/ALS charge more traffic than RVS.
        let g = graph();
        let queries: Vec<NodeId> = (0..64).collect();
        let w = Node2Vec::paper(true);
        let mut c = cfg();
        c.record_paths = false;
        let its = run(&CSawGpu::new(DeviceSpec::tiny()), &g, &w, &queries, &c).unwrap();
        let als = run(&SkywalkerGpu::new(DeviceSpec::tiny()), &g, &w, &queries, &c).unwrap();
        let rvs = run(
            &FlowWalkerGpu::new(DeviceSpec::tiny()),
            &g,
            &w,
            &queries,
            &c,
        )
        .unwrap();
        assert!(its.sim_seconds > rvs.sim_seconds);
        assert!(als.sim_seconds > rvs.sim_seconds);
    }

    #[test]
    fn nextdoor_oom_on_vram_pressure() {
        let g = graph();
        let mut spec = DeviceSpec::tiny();
        // Graph fits, NextDoor's sort buffers (16 B/edge) do not.
        spec.vram_bytes = g.memory_bytes() + 8 * g.num_edges();
        let err = run(
            &NextDoorGpu::new(spec.clone()),
            &g,
            &Node2Vec::paper(true),
            &[0, 1],
            &cfg(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::OutOfMemory { .. }));
        // FlowWalker fits in the same VRAM.
        assert!(run(
            &FlowWalkerGpu::new(spec),
            &g,
            &Node2Vec::paper(true),
            &[0, 1],
            &cfg()
        )
        .is_ok());
    }

    #[test]
    fn oot_budget_respected() {
        let g = graph();
        let queries: Vec<NodeId> = (0..128).collect();
        let mut c = cfg();
        c.time_budget = 1e-12;
        let err = run(
            &CSawGpu::new(DeviceSpec::tiny()),
            &g,
            &Node2Vec::paper(true),
            &queries,
            &c,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::OutOfTime { .. }));
    }
}
