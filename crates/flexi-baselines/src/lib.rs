//! Baseline random-walk systems (paper §6.1).
//!
//! Every baseline implements [`flexi_core::WalkEngine`], so the benchmark
//! harness can iterate Table 2 uniformly. The engines implement the
//! sampling strategy the paper attributes to each system:
//!
//! | System | Platform | Sampling |
//! |---|---|---|
//! | SOWalker | CPU (out-of-core) | RJS (unweighted) + ITS |
//! | ThunderRW | CPU (in-memory) | RJS (unweighted Node2Vec) + ITS |
//! | KnightKing | CPU (distributed) | RJS with exact max (dynamic) |
//! | C-SAW | GPU | ITS (prefix sum + binary search) |
//! | NextDoor | GPU | RJS with exact max reduction |
//! | Skywalker | GPU | ALS (alias table per step) |
//! | FlowWalker | GPU | RVS (prefix-sum reservoir) |
//!
//! GPU baselines run on the same simulator as FlexiWalker, so measured
//! differences isolate the algorithmic deltas the paper claims (per-step
//! table builds, max reductions, prefix sums). CPU baselines run the real
//! scalar algorithms with an abstract cycle model ([`cpu::CpuSpec`]).

pub mod cpu;
pub mod gpu;

pub use cpu::{CpuSpec, KnightKingCpu, SoWalkerCpu, ThunderRwCpu};
pub use gpu::{CSawGpu, FlowWalkerGpu, GpuBaselineKind, NextDoorGpu, SkywalkerGpu};

/// All GPU baselines, boxed behind the engine trait.
pub fn gpu_baselines(spec: flexi_gpu_sim::DeviceSpec) -> Vec<Box<dyn flexi_core::WalkEngine>> {
    vec![
        Box::new(CSawGpu::new(spec.clone())),
        Box::new(NextDoorGpu::new(spec.clone())),
        Box::new(SkywalkerGpu::new(spec.clone())),
        Box::new(FlowWalkerGpu::new(spec)),
    ]
}

/// All CPU baselines, boxed behind the engine trait.
pub fn cpu_baselines() -> Vec<Box<dyn flexi_core::WalkEngine>> {
    vec![
        Box::new(SoWalkerCpu::new(CpuSpec::epyc_9124p())),
        Box::new(ThunderRwCpu::new(CpuSpec::epyc_9124p())),
    ]
}
