//! CPU baseline engines: ThunderRW, SOWalker, KnightKing.
//!
//! Each engine executes the *real* scalar sampling algorithms from
//! `flexi-sampling` per walk step and converts the resulting operation
//! counts into simulated time through [`CpuSpec`], keeping every system in
//! the same simulated-time universe as the GPU engines.

use flexi_core::energy::{CPU_LOAD_WATTS, CPU_OOC_WATTS};
use flexi_core::{
    CompiledWalker, DynamicWalk, EngineError, RunReport, SamplerTally, WalkEngine, WalkRequest,
    WalkState,
};
use flexi_gpu_sim::CostStats;
use flexi_graph::Csr;
use flexi_rng::Xoshiro256pp;
use flexi_sampling::ids;
use flexi_sampling::scalar::{exact_max, sample_its, sample_rejection, ScalarCost};

/// Abstract cycle costs of a server CPU (per-core).
#[derive(Clone, Copy, Debug)]
pub struct CpuSpec {
    /// Worker cores available to the engine.
    pub cores: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Cycles per sequential transition-weight evaluation.
    pub cycles_weight_eval: u64,
    /// Cycles per RNG draw.
    pub cycles_rng: u64,
    /// Cycles per auxiliary-structure element op (prefix add, alias move).
    pub cycles_aux: u64,
    /// Cycles per random memory probe (LLC miss likely).
    pub cycles_probe: u64,
    /// Sustained package watts under load.
    pub watts: f64,
}

impl CpuSpec {
    /// The paper's host CPU: AMD EPYC 9124P, 16 cores.
    pub fn epyc_9124p() -> Self {
        Self {
            cores: 16,
            clock_ghz: 3.0,
            cycles_weight_eval: 24,
            cycles_rng: 20,
            cycles_aux: 6,
            cycles_probe: 90,
            watts: CPU_LOAD_WATTS,
        }
    }

    /// Converts accumulated scalar-operation counts into cycles.
    pub fn cycles(&self, c: &ScalarCost) -> u64 {
        c.weight_evals * self.cycles_weight_eval
            + c.rng_draws * self.cycles_rng
            + c.aux_ops * self.cycles_aux
            + c.probe_reads * self.cycles_probe
    }

    /// Converts cycles into seconds assuming perfect query parallelism
    /// across cores (random walks are embarrassingly parallel).
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.cores as f64 * self.clock_ghz * 1e9)
    }
}

/// Which scalar sampler a CPU engine uses per step.
#[derive(Clone, Copy, Debug, PartialEq)]
enum CpuSampler {
    /// Inverse transform (prefix sums rebuilt every step).
    Its,
    /// Rejection with a constant, workload-derived bound.
    RjsConstBound(f32),
    /// Rejection with an exact max scan every step (KnightKing dynamic).
    RjsExactMax,
}

/// Picks the sampler a CPU system uses for a lowered walker — RJS only
/// when the compiled bound is a kernel-wide constant (unweighted Node2Vec
/// / MetaPath), ITS otherwise.
fn sampler_for(walker: &CompiledWalker, rjs_capable: bool) -> CpuSampler {
    if rjs_capable {
        if let Some(bound) = walker.static_bound() {
            return CpuSampler::RjsConstBound(bound);
        }
    }
    CpuSampler::Its
}

impl CpuSampler {
    /// Report key of the scalar strategy this CPU system runs.
    fn sampler_id(self) -> flexi_sampling::SamplerId {
        match self {
            Self::Its => ids::ITS,
            Self::RjsConstBound(_) | Self::RjsExactMax => ids::RJS,
        }
    }
}

/// Shared walk loop of all CPU engines.
fn cpu_run(
    engine_name: &'static str,
    spec: &CpuSpec,
    sampler: CpuSampler,
    io_model: Option<&IoModel>,
    req: &WalkRequest,
    watts: f64,
) -> Result<RunReport, EngineError> {
    let snap = req.snapshot();
    let g: &flexi_graph::Csr = &snap.graph;
    let w = req.walker.get()?.walk_dyn();
    let queries: &[flexi_graph::NodeId] = &req.queries;
    let cfg = &req.config;
    let steps = w.preferred_steps().unwrap_or(cfg.steps);
    let mut total = ScalarCost::default();
    let mut io_cycles: u64 = 0;
    let mut steps_taken = 0u64;
    let mut paths = cfg.record_paths.then(|| vec![Vec::new(); queries.len()]);
    let base = Xoshiro256pp::new(cfg.seed ^ 0xC0FE);
    let mut weights_buf: Vec<f32> = Vec::new();

    for (qi, &start) in queries.iter().enumerate() {
        let mut rng = base.nth_jump(qi % 64);
        // Decorrelate queries sharing a jump stream.
        for _ in 0..(qi / 64) {
            use flexi_rng::RandomSource;
            rng.next_u64();
        }
        let mut st = WalkState::start(start);
        if let Some(paths) = &mut paths {
            paths[qi].push(start);
        }
        for _ in 0..steps {
            let range = g.edge_range(st.cur);
            let deg = range.len();
            if deg == 0 {
                break;
            }
            if let Some(io) = io_model {
                io_cycles += io.step_cost(deg);
            }
            let picked = match sampler {
                CpuSampler::Its => {
                    materialize(&mut weights_buf, g, w, &st);
                    total.weight_evals += deg as u64;
                    let (p, c) = sample_its(&weights_buf, &mut rng);
                    total.add(&c);
                    p
                }
                CpuSampler::RjsConstBound(bound) => {
                    let (p, c) = flexi_sampling::scalar::sample_rejection_fn(
                        |i| w.weight(g, &st, range.start + i),
                        deg,
                        bound,
                        &mut rng,
                    );
                    total.add(&c);
                    p
                }
                CpuSampler::RjsExactMax => {
                    materialize(&mut weights_buf, g, w, &st);
                    total.weight_evals += deg as u64;
                    let (mx, c1) = exact_max(&weights_buf);
                    total.add(&c1);
                    if mx <= 0.0 {
                        None
                    } else {
                        let (p, c2) = sample_rejection(&weights_buf, mx, &mut rng);
                        total.add(&c2);
                        p
                    }
                }
            };
            let Some(i) = picked else { break };
            let next = g.neighbor(st.cur, i);
            st.advance(next);
            steps_taken += 1;
            if let Some(paths) = &mut paths {
                paths[qi].push(next);
            }
        }
        // Periodic OOT check keeps hostile configurations from spinning.
        if qi % 64 == 0 {
            let secs = spec.seconds(spec.cycles(&total) + io_cycles);
            if secs > cfg.time_budget {
                return Err(EngineError::OutOfTime {
                    budget_secs: cfg.time_budget,
                });
            }
        }
    }
    let sim_seconds = spec.seconds(spec.cycles(&total) + io_cycles);
    if sim_seconds > cfg.time_budget {
        return Err(EngineError::OutOfTime {
            budget_secs: cfg.time_budget,
        });
    }
    Ok(RunReport {
        engine: engine_name,
        graph_version: snap.version,
        sim_seconds,
        saturated_seconds: sim_seconds,
        stats: CostStats {
            alu_ops: total.weight_evals + total.aux_ops,
            rng_draws: total.rng_draws,
            random_transactions: total.probe_reads,
            ..Default::default()
        },
        queries: queries.len(),
        steps_taken,
        paths,
        sampler_steps: {
            let mut t = SamplerTally::new();
            t.record(sampler.sampler_id(), steps_taken);
            t
        },
        sampler_state_builds: 0,
        sampler_state_hits: 0,
        profile_seconds: 0.0,
        preprocess_seconds: 0.0,
        warnings: Vec::new(),
        watts,
        shards: None,
        blocks: None,
    })
}

fn materialize(buf: &mut Vec<f32>, g: &Csr, w: &dyn DynamicWalk, st: &WalkState) {
    let range = g.edge_range(st.cur);
    buf.clear();
    buf.extend(range.map(|e| w.weight(g, st, e)));
}

/// Out-of-core I/O penalty model for SOWalker.
#[derive(Clone, Copy, Debug)]
struct IoModel {
    /// Probability (×1e6) that a step's block is not cached.
    miss_ppm: u64,
    /// Cycles a block load costs (NVMe latency at CPU clock).
    block_cycles: u64,
}

impl IoModel {
    fn step_cost(&self, deg: usize) -> u64 {
        // Deterministic expectation: every step pays miss-probability ×
        // block cost; high-degree nodes span more blocks.
        let blocks = 1 + (deg / 4096) as u64;
        self.miss_ppm * self.block_cycles * blocks / 1_000_000
    }
}

/// ThunderRW (Sun et al., VLDB'21): in-memory CPU engine; step-interleaved
/// execution with ITS for dynamic walks, RJS for unweighted Node2Vec.
#[derive(Clone, Debug)]
pub struct ThunderRwCpu {
    spec: CpuSpec,
}

impl ThunderRwCpu {
    /// Creates the engine on the given CPU.
    pub fn new(spec: CpuSpec) -> Self {
        Self { spec }
    }
}

impl WalkEngine for ThunderRwCpu {
    fn name(&self) -> &'static str {
        "ThunderRW"
    }

    fn run(&self, req: &WalkRequest) -> Result<RunReport, EngineError> {
        let sampler = sampler_for(req.walker.get()?, true);
        cpu_run(self.name(), &self.spec, sampler, None, req, self.spec.watts)
    }
}

/// SOWalker (Wu et al., ATC'23): out-of-core second-order walk engine;
/// same samplers as ThunderRW plus a block-I/O penalty.
#[derive(Clone, Debug)]
pub struct SoWalkerCpu {
    spec: CpuSpec,
    /// Fraction of graph blocks resident in memory, in ppm of steps that
    /// miss. Out-of-core systems cache hot blocks; walks still miss often.
    miss_ppm: u64,
}

impl SoWalkerCpu {
    /// Creates the engine with the default miss rate (25% of steps).
    pub fn new(spec: CpuSpec) -> Self {
        Self {
            spec,
            miss_ppm: 250_000,
        }
    }
}

impl WalkEngine for SoWalkerCpu {
    fn name(&self) -> &'static str {
        "SOWalker"
    }

    fn run(&self, req: &WalkRequest) -> Result<RunReport, EngineError> {
        let sampler = sampler_for(req.walker.get()?, true);
        let io = IoModel {
            miss_ppm: self.miss_ppm,
            // ~20 µs NVMe block read at 3 GHz.
            block_cycles: 60_000,
        };
        cpu_run(
            self.name(),
            &self.spec,
            sampler,
            Some(&io),
            req,
            CPU_OOC_WATTS,
        )
    }
}

/// KnightKing (Yang et al., SOSP'19): distributed CPU engine; rejection
/// sampling with an exact per-step max for dynamic walks.
#[derive(Clone, Debug)]
pub struct KnightKingCpu {
    spec: CpuSpec,
}

impl KnightKingCpu {
    /// Creates the engine on the given CPU.
    pub fn new(spec: CpuSpec) -> Self {
        Self { spec }
    }
}

impl WalkEngine for KnightKingCpu {
    fn name(&self) -> &'static str {
        "KnightKing"
    }

    fn run(&self, req: &WalkRequest) -> Result<RunReport, EngineError> {
        // KnightKing's dynamic path uses rejection; the bound is exact when
        // statically known, otherwise an exact max scan per step.
        let sampler = match req.walker.get()?.static_bound() {
            Some(b) => CpuSampler::RjsConstBound(b),
            None => CpuSampler::RjsExactMax,
        };
        cpu_run(self.name(), &self.spec, sampler, None, req, self.spec.watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexi_core::{MetaPath, Node2Vec, SecondOrderPr, WalkConfig};
    use flexi_graph::{gen, props, CsrBuilder, NodeId, WeightModel};
    use flexi_sampling::stat;

    fn graph() -> Csr {
        let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 77);
        WeightModel::UniformReal.apply(g, 77)
    }

    fn cfg() -> WalkConfig {
        WalkConfig {
            steps: 10,
            record_paths: true,
            ..WalkConfig::default()
        }
    }

    fn run(
        engine: &dyn WalkEngine,
        g: &Csr,
        w: impl flexi_core::IntoWalker,
        queries: &[NodeId],
        c: &WalkConfig,
    ) -> Result<RunReport, EngineError> {
        engine.run(&WalkRequest::new(g.clone(), w, queries).with_config(c.clone()))
    }

    #[test]
    fn all_cpu_engines_produce_valid_walks() {
        let g = graph();
        let queries: Vec<NodeId> = (0..32).collect();
        let w = Node2Vec::paper(true);
        let engines: Vec<Box<dyn WalkEngine>> = vec![
            Box::new(ThunderRwCpu::new(CpuSpec::epyc_9124p())),
            Box::new(SoWalkerCpu::new(CpuSpec::epyc_9124p())),
            Box::new(KnightKingCpu::new(CpuSpec::epyc_9124p())),
        ];
        for e in &engines {
            let r = run(e.as_ref(), &g, &w, &queries, &cfg()).unwrap();
            assert!(r.sim_seconds > 0.0, "{}", e.name());
            for path in r.paths.as_ref().unwrap() {
                for pair in path.windows(2) {
                    assert!(g.has_edge(pair[0], pair[1]), "{}", e.name());
                }
            }
        }
    }

    #[test]
    fn unweighted_node2vec_selects_constant_bound_rjs() {
        let lower = |w: Node2Vec| {
            flexi_core::WalkerDef::native(w.name().to_string(), w)
                .lower()
                .unwrap()
        };
        match sampler_for(&lower(Node2Vec::paper(false)), true) {
            CpuSampler::RjsConstBound(b) => assert_eq!(b, 2.0), // 1/b = 2.
            other => panic!("expected const-bound RJS, got {other:?}"),
        }
        assert_eq!(
            sampler_for(&lower(Node2Vec::paper(true)), true),
            CpuSampler::Its
        );
    }

    #[test]
    fn cpu_walk_single_step_matches_distribution() {
        let mut b = CsrBuilder::new(5);
        let weights = [1.0f32, 2.0, 3.0, 4.0];
        for (i, &wgt) in weights.iter().enumerate() {
            b.push_weighted(0, (i + 1) as u32, wgt);
        }
        let g = b.build().unwrap();
        let w = flexi_core::UniformWalk;
        let engine = ThunderRwCpu::new(CpuSpec::epyc_9124p());
        let mut counts = vec![0u64; 4];
        for seed in 0..6000u64 {
            let mut c = cfg();
            c.steps = 1;
            c.seed = seed;
            let r = run(&engine, &g, &w, &[0], &c).unwrap();
            let path = &r.paths.as_ref().unwrap()[0];
            counts[(path[1] - 1) as usize] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&weights), "cpu its");
    }

    #[test]
    fn sowalker_pays_io_penalty_over_thunderrw() {
        let g = graph();
        let queries: Vec<NodeId> = (0..64).collect();
        let w = SecondOrderPr::paper();
        let t = run(
            &ThunderRwCpu::new(CpuSpec::epyc_9124p()),
            &g,
            &w,
            &queries,
            &cfg(),
        )
        .unwrap();
        let s = run(
            &SoWalkerCpu::new(CpuSpec::epyc_9124p()),
            &g,
            &w,
            &queries,
            &cfg(),
        )
        .unwrap();
        assert!(
            s.sim_seconds > t.sim_seconds,
            "out-of-core must be slower: {} vs {}",
            s.sim_seconds,
            t.sim_seconds
        );
    }

    #[test]
    fn knightking_exact_max_is_slower_than_its_on_weighted() {
        let g = graph();
        let queries: Vec<NodeId> = (0..64).collect();
        let w = Node2Vec::paper(true);
        let kk = run(
            &KnightKingCpu::new(CpuSpec::epyc_9124p()),
            &g,
            &w,
            &queries,
            &cfg(),
        )
        .unwrap();
        let t = run(
            &ThunderRwCpu::new(CpuSpec::epyc_9124p()),
            &g,
            &w,
            &queries,
            &cfg(),
        )
        .unwrap();
        assert!(kk.sim_seconds > 0.0 && t.sim_seconds > 0.0);
    }

    #[test]
    fn metapath_walks_respect_schema() {
        let g = props::assign_uniform_labels(graph(), 5, 3);
        let w = MetaPath::paper(true);
        let r = run(
            &ThunderRwCpu::new(CpuSpec::epyc_9124p()),
            &g,
            &w,
            &(0..32).collect::<Vec<_>>(),
            &cfg(),
        )
        .unwrap();
        for path in r.paths.as_ref().unwrap() {
            assert!(path.len() <= 6);
        }
    }

    #[test]
    fn time_budget_triggers_oot() {
        let g = graph();
        let queries: Vec<NodeId> = (0..256).collect();
        let mut c = cfg();
        c.time_budget = 1e-15;
        let err = run(
            &ThunderRwCpu::new(CpuSpec::epyc_9124p()),
            &g,
            &Node2Vec::paper(true),
            &queries,
            &c,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::OutOfTime { .. }));
    }

    #[test]
    fn cpu_spec_cycle_math() {
        let s = CpuSpec::epyc_9124p();
        let c = ScalarCost {
            weight_evals: 10,
            rng_draws: 5,
            aux_ops: 2,
            probe_reads: 1,
        };
        assert_eq!(s.cycles(&c), 10 * 24 + 5 * 20 + 2 * 6 + 90);
        assert!((s.seconds(48_000_000_000) - 1.0).abs() < 1e-9);
    }
}
