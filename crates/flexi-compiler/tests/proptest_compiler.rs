//! Property-style tests for Flexi-Compiler, driven by seeded sweeps:
//! randomly generated weight programs must (a) survive parse → analysis →
//! codegen, and (b) produce max estimators that soundly dominate every
//! interpreted weight.
//!
//! The original suite used an external property-testing harness; the
//! cases here are generated from a seeded [`SplitMix64`] so the workspace
//! builds offline with zero external dependencies.

use flexi_compiler::{
    compile, interpret, parse_program, AggKind, CompileOutcome, EstimatorEnv, InterpEnv, WalkSpec,
};
use flexi_rng::SplitMix64;

const CASES: usize = 128;

fn rng() -> SplitMix64 {
    SplitMix64::new(0xC0DE_0000_0000_0011)
}

/// A randomly generated branchy `get_weight` whose returns are affine in
/// `h[edge]` — the analyzable fragment every real workload lives in.
#[derive(Debug, Clone)]
struct RandomProgram {
    /// Per-path (scale, offset): `return h[edge] * scale + offset;`.
    paths: Vec<(f64, f64)>,
}

impl RandomProgram {
    fn random(g: &mut SplitMix64) -> Self {
        let count = 1 + g.bounded(5) as usize;
        let paths = (0..count)
            .map(|_| {
                (
                    0.01 + (g.bounded(9990) as f64) / 1000.0,
                    (g.bounded(20_000) as f64) / 1000.0,
                )
            })
            .collect();
        Self { paths }
    }

    fn source(&self) -> String {
        let mut s = String::from("get_weight(edge) {\n    h_e = h[edge];\n");
        for (i, (scale, offset)) in self.paths.iter().enumerate() {
            let ret = format!("return h_e * {scale:.4} + {offset:.4};");
            if i == 0 && self.paths.len() > 1 {
                s.push_str(&format!("    if (cond == {i}) {ret}\n"));
            } else if i + 1 == self.paths.len() {
                if self.paths.len() > 1 {
                    s.push_str(&format!("    else {ret}\n"));
                } else {
                    s.push_str(&format!("    {ret}\n"));
                }
            } else {
                s.push_str(&format!("    else if (cond == {i}) {ret}\n"));
            }
        }
        s.push('}');
        s
    }
}

fn random_h(g: &mut SplitMix64) -> Vec<f64> {
    let len = 1 + g.bounded(39) as usize;
    (0..len)
        .map(|_| (g.bounded(100_000) as f64) / 1000.0)
        .collect()
}

struct Env {
    h: Vec<f64>,
    edge: usize,
    cond: f64,
}

impl InterpEnv for Env {
    fn var(&self, name: &str) -> Option<f64> {
        match name {
            "edge" => Some(self.edge as f64),
            "cond" => Some(self.cond),
            _ => None,
        }
    }
    fn index(&self, array: &str, index: f64) -> Option<f64> {
        (array == "h")
            .then(|| self.h.get(index as usize).copied())
            .flatten()
    }
    fn call(&self, _: &str, _: &[f64]) -> Option<f64> {
        None
    }
}

struct AggEnv {
    h_max: f64,
    h_sum: f64,
    deg: f64,
}

impl EstimatorEnv for AggEnv {
    fn edge_aggregate(&self, array: &str, kind: AggKind) -> Option<f64> {
        (array == "h").then_some(match kind {
            AggKind::Max => self.h_max,
            AggKind::Sum => self.h_sum,
        })
    }
    fn node_scalar(&self, _: &str, _: &str) -> Option<f64> {
        None
    }
    fn var(&self, name: &str) -> Option<f64> {
        (name == "deg").then_some(self.deg)
    }
}

/// Soundness: the generated `get_weight_max` with `h → h_MAX` dominates
/// the interpreted weight of every edge under every branch condition.
#[test]
fn derived_bound_dominates_interpreted_weights() {
    let mut r = rng();
    for _ in 0..CASES {
        let prog = RandomProgram::random(&mut r);
        let h = random_h(&mut r);
        let spec = WalkSpec {
            source: prog.source(),
            hyperparams: vec![],
        };
        let compiled = match compile(&spec).unwrap() {
            CompileOutcome::Supported(c) => c,
            CompileOutcome::Fallback { warnings } => panic!("fallback: {warnings:?}"),
        };
        let h_max = h.iter().copied().fold(0.0f64, f64::max);
        let h_sum: f64 = h.iter().sum();
        let agg = AggEnv {
            h_max,
            h_sum,
            deg: h.len() as f64,
        };
        let bound = compiled.max_estimator.eval(&agg).expect("estimable");

        let parsed = parse_program(&spec.source).unwrap();
        for edge in 0..h.len() {
            for cond in 0..prog.paths.len() {
                let env = Env {
                    h: h.clone(),
                    edge,
                    cond: cond as f64,
                };
                let w = interpret(&parsed, &env).unwrap();
                assert!(
                    bound * (1.0 + 1e-9) >= w,
                    "bound {bound} < weight {w} (edge {edge}, cond {cond})"
                );
            }
        }
    }
}

/// The analysis enumerates exactly one path per return branch.
#[test]
fn path_enumeration_counts_branches() {
    let mut r = rng();
    for _ in 0..CASES {
        let prog = RandomProgram::random(&mut r);
        let spec = WalkSpec {
            source: prog.source(),
            hyperparams: vec![],
        };
        match compile(&spec).unwrap() {
            CompileOutcome::Supported(c) => {
                assert_eq!(c.paths.len(), prog.paths.len());
            }
            CompileOutcome::Fallback { .. } => panic!("unexpected fallback"),
        }
    }
}

/// Pretty-printed source re-parses to the same AST (printer fidelity).
#[test]
fn expression_printing_roundtrips() {
    let mut r = rng();
    for _ in 0..CASES {
        let prog = RandomProgram::random(&mut r);
        let parsed = parse_program(&prog.source()).unwrap();
        // Re-parse every pretty-printed return expression.
        let hyper: Vec<(String, f64)> = vec![];
        let paths = flexi_compiler::enumerate_paths(&parsed, &hyper).unwrap();
        for p in &paths {
            let printed = p.return_expr.to_source();
            let reparsed = flexi_compiler::parser::parse_expr(&printed).unwrap();
            assert_eq!(&reparsed, &p.return_expr, "printed: {printed}");
        }
    }
}

/// Hyperparameter folding: binding the scale as a hyperparameter and
/// writing it symbolically yields the same estimator value.
#[test]
fn hyperparameter_folding_is_transparent() {
    let mut r = rng();
    for _ in 0..CASES {
        let scale = 0.01 + (r.bounded(9990) as f64) / 1000.0;
        let h_max = 0.1 + (r.bounded(49_900) as f64) / 1000.0;
        let symbolic = WalkSpec {
            source: "get_weight(edge) { return h[edge] * k; }".into(),
            hyperparams: vec![("k".into(), scale)],
        };
        let literal = WalkSpec {
            source: format!("get_weight(edge) {{ return h[edge] * {scale}; }}"),
            hyperparams: vec![],
        };
        let eval = |spec: &WalkSpec| match compile(spec).unwrap() {
            CompileOutcome::Supported(c) => {
                let agg = AggEnv {
                    h_max,
                    h_sum: h_max,
                    deg: 1.0,
                };
                c.max_estimator.eval(&agg).unwrap()
            }
            CompileOutcome::Fallback { .. } => panic!("fallback"),
        };
        let a = eval(&symbolic);
        let b = eval(&literal);
        assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }
}
