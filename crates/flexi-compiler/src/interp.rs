//! Direct interpreter for the walk mini-language.
//!
//! Executes a parsed `get_weight` with full runtime context. The test-suite
//! uses this to prove that the DSL sources in [`crate::workloads`] compute
//! *exactly* the same transition weights as the hand-written Rust workloads
//! in `flexi-core` — the property that makes the compiler's analysis
//! transferable to the real engine.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use std::collections::HashMap;

/// Runtime context the interpreter queries for non-local values.
pub trait InterpEnv {
    /// Free variable lookup (`edge`, `prev`, `step`, hyperparameters, …).
    fn var(&self, name: &str) -> Option<f64>;

    /// Array lookup `array[index]` (e.g. `h`, `adj`, `label`, `deg`,
    /// `schema`).
    fn index(&self, array: &str, index: f64) -> Option<f64>;

    /// Non-builtin calls (`linked(a, b)` returning 0/1, …). `max`, `min`,
    /// `abs` are handled internally and never reach this hook.
    fn call(&self, name: &str, args: &[f64]) -> Option<f64>;
}

/// Iteration cap for `while` loops so hostile inputs cannot hang tests.
const MAX_LOOP_ITERS: usize = 100_000;

/// Arithmetic precision the interpreter evaluates in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// Full f64 arithmetic (the analysis/testing default).
    F64,
    /// Every arithmetic result is rounded to f32 before it flows on —
    /// matching a hand-written f32 `DynamicWalk::weight` op for op, which
    /// is what makes DSL-defined walkers bit-identical to their native
    /// twins. Comparisons and raw variable/array reads stay exact, so
    /// node ids above 2²⁴ are not corrupted.
    F32,
}

/// Runs `get_weight` and returns its value.
///
/// # Errors
///
/// Returns a descriptive message on unknown identifiers, missing returns,
/// or runaway loops.
pub fn interpret(p: &Program, env: &dyn InterpEnv) -> Result<f64, String> {
    interpret_with(p, env, Precision::F64)
}

/// [`interpret`] with f32-rounded arithmetic — the walker-lowering
/// pipeline's evaluation mode (see [`Precision::F32`]).
///
/// # Errors
///
/// As [`interpret`].
pub fn interpret_f32(p: &Program, env: &dyn InterpEnv) -> Result<f64, String> {
    interpret_with(p, env, Precision::F32)
}

/// Runs `get_weight` at the given arithmetic precision.
///
/// # Errors
///
/// As [`interpret`].
pub fn interpret_with(p: &Program, env: &dyn InterpEnv, prec: Precision) -> Result<f64, String> {
    let mut locals = HashMap::new();
    match exec_block(&p.body, &mut locals, env, prec)? {
        Some(v) => Ok(v),
        None => Err("get_weight returned no value".into()),
    }
}

fn exec_block(
    stmts: &[Stmt],
    locals: &mut HashMap<String, f64>,
    env: &dyn InterpEnv,
    prec: Precision,
) -> Result<Option<f64>, String> {
    for s in stmts {
        match s {
            Stmt::Assign { name, value } => {
                let v = eval(value, locals, env, prec)?;
                locals.insert(name.clone(), v);
            }
            Stmt::Return(e) => return Ok(Some(eval(e, locals, env, prec)?)),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = eval(cond, locals, env, prec)?;
                let branch = if c != 0.0 { then_branch } else { else_branch };
                if let Some(v) = exec_block(branch, locals, env, prec)? {
                    return Ok(Some(v));
                }
            }
            Stmt::While { cond, body } => {
                let mut iters = 0usize;
                while eval(cond, locals, env, prec)? != 0.0 {
                    iters += 1;
                    if iters > MAX_LOOP_ITERS {
                        return Err(format!("loop exceeded {MAX_LOOP_ITERS} iterations"));
                    }
                    if let Some(v) = exec_block(body, locals, env, prec)? {
                        return Ok(Some(v));
                    }
                }
            }
        }
    }
    Ok(None)
}

/// Rounds an arithmetic result according to the precision mode.
fn quantize(v: f64, prec: Precision) -> f64 {
    match prec {
        Precision::F64 => v,
        Precision::F32 => f64::from(v as f32),
    }
}

fn eval(
    e: &Expr,
    locals: &HashMap<String, f64>,
    env: &dyn InterpEnv,
    prec: Precision,
) -> Result<f64, String> {
    match e {
        Expr::Num(n) => Ok(*n),
        Expr::Var(name) => locals
            .get(name)
            .copied()
            .or_else(|| env.var(name))
            .ok_or_else(|| format!("unknown variable {name:?}")),
        Expr::Index { array, index } => {
            let i = eval(index, locals, env, prec)?;
            env.index(array, i)
                .ok_or_else(|| format!("unknown array {array:?} or index {i}"))
        }
        Expr::Call { name, args } => {
            let vals: Result<Vec<f64>, String> =
                args.iter().map(|a| eval(a, locals, env, prec)).collect();
            let vals = vals?;
            match (name.as_str(), vals.as_slice()) {
                ("max", [a, b]) => Ok(quantize(a.max(*b), prec)),
                ("min", [a, b]) => Ok(quantize(a.min(*b), prec)),
                ("abs", [a]) => Ok(quantize(a.abs(), prec)),
                _ => env
                    .call(name, &vals)
                    .ok_or_else(|| format!("unknown function {name:?}")),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = eval(lhs, locals, env, prec)?;
            // Short-circuit booleans.
            match op {
                BinOp::And if a == 0.0 => return Ok(0.0),
                BinOp::Or if a != 0.0 => return Ok(1.0),
                _ => {}
            }
            let b = eval(rhs, locals, env, prec)?;
            Ok(match op {
                BinOp::Add => quantize(a + b, prec),
                BinOp::Sub => quantize(a - b, prec),
                BinOp::Mul => quantize(a * b, prec),
                BinOp::Div => quantize(a / b, prec),
                BinOp::Eq => btf(a == b),
                BinOp::Ne => btf(a != b),
                BinOp::Lt => btf(a < b),
                BinOp::Le => btf(a <= b),
                BinOp::Gt => btf(a > b),
                BinOp::Ge => btf(a >= b),
                BinOp::And => btf(b != 0.0),
                BinOp::Or => btf(b != 0.0),
            })
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, locals, env, prec)?;
            Ok(match op {
                UnOp::Neg => -v,
                UnOp::Not => btf(v == 0.0),
            })
        }
    }
}

fn btf(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    struct MapEnv {
        vars: HashMap<String, f64>,
        arrays: HashMap<String, Vec<f64>>,
        linked: fn(f64, f64) -> bool,
    }

    impl MapEnv {
        fn new() -> Self {
            Self {
                vars: HashMap::new(),
                arrays: HashMap::new(),
                linked: |_, _| false,
            }
        }
    }

    impl InterpEnv for MapEnv {
        fn var(&self, name: &str) -> Option<f64> {
            self.vars.get(name).copied()
        }
        fn index(&self, array: &str, index: f64) -> Option<f64> {
            self.arrays.get(array)?.get(index as usize).copied()
        }
        fn call(&self, name: &str, args: &[f64]) -> Option<f64> {
            match (name, args) {
                ("linked", [a, b]) => Some(if (self.linked)(*a, *b) { 1.0 } else { 0.0 }),
                _ => None,
            }
        }
    }

    #[test]
    fn runs_node2vec_all_branches() {
        let p = parse_program(crate::workloads::NODE2VEC_WEIGHTED).unwrap();
        let mut env = MapEnv::new();
        env.vars.insert("a".into(), 2.0);
        env.vars.insert("b".into(), 0.5);
        env.vars.insert("has_prev".into(), 1.0);
        env.vars.insert("prev".into(), 7.0);
        env.vars.insert("edge".into(), 0.0);
        env.arrays.insert("h".into(), vec![6.0]);
        // Branch 1: post == prev.
        env.arrays.insert("adj".into(), vec![7.0]);
        assert_eq!(interpret(&p, &env).unwrap(), 3.0); // 6 / a
                                                       // Branch 2: linked(prev, post).
        env.arrays.insert("adj".into(), vec![9.0]);
        env.linked = |_, _| true;
        assert_eq!(interpret(&p, &env).unwrap(), 6.0);
        // Branch 3: distance 2.
        env.linked = |_, _| false;
        assert_eq!(interpret(&p, &env).unwrap(), 12.0); // 6 / b
                                                        // First step: has_prev guard returns the static weight.
        env.vars.insert("has_prev".into(), 0.0);
        assert_eq!(interpret(&p, &env).unwrap(), 6.0);
    }

    #[test]
    fn f32_precision_rounds_each_arithmetic_op() {
        // 0.1 + 0.2 differs between f64 and step-wise f32 arithmetic.
        let p = parse_program("f() { return x + y; }").unwrap();
        let mut env = MapEnv::new();
        env.vars.insert("x".into(), 0.1);
        env.vars.insert("y".into(), 0.2);
        let exact = interpret(&p, &env).unwrap();
        let rounded = interpret_f32(&p, &env).unwrap();
        assert_eq!(exact, 0.1 + 0.2);
        assert_eq!(rounded, f64::from((0.1f64 + 0.2f64) as f32));
        assert_ne!(exact, rounded);
        // Comparisons stay exact: ids above 2^24 are not corrupted.
        let p = parse_program("f() { if (x == y) return 1.0; else return 0.0; }").unwrap();
        let mut env = MapEnv::new();
        env.vars.insert("x".into(), 16_777_217.0);
        env.vars.insert("y".into(), 16_777_216.0);
        assert_eq!(interpret_f32(&p, &env).unwrap(), 0.0);
    }

    #[test]
    fn while_loops_execute_with_cap() {
        let p = parse_program("f() { x = 0; while (x < 5) { x = x + 1; } return x; }").unwrap();
        let env = MapEnv::new();
        assert_eq!(interpret(&p, &env).unwrap(), 5.0);
    }

    #[test]
    fn runaway_loop_errors() {
        let p = parse_program("f() { x = 0; while (1 == 1) { x = x + 1; } return x; }").unwrap();
        let env = MapEnv::new();
        assert!(interpret(&p, &env).unwrap_err().contains("loop"));
    }

    #[test]
    fn unknown_variable_errors() {
        let p = parse_program("f() { return mystery; }").unwrap();
        assert!(interpret(&p, &MapEnv::new())
            .unwrap_err()
            .contains("mystery"));
    }

    #[test]
    fn unknown_function_errors() {
        let p = parse_program("f() { return summon(1); }").unwrap();
        assert!(interpret(&p, &MapEnv::new())
            .unwrap_err()
            .contains("summon"));
    }

    #[test]
    fn missing_return_errors() {
        let p = parse_program("f() { x = 1; }").unwrap();
        assert!(interpret(&p, &MapEnv::new())
            .unwrap_err()
            .contains("no value"));
    }

    #[test]
    fn short_circuit_evaluation() {
        // Division by zero on the right of && must not be reached.
        let p =
            parse_program("f() { if (0 != 0 && boom[9] > 0) return 1; else return 2; }").unwrap();
        assert_eq!(interpret(&p, &MapEnv::new()).unwrap(), 2.0);
    }

    #[test]
    fn builtins_work() {
        let p = parse_program("f() { return max(1, 2) + min(3, 4) + abs(0 - 5); }").unwrap();
        assert_eq!(interpret(&p, &MapEnv::new()).unwrap(), 10.0);
    }

    #[test]
    fn locals_shadow_env_vars() {
        let p = parse_program("f() { a = 5; return a; }").unwrap();
        let mut env = MapEnv::new();
        env.vars.insert("a".into(), 1.0);
        assert_eq!(interpret(&p, &env).unwrap(), 5.0);
    }
}
