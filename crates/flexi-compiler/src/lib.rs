//! Flexi-Compiler: compile-time analysis of user walk logic (paper §4.2).
//!
//! The paper implements this component with Clang LibTooling + LLVM IR over
//! CUDA C++; this crate performs the same passes over an equivalent C-like
//! mini-language (see `DESIGN.md` for the substitution argument):
//!
//! 1. **Parse** the user's `get_weight` function ([`parser`]) into an AST.
//! 2. **Enumerate control-flow paths** ([`analysis`]): every `if/else`
//!    chain contributes one (conditions, return-expression) pair, with
//!    assignments inlined (the *dependency checker* of Fig. 9c).
//! 3. **Allocate flags**: a return value that touches an indexed array
//!    (e.g. `h[edge]`) is `PER_STEP`; pure hyperparameter arithmetic is
//!    `PER_KERNEL` (Fig. 9c's flag allocator).
//! 4. **Generate helpers** ([`codegen`]): `get_weight_max()` — indexed
//!    arrays rebound to their per-node `_MAX` aggregates, maximum over all
//!    path returns; `get_weight_sum()` — arrays rebound to `_SUM`
//!    aggregates, mean over path returns (Eq. 12); plus the list of
//!    `preprocess()` reductions to run (Fig. 9d).
//! 5. **Validate** ([`analysis::validate`]): loops with data-dependent
//!    exits, recursion, or warp intrinsics force the sound fallback to
//!    eRVS-only mode with warnings (§5.2, §7.1).
//!
//! The [`interp`] module executes the parsed `get_weight` directly, which
//! the test-suite uses to prove the DSL semantics match the hand-written
//! Rust workloads, and [`workloads`] ships the paper's five evaluation
//! workloads as DSL sources.

pub mod analysis;
pub mod ast;
pub mod codegen;
pub mod interp;
pub mod parser;
pub mod token;
pub mod workloads;

pub use analysis::{
    enumerate_paths, references, validate, BoundGranularity, PathInfo, RefInfo, Validation,
};
pub use ast::{BinOp, Expr, Program, Stmt, UnOp};
pub use codegen::{AggKind, CompiledWalk, Estimator, EstimatorEnv, PreprocessRequest};
pub use interp::{interpret, interpret_f32, interpret_with, InterpEnv, Precision};
pub use parser::parse_program;

/// Errors raised while compiling a walk specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Tokenisation failure.
    Lex(String),
    /// Parse failure.
    Parse(String),
    /// The program has no `return` on some path.
    MissingReturn,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lex(m) => write!(f, "lex error: {m}"),
            Self::Parse(m) => write!(f, "parse error: {m}"),
            Self::MissingReturn => write!(f, "a control-flow path has no return"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A user-supplied walk specification: `get_weight` source plus fixed
/// hyperparameters (the paper's `init()` contents).
#[derive(Debug, Clone)]
pub struct WalkSpec {
    /// Mini-language source of `get_weight`.
    pub source: String,
    /// Hyperparameter bindings (constant-folded during analysis).
    pub hyperparams: Vec<(String, f64)>,
}

/// Result of compiling a walk: either full support (eRJS enabled via
/// generated estimators) or the sound eRVS-only fallback.
#[derive(Debug)]
pub enum CompileOutcome {
    /// Estimators were generated; eRJS is available.
    Supported(Box<CompiledWalk>),
    /// Analysis detected unsupported constructs; run eRVS-only.
    Fallback {
        /// Human-readable reasons for the fallback.
        warnings: Vec<String>,
    },
}

/// Compiles a walk specification end-to-end.
///
/// # Errors
///
/// Returns [`CompileError`] for malformed source. Unsupported-but-parseable
/// programs are *not* errors; they produce [`CompileOutcome::Fallback`].
pub fn compile(spec: &WalkSpec) -> Result<CompileOutcome, CompileError> {
    let program = parse_program(&spec.source)?;
    let validation = validate(&program);
    if !validation.supported {
        return Ok(CompileOutcome::Fallback {
            warnings: validation.warnings,
        });
    }
    let paths = enumerate_paths(&program, &spec.hyperparams)?;
    match codegen::generate(&program, &paths, &spec.hyperparams) {
        Some(mut compiled) => {
            compiled.warnings.extend(validation.warnings);
            Ok(CompileOutcome::Supported(Box::new(compiled)))
        }
        None => Ok(CompileOutcome::Fallback {
            warnings: vec!["return expressions are not amenable to bound estimation; \
                 falling back to eRVS-only mode"
                .to_string()],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node2vec_compiles_supported() {
        let spec = WalkSpec {
            source: workloads::NODE2VEC_WEIGHTED.to_string(),
            hyperparams: vec![("a".into(), 2.0), ("b".into(), 0.5)],
        };
        match compile(&spec).unwrap() {
            CompileOutcome::Supported(c) => {
                assert_eq!(c.flag, BoundGranularity::PerStep);
                assert!(!c.paths.is_empty());
            }
            CompileOutcome::Fallback { warnings } => {
                panic!("expected support, fell back: {warnings:?}")
            }
        }
    }

    #[test]
    fn while_loop_falls_back() {
        let spec = WalkSpec {
            source: "get_weight() { x = 0; while (x < h[edge]) { x = x + 1; } return x; }"
                .to_string(),
            hyperparams: vec![],
        };
        match compile(&spec).unwrap() {
            CompileOutcome::Fallback { warnings } => {
                assert!(!warnings.is_empty());
            }
            CompileOutcome::Supported(_) => panic!("loops must force fallback"),
        }
    }

    #[test]
    fn syntax_error_is_reported() {
        let spec = WalkSpec {
            source: "get_weight() { return ; }".to_string(),
            hyperparams: vec![],
        };
        assert!(compile(&spec).is_err());
    }
}
