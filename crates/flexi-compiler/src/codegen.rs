//! Estimator generation (the code generator of Fig. 9d).
//!
//! From the enumerated return paths this module emits:
//!
//! - the `preprocess()` reduction requests (`h_MAX[]`, `h_SUM[]` arrays);
//! - `get_weight_max()` — per-edge indexed arrays rebound to their `_MAX`
//!   aggregates, maximum over all path returns (the eRJS upper bound);
//! - `get_weight_sum()` — arrays rebound to `_SUM` aggregates, *mean* over
//!   path returns (Eq. 12's `Σw · E[h]` estimate), multiplied by the degree
//!   when the kernel is `PER_KERNEL` (constant returns).
//!
//! The estimators are expression IRs evaluated against an
//! [`EstimatorEnv`] supplied by the runtime; a pretty-printed C-like
//! rendering is kept for inspection (`CompiledWalk::generated_source`).

use crate::analysis::{fold, overall_granularity, BoundGranularity, PathInfo};
use crate::ast::{Expr, Program, UnOp};

/// Which per-node aggregate of an indexed array a preprocess pass computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `array_MAX[v] = max over v's out-edges`.
    Max,
    /// `array_SUM[v] = sum over v's out-edges`.
    Sum,
}

/// One preprocessing reduction the runtime must run before walking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreprocessRequest {
    /// Array name in the user source (e.g. `h`).
    pub array: String,
    /// Aggregate kind.
    pub kind: AggKind,
}

/// Runtime values the estimators read.
///
/// Implemented by `Flexi-Runtime`; the compiler only defines the interface.
pub trait EstimatorEnv {
    /// Per-node aggregate of an edge-indexed array at the current node
    /// (e.g. `h_MAX[cur]`). `None` if the aggregate was not preprocessed.
    fn edge_aggregate(&self, array: &str, kind: AggKind) -> Option<f64>;

    /// A node-indexed runtime scalar such as `deg[cur]`, `deg[prev]`, or
    /// `schema[step]`.
    fn node_scalar(&self, array: &str, index: &str) -> Option<f64>;

    /// A free runtime variable such as `step` or `deg` (current degree).
    fn var(&self, name: &str) -> Option<f64>;
}

/// How an estimator combines its per-path values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Maximum over paths (bound estimation).
    Max,
    /// Mean over paths (weight-sum estimation, Eq. 12).
    Mean,
}

/// A generated helper function (`get_weight_max` / `get_weight_sum`).
#[derive(Debug, Clone)]
pub struct Estimator {
    /// One rebound expression per control-flow path.
    pub exprs: Vec<Expr>,
    /// Path-combination rule.
    pub combine: Combine,
    /// Multiply the combined value by the current degree (PER_KERNEL sum
    /// helpers emulate the weight sum this way, Fig. 9d).
    pub multiply_by_degree: bool,
}

impl Estimator {
    /// Evaluates the estimator against `env`.
    ///
    /// Returns `None` if a referenced aggregate/scalar is unavailable.
    pub fn eval(&self, env: &dyn EstimatorEnv) -> Option<f64> {
        let mut acc: Option<f64> = None;
        for e in &self.exprs {
            let v = eval_expr(e, env)?;
            acc = Some(match (acc, self.combine) {
                (None, _) => v,
                (Some(a), Combine::Max) => a.max(v),
                (Some(a), Combine::Mean) => a + v,
            });
        }
        let mut out = acc?;
        if self.combine == Combine::Mean && !self.exprs.is_empty() {
            out /= self.exprs.len() as f64;
        }
        if self.multiply_by_degree {
            out *= env.var("deg")?;
        }
        Some(out)
    }

    /// Pretty-prints the estimator body in the Fig. 9d style.
    pub fn to_source(&self, name: &str) -> String {
        let mut s = format!("{name}(...) {{\n");
        let (acc, op) = match self.combine {
            Combine::Max => ("max_val", "max_val = max(max_val, {});"),
            Combine::Mean => ("sum_val", "sum_val = sum_val + {};"),
        };
        for (i, e) in self.exprs.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("    {acc} = {};\n", e.to_source()));
            } else {
                s.push_str(&format!("    {}\n", op.replacen("{}", &e.to_source(), 1)));
            }
        }
        if self.combine == Combine::Mean && self.exprs.len() > 1 {
            s.push_str(&format!(
                "    sum_val = sum_val / {}.0;\n",
                self.exprs.len()
            ));
        }
        if self.multiply_by_degree {
            s.push_str(&format!("    {acc} = {acc} * deg[cur];\n"));
        }
        s.push_str(&format!("    return {acc};\n}}\n"));
        s
    }
}

/// A fully compiled walk: analysis table plus generated helpers.
#[derive(Debug, Clone)]
pub struct CompiledWalk {
    /// The enumerated analysis result table.
    pub paths: Vec<PathInfo>,
    /// Kernel-wide bound granularity.
    pub flag: BoundGranularity,
    /// `get_weight_max()` helper.
    pub max_estimator: Estimator,
    /// `get_weight_sum()` helper.
    pub sum_estimator: Estimator,
    /// Reductions `preprocess()` must run.
    pub preprocess: Vec<PreprocessRequest>,
    /// Non-fatal analysis warnings.
    pub warnings: Vec<String>,
    /// Human-readable rendering of all generated code.
    pub generated_source: String,
}

/// Generates estimators for the enumerated `paths`.
///
/// Returns `None` when some return expression cannot be bounded (unknown
/// calls, boolean returns, …) — the caller falls back to eRVS-only mode.
pub fn generate(
    program: &Program,
    paths: &[PathInfo],
    _hyperparams: &[(String, f64)],
) -> Option<CompiledWalk> {
    let flag = overall_granularity(paths);
    let mut preprocess = Vec::new();
    let mut max_exprs = Vec::new();
    let mut sum_exprs = Vec::new();
    for p in paths {
        let max_e = rebind(&p.return_expr, AggKind::Max, &mut preprocess)?;
        let sum_e = rebind(&p.return_expr, AggKind::Sum, &mut Vec::new())?;
        max_exprs.push(fold(&max_e));
        sum_exprs.push(fold(&sum_e));
    }
    let max_estimator = Estimator {
        exprs: max_exprs,
        combine: Combine::Max,
        multiply_by_degree: false,
    };
    let sum_estimator = Estimator {
        exprs: sum_exprs,
        combine: Combine::Mean,
        multiply_by_degree: flag == BoundGranularity::PerKernel,
    };
    // Sum aggregates are also preprocessed for every max-preprocessed array.
    let mut all_pre = Vec::new();
    for r in &preprocess {
        all_pre.push(r.clone());
        all_pre.push(PreprocessRequest {
            array: r.array.clone(),
            kind: AggKind::Sum,
        });
    }
    all_pre.dedup();
    let generated_source = render_source(program, &all_pre, &max_estimator, &sum_estimator);
    Some(CompiledWalk {
        paths: paths.to_vec(),
        flag,
        max_estimator,
        sum_estimator,
        preprocess: all_pre,
        warnings: Vec::new(),
        generated_source,
    })
}

/// Rebinds edge-indexed arrays to their aggregates and checks estimability.
///
/// - `array[edge]` → `array_MAX[cur]` / `array_SUM[cur]` (recorded in
///   `preprocess`);
/// - `array[other]` (node-indexed scalars) stays, resolved by the env;
/// - `max`/`min`/`abs` calls stay;
/// - anything else (unknown calls, comparisons, `!`) is not estimable.
fn rebind(e: &Expr, kind: AggKind, preprocess: &mut Vec<PreprocessRequest>) -> Option<Expr> {
    match e {
        Expr::Num(n) => Some(Expr::Num(*n)),
        // Free variables: runtime scalars (step, iter, deg) — allowed; the
        // env resolves them at estimation time.
        Expr::Var(v) => Some(Expr::Var(v.clone())),
        Expr::Index { array, index } => {
            if matches!(&**index, Expr::Var(v) if v == "edge") {
                let req = PreprocessRequest {
                    array: array.clone(),
                    kind: AggKind::Max,
                };
                if !preprocess.contains(&req) {
                    preprocess.push(req);
                }
                let suffix = match kind {
                    AggKind::Max => "_MAX",
                    AggKind::Sum => "_SUM",
                };
                Some(Expr::Index {
                    array: format!("{array}{suffix}"),
                    index: Box::new(Expr::Var("cur".into())),
                })
            } else {
                // Node-indexed scalar (deg[cur], schema[step], ...).
                Some(e.clone())
            }
        }
        Expr::Call { name, args } => {
            if !matches!(name.as_str(), "max" | "min" | "abs") {
                return None;
            }
            let args: Option<Vec<Expr>> =
                args.iter().map(|a| rebind(a, kind, preprocess)).collect();
            Some(Expr::Call {
                name: name.clone(),
                args: args?,
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            if op.is_comparison() {
                return None;
            }
            Some(Expr::Binary {
                op: *op,
                lhs: Box::new(rebind(lhs, kind, preprocess)?),
                rhs: Box::new(rebind(rhs, kind, preprocess)?),
            })
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => Some(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(rebind(expr, kind, preprocess)?),
            }),
            UnOp::Not => None,
        },
    }
}

fn eval_expr(e: &Expr, env: &dyn EstimatorEnv) -> Option<f64> {
    match e {
        Expr::Num(n) => Some(*n),
        Expr::Var(v) => env.var(v),
        Expr::Index { array, index } => {
            let idx_name = match &**index {
                Expr::Var(v) => v.as_str(),
                _ => return None,
            };
            if let Some(base) = array.strip_suffix("_MAX") {
                env.edge_aggregate(base, AggKind::Max)
            } else if let Some(base) = array.strip_suffix("_SUM") {
                env.edge_aggregate(base, AggKind::Sum)
            } else {
                env.node_scalar(array, idx_name)
            }
        }
        Expr::Call { name, args } => {
            let vals: Option<Vec<f64>> = args.iter().map(|a| eval_expr(a, env)).collect();
            let vals = vals?;
            match (name.as_str(), vals.as_slice()) {
                ("max", [a, b]) => Some(a.max(*b)),
                ("min", [a, b]) => Some(a.min(*b)),
                ("abs", [a]) => Some(a.abs()),
                _ => None,
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_expr(lhs, env)?;
            let b = eval_expr(rhs, env)?;
            use crate::ast::BinOp::*;
            Some(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                _ => return None,
            })
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => Some(-eval_expr(expr, env)?),
            UnOp::Not => None,
        },
    }
}

fn render_source(
    program: &Program,
    preprocess: &[PreprocessRequest],
    max_est: &Estimator,
    sum_est: &Estimator,
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "// Generated by Flexi-Compiler from {}().\n",
        program.name
    ));
    s.push_str("preprocess(...) {\n");
    for r in preprocess {
        let suffix = match r.kind {
            AggKind::Max => "MAX",
            AggKind::Sum => "SUM",
        };
        s.push_str(&format!("    allocate_and_reduce({}_{suffix});\n", r.array));
    }
    s.push_str("}\n\n");
    s.push_str(&max_est.to_source("get_weight_max"));
    s.push('\n');
    s.push_str(&sum_est.to_source("get_weight_sum"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::enumerate_paths;
    use crate::parser::parse_program;
    use std::collections::HashMap;

    struct TestEnv {
        aggregates: HashMap<(String, &'static str), f64>,
        scalars: HashMap<(String, String), f64>,
        vars: HashMap<String, f64>,
    }

    impl TestEnv {
        fn new() -> Self {
            Self {
                aggregates: HashMap::new(),
                scalars: HashMap::new(),
                vars: HashMap::new(),
            }
        }
    }

    impl EstimatorEnv for TestEnv {
        fn edge_aggregate(&self, array: &str, kind: AggKind) -> Option<f64> {
            let k = match kind {
                AggKind::Max => "max",
                AggKind::Sum => "sum",
            };
            self.aggregates.get(&(array.to_string(), k)).copied()
        }
        fn node_scalar(&self, array: &str, index: &str) -> Option<f64> {
            self.scalars
                .get(&(array.to_string(), index.to_string()))
                .copied()
        }
        fn var(&self, name: &str) -> Option<f64> {
            self.vars.get(name).copied()
        }
    }

    fn compile_paths(src: &str, hyper: &[(&str, f64)]) -> CompiledWalk {
        let p = parse_program(src).unwrap();
        let hyper: Vec<(String, f64)> = hyper.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let paths = enumerate_paths(&p, &hyper).unwrap();
        generate(&p, &paths, &hyper).expect("estimable")
    }

    const N2V: &str = r#"
        get_weight() {
            h_e = h[edge];
            post = adj[edge];
            if (post == prev) return h_e / a;
            else if (linked(prev, post)) return h_e;
            else return h_e / b;
        }
    "#;

    #[test]
    fn node2vec_max_estimator_matches_hand_derivation() {
        let c = compile_paths(N2V, &[("a", 2.0), ("b", 0.5)]);
        // max(h_MAX/2, h_MAX, h_MAX/0.5) with h_MAX = 7 → 14.
        let mut env = TestEnv::new();
        env.aggregates.insert(("h".into(), "max"), 7.0);
        env.aggregates.insert(("h".into(), "sum"), 20.0);
        assert_eq!(c.max_estimator.eval(&env), Some(14.0));
    }

    #[test]
    fn node2vec_sum_estimator_is_mean_of_paths() {
        let c = compile_paths(N2V, &[("a", 2.0), ("b", 0.5)]);
        let mut env = TestEnv::new();
        env.aggregates.insert(("h".into(), "max"), 7.0);
        env.aggregates.insert(("h".into(), "sum"), 21.0);
        // (21/2 + 21 + 21/0.5)/3 = (10.5 + 21 + 42)/3 = 24.5.
        assert_eq!(c.sum_estimator.eval(&env), Some(24.5));
    }

    #[test]
    fn node2vec_preprocess_requests_h_max_and_sum() {
        let c = compile_paths(N2V, &[("a", 2.0), ("b", 0.5)]);
        assert!(c.preprocess.contains(&PreprocessRequest {
            array: "h".into(),
            kind: AggKind::Max
        }));
        assert!(c.preprocess.contains(&PreprocessRequest {
            array: "h".into(),
            kind: AggKind::Sum
        }));
        assert_eq!(c.flag, BoundGranularity::PerStep);
    }

    #[test]
    fn per_kernel_sum_multiplies_by_degree() {
        let src = r#"
            get_weight() {
                post = adj[edge];
                if (post == prev) return 1.0 / a;
                else return 1.0;
            }
        "#;
        let c = compile_paths(src, &[("a", 2.0)]);
        assert_eq!(c.flag, BoundGranularity::PerKernel);
        assert!(c.sum_estimator.multiply_by_degree);
        let mut env = TestEnv::new();
        env.vars.insert("deg".into(), 10.0);
        // mean(0.5, 1.0) * 10 = 7.5.
        assert_eq!(c.sum_estimator.eval(&env), Some(7.5));
        // Max needs no runtime data at all.
        assert_eq!(c.max_estimator.eval(&env), Some(1.0));
    }

    #[test]
    fn node_scalars_resolve_through_env() {
        let src = r#"
            get_weight() {
                maxd = max(deg[cur], deg[prev]);
                h_e = h[edge];
                if (linked(prev, post)) return (1.0 - g) / deg[cur] * maxd * h_e;
                else return g / deg[cur] * maxd * h_e;
            }
        "#;
        let c = compile_paths(src, &[("g", 0.2)]);
        let mut env = TestEnv::new();
        env.aggregates.insert(("h".into(), "max"), 2.0);
        env.aggregates.insert(("h".into(), "sum"), 8.0);
        env.scalars.insert(("deg".into(), "cur".into()), 4.0);
        env.scalars.insert(("deg".into(), "prev".into()), 8.0);
        // Path 1: 0.8/4*8*2 = 3.2; path 2: 0.2/4*8*2 = 0.8 → max 3.2.
        let v = c.max_estimator.eval(&env).unwrap();
        assert!((v - 3.2).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn estimation_fails_gracefully_without_aggregates() {
        let c = compile_paths(N2V, &[("a", 2.0), ("b", 0.5)]);
        let env = TestEnv::new();
        assert_eq!(c.max_estimator.eval(&env), None);
    }

    #[test]
    fn boolean_returns_are_not_estimable() {
        let p = parse_program("f() { return x == 1; }").unwrap();
        let paths = enumerate_paths(&p, &[]).unwrap();
        assert!(generate(&p, &paths, &[]).is_none());
    }

    #[test]
    fn unknown_calls_in_returns_are_not_estimable() {
        let p = parse_program("f() { return linked(prev, post); }").unwrap();
        let paths = enumerate_paths(&p, &[]).unwrap();
        assert!(generate(&p, &paths, &[]).is_none());
    }

    #[test]
    fn generated_source_mentions_helpers() {
        let c = compile_paths(N2V, &[("a", 2.0), ("b", 0.5)]);
        assert!(c.generated_source.contains("preprocess"));
        assert!(c.generated_source.contains("get_weight_max"));
        assert!(c.generated_source.contains("get_weight_sum"));
        assert!(c.generated_source.contains("h_MAX"));
        assert!(c.generated_source.contains("h_SUM"));
    }
}
