//! Abstract syntax tree of the walk mini-language.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether this operator yields a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            Self::Eq | Self::Ne | Self::Lt | Self::Le | Self::Gt | Self::Ge | Self::And | Self::Or
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Variable reference.
    Var(String),
    /// Array indexing `array[index]`.
    Index {
        /// Array name (e.g. `h`, `label`, `deg`).
        array: String,
        /// Index expression (e.g. `edge`, `cur`, `prev`).
        index: Box<Expr>,
    },
    /// Function call `name(args…)` (e.g. `linked(prev, post)`, `max(x, y)`).
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Visits every sub-expression (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Num(_) | Expr::Var(_) => {}
            Expr::Index { index, .. } => index.visit(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Unary { expr, .. } => expr.visit(f),
        }
    }

    /// Pretty-prints the expression in C-like syntax.
    pub fn to_source(&self) -> String {
        match self {
            Expr::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{n:.1}")
                } else {
                    format!("{n}")
                }
            }
            Expr::Var(v) => v.clone(),
            Expr::Index { array, index } => format!("{array}[{}]", index.to_source()),
            Expr::Call { name, args } => {
                let args: Vec<String> = args.iter().map(Expr::to_source).collect();
                format!("{name}({})", args.join(", "))
            }
            Expr::Binary { op, lhs, rhs } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                };
                format!("({} {sym} {})", lhs.to_source(), rhs.to_source())
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => format!("(-{})", expr.to_source()),
                UnOp::Not => format!("!{}", expr.to_source()),
            },
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// Assigned expression.
        value: Expr,
    },
    /// `if (cond) { … } else { … }` (else branch may be empty).
    If {
        /// Branch condition.
        cond: Expr,
        /// Then-block.
        then_branch: Vec<Stmt>,
        /// Else-block.
        else_branch: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Expr),
    /// `while (cond) { … }` — parsed only so validation can reject it.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// A parsed `get_weight` function.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Function name (normally `get_weight`).
    pub name: String,
    /// Declared parameter names (informational).
    pub params: Vec<String>,
    /// Function body.
    pub body: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_reaches_all_nodes() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Index {
                array: "h".into(),
                index: Box::new(Expr::Var("edge".into())),
            }),
            rhs: Box::new(Expr::Call {
                name: "max".into(),
                args: vec![Expr::Num(1.0), Expr::Var("a".into())],
            }),
        };
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        // Binary, Index, Var(edge), Call, Num, Var(a).
        assert_eq!(count, 6);
    }

    #[test]
    fn to_source_roundtrips_structure() {
        let e = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::Var("h_e".into())),
            rhs: Box::new(Expr::Var("a".into())),
        };
        assert_eq!(e.to_source(), "(h_e / a)");
        let idx = Expr::Index {
            array: "h".into(),
            index: Box::new(Expr::Var("edge".into())),
        };
        assert_eq!(idx.to_source(), "h[edge]");
        let neg = Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(Expr::Var("x".into())),
        };
        assert_eq!(neg.to_source(), "!x");
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::And.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Div.is_comparison());
    }
}
