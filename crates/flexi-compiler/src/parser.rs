//! Recursive-descent parser for the walk mini-language.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::token::{lex, Tok};
use crate::CompileError;

/// Parses a full `name(params…) { body }` function definition.
///
/// # Errors
///
/// Returns [`CompileError`] on lexical or syntactic problems.
pub fn parse_program(src: &str) -> Result<Program, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let program = p.program()?;
    if p.pos != p.toks.len() {
        return Err(CompileError::Parse(format!(
            "trailing tokens after function body (at token {})",
            p.pos
        )));
    }
    Ok(program)
}

/// Parses a standalone expression (used by tests and estimator tooling).
pub fn parse_expr(src: &str) -> Result<Expr, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(CompileError::Parse(
            "trailing tokens after expression".into(),
        ));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CompileError> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            got => Err(CompileError::Parse(format!(
                "expected {what}, found {got:?}"
            ))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(CompileError::Parse(format!(
                "expected {what}, found {got:?}"
            ))),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                // Accept `...` style "anything" by allowing bare idents only.
                params.push(self.ident("parameter name")?);
                if self.peek() == Some(&Tok::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        let body = self.block()?;
        Ok(Program { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(CompileError::Parse("unterminated block".into()));
            }
            stmts.push(self.stmt()?);
        }
        self.next(); // consume '}'
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek() {
            Some(Tok::Return) => {
                self.next();
                let e = self.expr()?;
                self.expect(&Tok::Semi, "';' after return")?;
                Ok(Stmt::Return(e))
            }
            Some(Tok::If) => self.if_stmt(),
            Some(Tok::While) => {
                self.next();
                self.expect(&Tok::LParen, "'(' after while")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "')' after while condition")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Tok::Ident(_)) => {
                let name = self.ident("assignment target")?;
                self.expect(&Tok::Assign, "'=' in assignment")?;
                let value = self.expr()?;
                self.expect(&Tok::Semi, "';' after assignment")?;
                Ok(Stmt::Assign { name, value })
            }
            got => Err(CompileError::Parse(format!(
                "expected statement, found {got:?}"
            ))),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.expect(&Tok::If, "'if'")?;
        self.expect(&Tok::LParen, "'(' after if")?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen, "')' after if condition")?;
        let then_branch = self.block_or_single()?;
        let else_branch = if self.peek() == Some(&Tok::Else) {
            self.next();
            if self.peek() == Some(&Tok::If) {
                vec![self.if_stmt()?]
            } else {
                self.block_or_single()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.peek() == Some(&Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    // Precedence climbing: || < && < comparison < additive < multiplicative
    // < unary < primary.
    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Tok::Or) {
            self.next();
            let rhs = self.and_expr()?;
            lhs = bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == Some(&Tok::And) {
            self.next();
            let rhs = self.cmp_expr()?;
            lhs = bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.unary_expr()?;
            lhs = bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.next();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                })
            }
            Some(Tok::Not) => {
                self.next();
                let e = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match self.peek() {
                Some(Tok::LParen) => {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "')' after call arguments")?;
                    Ok(Expr::Call { name, args })
                }
                Some(Tok::LBracket) => {
                    self.next();
                    let index = self.expr()?;
                    self.expect(&Tok::RBracket, "']' after index")?;
                    Ok(Expr::Index {
                        array: name,
                        index: Box::new(index),
                    })
                }
                _ => Ok(Expr::Var(name)),
            },
            got => Err(CompileError::Parse(format!(
                "expected expression, found {got:?}"
            ))),
        }
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_node2vec_shape() {
        let src = r#"
            get_weight(graph, q, edge) {
                h_e = h[edge];
                post = adj[edge];
                if (post == prev) return h_e / a;
                else if (linked(prev, post)) return h_e;
                else return h_e / b;
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.name, "get_weight");
        assert_eq!(p.params, vec!["graph", "q", "edge"]);
        assert_eq!(p.body.len(), 3);
        assert!(matches!(&p.body[2], Stmt::If { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_source(), "(1.0 + (2.0 * 3.0))");
    }

    #[test]
    fn precedence_cmp_over_and() {
        let e = parse_expr("a == 1 && b < 2").unwrap();
        assert_eq!(e.to_source(), "((a == 1.0) && (b < 2.0))");
    }

    #[test]
    fn parens_override_precedence() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_source(), "((1.0 + 2.0) * 3.0)");
    }

    #[test]
    fn unary_binds_tighter_than_mul() {
        let e = parse_expr("-a * b").unwrap();
        assert_eq!(e.to_source(), "((-a) * b)");
    }

    #[test]
    fn calls_and_indexing_nest() {
        let e = parse_expr("max(deg[cur], deg[prev]) / h[edge]").unwrap();
        assert_eq!(e.to_source(), "(max(deg[cur], deg[prev]) / h[edge])");
    }

    #[test]
    fn else_if_chains_nest_right() {
        let src = "f() { if (a == 1) return 1; else if (a == 2) return 2; else return 3; }";
        let p = parse_program(src).unwrap();
        let Stmt::If { else_branch, .. } = &p.body[0] else {
            panic!("expected if");
        };
        assert_eq!(else_branch.len(), 1);
        assert!(matches!(&else_branch[0], Stmt::If { .. }));
    }

    #[test]
    fn if_without_else_parses() {
        let p = parse_program("f() { if (a == 1) return 1; return 2; }").unwrap();
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn single_statement_branches_allowed() {
        let p = parse_program("f() { if (x > 0) return 1; else return 0; }").unwrap();
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn while_parses_for_rejection() {
        let p = parse_program("f() { while (x < 3) { x = x + 1; } return x; }").unwrap();
        assert!(matches!(&p.body[0], Stmt::While { .. }));
    }

    #[test]
    fn error_on_missing_semicolon() {
        assert!(parse_program("f() { return 1 }").is_err());
    }

    #[test]
    fn error_on_unterminated_block() {
        assert!(parse_program("f() { return 1;").is_err());
    }

    #[test]
    fn error_on_trailing_tokens() {
        assert!(parse_program("f() { return 1; } extra").is_err());
    }

    #[test]
    fn error_on_missing_expression() {
        assert!(parse_program("f() { return ; }").is_err());
    }
}
