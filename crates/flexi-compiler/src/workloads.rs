//! The paper's five evaluation workloads as mini-language sources (§2.1).
//!
//! The runtime environment provides: `edge` (edge id being scored), `prev`
//! (previously visited node), `cur` (current node), `step` (walk step
//! index), arrays `h` (edge property weight), `adj` (edge target), `label`
//! (edge label), `deg` (node out-degree), `schema` (MetaPath label
//! schedule), and the predicate `linked(a, b)` (directed edge a→b exists).

/// Weighted Node2Vec (Eq. 2 times the property weight `h`).
///
/// Hyperparameters: `a` (return parameter), `b` (in-out parameter).
pub const NODE2VEC_WEIGHTED: &str = r#"
get_weight(edge) {
    h_e = h[edge];
    post = adj[edge];
    if (post == prev) return h_e / a;
    else if (linked(prev, post)) return h_e;
    else return h_e / b;
}
"#;

/// Unweighted Node2Vec (`h ≡ 1`); returns are hyperparameter constants, so
/// the flag allocator classifies it `PER_KERNEL` (§3.3).
pub const NODE2VEC_UNWEIGHTED: &str = r#"
get_weight(edge) {
    post = adj[edge];
    if (post == prev) return 1.0 / a;
    else if (linked(prev, post)) return 1.0;
    else return 1.0 / b;
}
"#;

/// Weighted MetaPath: an edge is admissible iff its label matches the
/// schema entry for the current step.
pub const METAPATH_WEIGHTED: &str = r#"
get_weight(edge) {
    h_e = h[edge];
    if (label[edge] == schema[step]) return h_e;
    else return 0.0;
}
"#;

/// Unweighted MetaPath.
pub const METAPATH_UNWEIGHTED: &str = r#"
get_weight(edge) {
    if (label[edge] == schema[step]) return 1.0;
    else return 0.0;
}
"#;

/// Second-order PageRank (Eq. 3 times the property weight `h`).
///
/// Hyperparameter: `gamma`.
pub const PAGERANK_2ND: &str = r#"
get_weight(edge) {
    h_e = h[edge];
    post = adj[edge];
    maxd = max(deg[cur], deg[prev]);
    if (linked(prev, post)) {
        return ((1.0 - gamma) / deg[cur] + gamma / deg[prev]) * maxd * h_e;
    } else {
        return ((1.0 - gamma) / deg[cur]) * maxd * h_e;
    }
}
"#;

/// All five sources with their default hyperparameters (paper §6.1:
/// `a = 2.0`, `b = 0.5`, `gamma = 0.2`).
pub fn all_specs() -> Vec<(&'static str, crate::WalkSpec)> {
    let n2v = vec![("a".to_string(), 2.0), ("b".to_string(), 0.5)];
    let pr = vec![("gamma".to_string(), 0.2)];
    vec![
        (
            "node2vec_weighted",
            crate::WalkSpec {
                source: NODE2VEC_WEIGHTED.to_string(),
                hyperparams: n2v.clone(),
            },
        ),
        (
            "node2vec_unweighted",
            crate::WalkSpec {
                source: NODE2VEC_UNWEIGHTED.to_string(),
                hyperparams: n2v,
            },
        ),
        (
            "metapath_weighted",
            crate::WalkSpec {
                source: METAPATH_WEIGHTED.to_string(),
                hyperparams: vec![],
            },
        ),
        (
            "metapath_unweighted",
            crate::WalkSpec {
                source: METAPATH_UNWEIGHTED.to_string(),
                hyperparams: vec![],
            },
        ),
        (
            "pagerank_2nd",
            crate::WalkSpec {
                source: PAGERANK_2ND.to_string(),
                hyperparams: pr,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use crate::analysis::BoundGranularity;
    use crate::{compile, CompileOutcome};

    #[test]
    fn all_five_workloads_compile_supported() {
        for (name, spec) in super::all_specs() {
            match compile(&spec).unwrap() {
                CompileOutcome::Supported(c) => {
                    assert!(
                        !c.paths.is_empty(),
                        "{name}: no control-flow paths enumerated"
                    );
                }
                CompileOutcome::Fallback { warnings } => {
                    panic!("{name} unexpectedly fell back: {warnings:?}")
                }
            }
        }
    }

    #[test]
    fn unweighted_node2vec_is_per_kernel_weighted_is_per_step() {
        let specs = super::all_specs();
        let get = |name: &str| {
            let spec = &specs.iter().find(|(n, _)| *n == name).unwrap().1;
            match compile(spec).unwrap() {
                CompileOutcome::Supported(c) => c.flag,
                _ => panic!("fallback"),
            }
        };
        assert_eq!(get("node2vec_unweighted"), BoundGranularity::PerKernel);
        assert_eq!(get("node2vec_weighted"), BoundGranularity::PerStep);
        assert_eq!(get("metapath_weighted"), BoundGranularity::PerStep);
        assert_eq!(get("pagerank_2nd"), BoundGranularity::PerStep);
    }

    #[test]
    fn metapath_unweighted_is_per_kernel() {
        // Both returns are constants (1 and 0), so a single bound suffices.
        let specs = super::all_specs();
        let spec = &specs
            .iter()
            .find(|(n, _)| *n == "metapath_unweighted")
            .unwrap()
            .1;
        match compile(spec).unwrap() {
            CompileOutcome::Supported(c) => {
                assert_eq!(c.flag, BoundGranularity::PerKernel);
            }
            _ => panic!("fallback"),
        }
    }
}
