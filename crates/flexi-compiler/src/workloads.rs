//! The paper's five evaluation workloads as mini-language sources (§2.1),
//! plus the **canonical spec table** every other layer builds on: the
//! native workload structs in `flexi-core` and the `WalkerRegistry`
//! built-ins both derive their [`WalkSpec`]s from [`builtin_spec`], so a
//! built-in walk algorithm is defined in exactly one place.
//!
//! The runtime environment provides: `edge` (edge id being scored), `prev`
//! (previously visited node), `has_prev` (1 after the first step, 0 on it),
//! `cur` (current node), `step` (walk step index), arrays `h` (edge
//! property weight), `adj` (edge target), `label` (edge label), `deg`
//! (node out-degree), `schema` (MetaPath label schedule), and the
//! predicate `linked(a, b)` (directed edge a→b exists).
//!
//! First steps are guarded with `has_prev`: a dynamic walk has no history
//! on its first step, so the canonical sources return the static property
//! weight there — exactly what the hand-written Rust twins do.

use crate::WalkSpec;

/// Weighted Node2Vec (Eq. 2 times the property weight `h`).
///
/// Hyperparameters: `a` (return parameter), `b` (in-out parameter).
pub const NODE2VEC_WEIGHTED: &str = r#"
get_weight(edge) {
    h_e = h[edge];
    if (has_prev == 0) return h_e;
    post = adj[edge];
    if (post == prev) return h_e / a;
    else if (linked(prev, post)) return h_e;
    else return h_e / b;
}
"#;

/// Unweighted Node2Vec (`h ≡ 1`); returns are hyperparameter constants, so
/// the flag allocator classifies it `PER_KERNEL` (§3.3).
pub const NODE2VEC_UNWEIGHTED: &str = r#"
get_weight(edge) {
    if (has_prev == 0) return 1.0;
    post = adj[edge];
    if (post == prev) return 1.0 / a;
    else if (linked(prev, post)) return 1.0;
    else return 1.0 / b;
}
"#;

/// Weighted MetaPath: an edge is admissible iff its label matches the
/// schema entry for the current step (history enters through `step`, so no
/// `has_prev` guard is needed).
pub const METAPATH_WEIGHTED: &str = r#"
get_weight(edge) {
    h_e = h[edge];
    if (label[edge] == schema[step]) return h_e;
    else return 0.0;
}
"#;

/// Unweighted MetaPath.
pub const METAPATH_UNWEIGHTED: &str = r#"
get_weight(edge) {
    if (label[edge] == schema[step]) return 1.0;
    else return 0.0;
}
"#;

/// Second-order PageRank (Eq. 3 times the property weight `h`).
///
/// Hyperparameter: `gamma`.
pub const PAGERANK_2ND: &str = r#"
get_weight(edge) {
    h_e = h[edge];
    if (has_prev == 0) return h_e;
    post = adj[edge];
    maxd = max(deg[cur], deg[prev]);
    if (linked(prev, post)) {
        return ((1.0 - gamma) / deg[cur] + gamma / deg[prev]) * maxd * h_e;
    } else {
        return ((1.0 - gamma) / deg[cur]) * maxd * h_e;
    }
}
"#;

/// Forward-in-time walk: an edge is traversable only if it is not older
/// than the walk's clock (`walk_time`, advanced to each traversed edge's
/// timestamp), so paths never move backwards in time. Admissible edges
/// weigh their property weight.
pub const TEMPORAL_UNIFORM: &str = r#"
get_weight(edge) {
    if (edge_time < walk_time) return 0.0;
    return h[edge];
}
"#;

/// Forward-in-time walk with exponential recency bias: younger edges
/// (relative to the walk clock) are preferred with rate `lambda`.
///
/// The `exp` call keeps the program interpretable but not estimable — it
/// lowers with the sound reservoir-only fallback.
pub const TEMPORAL_EXP: &str = r#"
get_weight(edge) {
    if (edge_time < walk_time) return 0.0;
    age = edge_time - walk_time;
    return h[edge] * exp(0.0 - lambda * age);
}
"#;

/// Forward-in-time walk with linear recency bias: weight falls linearly
/// from `h` at age 0 to 0 at age `span`.
pub const TEMPORAL_LINEAR: &str = r#"
get_weight(edge) {
    if (edge_time < walk_time) return 0.0;
    age = edge_time - walk_time;
    if (age >= span) return 0.0;
    return h[edge] * ((span - age) / span);
}
"#;

/// Names of the canonical built-in specs, in the paper's Table 2 order.
pub const BUILTIN_SPEC_NAMES: [&str; 5] = [
    "node2vec_weighted",
    "node2vec_unweighted",
    "metapath_weighted",
    "metapath_unweighted",
    "pagerank_2nd",
];

/// Names of the canonical temporal specs (the PR 7 extension workloads;
/// kept out of [`BUILTIN_SPEC_NAMES`] so the paper's Table 2 set stays
/// exactly the five evaluated workloads).
pub const TEMPORAL_SPEC_NAMES: [&str; 3] = ["temporal_uniform", "temporal_exp", "temporal_linear"];

/// The canonical [`WalkSpec`] of one built-in workload, with the paper's
/// default hyperparameters (§6.1: `a = 2.0`, `b = 0.5`, `gamma = 0.2`).
///
/// This is the single source of truth for every built-in definition: the
/// native `DynamicWalk` structs in `flexi-core`, the `WalkerRegistry`
/// built-ins, and [`all_specs`] all derive from this table.
pub fn builtin_spec(name: &str) -> Option<WalkSpec> {
    let n2v = || vec![("a".to_string(), 2.0), ("b".to_string(), 0.5)];
    let (source, hyperparams) = match name {
        "node2vec_weighted" => (NODE2VEC_WEIGHTED, n2v()),
        "node2vec_unweighted" => (NODE2VEC_UNWEIGHTED, n2v()),
        "metapath_weighted" => (METAPATH_WEIGHTED, vec![]),
        "metapath_unweighted" => (METAPATH_UNWEIGHTED, vec![]),
        "pagerank_2nd" => (PAGERANK_2ND, vec![("gamma".to_string(), 0.2)]),
        "temporal_uniform" => (TEMPORAL_UNIFORM, vec![]),
        "temporal_exp" => (TEMPORAL_EXP, vec![("lambda".to_string(), 0.1)]),
        "temporal_linear" => (TEMPORAL_LINEAR, vec![("span".to_string(), 100.0)]),
        _ => return None,
    };
    Some(WalkSpec {
        source: source.to_string(),
        hyperparams,
    })
}

/// All five canonical sources with their default hyperparameters, in
/// [`BUILTIN_SPEC_NAMES`] order.
pub fn all_specs() -> Vec<(&'static str, WalkSpec)> {
    BUILTIN_SPEC_NAMES
        .iter()
        .map(|name| {
            (
                *name,
                builtin_spec(name).expect("every listed name has a canonical spec"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::analysis::BoundGranularity;
    use crate::{compile, CompileOutcome};

    #[test]
    fn all_five_workloads_compile_supported() {
        for (name, spec) in super::all_specs() {
            match compile(&spec).unwrap() {
                CompileOutcome::Supported(c) => {
                    assert!(
                        !c.paths.is_empty(),
                        "{name}: no control-flow paths enumerated"
                    );
                }
                CompileOutcome::Fallback { warnings } => {
                    panic!("{name} unexpectedly fell back: {warnings:?}")
                }
            }
        }
    }

    #[test]
    fn all_specs_mirrors_the_canonical_table() {
        assert_eq!(super::all_specs().len(), super::BUILTIN_SPEC_NAMES.len());
        for (name, spec) in super::all_specs() {
            let canonical = super::builtin_spec(name).unwrap();
            assert_eq!(spec.source, canonical.source, "{name}: source drifted");
            assert_eq!(
                spec.hyperparams, canonical.hyperparams,
                "{name}: hyperparams drifted"
            );
        }
        assert!(super::builtin_spec("nonsense").is_none());
    }

    #[test]
    fn unweighted_node2vec_is_per_kernel_weighted_is_per_step() {
        let get = |name: &str| {
            let spec = super::builtin_spec(name).unwrap();
            match compile(&spec).unwrap() {
                CompileOutcome::Supported(c) => c.flag,
                _ => panic!("fallback"),
            }
        };
        assert_eq!(get("node2vec_unweighted"), BoundGranularity::PerKernel);
        assert_eq!(get("node2vec_weighted"), BoundGranularity::PerStep);
        assert_eq!(get("metapath_weighted"), BoundGranularity::PerStep);
        assert_eq!(get("pagerank_2nd"), BoundGranularity::PerStep);
    }

    #[test]
    fn temporal_specs_compile_as_designed() {
        for name in super::TEMPORAL_SPEC_NAMES {
            let spec = super::builtin_spec(name).unwrap();
            match (name, compile(&spec).unwrap()) {
                // The exp() call is interpretable but not estimable: the
                // walk must lower with the sound reservoir-only fallback.
                ("temporal_exp", CompileOutcome::Fallback { warnings }) => {
                    assert!(!warnings.is_empty());
                }
                ("temporal_exp", CompileOutcome::Supported(_)) => {
                    panic!("temporal_exp unexpectedly estimable")
                }
                (_, CompileOutcome::Supported(c)) => {
                    assert!(!c.paths.is_empty(), "{name}: no paths");
                    assert_eq!(c.flag, BoundGranularity::PerStep, "{name}");
                }
                (_, CompileOutcome::Fallback { warnings }) => {
                    panic!("{name} unexpectedly fell back: {warnings:?}")
                }
            }
        }
    }

    #[test]
    fn metapath_unweighted_is_per_kernel() {
        // Both returns are constants (1 and 0), so a single bound suffices.
        let spec = super::builtin_spec("metapath_unweighted").unwrap();
        match compile(&spec).unwrap() {
            CompileOutcome::Supported(c) => {
                assert_eq!(c.flag, BoundGranularity::PerKernel);
            }
            _ => panic!("fallback"),
        }
    }

    #[test]
    fn first_step_guard_keeps_static_bounds_sound() {
        // The has_prev path returns the static weight; the max estimator
        // must cover it (1.0 for unweighted Node2Vec alongside 1/a, 1/b).
        let spec = super::builtin_spec("node2vec_unweighted").unwrap();
        match compile(&spec).unwrap() {
            CompileOutcome::Supported(c) => {
                assert_eq!(c.paths.len(), 4, "has_prev guard adds a path");
            }
            _ => panic!("fallback"),
        }
    }
}
