//! Control-flow path enumeration, dependency checking, flag allocation and
//! soundness validation (the code analyzer of Fig. 9c).

use crate::ast::{BinOp, Expr, Program, Stmt};
use crate::CompileError;
use std::collections::{BTreeMap, BTreeSet};

/// How often the eRJS upper bound must be re-estimated (Fig. 9c flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundGranularity {
    /// A single estimation suffices for the whole kernel (e.g. unweighted
    /// Node2Vec, whose returns are hyperparameter constants).
    PerKernel,
    /// The bound changes per step (returns touch per-edge indexed data).
    PerStep,
}

/// One enumerated control-flow path of `get_weight`.
#[derive(Debug, Clone)]
pub struct PathInfo {
    /// Pretty-printed branch conditions along the path.
    pub conditions: Vec<String>,
    /// The fully inlined, constant-folded return expression.
    pub return_expr: Expr,
    /// Names (variables and arrays) the return value depends on.
    pub dependencies: Vec<String>,
    /// Per-path flag from the flag allocator.
    pub granularity: BoundGranularity,
}

/// Everything a `get_weight` program reads from its environment — the
/// dependency surface the walker-lowering pipeline derives label needs,
/// walk order and per-weight memory traffic from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefInfo {
    /// Indexed arrays read (`h`, `adj`, `label`, `deg`, `schema`, …).
    pub arrays: BTreeSet<String>,
    /// Functions called, excluding the `max`/`min`/`abs` builtins
    /// (`linked`, …).
    pub calls: BTreeSet<String>,
    /// Free variables read (`edge`, `prev`, `cur`, `step`, hyperparameters,
    /// …); locals assigned before use are excluded.
    pub frees: BTreeSet<String>,
}

impl RefInfo {
    /// Whether the program consults walk history (`prev`, `has_prev`, or
    /// the `linked` membership probe) — i.e. is second-order.
    pub fn second_order(&self) -> bool {
        self.frees.contains("prev")
            || self.frees.contains("has_prev")
            || self.calls.contains("linked")
    }
}

/// Collects every environment reference of `p` (arrays, calls, free
/// variables), skipping locals that were assigned earlier in the program.
pub fn references(p: &Program) -> RefInfo {
    let mut info = RefInfo::default();
    let mut locals = BTreeSet::new();
    ref_stmts(&p.body, &mut locals, &mut info);
    info
}

fn ref_stmts(stmts: &[Stmt], locals: &mut BTreeSet<String>, info: &mut RefInfo) {
    for s in stmts {
        match s {
            Stmt::Assign { name, value } => {
                ref_expr(value, locals, info);
                locals.insert(name.clone());
            }
            Stmt::Return(e) => ref_expr(e, locals, info),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                ref_expr(cond, locals, info);
                // Locals assigned in one branch may be undefined in the
                // other; track them per branch, conservatively keeping the
                // outer set untouched.
                let mut then_locals = locals.clone();
                ref_stmts(then_branch, &mut then_locals, info);
                let mut else_locals = locals.clone();
                ref_stmts(else_branch, &mut else_locals, info);
            }
            Stmt::While { cond, body } => {
                ref_expr(cond, locals, info);
                let mut body_locals = locals.clone();
                ref_stmts(body, &mut body_locals, info);
            }
        }
    }
}

fn ref_expr(e: &Expr, locals: &BTreeSet<String>, info: &mut RefInfo) {
    match e {
        Expr::Num(_) => {}
        Expr::Var(name) => {
            if !locals.contains(name) {
                info.frees.insert(name.clone());
            }
        }
        Expr::Index { array, index } => {
            info.arrays.insert(array.clone());
            ref_expr(index, locals, info);
        }
        Expr::Call { name, args } => {
            if !matches!(name.as_str(), "max" | "min" | "abs") {
                info.calls.insert(name.clone());
            }
            for a in args {
                ref_expr(a, locals, info);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            ref_expr(lhs, locals, info);
            ref_expr(rhs, locals, info);
        }
        Expr::Unary { expr, .. } => ref_expr(expr, locals, info),
    }
}

/// Soundness verdict for a parsed program (§5.2 / §7.1 checks).
#[derive(Debug, Clone)]
pub struct Validation {
    /// Whether eRJS estimator generation may proceed.
    pub supported: bool,
    /// Reasons for rejection or caution.
    pub warnings: Vec<String>,
}

/// Validates `p` against the constructs Flexi-Compiler cannot analyze:
/// loops with data-dependent exits, recursion, and warp intrinsics /
/// inter-thread communication.
pub fn validate(p: &Program) -> Validation {
    let mut warnings = Vec::new();
    let mut supported = true;
    check_stmts(&p.body, p, &mut warnings, &mut supported, 0);
    Validation {
        supported,
        warnings,
    }
}

const MAX_NESTING: usize = 16;

fn check_stmts(
    stmts: &[Stmt],
    p: &Program,
    warnings: &mut Vec<String>,
    supported: &mut bool,
    depth: usize,
) {
    if depth > MAX_NESTING {
        warnings.push(format!(
            "control flow nested deeper than {MAX_NESTING} levels; \
             falling back to eRVS-only mode"
        ));
        *supported = false;
        return;
    }
    for s in stmts {
        match s {
            Stmt::While { body, .. } => {
                warnings.push(
                    "loop with data-dependent exit detected; \
                     falling back to eRVS-only mode"
                        .to_string(),
                );
                *supported = false;
                check_stmts(body, p, warnings, supported, depth + 1);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                check_expr(cond, p, warnings, supported);
                check_stmts(then_branch, p, warnings, supported, depth + 1);
                check_stmts(else_branch, p, warnings, supported, depth + 1);
            }
            Stmt::Assign { value, .. } => check_expr(value, p, warnings, supported),
            Stmt::Return(e) => check_expr(e, p, warnings, supported),
        }
    }
}

fn check_expr(e: &Expr, p: &Program, warnings: &mut Vec<String>, supported: &mut bool) {
    e.visit(&mut |node| {
        if let Expr::Call { name, .. } = node {
            if name == &p.name {
                warnings.push(format!(
                    "recursive call to {name}() detected; \
                     falling back to eRVS-only mode"
                ));
                *supported = false;
            }
            if name.starts_with("__") || name == "syncwarp" || name == "syncthreads" {
                warnings.push(format!(
                    "inter-thread communication intrinsic {name}() detected; \
                     FlexiWalker switches sampling kernels per warp and cannot \
                     preserve user-level warp synchrony — falling back to \
                     eRVS-only mode"
                ));
                *supported = false;
            }
        }
    });
}

/// Enumerates every control-flow path, inlining assignments (dependency
/// checker) and constant-folding hyperparameters.
///
/// # Errors
///
/// Returns [`CompileError::MissingReturn`] if any path can fall off the end
/// of the function.
pub fn enumerate_paths(
    p: &Program,
    hyperparams: &[(String, f64)],
) -> Result<Vec<PathInfo>, CompileError> {
    let mut env: BTreeMap<String, Expr> = BTreeMap::new();
    for (k, v) in hyperparams {
        env.insert(k.clone(), Expr::Num(*v));
    }
    let mut paths = Vec::new();
    walk(&p.body, &env, &mut Vec::new(), &mut paths)?;
    Ok(paths)
}

fn walk(
    stmts: &[Stmt],
    env: &BTreeMap<String, Expr>,
    conds: &mut Vec<String>,
    out: &mut Vec<PathInfo>,
) -> Result<(), CompileError> {
    let Some((first, rest)) = stmts.split_first() else {
        return Err(CompileError::MissingReturn);
    };
    match first {
        Stmt::Assign { name, value } => {
            let mut env = env.clone();
            let inlined = fold(&substitute(value, &env));
            env.insert(name.clone(), inlined);
            walk(rest, &env, conds, out)
        }
        Stmt::Return(e) => {
            let expr = fold(&substitute(e, env));
            let dependencies = collect_deps(&expr);
            let granularity = classify(&expr);
            out.push(PathInfo {
                conditions: conds.clone(),
                return_expr: expr,
                dependencies,
                granularity,
            });
            Ok(())
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let cond_inlined = fold(&substitute(cond, env));
            let mut then_stmts: Vec<Stmt> = then_branch.clone();
            then_stmts.extend_from_slice(rest);
            conds.push(cond_inlined.to_source());
            walk(&then_stmts, env, conds, out)?;
            conds.pop();
            let mut else_stmts: Vec<Stmt> = else_branch.clone();
            else_stmts.extend_from_slice(rest);
            conds.push(format!("!{}", cond_inlined.to_source()));
            walk(&else_stmts, env, conds, out)?;
            conds.pop();
            Ok(())
        }
        Stmt::While { .. } => Err(CompileError::Parse(
            "while reached path enumeration; validate() must run first".into(),
        )),
    }
}

/// Substitutes environment bindings into `e`.
fn substitute(e: &Expr, env: &BTreeMap<String, Expr>) -> Expr {
    match e {
        Expr::Num(n) => Expr::Num(*n),
        Expr::Var(name) => env.get(name).cloned().unwrap_or_else(|| e.clone()),
        Expr::Index { array, index } => Expr::Index {
            array: array.clone(),
            index: Box::new(substitute(index, env)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| substitute(a, env)).collect(),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(substitute(lhs, env)),
            rhs: Box::new(substitute(rhs, env)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute(expr, env)),
        },
    }
}

/// Constant-folds numeric arithmetic (including `max`/`min`/`abs` calls).
pub fn fold(e: &Expr) -> Expr {
    match e {
        Expr::Binary { op, lhs, rhs } => {
            let l = fold(lhs);
            let r = fold(rhs);
            if let (Expr::Num(a), Expr::Num(b)) = (&l, &r) {
                if let Some(v) = eval_bin(*op, *a, *b) {
                    return Expr::Num(v);
                }
            }
            Expr::Binary {
                op: *op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        }
        Expr::Unary { op, expr } => {
            let inner = fold(expr);
            if let Expr::Num(a) = inner {
                return Expr::Num(match op {
                    crate::ast::UnOp::Neg => -a,
                    crate::ast::UnOp::Not => {
                        if a == 0.0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                });
            }
            Expr::Unary {
                op: *op,
                expr: Box::new(inner),
            }
        }
        Expr::Call { name, args } => {
            let folded: Vec<Expr> = args.iter().map(fold).collect();
            let nums: Option<Vec<f64>> = folded
                .iter()
                .map(|a| match a {
                    Expr::Num(n) => Some(*n),
                    _ => None,
                })
                .collect();
            if let Some(nums) = nums {
                match (name.as_str(), nums.as_slice()) {
                    ("max", [a, b]) => return Expr::Num(a.max(*b)),
                    ("min", [a, b]) => return Expr::Num(a.min(*b)),
                    ("abs", [a]) => return Expr::Num(a.abs()),
                    _ => {}
                }
            }
            Expr::Call {
                name: name.clone(),
                args: folded,
            }
        }
        Expr::Index { array, index } => Expr::Index {
            array: array.clone(),
            index: Box::new(fold(index)),
        },
        other => other.clone(),
    }
}

fn eval_bin(op: BinOp, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Eq => bool_to_f(a == b),
        BinOp::Ne => bool_to_f(a != b),
        BinOp::Lt => bool_to_f(a < b),
        BinOp::Le => bool_to_f(a <= b),
        BinOp::Gt => bool_to_f(a > b),
        BinOp::Ge => bool_to_f(a >= b),
        BinOp::And => bool_to_f(a != 0.0 && b != 0.0),
        BinOp::Or => bool_to_f(a != 0.0 || b != 0.0),
    })
}

fn bool_to_f(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

fn collect_deps(e: &Expr) -> Vec<String> {
    let mut deps = Vec::new();
    e.visit(&mut |node| match node {
        Expr::Var(v) if !deps.contains(v) => {
            deps.push(v.clone());
        }
        Expr::Index { array, .. } if !deps.contains(array) => {
            deps.push(array.clone());
        }
        _ => {}
    });
    deps
}

/// Flag allocator: a return value is `PER_STEP` as soon as it references any
/// indexed array or free variable; only pure constants are `PER_KERNEL`.
fn classify(e: &Expr) -> BoundGranularity {
    let mut per_step = false;
    e.visit(&mut |node| match node {
        Expr::Index { .. } | Expr::Var(_) => per_step = true,
        _ => {}
    });
    if per_step {
        BoundGranularity::PerStep
    } else {
        BoundGranularity::PerKernel
    }
}

/// Combines per-path flags into the kernel-wide granularity.
pub fn overall_granularity(paths: &[PathInfo]) -> BoundGranularity {
    if paths
        .iter()
        .any(|p| p.granularity == BoundGranularity::PerStep)
    {
        BoundGranularity::PerStep
    } else {
        BoundGranularity::PerKernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn paths_of(src: &str, hyper: &[(&str, f64)]) -> Vec<PathInfo> {
        let p = parse_program(src).unwrap();
        let hyper: Vec<(String, f64)> = hyper.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        enumerate_paths(&p, &hyper).unwrap()
    }

    #[test]
    fn node2vec_weighted_has_three_paths() {
        let src = r#"
            get_weight() {
                h_e = h[edge];
                post = adj[edge];
                if (post == prev) return h_e / a;
                else if (linked(prev, post)) return h_e;
                else return h_e / b;
            }
        "#;
        let paths = paths_of(src, &[("a", 2.0), ("b", 0.5)]);
        assert_eq!(paths.len(), 3);
        // Assignment inlining resolved h_e to h[edge].
        assert_eq!(paths[0].return_expr.to_source(), "(h[edge] / 2.0)");
        assert_eq!(paths[1].return_expr.to_source(), "h[edge]");
        assert_eq!(paths[2].return_expr.to_source(), "(h[edge] / 0.5)");
        for p in &paths {
            assert_eq!(p.granularity, BoundGranularity::PerStep);
            assert!(p.dependencies.contains(&"h".to_string()));
        }
        assert_eq!(overall_granularity(&paths), BoundGranularity::PerStep);
    }

    #[test]
    fn unweighted_node2vec_is_per_kernel() {
        let src = r#"
            get_weight() {
                post = adj[edge];
                if (post == prev) return 1.0 / a;
                else if (linked(prev, post)) return 1.0;
                else return 1.0 / b;
            }
        "#;
        let paths = paths_of(src, &[("a", 2.0), ("b", 0.5)]);
        assert_eq!(paths.len(), 3);
        // Hyperparameters folded: 1/a = 0.5, 1/b = 2.
        assert_eq!(paths[0].return_expr, Expr::Num(0.5));
        assert_eq!(paths[1].return_expr, Expr::Num(1.0));
        assert_eq!(paths[2].return_expr, Expr::Num(2.0));
        assert_eq!(overall_granularity(&paths), BoundGranularity::PerKernel);
    }

    #[test]
    fn conditions_are_recorded_per_path() {
        let src = "f() { if (x == 1) return 1.0; else return 2.0; }";
        let paths = paths_of(src, &[]);
        assert_eq!(paths[0].conditions, vec!["(x == 1.0)"]);
        assert_eq!(paths[1].conditions, vec!["!(x == 1.0)"]);
    }

    #[test]
    fn code_after_if_is_reachable_from_both_branches() {
        let src = r#"
            f() {
                y = 1.0;
                if (x == 1) y = 2.0;
                return y;
            }
        "#;
        let paths = paths_of(src, &[]);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].return_expr, Expr::Num(2.0));
        assert_eq!(paths[1].return_expr, Expr::Num(1.0));
    }

    #[test]
    fn missing_return_is_detected() {
        let p = parse_program("f() { x = 1.0; }").unwrap();
        assert_eq!(
            enumerate_paths(&p, &[]).unwrap_err(),
            CompileError::MissingReturn
        );
    }

    #[test]
    fn missing_return_in_one_branch_is_detected() {
        let p = parse_program("f() { if (x == 1) return 1.0; else x = 2.0; }").unwrap();
        assert!(enumerate_paths(&p, &[]).is_err());
    }

    #[test]
    fn validate_accepts_straightline_code() {
        let p = parse_program("f() { if (a == 1) return 1.0; else return 2.0; }").unwrap();
        let v = validate(&p);
        assert!(v.supported);
        assert!(v.warnings.is_empty());
    }

    #[test]
    fn validate_rejects_loops() {
        let p = parse_program("f() { while (x < 3) { x = x + 1; } return x; }").unwrap();
        let v = validate(&p);
        assert!(!v.supported);
        assert!(v.warnings[0].contains("loop"));
    }

    #[test]
    fn validate_rejects_recursion() {
        let p = parse_program("get_weight() { return get_weight(); }").unwrap();
        let v = validate(&p);
        assert!(!v.supported);
        assert!(v.warnings[0].contains("recursive"));
    }

    #[test]
    fn validate_rejects_warp_intrinsics() {
        let p = parse_program("f() { x = __ballot_sync(m, p); return x; }").unwrap();
        let v = validate(&p);
        assert!(!v.supported);
        assert!(v.warnings[0].contains("intrinsic"));
    }

    #[test]
    fn fold_handles_arithmetic_and_builtins() {
        use crate::parser::parse_expr;
        assert_eq!(fold(&parse_expr("1 + 2 * 3").unwrap()), Expr::Num(7.0));
        assert_eq!(fold(&parse_expr("max(2, 5)").unwrap()), Expr::Num(5.0));
        assert_eq!(fold(&parse_expr("min(2, 5)").unwrap()), Expr::Num(2.0));
        assert_eq!(fold(&parse_expr("abs(0 - 3)").unwrap()), Expr::Num(3.0));
        assert_eq!(fold(&parse_expr("!0").unwrap()), Expr::Num(1.0));
        // Non-constant parts stay symbolic.
        assert_eq!(
            fold(&parse_expr("x + (1 + 1)").unwrap()).to_source(),
            "(x + 2.0)"
        );
    }

    #[test]
    fn references_collect_arrays_calls_and_frees() {
        let p = parse_program(crate::workloads::NODE2VEC_WEIGHTED).unwrap();
        let info = references(&p);
        assert!(info.arrays.contains("h"));
        assert!(info.arrays.contains("adj"));
        assert!(!info.arrays.contains("label"));
        assert!(info.calls.contains("linked"));
        // Locals (h_e, post) are excluded; builtins are excluded.
        assert!(!info.frees.contains("h_e"));
        assert!(!info.frees.contains("post"));
        assert!(info.frees.contains("prev"));
        assert!(info.frees.contains("a"));
        assert!(info.second_order());
    }

    #[test]
    fn references_first_order_walk_is_not_second_order() {
        let p = parse_program("get_weight(edge) { return h[edge]; }").unwrap();
        let info = references(&p);
        assert!(!info.second_order());
        assert_eq!(
            info.arrays.iter().collect::<Vec<_>>(),
            vec![&"h".to_string()]
        );
        assert!(info.calls.is_empty());
    }

    #[test]
    fn references_branch_locals_do_not_leak() {
        // `y` assigned only in the then-branch must still count as local
        // within it, and `z` read before assignment is free.
        let p = parse_program("f() { if (x == 1) { y = z; } return 1.0; }").unwrap();
        let info = references(&p);
        assert!(info.frees.contains("x"));
        assert!(info.frees.contains("z"));
        assert!(!info.frees.contains("y"));
    }

    #[test]
    fn deps_include_arrays_and_vars_once() {
        use crate::parser::parse_expr;
        let e = parse_expr("h[edge] + h[edge] * x + x").unwrap();
        assert_eq!(
            collect_deps(&e),
            vec!["h".to_string(), "edge".into(), "x".into()]
        );
    }
}
