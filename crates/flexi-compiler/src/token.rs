//! Tokeniser for the walk mini-language.

use crate::CompileError;

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (variable, array, or function name).
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// `if` keyword.
    If,
    /// `else` keyword.
    Else,
    /// `return` keyword.
    Return,
    /// `while` keyword (parsed only to be rejected by validation).
    While,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `=`.
    Assign,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `!`.
    Not,
    /// `&&`.
    And,
    /// `||`.
    Or,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
}

/// Tokenises `src`.
///
/// Supports `//` line comments and `/* */` block comments.
///
/// # Errors
///
/// Returns [`CompileError::Lex`] on unknown characters or malformed
/// numbers.
pub fn lex(src: &str) -> Result<Vec<Tok>, CompileError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::Lex("unterminated block comment".into()));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => push1(&mut out, &mut i, Tok::LParen),
            ')' => push1(&mut out, &mut i, Tok::RParen),
            '{' => push1(&mut out, &mut i, Tok::LBrace),
            '}' => push1(&mut out, &mut i, Tok::RBrace),
            '[' => push1(&mut out, &mut i, Tok::LBracket),
            ']' => push1(&mut out, &mut i, Tok::RBracket),
            ';' => push1(&mut out, &mut i, Tok::Semi),
            ',' => push1(&mut out, &mut i, Tok::Comma),
            '+' => push1(&mut out, &mut i, Tok::Plus),
            '-' => push1(&mut out, &mut i, Tok::Minus),
            '*' => push1(&mut out, &mut i, Tok::Star),
            '/' => push1(&mut out, &mut i, Tok::Slash),
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Eq);
                    i += 2;
                } else {
                    push1(&mut out, &mut i, Tok::Assign);
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    push1(&mut out, &mut i, Tok::Not);
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    push1(&mut out, &mut i, Tok::Lt);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    push1(&mut out, &mut i, Tok::Gt);
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Tok::And);
                    i += 2;
                } else {
                    return Err(CompileError::Lex("expected '&&'".into()));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Tok::Or);
                    i += 2;
                } else {
                    return Err(CompileError::Lex("expected '||'".into()));
                }
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| CompileError::Lex(format!("bad number {text:?}")))?;
                out.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                out.push(match word {
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "return" => Tok::Return,
                    "while" | "for" => Tok::While,
                    _ => Tok::Ident(word.to_string()),
                });
            }
            other => {
                return Err(CompileError::Lex(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

fn push1(out: &mut Vec<Tok>, i: &mut usize, t: Tok) {
    out.push(t);
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_simple_program() {
        let toks = lex("if (a == 1) return h[edge] / 2.5;").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::If,
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Num(1.0),
                Tok::RParen,
                Tok::Return,
                Tok::Ident("h".into()),
                Tok::LBracket,
                Tok::Ident("edge".into()),
                Tok::RBracket,
                Tok::Slash,
                Tok::Num(2.5),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        let toks = lex("a != b && c <= d || !e >= f").unwrap();
        assert!(toks.contains(&Tok::Ne));
        assert!(toks.contains(&Tok::And));
        assert!(toks.contains(&Tok::Le));
        assert!(toks.contains(&Tok::Or));
        assert!(toks.contains(&Tok::Not));
        assert!(toks.contains(&Tok::Ge));
    }

    #[test]
    fn skips_comments() {
        let toks = lex("a // line\n /* block\n */ b").unwrap();
        assert_eq!(toks, vec![Tok::Ident("a".into()), Tok::Ident("b".into())]);
    }

    #[test]
    fn while_and_for_map_to_while() {
        assert_eq!(lex("while").unwrap(), vec![Tok::While]);
        assert_eq!(lex("for").unwrap(), vec![Tok::While]);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(lex("a # b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("1.2.3").is_err());
        assert!(lex("/* open").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   \n\t ").unwrap().is_empty());
    }
}
