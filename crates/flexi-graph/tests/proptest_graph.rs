//! Property-style tests for graph construction, I/O and weights, driven
//! by seeded sweeps.
//!
//! The original suite used an external property-testing harness; the
//! cases here are generated from a seeded [`SplitMix64`] so the workspace
//! builds offline with zero external dependencies.

use flexi_graph::{gen, io, CsrBuilder, EdgeProps, WeightModel};
use flexi_rng::{RandomSource, SplitMix64};

const CASES: usize = 128;

fn rng() -> SplitMix64 {
    SplitMix64::new(0x6EA9_0000_0000_0007)
}

/// A random edge list over up to 32 nodes: `(n, edges)` with edges
/// `(src, dst, weight in [0, 100), label in 0..5)`.
fn random_edges(g: &mut SplitMix64) -> (usize, Vec<(u32, u32, f32, u8)>) {
    let n = 2 + g.bounded(30) as usize;
    let count = g.bounded(200) as usize;
    let list = (0..count)
        .map(|_| {
            (
                g.bounded(n as u64) as u32,
                g.bounded(n as u64) as u32,
                (g.bounded(100_000) as f32) / 1000.0,
                g.bounded(5) as u8,
            )
        })
        .collect();
    (n, list)
}

/// CSR preserves the edge multiset: per-source degree counts match and
/// adjacency is sorted.
#[test]
fn builder_preserves_edges() {
    let mut r = rng();
    for _ in 0..CASES {
        let (n, list) = random_edges(&mut r);
        let mut b = CsrBuilder::new(n);
        for &(s, d, w, l) in &list {
            b.push_full(s, d, w, l);
        }
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), list.len());
        for v in 0..n as u32 {
            let expect = list.iter().filter(|e| e.0 == v).count();
            assert_eq!(g.degree(v), expect);
            let neigh = g.neighbors(v);
            assert!(neigh.windows(2).all(|w| w[0] <= w[1]), "unsorted adjacency");
        }
        // has_edge agrees with the raw list.
        for &(s, d, _, _) in &list {
            assert!(g.has_edge(s, d));
        }
    }
}

/// Total weight mass survives construction (payload permuted, not lost).
#[test]
fn builder_preserves_weight_mass() {
    let mut r = rng();
    for _ in 0..CASES {
        let (n, list) = random_edges(&mut r);
        let mut b = CsrBuilder::new(n);
        for &(s, d, w, _) in &list {
            b.push_weighted(s, d, w);
        }
        let g = b.build().unwrap();
        let total_in: f64 = list.iter().map(|e| f64::from(e.2)).sum();
        let total_out: f64 = (0..g.num_edges()).map(|e| f64::from(g.prop(e))).sum();
        assert!((total_in - total_out).abs() < 1e-3 * (1.0 + total_in.abs()));
    }
}

/// Binary serialisation round-trips any graph exactly.
#[test]
fn binary_io_roundtrips() {
    let mut r = rng();
    for _ in 0..CASES {
        let (n, list) = random_edges(&mut r);
        let mut b = CsrBuilder::new(n);
        for &(s, d, w, l) in &list {
            b.push_full(s, d, w, l);
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let g2 = io::read_binary(&buf[..]).unwrap();
        assert_eq!(g.row_ptr(), g2.row_ptr());
        assert_eq!(g.col_idx(), g2.col_idx());
        for e in 0..g.num_edges() {
            assert_eq!(g.prop(e), g2.prop(e));
            assert_eq!(g.label(e), g2.label(e));
        }
    }
}

/// Text serialisation round-trips (weights within f32 print precision).
#[test]
fn text_io_roundtrips() {
    let mut r = rng();
    for _ in 0..CASES {
        let (n, list) = random_edges(&mut r);
        let mut b = CsrBuilder::new(n);
        for &(s, d, _, _) in &list {
            b.push_edge(s, d);
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(&buf[..], Some(n)).unwrap();
        assert_eq!(g.col_idx(), g2.col_idx());
        assert_eq!(g.row_ptr(), g2.row_ptr());
    }
}

/// INT8 quantisation error is bounded by one step of the value range.
#[test]
fn int8_quantization_error_bounded() {
    let mut r = rng();
    for _ in 0..CASES {
        let len = 1 + r.bounded(299) as usize;
        let ws: Vec<f32> = (0..len)
            .map(|_| (r.bounded(1_000_000) as f32) / 1000.0)
            .collect();
        let lo = ws.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = ws.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let step = ((hi - lo) / 255.0).max(f32::EPSILON);
        let q = EdgeProps::F32(ws.clone()).quantize_int8();
        for (e, &orig) in ws.iter().enumerate() {
            assert!((q.get(e) - orig).abs() <= step * 1.01);
        }
    }
}

/// R-MAT generates exactly the requested shape with in-range ids.
#[test]
fn rmat_shape_is_exact() {
    let mut r = rng();
    for _ in 0..CASES {
        let scale = 4 + r.bounded(6) as u32;
        let edges = 1 + r.bounded(1999) as usize;
        let seed = r.next_u64();
        let g = gen::rmat(scale, edges, gen::RmatParams::SOCIAL, seed);
        assert_eq!(g.num_nodes(), 1 << scale);
        assert_eq!(g.num_edges(), edges);
        for &t in g.col_idx() {
            assert!((t as usize) < g.num_nodes());
        }
    }
}

/// Weight models never produce non-finite or negative weights.
#[test]
fn weight_models_produce_finite_positive() {
    let mut r = rng();
    for _ in 0..64 {
        let seed = r.next_u64();
        let alpha = 0.5 + (r.bounded(4500) as f64) / 1000.0;
        let g = gen::rmat(6, 256, gen::RmatParams::SOCIAL, seed);
        for model in [
            WeightModel::UniformReal,
            WeightModel::Pareto { alpha },
            WeightModel::DegreeBased,
        ] {
            let wg = model.apply(g.clone(), seed);
            for e in 0..wg.num_edges() {
                let w = wg.prop(e);
                assert!(w.is_finite() && w > 0.0, "{model:?} produced {w}");
            }
        }
    }
}
