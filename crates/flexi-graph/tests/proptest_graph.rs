//! Property-based tests for graph construction, I/O and weights.

use flexi_graph::{gen, io, CsrBuilder, EdgeProps, WeightModel};
use proptest::prelude::*;

/// Strategy: a random edge list over up to 32 nodes.
fn edges() -> impl Strategy<Value = (usize, Vec<(u32, u32, f32, u8)>)> {
    (2usize..32).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.0f32..100.0, 0u8..5);
        (Just(n), proptest::collection::vec(edge, 0..200))
    })
}

proptest! {
    /// CSR preserves the edge multiset: per-source degree counts match and
    /// adjacency is sorted.
    #[test]
    fn builder_preserves_edges((n, list) in edges()) {
        let mut b = CsrBuilder::new(n);
        for &(s, d, w, l) in &list {
            b.push_full(s, d, w, l);
        }
        let g = b.build().unwrap();
        prop_assert_eq!(g.num_edges(), list.len());
        for v in 0..n as u32 {
            let expect = list.iter().filter(|e| e.0 == v).count();
            prop_assert_eq!(g.degree(v), expect);
            let neigh = g.neighbors(v);
            prop_assert!(neigh.windows(2).all(|w| w[0] <= w[1]), "unsorted adjacency");
        }
        // has_edge agrees with the raw list.
        for &(s, d, _, _) in &list {
            prop_assert!(g.has_edge(s, d));
        }
    }

    /// Total weight mass survives construction (payload permuted, not lost).
    #[test]
    fn builder_preserves_weight_mass((n, list) in edges()) {
        let mut b = CsrBuilder::new(n);
        for &(s, d, w, _) in &list {
            b.push_weighted(s, d, w);
        }
        let g = b.build().unwrap();
        let total_in: f64 = list.iter().map(|e| f64::from(e.2)).sum();
        let total_out: f64 = (0..g.num_edges()).map(|e| f64::from(g.prop(e))).sum();
        prop_assert!((total_in - total_out).abs() < 1e-3 * (1.0 + total_in.abs()));
    }

    /// Binary serialisation round-trips any graph exactly.
    #[test]
    fn binary_io_roundtrips((n, list) in edges()) {
        let mut b = CsrBuilder::new(n);
        for &(s, d, w, l) in &list {
            b.push_full(s, d, w, l);
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let g2 = io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(g.row_ptr(), g2.row_ptr());
        prop_assert_eq!(g.col_idx(), g2.col_idx());
        for e in 0..g.num_edges() {
            prop_assert_eq!(g.prop(e), g2.prop(e));
            prop_assert_eq!(g.label(e), g2.label(e));
        }
    }

    /// Text serialisation round-trips (weights within f32 print precision).
    #[test]
    fn text_io_roundtrips((n, list) in edges()) {
        let mut b = CsrBuilder::new(n);
        for &(s, d, _, _) in &list {
            b.push_edge(s, d);
        }
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(&buf[..], Some(n)).unwrap();
        prop_assert_eq!(g.col_idx(), g2.col_idx());
        prop_assert_eq!(g.row_ptr(), g2.row_ptr());
    }

    /// INT8 quantisation error is bounded by one step of the value range.
    #[test]
    fn int8_quantization_error_bounded(ws in proptest::collection::vec(0.0f32..1000.0, 1..300)) {
        let lo = ws.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = ws.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let step = ((hi - lo) / 255.0).max(f32::EPSILON);
        let q = EdgeProps::F32(ws.clone()).quantize_int8();
        for (e, &orig) in ws.iter().enumerate() {
            prop_assert!((q.get(e) - orig).abs() <= step * 1.01);
        }
    }

    /// R-MAT generates exactly the requested shape with in-range ids.
    #[test]
    fn rmat_shape_is_exact(scale in 4u32..10, edges in 1usize..2000, seed: u64) {
        let g = gen::rmat(scale, edges, gen::RmatParams::SOCIAL, seed);
        prop_assert_eq!(g.num_nodes(), 1 << scale);
        prop_assert_eq!(g.num_edges(), edges);
        for &t in g.col_idx() {
            prop_assert!((t as usize) < g.num_nodes());
        }
    }

    /// Weight models never produce non-finite or negative weights.
    #[test]
    fn weight_models_produce_finite_positive(seed: u64, alpha in 0.5f64..5.0) {
        let g = gen::rmat(6, 256, gen::RmatParams::SOCIAL, seed);
        for model in [
            WeightModel::UniformReal,
            WeightModel::Pareto { alpha },
            WeightModel::DegreeBased,
        ] {
            let wg = model.apply(g.clone(), seed);
            for e in 0..wg.num_edges() {
                let w = wg.prop(e);
                prop_assert!(w.is_finite() && w > 0.0, "{model:?} produced {w}");
            }
        }
    }
}
