//! Seeded synthetic graph generators.
//!
//! Real datasets in the paper range up to 3.6B edges; this crate substitutes
//! R-MAT/Kronecker graphs whose degree distributions match each dataset's
//! skew profile at laptop scale (see `DESIGN.md` §2). All generators are
//! deterministic in their seed.

use crate::builder::CsrBuilder;
use crate::csr::Csr;
use flexi_rng::SplitMix64;

/// R-MAT quadrant probabilities.
///
/// `a + b + c + d` must be 1; `a` is the self-similar "celebrity" quadrant —
/// larger `a` yields a heavier-tailed degree distribution.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// Classic social-network skew (Graph500-like).
    pub const SOCIAL: Self = Self {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Heavier skew typical of web crawls (EU/AB/UK/SK).
    pub const WEB: Self = Self {
        a: 0.65,
        b: 0.15,
        c: 0.15,
        d: 0.05,
    };

    /// Mild skew (citation networks).
    pub const CITATION: Self = Self {
        a: 0.45,
        b: 0.22,
        c: 0.22,
        d: 0.11,
    };

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "R-MAT quadrant probabilities must sum to 1, got {sum}"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "R-MAT probabilities must be non-negative"
        );
    }
}

/// Generates an R-MAT graph with `2^scale` nodes and `edges` directed edges.
///
/// Nodes ids are bit-shuffled after placement so that high-degree nodes are
/// spread across the id space (matching relabeled real datasets rather than
/// raw Kronecker output).
///
/// # Panics
///
/// Panics if the quadrant probabilities are invalid.
///
/// # Examples
///
/// ```
/// use flexi_graph::gen::{rmat, RmatParams};
///
/// let g = rmat(8, 1024, RmatParams::SOCIAL, 42);
/// assert_eq!(g.num_nodes(), 256);
/// assert_eq!(g.num_edges(), 1024);
/// ```
pub fn rmat(scale: u32, edges: usize, params: RmatParams, seed: u64) -> Csr {
    params.validate();
    assert!(scale <= 31, "scale {scale} too large for u32 node ids");
    let n = 1usize << scale;
    let mut rng = SplitMix64::new(seed);
    // A fixed random permutation of node ids, realised as an xor mask plus a
    // multiplicative shuffle — cheap and bijective over [0, 2^scale).
    let xor_mask = (rng.next() as usize) & (n - 1);

    let mut b = CsrBuilder::with_capacity(n, edges);
    let thresh_a = params.a;
    let thresh_ab = params.a + params.b;
    let thresh_abc = params.a + params.b + params.c;
    for _ in 0..edges {
        let mut src = 0usize;
        let mut dst = 0usize;
        for _ in 0..scale {
            src <<= 1;
            dst <<= 1;
            // Perturb quadrant probabilities slightly per level, a common
            // smoothing that avoids exact-degree staircases.
            let u = (rng.next() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
            if u < thresh_a {
                // (0, 0): nothing to add.
            } else if u < thresh_ab {
                dst |= 1;
            } else if u < thresh_abc {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        b.push_edge((src ^ xor_mask) as u32, (dst ^ xor_mask) as u32);
    }
    b.build()
        .expect("generated ids are in range by construction")
}

/// Generates a uniform Erdős–Rényi G(n, m) multigraph.
pub fn erdos_renyi(n: usize, edges: usize, seed: u64) -> Csr {
    assert!(n > 0 || edges == 0, "edges on an empty node set");
    let mut rng = SplitMix64::new(seed);
    let mut b = CsrBuilder::with_capacity(n, edges);
    for _ in 0..edges {
        let src = rng.bounded(n as u64) as u32;
        let dst = rng.bounded(n as u64) as u32;
        b.push_edge(src, dst);
    }
    b.build().expect("bounded ids are in range")
}

/// Generates a graph whose out-degrees follow a Zipf(`exponent`) law.
///
/// Each node `v` receives `max(1, round(n_max / (rank+1)^exponent))`
/// out-edges with uniformly random targets. Useful for controlled
/// degree-skew unit tests.
pub fn zipf_degree(n: usize, max_degree: usize, exponent: f64, seed: u64) -> Csr {
    assert!(n > 0, "zipf_degree requires at least one node");
    assert!(exponent >= 0.0, "exponent must be non-negative");
    let mut rng = SplitMix64::new(seed);
    // Random rank assignment so degree is uncorrelated with node id.
    let mut ranks: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut ranks);
    let mut b = CsrBuilder::new(n);
    for (v, &rank) in ranks.iter().enumerate() {
        let rank = rank as f64;
        let deg = ((max_degree as f64) / (rank + 1.0).powf(exponent))
            .round()
            .max(1.0) as usize;
        for _ in 0..deg {
            b.push_edge(v as u32, rng.bounded(n as u64) as u32);
        }
    }
    b.build().expect("ids in range")
}

/// A complete directed graph on `n` nodes (no self-loops); tiny-scale tests.
pub fn complete(n: usize) -> Csr {
    let mut b = CsrBuilder::new(n);
    for s in 0..n {
        for d in 0..n {
            if s != d {
                b.push_edge(s as u32, d as u32);
            }
        }
    }
    b.build().expect("ids in range")
}

/// A directed cycle on `n` nodes; the simplest strongly connected graph.
pub fn cycle(n: usize) -> Csr {
    let mut b = CsrBuilder::new(n);
    for v in 0..n {
        b.push_edge(v as u32, ((v + 1) % n) as u32);
    }
    b.build().expect("ids in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 2000, RmatParams::SOCIAL, 5);
        let b = rmat(8, 2000, RmatParams::SOCIAL, 5);
        assert_eq!(a.col_idx(), b.col_idx());
        assert_eq!(a.row_ptr(), b.row_ptr());
    }

    #[test]
    fn rmat_seed_changes_output() {
        let a = rmat(8, 2000, RmatParams::SOCIAL, 5);
        let b = rmat(8, 2000, RmatParams::SOCIAL, 6);
        assert_ne!(a.col_idx(), b.col_idx());
    }

    #[test]
    fn rmat_social_is_more_skewed_than_er() {
        let r = rmat(10, 16_384, RmatParams::SOCIAL, 1);
        let e = erdos_renyi(1024, 16_384, 1);
        let rs = degree_stats(&r);
        let es = degree_stats(&e);
        assert!(
            rs.max > 3 * es.max,
            "R-MAT max degree {} not ≫ ER max degree {}",
            rs.max,
            es.max
        );
    }

    #[test]
    fn rmat_web_is_more_skewed_than_social() {
        let web = rmat(11, 40_000, RmatParams::WEB, 9);
        let soc = rmat(11, 40_000, RmatParams::SOCIAL, 9);
        assert!(degree_stats(&web).max >= degree_stats(&soc).max);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_params() {
        rmat(
            4,
            16,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            0,
        );
    }

    #[test]
    fn erdos_renyi_has_requested_counts() {
        let g = erdos_renyi(100, 1234, 3);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 1234);
    }

    #[test]
    fn zipf_degrees_follow_rank_law() {
        let g = zipf_degree(64, 256, 1.0, 7);
        let s = degree_stats(&g);
        assert_eq!(s.max, 256);
        assert!(s.min >= 1);
    }

    #[test]
    fn complete_graph_has_full_degrees() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 20);
        for v in 0..5 {
            assert_eq!(g.degree(v), 4);
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn cycle_graph_walks_forward() {
        let g = cycle(4);
        for v in 0..4u32 {
            assert_eq!(g.neighbors(v), &[(v + 1) % 4]);
        }
    }
}
