//! Owned, epoch-versioned graph handles — the unit of graph identity the
//! walk engines and the session API operate on.
//!
//! A [`GraphHandle`] owns its graph behind an `Arc` and carries a
//! process-unique id plus an epoch counter that advances on every
//! committed update batch. This replaces the borrowed-`&Csr` request
//! model: requests hold a cheap handle clone instead of a lifetime-bound
//! borrow, engines pin a consistent [`GraphSnapshot`] at launch, and
//! caches key their entries by [`GraphVersion`] — `(graph_id, epoch)` —
//! so a runtime update invalidates exactly the state it must.
//!
//! Mutation goes through [`GraphHandle::apply_updates`], which
//! clones-on-write (readers holding an older snapshot keep walking the
//! old version), bumps the epoch, and reports the dirty-node set for
//! incremental aggregate refresh (`Aggregates::refresh_nodes` in
//! `flexi-core`).

use crate::blocks::BlockRuntime;
use crate::csr::{Csr, NodeId};
use crate::dynamic::{apply_batch, GraphUpdate};
use crate::partition::PartitionPlan;
use crate::temporal::{TimeMask, TimeWindow};
use crate::GraphError;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A type-erased sampler-state artifact cached on a [`GraphHandle`].
///
/// The graph layer stores and migrates these without knowing their shape;
/// the sampling layer downcasts to its concrete table type at use sites.
pub type DynState = Arc<dyn Any + Send + Sync>;

/// Builds and incrementally migrates one epoch-versioned sampler-state
/// artifact (alias tables, CDF segments, …) for a [`GraphHandle`].
///
/// Implementations live above the graph layer (they close over a sampler
/// strategy and a walker weight function); the handle only needs the two
/// lifecycle entry points plus a cache key. The incremental contract is
/// the same one the partition-plan cache pins: for every epoch history,
/// `refresh(prev, g, dirty)` must be **bit-identical** to `build(g)`.
pub trait StateMaintainer: Send + Sync {
    /// Cache key identifying the artifact — distinct sampler strategies
    /// and distinct weight functions must not collide.
    fn state_key(&self) -> String;
    /// Builds the artifact from scratch over `graph`.
    fn build(&self, graph: &Csr) -> DynState;
    /// Migrates `prev` across one epoch by recomputing only the `dirty`
    /// source nodes against the post-batch `graph` — O(Δ), not O(|V|).
    fn refresh(&self, prev: &DynState, graph: &Csr, dirty: &[NodeId]) -> DynState;
}

/// Process-wide handle id allocator.
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

/// One version of one graph: a process-unique graph id plus the epoch the
/// graph was at. Two equal `GraphVersion`s always denote bit-identical
/// graph content, which is what makes them sound cache keys — every
/// mutation path bumps the epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphVersion {
    /// Process-unique id of the [`GraphHandle`].
    pub graph_id: u64,
    /// Number of update batches applied since the graph was loaded.
    pub epoch: u64,
}

impl std::fmt::Display for GraphVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}@e{}", self.graph_id, self.epoch)
    }
}

/// A consistent view of one graph version, pinned by an engine for the
/// duration of one launch. Updates applied after the snapshot was taken
/// do not affect it.
#[derive(Clone, Debug)]
pub struct GraphSnapshot {
    /// The graph at the snapshot's version.
    pub graph: Arc<Csr>,
    /// The version the snapshot pinned.
    pub version: GraphVersion,
}

/// The result of one [`GraphHandle::apply_updates`] batch.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// The version after the batch (epoch advanced by one).
    pub version: GraphVersion,
    /// The graph exactly as of [`UpdateOutcome::version`] — callers
    /// refreshing derived state (aggregates) against the dirty set must
    /// use this, not a later re-read of the handle, or a concurrent batch
    /// could slip in between.
    pub graph: Arc<Csr>,
    /// Source nodes whose preprocessed aggregates are now stale, sorted
    /// and deduplicated.
    pub dirty_nodes: Vec<NodeId>,
    /// Whether the topology changed (edge ids may have shifted), as
    /// opposed to weights only.
    pub structural: bool,
    /// Cached partition plans migrated to the new epoch by incremental
    /// dirty-node refresh (structural batches only; weight-only batches
    /// carry plans across untouched and do not count here).
    pub plans_migrated: usize,
    /// Cached time-window masks recomputed for the new epoch (structural
    /// batches only; weight-only batches carry masks across untouched —
    /// a mask depends only on topology and timestamps — and do not count
    /// here).
    pub masks_migrated: usize,
    /// Cached sampler-state artifacts patched to the new epoch by
    /// incremental dirty-node refresh. Unlike plans and masks, these
    /// migrate on **both** batch kinds — a weight-only batch changes the
    /// very weights the tables encode — so every cached artifact counts
    /// here on every non-empty batch.
    pub sampler_states_migrated: usize,
    /// Out-of-core blocks re-spilled across cached [`BlockRuntime`]s —
    /// the blocks owning a dirty node, summed over every cached runtime.
    /// Like sampler states (and unlike plans), block payloads encode
    /// weight values, so **both** batch kinds count here.
    pub blocks_migrated: usize,
}

/// How a [`GraphHandle::partition_plan`] lookup was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanFetch {
    /// The cached plan for this epoch and shard count was reused.
    Cached,
    /// No current plan existed; one was computed from scratch.
    Built,
}

/// One cached partition plan: the shard count it was computed for and the
/// epoch it is current at.
#[derive(Debug)]
struct PlanSlot {
    shards: usize,
    epoch: u64,
    plan: Arc<PartitionPlan>,
}

/// One cached time-window mask: the window it resolves and the epoch it is
/// current at.
#[derive(Debug)]
struct MaskSlot {
    window: TimeWindow,
    epoch: u64,
    mask: Arc<TimeMask>,
}

/// One cached sampler-state artifact: its maintainer (kept so update
/// batches can patch it in place), the key it is filed under, and the
/// epoch it is current at.
struct StateSlot {
    key: String,
    epoch: u64,
    state: DynState,
    maintainer: Arc<dyn StateMaintainer>,
}

impl std::fmt::Debug for StateSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateSlot")
            .field("key", &self.key)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

/// One cached out-of-core block runtime: the `(block bytes, budget)`
/// request it serves and the epoch its spill is current at.
#[derive(Debug)]
struct BlockSlot {
    block_bytes: usize,
    resident_budget: usize,
    epoch: u64,
    runtime: Arc<BlockRuntime>,
}

#[derive(Debug)]
struct Versioned {
    graph: Arc<Csr>,
    epoch: u64,
    /// Cached partition plans, one per requested shard count, kept
    /// current across update batches (see [`GraphHandle::partition_plan`]).
    plans: Vec<PlanSlot>,
    /// Cached time-window masks, one per requested window, kept current
    /// across update batches (see [`GraphHandle::time_mask`]).
    masks: Vec<MaskSlot>,
    /// Cached sampler-state artifacts, one per state key, kept current
    /// across update batches (see [`GraphHandle::sampler_state`]).
    states: Vec<StateSlot>,
    /// Cached out-of-core block runtimes, one per `(block bytes, budget)`
    /// request, kept current across update batches (see
    /// [`GraphHandle::block_runtime`]).
    blocks: Vec<BlockSlot>,
}

/// An owned, shareable, epoch-versioned graph.
///
/// Cloning a handle is cheap and yields another name for the *same*
/// graph: updates applied through any clone are visible to all of them
/// (and bump the shared epoch). Use [`GraphHandle::snapshot`] to pin a
/// consistent version for reading.
///
/// # Examples
///
/// ```
/// use flexi_graph::{CsrBuilder, GraphHandle, GraphUpdate};
///
/// let g = CsrBuilder::new(3).weighted_edge(0, 1, 2.0).build().unwrap();
/// let handle = GraphHandle::new(g);
/// assert_eq!(handle.epoch(), 0);
///
/// let before = handle.snapshot();
/// let outcome = handle
///     .apply_updates(&[GraphUpdate::AddEdge { src: 0, dst: 2, weight: 5.0, label: 0 }])
///     .unwrap();
/// assert_eq!(outcome.version.epoch, 1);
/// assert_eq!(outcome.dirty_nodes, vec![0]);
///
/// // The live handle serves the new topology; the old snapshot is
/// // unaffected (readers mid-walk keep a consistent view).
/// assert!(handle.graph().has_edge(0, 2));
/// assert!(!before.graph.has_edge(0, 2));
/// ```
#[derive(Clone, Debug)]
pub struct GraphHandle {
    id: u64,
    shared: Arc<RwLock<Versioned>>,
}

impl GraphHandle {
    /// Takes ownership of `csr` under a fresh handle at epoch 0.
    pub fn new(csr: Csr) -> Self {
        Self::from_arc(Arc::new(csr))
    }

    /// Wraps an already-shared graph under a fresh handle at epoch 0.
    pub fn from_arc(graph: Arc<Csr>) -> Self {
        Self {
            id: NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed),
            shared: Arc::new(RwLock::new(Versioned {
                graph,
                epoch: 0,
                plans: Vec::new(),
                masks: Vec::new(),
                states: Vec::new(),
                blocks: Vec::new(),
            })),
        }
    }

    /// The handle's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The current epoch (number of applied update batches).
    pub fn epoch(&self) -> u64 {
        self.read().epoch
    }

    /// The current version: `(id, epoch)`.
    pub fn version(&self) -> GraphVersion {
        let v = self.read();
        GraphVersion {
            graph_id: self.id,
            epoch: v.epoch,
        }
    }

    /// The current graph (cheap `Arc` clone). Prefer
    /// [`GraphHandle::snapshot`] when the version matters too.
    pub fn graph(&self) -> Arc<Csr> {
        Arc::clone(&self.read().graph)
    }

    /// Pins the current `(graph, version)` pair atomically.
    pub fn snapshot(&self) -> GraphSnapshot {
        let v = self.read();
        GraphSnapshot {
            graph: Arc::clone(&v.graph),
            version: GraphVersion {
                graph_id: self.id,
                epoch: v.epoch,
            },
        }
    }

    /// Applies one batch of updates and advances the epoch.
    ///
    /// The batch is validated up front and applied copy-on-write: when
    /// other snapshots of the current version are live, they keep the old
    /// graph; the handle itself serves the new version from here on. An
    /// empty batch is a no-op that does *not* advance the epoch.
    ///
    /// # Errors
    ///
    /// As [`apply_batch`]; on error the graph and epoch are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the handle's lock was poisoned by a panic in another
    /// thread mid-update.
    pub fn apply_updates(&self, batch: &[GraphUpdate]) -> Result<UpdateOutcome, GraphError> {
        let mut guard = self.shared.write().expect("graph handle lock poisoned");
        if batch.is_empty() {
            return Ok(UpdateOutcome {
                version: GraphVersion {
                    graph_id: self.id,
                    epoch: guard.epoch,
                },
                graph: Arc::clone(&guard.graph),
                dirty_nodes: Vec::new(),
                structural: false,
                plans_migrated: 0,
                masks_migrated: 0,
                sampler_states_migrated: 0,
                blocks_migrated: 0,
            });
        }
        // make_mut clones only when snapshots of the current version are
        // still live; apply_batch validates before mutating, so a rejected
        // batch leaves even that clone content-identical to the original.
        let old_epoch = guard.epoch;
        let outcome = apply_batch(Arc::make_mut(&mut guard.graph), batch)?;
        guard.epoch += 1;
        let new_epoch = guard.epoch;
        // Migrate the cached partition plans under the same write lock, so
        // no reader can observe the new epoch with a stale plan. Weight
        // batches carry the plan (the census is pure topology); structural
        // batches refresh exactly the dirty nodes. A slot whose epoch is
        // already stale (it missed an earlier migration — impossible
        // through this method, but cheap to guard) is dropped instead of
        // patched.
        let graph = Arc::clone(&guard.graph);
        let mut plans_migrated = 0;
        guard.plans.retain_mut(|slot| {
            if slot.epoch != old_epoch {
                return false;
            }
            if outcome.structural {
                Arc::make_mut(&mut slot.plan).refresh(&graph, &outcome.dirty_nodes);
                plans_migrated += 1;
            }
            slot.epoch = new_epoch;
            true
        });
        // Same treatment for cached time-window masks: weight-only batches
        // carry them (a mask reads only topology + timestamps), structural
        // batches recompute against the new edge ids under the same lock.
        let mut masks_migrated = 0;
        guard.masks.retain_mut(|slot| {
            if slot.epoch != old_epoch {
                return false;
            }
            if outcome.structural {
                slot.mask = Arc::new(TimeMask::compute(&graph, slot.window));
                masks_migrated += 1;
            }
            slot.epoch = new_epoch;
            true
        });
        // Sampler-state artifacts encode the weight values themselves, so
        // *every* batch kind patches them — weight-only in O(Δ) over the
        // touched sources, structural over the dirty frontier. Either way
        // the maintainer's refresh≡rebuild contract keeps the patched
        // artifact bit-identical to a from-scratch build.
        let mut sampler_states_migrated = 0;
        guard.states.retain_mut(|slot| {
            if slot.epoch != old_epoch {
                return false;
            }
            slot.state = slot
                .maintainer
                .refresh(&slot.state, &graph, &outcome.dirty_nodes);
            sampler_states_migrated += 1;
            slot.epoch = new_epoch;
            true
        });
        // Block runtimes spill the weight values themselves, so — like
        // sampler states — both batch kinds migrate them: the blocks
        // owning dirty nodes re-spill against the post-batch graph and
        // drop from the resident cache. A runtime whose re-spill fails
        // (spill-file I/O) is dropped rather than served stale.
        let mut blocks_migrated = 0;
        guard.blocks.retain_mut(|slot| {
            if slot.epoch != old_epoch {
                return false;
            }
            match slot.runtime.migrate(&graph, &outcome.dirty_nodes) {
                Ok(respilled) => {
                    blocks_migrated += respilled;
                    slot.epoch = new_epoch;
                    true
                }
                Err(_) => false,
            }
        });
        Ok(UpdateOutcome {
            version: GraphVersion {
                graph_id: self.id,
                epoch: new_epoch,
            },
            graph,
            dirty_nodes: outcome.dirty_nodes,
            structural: outcome.structural,
            plans_migrated,
            masks_migrated,
            sampler_states_migrated,
            blocks_migrated,
        })
    }

    /// The partition plan for `shards` at the version `snap` pins.
    ///
    /// Served from the handle's plan cache when current — steady-state
    /// sharded drains re-use one plan per epoch instead of re-partitioning
    /// per launch; [`GraphHandle::apply_updates`] keeps cached plans
    /// current by migrating only the dirty nodes. A miss (first request
    /// for this shard count, or a snapshot of a superseded version)
    /// computes the plan from the snapshot's graph; the result is cached
    /// only when the snapshot is still the live version.
    pub fn partition_plan(
        &self,
        snap: &GraphSnapshot,
        shards: usize,
    ) -> (Arc<PartitionPlan>, PlanFetch) {
        {
            let guard = self.read();
            if let Some(slot) = guard
                .plans
                .iter()
                .find(|s| s.shards == shards && s.epoch == snap.version.epoch)
            {
                return (Arc::clone(&slot.plan), PlanFetch::Cached);
            }
        }
        let plan = Arc::new(PartitionPlan::compute(&snap.graph, shards));
        let mut guard = self.shared.write().expect("graph handle lock poisoned");
        if guard.epoch == snap.version.epoch {
            match guard.plans.iter_mut().find(|s| s.shards == shards) {
                // A concurrent builder may have raced us here; either plan
                // is correct (both computed from the same version).
                Some(slot) => {
                    slot.epoch = snap.version.epoch;
                    slot.plan = Arc::clone(&plan);
                }
                None => guard.plans.push(PlanSlot {
                    shards,
                    epoch: snap.version.epoch,
                    plan: Arc::clone(&plan),
                }),
            }
        }
        (plan, PlanFetch::Built)
    }

    /// The time-window mask for `window` at the version `snap` pins.
    ///
    /// Served from the handle's mask cache when current — a stream of
    /// same-window requests resolves the O(E) mask once per ingest epoch;
    /// [`GraphHandle::apply_updates`] keeps cached masks current (carried
    /// across weight-only batches, recomputed on structural ones). A miss
    /// computes the mask from the snapshot's pinned graph; the result is
    /// cached only when the snapshot is still the live version.
    pub fn time_mask(
        &self,
        snap: &GraphSnapshot,
        window: TimeWindow,
    ) -> (Arc<TimeMask>, PlanFetch) {
        {
            let guard = self.read();
            if let Some(slot) = guard
                .masks
                .iter()
                .find(|s| s.window == window && s.epoch == snap.version.epoch)
            {
                return (Arc::clone(&slot.mask), PlanFetch::Cached);
            }
        }
        let mask = Arc::new(TimeMask::compute(&snap.graph, window));
        let mut guard = self.shared.write().expect("graph handle lock poisoned");
        if guard.epoch == snap.version.epoch {
            match guard.masks.iter_mut().find(|s| s.window == window) {
                // A concurrent builder may have raced us here; either mask
                // is correct (both computed from the same version).
                Some(slot) => {
                    slot.epoch = snap.version.epoch;
                    slot.mask = Arc::clone(&mask);
                }
                None => guard.masks.push(MaskSlot {
                    window,
                    epoch: snap.version.epoch,
                    mask: Arc::clone(&mask),
                }),
            }
        }
        (mask, PlanFetch::Built)
    }

    /// The sampler-state artifact maintained by `maintainer`, at the
    /// version `snap` pins.
    ///
    /// Served from the handle's state cache when current — steady-state
    /// drains re-use one artifact per epoch instead of rebuilding tables
    /// per launch; [`GraphHandle::apply_updates`] keeps cached artifacts
    /// current by patching only the dirty nodes (on both weight-only and
    /// structural batches). A miss builds from the snapshot's pinned
    /// graph; the result (and its maintainer, which future batches will
    /// patch through) is cached only when the snapshot is still the live
    /// version.
    pub fn sampler_state(
        &self,
        snap: &GraphSnapshot,
        maintainer: &Arc<dyn StateMaintainer>,
    ) -> (DynState, PlanFetch) {
        let key = maintainer.state_key();
        {
            let guard = self.read();
            if let Some(slot) = guard
                .states
                .iter()
                .find(|s| s.key == key && s.epoch == snap.version.epoch)
            {
                return (Arc::clone(&slot.state), PlanFetch::Cached);
            }
        }
        let state = maintainer.build(&snap.graph);
        let mut guard = self.shared.write().expect("graph handle lock poisoned");
        if guard.epoch == snap.version.epoch {
            match guard.states.iter_mut().find(|s| s.key == key) {
                // A concurrent builder may have raced us here; either
                // artifact is correct (both built from the same version).
                Some(slot) => {
                    slot.epoch = snap.version.epoch;
                    slot.state = Arc::clone(&state);
                    slot.maintainer = Arc::clone(maintainer);
                }
                None => guard.states.push(StateSlot {
                    key,
                    epoch: snap.version.epoch,
                    state: Arc::clone(&state),
                    maintainer: Arc::clone(maintainer),
                }),
            }
        }
        (state, PlanFetch::Built)
    }

    /// The out-of-core block runtime for a `(block_bytes, resident
    /// budget)` request, at the version `snap` pins.
    ///
    /// Served from the handle's block cache when current — steady-state
    /// out-of-core drains re-use one spill per epoch stream instead of
    /// re-spilling per launch; [`GraphHandle::apply_updates`] keeps
    /// cached runtimes current by re-spilling only the blocks owning
    /// dirty nodes (on both weight-only and structural batches — block
    /// payloads encode the weights). A miss plans, spills and caches a
    /// fresh runtime; the result is cached only when the snapshot is
    /// still the live version.
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] when the spill file cannot be written.
    pub fn block_runtime(
        &self,
        snap: &GraphSnapshot,
        block_bytes: usize,
        resident_budget: usize,
    ) -> Result<(Arc<BlockRuntime>, PlanFetch), GraphError> {
        {
            let guard = self.read();
            if let Some(slot) = guard.blocks.iter().find(|s| {
                s.block_bytes == block_bytes
                    && s.resident_budget == resident_budget
                    && s.epoch == snap.version.epoch
            }) {
                return Ok((Arc::clone(&slot.runtime), PlanFetch::Cached));
            }
        }
        let runtime = Arc::new(BlockRuntime::build(
            &snap.graph,
            block_bytes,
            resident_budget,
        )?);
        let mut guard = self.shared.write().expect("graph handle lock poisoned");
        if guard.epoch == snap.version.epoch {
            match guard
                .blocks
                .iter_mut()
                .find(|s| s.block_bytes == block_bytes && s.resident_budget == resident_budget)
            {
                // A concurrent builder may have raced us here; either
                // runtime is correct (both spilled from the same version).
                Some(slot) => {
                    slot.epoch = snap.version.epoch;
                    slot.runtime = Arc::clone(&runtime);
                }
                None => guard.blocks.push(BlockSlot {
                    block_bytes,
                    resident_budget,
                    epoch: snap.version.epoch,
                    runtime: Arc::clone(&runtime),
                }),
            }
        }
        Ok((runtime, PlanFetch::Built))
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Versioned> {
        self.shared.read().expect("graph handle lock poisoned")
    }
}

impl From<Csr> for GraphHandle {
    fn from(csr: Csr) -> Self {
        Self::new(csr)
    }
}

/// Another cheap name for the same versioned graph (not a new graph).
impl From<&GraphHandle> for GraphHandle {
    fn from(handle: &GraphHandle) -> Self {
        handle.clone()
    }
}

impl From<Arc<Csr>> for GraphHandle {
    fn from(graph: Arc<Csr>) -> Self {
        Self::from_arc(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;

    fn base() -> Csr {
        CsrBuilder::new(4)
            .weighted_edge(0, 1, 2.0)
            .weighted_edge(0, 2, 3.0)
            .weighted_edge(1, 2, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn ids_are_unique_and_epochs_start_at_zero() {
        let a = GraphHandle::new(base());
        let b = GraphHandle::new(base());
        assert_ne!(a.id(), b.id());
        assert_eq!(a.epoch(), 0);
        assert_eq!(
            a.version(),
            GraphVersion {
                graph_id: a.id(),
                epoch: 0
            }
        );
    }

    #[test]
    fn clones_share_updates_and_epoch() {
        let a = GraphHandle::new(base());
        let b = a.clone();
        a.apply_updates(&[GraphUpdate::SetWeight {
            edge: 0,
            weight: 8.0,
        }])
        .unwrap();
        assert_eq!(b.epoch(), 1);
        assert_eq!(b.graph().prop(0), 8.0);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn snapshots_pin_the_old_version_across_updates() {
        let h = GraphHandle::new(base());
        let snap = h.snapshot();
        h.apply_updates(&[GraphUpdate::RemoveEdge { src: 0, dst: 1 }])
            .unwrap();
        assert!(snap.graph.has_edge(0, 1), "snapshot sees the old topology");
        assert_eq!(snap.version.epoch, 0);
        assert!(!h.graph().has_edge(0, 1));
        assert_eq!(h.epoch(), 1);
    }

    #[test]
    fn empty_batch_keeps_the_epoch() {
        let h = GraphHandle::new(base());
        let out = h.apply_updates(&[]).unwrap();
        assert_eq!(out.version.epoch, 0);
        assert!(out.dirty_nodes.is_empty());
        assert_eq!(h.epoch(), 0);
    }

    #[test]
    fn failed_batch_keeps_graph_and_epoch() {
        let h = GraphHandle::new(base());
        let err = h.apply_updates(&[GraphUpdate::AddEdge {
            src: 0,
            dst: 99,
            weight: 1.0,
            label: 0,
        }]);
        assert!(err.is_err());
        assert_eq!(h.epoch(), 0);
        assert_eq!(h.graph().num_edges(), 3);
    }

    #[test]
    fn update_outcome_reports_structural_flag() {
        let h = GraphHandle::new(base());
        let weight_only = h
            .apply_updates(&[GraphUpdate::SetWeight {
                edge: 1,
                weight: 4.0,
            }])
            .unwrap();
        assert!(!weight_only.structural);
        let structural = h
            .apply_updates(&[GraphUpdate::AddEdge {
                src: 2,
                dst: 3,
                weight: 1.0,
                label: 0,
            }])
            .unwrap();
        assert!(structural.structural);
        assert_eq!(h.epoch(), 2);
    }

    #[test]
    fn version_display_is_compact() {
        let v = GraphVersion {
            graph_id: 7,
            epoch: 3,
        };
        assert_eq!(v.to_string(), "g7@e3");
    }

    #[test]
    fn partition_plans_are_cached_per_epoch_and_migrated_by_updates() {
        let h = GraphHandle::new(base());
        let snap = h.snapshot();
        let (plan, fetch) = h.partition_plan(&snap, 2);
        assert_eq!(fetch, PlanFetch::Built);
        assert_eq!(plan.total_edges(), 3);
        // Same epoch, same shard count: served from the cache.
        let (again, fetch) = h.partition_plan(&snap, 2);
        assert_eq!(fetch, PlanFetch::Cached);
        assert!(Arc::ptr_eq(&plan, &again));
        // A different shard count is its own slot.
        assert_eq!(h.partition_plan(&snap, 3).1, PlanFetch::Built);

        // A weight-only batch carries the plan across the epoch.
        let out = h
            .apply_updates(&[GraphUpdate::SetWeight {
                edge: 0,
                weight: 9.0,
            }])
            .unwrap();
        assert_eq!(out.plans_migrated, 0);
        let (carried, fetch) = h.partition_plan(&h.snapshot(), 2);
        assert_eq!(fetch, PlanFetch::Cached);
        assert_eq!(*carried, *plan);

        // A structural batch migrates every cached plan incrementally.
        let out = h
            .apply_updates(&[GraphUpdate::AddEdge {
                src: 2,
                dst: 3,
                weight: 1.0,
                label: 0,
            }])
            .unwrap();
        assert_eq!(out.plans_migrated, 2, "both shard-count slots migrated");
        let snap = h.snapshot();
        let (migrated, fetch) = h.partition_plan(&snap, 2);
        assert_eq!(fetch, PlanFetch::Cached);
        assert_eq!(
            *migrated,
            crate::partition::PartitionPlan::compute(&snap.graph, 2)
        );
    }

    #[test]
    fn stale_snapshot_plan_is_built_but_not_cached() {
        let h = GraphHandle::new(base());
        let old = h.snapshot();
        h.apply_updates(&[GraphUpdate::AddEdge {
            src: 2,
            dst: 3,
            weight: 1.0,
            label: 0,
        }])
        .unwrap();
        // A plan for the superseded snapshot is computed from its pinned
        // graph (3 edges, not 4) and never pollutes the live cache.
        let (plan, fetch) = h.partition_plan(&old, 2);
        assert_eq!(fetch, PlanFetch::Built);
        assert_eq!(plan.total_edges(), 3);
        let (live, fetch) = h.partition_plan(&h.snapshot(), 2);
        assert_eq!(fetch, PlanFetch::Built, "stale plan was not cached");
        assert_eq!(live.total_edges(), 4);
    }

    #[test]
    fn time_masks_are_cached_per_epoch_and_migrated_by_updates() {
        let g = CsrBuilder::new(4)
            .timestamped_edge(0, 1, 1.0, 10)
            .timestamped_edge(0, 2, 1.0, 20)
            .timestamped_edge(1, 2, 1.0, 30)
            .build()
            .unwrap();
        let h = GraphHandle::new(g);
        let snap = h.snapshot();
        let w = TimeWindow::until(25);
        let (mask, fetch) = h.time_mask(&snap, w);
        assert_eq!(fetch, PlanFetch::Built);
        assert_eq!(mask.admitted(), 2);
        let (again, fetch) = h.time_mask(&snap, w);
        assert_eq!(fetch, PlanFetch::Cached);
        assert!(Arc::ptr_eq(&mask, &again));
        // A different window is its own slot.
        assert_eq!(h.time_mask(&snap, TimeWindow::all()).1, PlanFetch::Built);

        // A weight-only batch carries masks across the epoch untouched.
        let out = h
            .apply_updates(&[GraphUpdate::SetWeight {
                edge: 0,
                weight: 9.0,
            }])
            .unwrap();
        assert_eq!(out.masks_migrated, 0);
        let (carried, fetch) = h.time_mask(&h.snapshot(), w);
        assert_eq!(fetch, PlanFetch::Cached);
        assert!(Arc::ptr_eq(&mask, &carried));

        // A structural batch recomputes every cached mask for the new ids.
        let out = h
            .apply_updates(&[GraphUpdate::AddEdgeAt {
                src: 0,
                dst: 0,
                weight: 1.0,
                label: 0,
                time: 24,
            }])
            .unwrap();
        assert_eq!(out.masks_migrated, 2, "both window slots recomputed");
        let snap = h.snapshot();
        let (migrated, fetch) = h.time_mask(&snap, w);
        assert_eq!(fetch, PlanFetch::Cached);
        // Inserted edge 0 -> 0 sorts ahead of 0 -> 1; mask tracks new ids.
        assert_eq!(migrated.admitted(), 3);
        // Admitted: (0,0,t24) id 0, (0,1,t10) id 1, (0,2,t20) id 2; the
        // t30 edge (1,2) now sits at id 3, outside [0, 25).
        assert!((0..3).all(|e| migrated.admits(e)) && !migrated.admits(3));
    }

    #[test]
    fn stale_snapshot_mask_is_built_but_not_cached() {
        let g = CsrBuilder::new(3)
            .timestamped_edge(0, 1, 1.0, 10)
            .build()
            .unwrap();
        let h = GraphHandle::new(g);
        let old = h.snapshot();
        h.apply_updates(&[GraphUpdate::AddEdgeAt {
            src: 1,
            dst: 2,
            weight: 1.0,
            label: 0,
            time: 15,
        }])
        .unwrap();
        let (mask, fetch) = h.time_mask(&old, TimeWindow::until(20));
        assert_eq!(fetch, PlanFetch::Built);
        assert_eq!(mask.num_edges(), 1, "resolved over the pinned old graph");
        let (live, fetch) = h.time_mask(&h.snapshot(), TimeWindow::until(20));
        assert_eq!(fetch, PlanFetch::Built, "stale mask was not cached");
        assert_eq!(live.num_edges(), 2);
    }

    /// Toy maintainer caching each node's weight sum — enough structure to
    /// observe cache hits, O(Δ) patches and the refresh≡rebuild contract.
    struct SumState;

    impl StateMaintainer for SumState {
        fn state_key(&self) -> String {
            "sum@test".to_string()
        }

        fn build(&self, graph: &Csr) -> DynState {
            let sums: Vec<f64> = (0..graph.num_nodes())
                .map(|v| {
                    graph
                        .edge_range(v as NodeId)
                        .map(|e| f64::from(graph.prop(e)))
                        .sum()
                })
                .collect();
            Arc::new(sums)
        }

        fn refresh(&self, prev: &DynState, graph: &Csr, dirty: &[NodeId]) -> DynState {
            let prev = prev.downcast_ref::<Vec<f64>>().expect("sum state");
            let mut sums = prev.clone();
            for &v in dirty {
                sums[v as usize] = graph.edge_range(v).map(|e| f64::from(graph.prop(e))).sum();
            }
            Arc::new(sums)
        }
    }

    #[test]
    fn sampler_states_are_cached_per_epoch_and_patched_by_updates() {
        let h = GraphHandle::new(base());
        let snap = h.snapshot();
        let m: Arc<dyn StateMaintainer> = Arc::new(SumState);
        let (state, fetch) = h.sampler_state(&snap, &m);
        assert_eq!(fetch, PlanFetch::Built);
        let sums = state.downcast_ref::<Vec<f64>>().unwrap();
        assert_eq!(sums, &vec![5.0, 1.0, 0.0, 0.0]);
        // Same epoch, same key: served from the cache.
        let (again, fetch) = h.sampler_state(&snap, &m);
        assert_eq!(fetch, PlanFetch::Cached);
        assert!(Arc::ptr_eq(&state, &again));

        // A weight-only batch patches the cached artifact (unlike plans
        // and masks, which a weight batch carries untouched).
        let out = h
            .apply_updates(&[GraphUpdate::SetWeight {
                edge: 2,
                weight: 7.0,
            }])
            .unwrap();
        assert_eq!(out.sampler_states_migrated, 1);
        let (patched, fetch) = h.sampler_state(&h.snapshot(), &m);
        assert_eq!(fetch, PlanFetch::Cached);
        assert_eq!(
            patched.downcast_ref::<Vec<f64>>().unwrap(),
            &vec![5.0, 7.0, 0.0, 0.0]
        );

        // A structural batch dirty-refreshes the artifact too, and the
        // patched result matches a from-scratch build (refresh≡rebuild).
        let out = h
            .apply_updates(&[GraphUpdate::AddEdge {
                src: 2,
                dst: 3,
                weight: 4.0,
                label: 0,
            }])
            .unwrap();
        assert_eq!(out.sampler_states_migrated, 1);
        let snap = h.snapshot();
        let (migrated, fetch) = h.sampler_state(&snap, &m);
        assert_eq!(fetch, PlanFetch::Cached);
        assert_eq!(
            migrated.downcast_ref::<Vec<f64>>().unwrap(),
            SumState
                .build(&snap.graph)
                .downcast_ref::<Vec<f64>>()
                .unwrap()
        );
    }

    #[test]
    fn stale_snapshot_state_is_built_but_not_cached() {
        let h = GraphHandle::new(base());
        let old = h.snapshot();
        h.apply_updates(&[GraphUpdate::SetWeight {
            edge: 0,
            weight: 9.0,
        }])
        .unwrap();
        let m: Arc<dyn StateMaintainer> = Arc::new(SumState);
        let (state, fetch) = h.sampler_state(&old, &m);
        assert_eq!(fetch, PlanFetch::Built);
        assert_eq!(
            state.downcast_ref::<Vec<f64>>().unwrap()[0],
            5.0,
            "built over the pinned old weights"
        );
        let (live, fetch) = h.sampler_state(&h.snapshot(), &m);
        assert_eq!(fetch, PlanFetch::Built, "stale state was not cached");
        assert_eq!(live.downcast_ref::<Vec<f64>>().unwrap()[0], 12.0);
    }

    #[test]
    fn block_runtimes_are_cached_per_epoch_and_migrated_by_updates() {
        let h = GraphHandle::new(base());
        let snap = h.snapshot();
        let (rt, fetch) = h.block_runtime(&snap, 1 << 20, 1 << 20).unwrap();
        assert_eq!(fetch, PlanFetch::Built);
        // Same epoch, same geometry request: served from the cache.
        let (again, fetch) = h.block_runtime(&snap, 1 << 20, 1 << 20).unwrap();
        assert_eq!(fetch, PlanFetch::Cached);
        assert!(Arc::ptr_eq(&rt, &again));
        // A different budget is its own slot.
        assert_eq!(
            h.block_runtime(&snap, 1 << 20, 1 << 10).unwrap().1,
            PlanFetch::Built
        );

        // A weight-only batch re-spills the dirty node's block (blocks
        // encode weights, so unlike plans they migrate on both kinds).
        let out = h
            .apply_updates(&[GraphUpdate::SetWeight {
                edge: 0,
                weight: 9.0,
            }])
            .unwrap();
        assert!(out.blocks_migrated >= 2, "both cached runtimes re-spilled");
        let snap = h.snapshot();
        let (carried, fetch) = h.block_runtime(&snap, 1 << 20, 1 << 20).unwrap();
        assert_eq!(fetch, PlanFetch::Cached);
        assert!(Arc::ptr_eq(&rt, &carried));
        let (data, _) = carried.fetch_pinned(carried.block_of(0)).unwrap();
        carried.unpin(data.block());
        assert_eq!(data.weight(0), 9.0, "respill picked up the new weight");

        // A structural batch migrates the geometry census too.
        let out = h
            .apply_updates(&[GraphUpdate::AddEdge {
                src: 2,
                dst: 3,
                weight: 1.0,
                label: 0,
            }])
            .unwrap();
        assert!(out.blocks_migrated >= 1);
        let snap = h.snapshot();
        let (migrated, fetch) = h.block_runtime(&snap, 1 << 20, 1 << 20).unwrap();
        assert_eq!(fetch, PlanFetch::Cached);
        let (data, _) = migrated.fetch_pinned(migrated.block_of(2)).unwrap();
        migrated.unpin(data.block());
        assert_eq!(data.neighbors(2).unwrap(), snap.graph.neighbors(2));
    }

    #[test]
    fn stale_snapshot_block_runtime_is_built_but_not_cached() {
        let h = GraphHandle::new(base());
        let old = h.snapshot();
        h.apply_updates(&[GraphUpdate::AddEdge {
            src: 2,
            dst: 3,
            weight: 1.0,
            label: 0,
        }])
        .unwrap();
        let (rt, fetch) = h.block_runtime(&old, 1 << 20, 1 << 20).unwrap();
        assert_eq!(fetch, PlanFetch::Built);
        let (data, _) = rt.fetch_pinned(rt.block_of(2)).unwrap();
        rt.unpin(data.block());
        assert!(
            data.neighbors(2).unwrap().is_empty(),
            "spilled from the pinned old graph"
        );
        let (live, fetch) = h.block_runtime(&h.snapshot(), 1 << 20, 1 << 20).unwrap();
        assert_eq!(fetch, PlanFetch::Built, "stale runtime was not cached");
        let (data, _) = live.fetch_pinned(live.block_of(2)).unwrap();
        live.unpin(data.block());
        assert_eq!(data.neighbors(2).unwrap(), &[3]);
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphHandle>();
        assert_send_sync::<GraphSnapshot>();
    }
}
