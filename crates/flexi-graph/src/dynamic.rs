//! Dynamic (mutable) graphs — the paper's §7.2 extension.
//!
//! FlexiWalker's preprocessed aggregates (`h_MAX`/`h_SUM`) assume a fixed
//! graph; §7.1 lists runtime topology/weight updates as the case that
//! "can compromise the accuracy of preprocessed values". This module
//! provides the update layer the paper sketches as future work:
//!
//! - [`apply_batch`] applies one validated batch of [`GraphUpdate`]s —
//!   weight overwrites in place, edge insertions/removals by one CSR
//!   rebuild — and reports the dirty-node set plus whether the topology
//!   changed. It is the engine room of
//!   [`GraphHandle::apply_updates`](crate::handle::GraphHandle::apply_updates),
//!   the versioned-handle surface the session API serves walks over.
//! - [`DynamicGraph`] is the lower-level buffered wrapper: immediate
//!   weight updates, queued structural updates, and an accumulated dirty
//!   set, for callers managing their own graph storage.
//!
//! The aggregate refresh itself lives in `flexi-core::preprocess`
//! (`Aggregates::refresh_nodes`), keeping this crate engine-agnostic.

use crate::builder::CsrBuilder;
use crate::csr::{Csr, EdgeId, NodeId};
use crate::props::EdgeProps;
use crate::GraphError;
use std::collections::BTreeSet;

/// One graph mutation, applied in batches by [`apply_batch`] (and by
/// [`DynamicGraph::commit`] / `GraphHandle::apply_updates`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphUpdate {
    /// Insert a directed edge.
    AddEdge {
        /// Source node.
        src: NodeId,
        /// Target node.
        dst: NodeId,
        /// Property weight.
        weight: f32,
        /// Edge label.
        label: u8,
    },
    /// Remove one occurrence of a directed edge (no-op if absent).
    RemoveEdge {
        /// Source node.
        src: NodeId,
        /// Target node.
        dst: NodeId,
    },
    /// Overwrite one edge's property weight in place.
    ///
    /// Within a batch, `edge` always refers to the edge ids of the graph
    /// *as of the batch start*: weight updates are applied before any
    /// structural rebuild, so they compose predictably with `AddEdge` /
    /// `RemoveEdge` entries in the same batch.
    SetWeight {
        /// Edge id in the pre-batch graph.
        edge: EdgeId,
        /// New property weight.
        weight: f32,
    },
}

/// The effect of one committed update batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Source nodes whose preprocessed aggregates are now stale, sorted
    /// and deduplicated.
    pub dirty_nodes: Vec<NodeId>,
    /// Whether the batch changed the topology (edge ids may have shifted),
    /// as opposed to weights only.
    pub structural: bool,
}

/// Applies a batch of updates to `csr` in place.
///
/// The whole batch is validated up front: on error the graph is left
/// untouched. Weight updates ([`GraphUpdate::SetWeight`]) are applied
/// first, against the pre-batch edge ids; structural updates are then
/// applied together by one CSR rebuild.
///
/// # Errors
///
/// [`GraphError::NodeOutOfRange`] if an insertion or removal references an
/// unknown node; [`GraphError::EdgeOutOfRange`] if a weight update
/// references an edge id past the pre-batch edge count.
pub fn apply_batch(csr: &mut Csr, batch: &[GraphUpdate]) -> Result<BatchOutcome, GraphError> {
    let n = csr.num_nodes();
    let m = csr.num_edges();
    for u in batch {
        match u {
            GraphUpdate::AddEdge { src, dst, .. } | GraphUpdate::RemoveEdge { src, dst } => {
                if *src as usize >= n || *dst as usize >= n {
                    return Err(GraphError::NodeOutOfRange {
                        node: u64::from((*src).max(*dst)),
                        num_nodes: n as u64,
                    });
                }
            }
            GraphUpdate::SetWeight { edge, .. } => {
                if *edge >= m {
                    return Err(GraphError::EdgeOutOfRange {
                        edge: *edge,
                        num_edges: m,
                    });
                }
            }
        }
    }

    let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
    // Phase 1: in-place weight updates (validated, cannot fail).
    for u in batch {
        if let GraphUpdate::SetWeight { edge, weight } = u {
            dirty.insert(set_weight_in(csr, *edge, *weight));
        }
    }

    // Phase 2: one rebuild covering every structural update.
    let structural = batch
        .iter()
        .any(|u| !matches!(u, GraphUpdate::SetWeight { .. }));
    if structural {
        // Removal multiset: (src, dst) -> count.
        let mut removals: std::collections::HashMap<(NodeId, NodeId), usize> =
            std::collections::HashMap::new();
        for u in batch {
            if let GraphUpdate::RemoveEdge { src, dst } = u {
                *removals.entry((*src, *dst)).or_insert(0) += 1;
            }
        }
        let mut b = CsrBuilder::with_capacity(n, csr.num_edges() + batch.len());
        for v in 0..n as NodeId {
            for e in csr.edge_range(v) {
                let t = csr.edge_target(e);
                if let Some(count) = removals.get_mut(&(v, t)) {
                    if *count > 0 {
                        *count -= 1;
                        dirty.insert(v);
                        continue;
                    }
                }
                b.push_full(v, t, csr.prop(e), csr.label(e));
            }
        }
        for u in batch {
            if let GraphUpdate::AddEdge {
                src,
                dst,
                weight,
                label,
            } = u
            {
                b.push_full(*src, *dst, *weight, *label);
                dirty.insert(*src);
            }
        }
        *csr = b.build()?;
    }
    Ok(BatchOutcome {
        dirty_nodes: dirty.into_iter().collect(),
        structural,
    })
}

/// Overwrites one edge weight in place, returning the edge's source node.
/// Unweighted graphs are promoted to weighted form; INT8 graphs are
/// dequantised (INT8 cannot represent arbitrary updates).
fn set_weight_in(csr: &mut Csr, edge: EdgeId, weight: f32) -> NodeId {
    assert!(edge < csr.num_edges(), "edge id {edge} out of range");
    let src = source_of(csr, edge);
    let m = csr.num_edges();
    let props = match std::mem::replace(&mut csr.props, EdgeProps::Unweighted) {
        EdgeProps::F32(mut w) => {
            w[edge] = weight;
            EdgeProps::F32(w)
        }
        EdgeProps::Unweighted => {
            let mut w = vec![1.0f32; m];
            w[edge] = weight;
            EdgeProps::F32(w)
        }
        EdgeProps::Int8 {
            data,
            scale,
            offset,
        } => {
            let mut w: Vec<f32> = (0..m)
                .map(|e| f32::from(data[e]) * scale + offset)
                .collect();
            w[edge] = weight;
            EdgeProps::F32(w)
        }
    };
    csr.props = props;
    src
}

/// Binary-searches the row pointer for an edge's source node.
fn source_of(csr: &Csr, edge: EdgeId) -> NodeId {
    let rp = csr.row_ptr();
    let e = edge as u64;
    // partition_point: first node whose range starts after `edge`.
    let idx = rp.partition_point(|&start| start <= e);
    (idx - 1) as NodeId
}

/// A CSR graph with batched structural updates and immediate weight
/// updates, tracking which source nodes have stale aggregates.
///
/// # Examples
///
/// ```
/// use flexi_graph::dynamic::{DynamicGraph, GraphUpdate};
/// use flexi_graph::CsrBuilder;
///
/// let g = CsrBuilder::new(3).weighted_edge(0, 1, 2.0).build().unwrap();
/// let mut dg = DynamicGraph::new(g);
/// dg.queue(GraphUpdate::AddEdge { src: 0, dst: 2, weight: 5.0, label: 0 });
/// dg.commit().unwrap();
/// assert!(dg.graph().has_edge(0, 2));
/// assert_eq!(dg.take_dirty_nodes(), vec![0]);
/// ```
#[derive(Debug)]
pub struct DynamicGraph {
    csr: Csr,
    pending: Vec<GraphUpdate>,
    dirty: BTreeSet<NodeId>,
}

impl DynamicGraph {
    /// Wraps an existing graph.
    pub fn new(csr: Csr) -> Self {
        Self {
            csr,
            pending: Vec::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// The current (committed) graph.
    pub fn graph(&self) -> &Csr {
        &self.csr
    }

    /// Updates one edge's property weight in place.
    ///
    /// Takes effect immediately (no commit needed); the edge's source node
    /// is marked dirty. Unweighted graphs are promoted to weighted form.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn set_weight(&mut self, edge: EdgeId, weight: f32) {
        let src = set_weight_in(&mut self.csr, edge, weight);
        self.dirty.insert(src);
    }

    /// Queues a structural update for the next [`DynamicGraph::commit`].
    pub fn queue(&mut self, update: GraphUpdate) {
        self.pending.push(update);
    }

    /// Number of queued structural updates.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Applies all queued structural updates by rebuilding the CSR.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an insertion references an
    /// unknown node; the graph is left unchanged in that case.
    pub fn commit(&mut self) -> Result<(), GraphError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        match apply_batch(&mut self.csr, &batch) {
            Ok(outcome) => {
                self.dirty.extend(outcome.dirty_nodes);
                Ok(())
            }
            Err(e) => {
                self.pending = batch;
                Err(e)
            }
        }
    }

    /// Returns and clears the set of nodes whose aggregates are stale.
    pub fn take_dirty_nodes(&mut self) -> Vec<NodeId> {
        let out: Vec<NodeId> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        out
    }

    /// Peeks at the dirty set without clearing it.
    pub fn dirty_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dirty.iter().copied()
    }

    /// Consumes the wrapper, returning the committed graph.
    pub fn into_graph(self) -> Csr {
        self.csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Csr {
        CsrBuilder::new(4)
            .weighted_edge(0, 1, 2.0)
            .weighted_edge(0, 2, 3.0)
            .weighted_edge(1, 2, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn set_weight_is_immediate_and_marks_source_dirty() {
        let mut dg = DynamicGraph::new(base());
        let e = dg.graph().edge_range(0).start + 1; // edge 0 -> 2
        dg.set_weight(e, 9.5);
        assert_eq!(dg.graph().prop(e), 9.5);
        assert_eq!(dg.take_dirty_nodes(), vec![0]);
        assert!(dg.take_dirty_nodes().is_empty(), "dirty set cleared");
    }

    #[test]
    fn set_weight_promotes_unweighted_graphs() {
        let g = CsrBuilder::new(2).edge(0, 1).edge(1, 0).build().unwrap();
        let mut dg = DynamicGraph::new(g);
        dg.set_weight(0, 4.0);
        assert!(dg.graph().is_weighted());
        assert_eq!(dg.graph().prop(0), 4.0);
        assert_eq!(dg.graph().prop(1), 1.0, "other edges keep weight 1");
    }

    #[test]
    fn set_weight_dequantizes_int8() {
        let g = base();
        let q = g.props().quantize_int8();
        let g = g.with_props(q).unwrap();
        let mut dg = DynamicGraph::new(g);
        dg.set_weight(0, 7.25);
        assert_eq!(dg.graph().prop(0), 7.25);
    }

    #[test]
    fn source_of_resolves_across_rows() {
        let g = base();
        assert_eq!(source_of(&g, 0), 0);
        assert_eq!(source_of(&g, 1), 0);
        assert_eq!(source_of(&g, 2), 1);
    }

    #[test]
    fn apply_batch_mixes_weight_and_structural_updates() {
        let mut g = base();
        let outcome = apply_batch(
            &mut g,
            &[
                GraphUpdate::SetWeight {
                    edge: 2,
                    weight: 7.0,
                }, // 1 -> 2, pre-batch id
                GraphUpdate::AddEdge {
                    src: 3,
                    dst: 0,
                    weight: 4.0,
                    label: 1,
                },
                GraphUpdate::RemoveEdge { src: 0, dst: 1 },
            ],
        )
        .unwrap();
        assert!(outcome.structural);
        assert_eq!(outcome.dirty_nodes, vec![0, 1, 3]);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
        // The weight update targeted the pre-batch edge id of 1 -> 2.
        let e12 = g.edge_range(1).start;
        assert_eq!(g.prop(e12), 7.0);
    }

    #[test]
    fn apply_batch_weight_only_is_not_structural() {
        let mut g = base();
        let outcome = apply_batch(
            &mut g,
            &[GraphUpdate::SetWeight {
                edge: 0,
                weight: 9.0,
            }],
        )
        .unwrap();
        assert!(!outcome.structural);
        assert_eq!(outcome.dirty_nodes, vec![0]);
        assert_eq!(g.prop(0), 9.0);
    }

    #[test]
    fn apply_batch_validates_before_mutating() {
        let mut g = base();
        let err = apply_batch(
            &mut g,
            &[
                GraphUpdate::SetWeight {
                    edge: 0,
                    weight: 9.0,
                },
                GraphUpdate::SetWeight {
                    edge: 99,
                    weight: 1.0,
                },
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphError::EdgeOutOfRange {
                edge: 99,
                num_edges: 3
            }
        );
        assert_eq!(g.prop(0), 2.0, "graph untouched on invalid batch");
    }

    #[test]
    fn queued_set_weight_commits_against_pre_batch_ids() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::AddEdge {
            src: 0,
            dst: 0,
            weight: 1.0,
            label: 0,
        });
        // Pre-batch edge 0 is 0 -> 1; the insertion of 0 -> 0 sorts ahead
        // of it, so a post-commit id-0 write would hit the wrong edge.
        dg.queue(GraphUpdate::SetWeight {
            edge: 0,
            weight: 6.5,
        });
        dg.commit().unwrap();
        let g = dg.graph();
        let e01 = g.edge_range(0).start + 1; // after inserted 0 -> 0
        assert_eq!(g.edge_target(e01), 1);
        assert_eq!(g.prop(e01), 6.5);
    }

    #[test]
    fn add_edge_commits_and_keeps_sorted_adjacency() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::AddEdge {
            src: 0,
            dst: 3,
            weight: 5.0,
            label: 2,
        });
        dg.queue(GraphUpdate::AddEdge {
            src: 3,
            dst: 0,
            weight: 1.5,
            label: 0,
        });
        assert_eq!(dg.pending_updates(), 2);
        dg.commit().unwrap();
        assert_eq!(dg.pending_updates(), 0);
        let g = dg.graph();
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert!(g.has_edge(3, 0));
        let e03 = g.edge_range(0).start + 2;
        assert_eq!(g.prop(e03), 5.0);
        assert_eq!(g.label(e03), 2);
        assert_eq!(dg.take_dirty_nodes(), vec![0, 3]);
    }

    #[test]
    fn remove_edge_deletes_one_occurrence() {
        let g = CsrBuilder::new(2)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(0, 1, 2.0)
            .build()
            .unwrap();
        let mut dg = DynamicGraph::new(g);
        dg.queue(GraphUpdate::RemoveEdge { src: 0, dst: 1 });
        dg.commit().unwrap();
        assert_eq!(dg.graph().num_edges(), 1);
        assert_eq!(dg.graph().prop(0), 2.0, "first occurrence removed");
    }

    #[test]
    fn remove_absent_edge_is_a_noop() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::RemoveEdge { src: 2, dst: 0 });
        dg.commit().unwrap();
        assert_eq!(dg.graph().num_edges(), 3);
    }

    #[test]
    fn commit_rejects_out_of_range_and_preserves_graph() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::AddEdge {
            src: 0,
            dst: 99,
            weight: 1.0,
            label: 0,
        });
        assert!(dg.commit().is_err());
        assert_eq!(dg.graph().num_edges(), 3, "graph unchanged on error");
    }

    #[test]
    fn empty_commit_is_free() {
        let mut dg = DynamicGraph::new(base());
        dg.commit().unwrap();
        assert!(dg.take_dirty_nodes().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_weight_rejects_bad_edge() {
        DynamicGraph::new(base()).set_weight(99, 1.0);
    }
}
