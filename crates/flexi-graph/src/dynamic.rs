//! Dynamic (mutable) graphs — the paper's §7.2 extension.
//!
//! FlexiWalker's preprocessed aggregates (`h_MAX`/`h_SUM`) assume a fixed
//! graph; §7.1 lists runtime topology/weight updates as the case that
//! "can compromise the accuracy of preprocessed values". This module
//! provides the update layer the paper sketches as future work:
//!
//! - **in-place weight updates** are applied immediately and tracked per
//!   source node, so the runtime can refresh exactly the dirty aggregates;
//! - **structural updates** (edge insertions/removals) are buffered and
//!   applied in batches by a CSR rebuild, again yielding the dirty-node
//!   set.
//!
//! The aggregate refresh itself lives in `flexi-core::preprocess`
//! (`Aggregates::refresh_nodes`), keeping this crate engine-agnostic.

use crate::builder::CsrBuilder;
use crate::csr::{Csr, EdgeId, NodeId};
use crate::props::EdgeProps;
use crate::GraphError;
use std::collections::BTreeSet;

/// A structural update awaiting [`DynamicGraph::commit`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphUpdate {
    /// Insert a directed edge.
    AddEdge {
        /// Source node.
        src: NodeId,
        /// Target node.
        dst: NodeId,
        /// Property weight.
        weight: f32,
        /// Edge label.
        label: u8,
    },
    /// Remove one occurrence of a directed edge (no-op if absent).
    RemoveEdge {
        /// Source node.
        src: NodeId,
        /// Target node.
        dst: NodeId,
    },
}

/// A CSR graph with batched structural updates and immediate weight
/// updates, tracking which source nodes have stale aggregates.
///
/// # Examples
///
/// ```
/// use flexi_graph::dynamic::{DynamicGraph, GraphUpdate};
/// use flexi_graph::CsrBuilder;
///
/// let g = CsrBuilder::new(3).weighted_edge(0, 1, 2.0).build().unwrap();
/// let mut dg = DynamicGraph::new(g);
/// dg.queue(GraphUpdate::AddEdge { src: 0, dst: 2, weight: 5.0, label: 0 });
/// dg.commit().unwrap();
/// assert!(dg.graph().has_edge(0, 2));
/// assert_eq!(dg.take_dirty_nodes(), vec![0]);
/// ```
#[derive(Debug)]
pub struct DynamicGraph {
    csr: Csr,
    pending: Vec<GraphUpdate>,
    dirty: BTreeSet<NodeId>,
}

impl DynamicGraph {
    /// Wraps an existing graph.
    pub fn new(csr: Csr) -> Self {
        Self {
            csr,
            pending: Vec::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// The current (committed) graph.
    pub fn graph(&self) -> &Csr {
        &self.csr
    }

    /// Updates one edge's property weight in place.
    ///
    /// Takes effect immediately (no commit needed); the edge's source node
    /// is marked dirty. Unweighted graphs are promoted to weighted form.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn set_weight(&mut self, edge: EdgeId, weight: f32) {
        assert!(edge < self.csr.num_edges(), "edge id {edge} out of range");
        let src = self.source_of(edge);
        let m = self.csr.num_edges();
        let props = match std::mem::replace(&mut self.csr.props, EdgeProps::Unweighted) {
            EdgeProps::F32(mut w) => {
                w[edge] = weight;
                EdgeProps::F32(w)
            }
            EdgeProps::Unweighted => {
                let mut w = vec![1.0f32; m];
                w[edge] = weight;
                EdgeProps::F32(w)
            }
            EdgeProps::Int8 {
                data,
                scale,
                offset,
            } => {
                // Dequantise fully; INT8 cannot represent arbitrary updates.
                let mut w: Vec<f32> = (0..m)
                    .map(|e| f32::from(data[e]) * scale + offset)
                    .collect();
                w[edge] = weight;
                EdgeProps::F32(w)
            }
        };
        self.csr.props = props;
        self.dirty.insert(src);
    }

    /// Binary-searches the row pointer for an edge's source node.
    fn source_of(&self, edge: EdgeId) -> NodeId {
        let rp = self.csr.row_ptr();
        let e = edge as u64;
        // partition_point: first node whose range starts after `edge`.
        let idx = rp.partition_point(|&start| start <= e);
        (idx - 1) as NodeId
    }

    /// Queues a structural update for the next [`DynamicGraph::commit`].
    pub fn queue(&mut self, update: GraphUpdate) {
        self.pending.push(update);
    }

    /// Number of queued structural updates.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Applies all queued structural updates by rebuilding the CSR.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an insertion references an
    /// unknown node; the graph is left unchanged in that case.
    pub fn commit(&mut self) -> Result<(), GraphError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let n = self.csr.num_nodes();
        for u in &self.pending {
            let (src, dst) = match u {
                GraphUpdate::AddEdge { src, dst, .. } => (*src, *dst),
                GraphUpdate::RemoveEdge { src, dst } => (*src, *dst),
            };
            if src as usize >= n || dst as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u64::from(src.max(dst)),
                    num_nodes: n as u64,
                });
            }
        }
        // Removal multiset: (src, dst) -> count.
        let mut removals: std::collections::HashMap<(NodeId, NodeId), usize> =
            std::collections::HashMap::new();
        for u in &self.pending {
            if let GraphUpdate::RemoveEdge { src, dst } = u {
                *removals.entry((*src, *dst)).or_insert(0) += 1;
            }
        }
        let mut b = CsrBuilder::with_capacity(n, self.csr.num_edges() + self.pending.len());
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        for v in 0..n as NodeId {
            for e in self.csr.edge_range(v) {
                let t = self.csr.edge_target(e);
                if let Some(count) = removals.get_mut(&(v, t)) {
                    if *count > 0 {
                        *count -= 1;
                        dirty.insert(v);
                        continue;
                    }
                }
                b.push_full(v, t, self.csr.prop(e), self.csr.label(e));
            }
        }
        for u in &self.pending {
            if let GraphUpdate::AddEdge {
                src,
                dst,
                weight,
                label,
            } = u
            {
                b.push_full(*src, *dst, *weight, *label);
                dirty.insert(*src);
            }
        }
        self.csr = b.build()?;
        self.pending.clear();
        self.dirty.extend(dirty);
        Ok(())
    }

    /// Returns and clears the set of nodes whose aggregates are stale.
    pub fn take_dirty_nodes(&mut self) -> Vec<NodeId> {
        let out: Vec<NodeId> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        out
    }

    /// Peeks at the dirty set without clearing it.
    pub fn dirty_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dirty.iter().copied()
    }

    /// Consumes the wrapper, returning the committed graph.
    pub fn into_graph(self) -> Csr {
        self.csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Csr {
        CsrBuilder::new(4)
            .weighted_edge(0, 1, 2.0)
            .weighted_edge(0, 2, 3.0)
            .weighted_edge(1, 2, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn set_weight_is_immediate_and_marks_source_dirty() {
        let mut dg = DynamicGraph::new(base());
        let e = dg.graph().edge_range(0).start + 1; // edge 0 -> 2
        dg.set_weight(e, 9.5);
        assert_eq!(dg.graph().prop(e), 9.5);
        assert_eq!(dg.take_dirty_nodes(), vec![0]);
        assert!(dg.take_dirty_nodes().is_empty(), "dirty set cleared");
    }

    #[test]
    fn set_weight_promotes_unweighted_graphs() {
        let g = CsrBuilder::new(2).edge(0, 1).edge(1, 0).build().unwrap();
        let mut dg = DynamicGraph::new(g);
        dg.set_weight(0, 4.0);
        assert!(dg.graph().is_weighted());
        assert_eq!(dg.graph().prop(0), 4.0);
        assert_eq!(dg.graph().prop(1), 1.0, "other edges keep weight 1");
    }

    #[test]
    fn set_weight_dequantizes_int8() {
        let g = base();
        let q = g.props().quantize_int8();
        let g = g.with_props(q).unwrap();
        let mut dg = DynamicGraph::new(g);
        dg.set_weight(0, 7.25);
        assert_eq!(dg.graph().prop(0), 7.25);
    }

    #[test]
    fn source_of_resolves_across_rows() {
        let dg = DynamicGraph::new(base());
        assert_eq!(dg.source_of(0), 0);
        assert_eq!(dg.source_of(1), 0);
        assert_eq!(dg.source_of(2), 1);
    }

    #[test]
    fn add_edge_commits_and_keeps_sorted_adjacency() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::AddEdge {
            src: 0,
            dst: 3,
            weight: 5.0,
            label: 2,
        });
        dg.queue(GraphUpdate::AddEdge {
            src: 3,
            dst: 0,
            weight: 1.5,
            label: 0,
        });
        assert_eq!(dg.pending_updates(), 2);
        dg.commit().unwrap();
        assert_eq!(dg.pending_updates(), 0);
        let g = dg.graph();
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert!(g.has_edge(3, 0));
        let e03 = g.edge_range(0).start + 2;
        assert_eq!(g.prop(e03), 5.0);
        assert_eq!(g.label(e03), 2);
        assert_eq!(dg.take_dirty_nodes(), vec![0, 3]);
    }

    #[test]
    fn remove_edge_deletes_one_occurrence() {
        let g = CsrBuilder::new(2)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(0, 1, 2.0)
            .build()
            .unwrap();
        let mut dg = DynamicGraph::new(g);
        dg.queue(GraphUpdate::RemoveEdge { src: 0, dst: 1 });
        dg.commit().unwrap();
        assert_eq!(dg.graph().num_edges(), 1);
        assert_eq!(dg.graph().prop(0), 2.0, "first occurrence removed");
    }

    #[test]
    fn remove_absent_edge_is_a_noop() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::RemoveEdge { src: 2, dst: 0 });
        dg.commit().unwrap();
        assert_eq!(dg.graph().num_edges(), 3);
    }

    #[test]
    fn commit_rejects_out_of_range_and_preserves_graph() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::AddEdge {
            src: 0,
            dst: 99,
            weight: 1.0,
            label: 0,
        });
        assert!(dg.commit().is_err());
        assert_eq!(dg.graph().num_edges(), 3, "graph unchanged on error");
    }

    #[test]
    fn empty_commit_is_free() {
        let mut dg = DynamicGraph::new(base());
        dg.commit().unwrap();
        assert!(dg.take_dirty_nodes().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_weight_rejects_bad_edge() {
        DynamicGraph::new(base()).set_weight(99, 1.0);
    }
}
