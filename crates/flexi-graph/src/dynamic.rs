//! Dynamic (mutable) graphs — the paper's §7.2 extension.
//!
//! FlexiWalker's preprocessed aggregates (`h_MAX`/`h_SUM`) assume a fixed
//! graph; §7.1 lists runtime topology/weight updates as the case that
//! "can compromise the accuracy of preprocessed values". This module
//! provides the update layer the paper sketches as future work:
//!
//! - [`apply_batch`] applies one validated batch of [`GraphUpdate`]s —
//!   weight overwrites in place, edge insertions/removals by one CSR
//!   rebuild — and reports the dirty-node set plus whether the topology
//!   changed. It is the engine room of
//!   [`GraphHandle::apply_updates`](crate::handle::GraphHandle::apply_updates),
//!   the versioned-handle surface the session API serves walks over.
//! - [`DynamicGraph`] is the lower-level buffered wrapper: immediate
//!   weight updates, queued structural updates, and an accumulated dirty
//!   set, for callers managing their own graph storage.
//!
//! The aggregate refresh itself lives in `flexi-core::preprocess`
//! (`Aggregates::refresh_nodes`), keeping this crate engine-agnostic.

use crate::builder::CsrBuilder;
use crate::csr::{Csr, EdgeId, NodeId};
use crate::props::EdgeProps;
use crate::GraphError;
use std::collections::BTreeSet;

/// One graph mutation, applied in batches by [`apply_batch`] (and by
/// [`DynamicGraph::commit`] / `GraphHandle::apply_updates`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphUpdate {
    /// Insert a directed edge.
    AddEdge {
        /// Source node.
        src: NodeId,
        /// Target node.
        dst: NodeId,
        /// Property weight.
        weight: f32,
        /// Edge label.
        label: u8,
    },
    /// Insert a directed edge that becomes live at `time`.
    ///
    /// The timestamp rides the same epoch machinery as every other update:
    /// inserting into an untimed graph promotes it to temporal form
    /// (pre-existing edges backfill time `0`), so progressive ingestion is
    /// just a stream of `AddEdgeAt` batches.
    AddEdgeAt {
        /// Source node.
        src: NodeId,
        /// Target node.
        dst: NodeId,
        /// Property weight.
        weight: f32,
        /// Edge label.
        label: u8,
        /// Instant the edge becomes live (opaque monotone clock).
        time: u64,
    },
    /// Remove one occurrence of a directed edge (no-op if absent).
    RemoveEdge {
        /// Source node.
        src: NodeId,
        /// Target node.
        dst: NodeId,
    },
    /// Overwrite one edge's property weight in place.
    ///
    /// Within a batch, `edge` always refers to the edge ids of the graph
    /// *as of the batch start*: weight updates are applied before any
    /// structural rebuild, so they compose predictably with `AddEdge` /
    /// `RemoveEdge` entries in the same batch.
    SetWeight {
        /// Edge id in the pre-batch graph.
        edge: EdgeId,
        /// New property weight.
        weight: f32,
    },
}

/// The effect of one committed update batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Source nodes whose preprocessed aggregates are now stale, sorted
    /// and deduplicated.
    pub dirty_nodes: Vec<NodeId>,
    /// Whether the batch changed the topology (edge ids may have shifted),
    /// as opposed to weights only.
    pub structural: bool,
}

/// Renders one update for error attribution (endpoints or edge id).
fn describe(u: &GraphUpdate) -> String {
    match u {
        GraphUpdate::AddEdge { src, dst, .. } => format!("add {src} -> {dst}"),
        GraphUpdate::AddEdgeAt { src, dst, time, .. } => format!("add {src} -> {dst} @ {time}"),
        GraphUpdate::RemoveEdge { src, dst } => format!("remove {src} -> {dst}"),
        GraphUpdate::SetWeight { edge, .. } => format!("set-weight edge {edge}"),
    }
}

/// One pending insertion, in batch order.
struct Addition {
    src: NodeId,
    dst: NodeId,
    weight: f32,
    label: u8,
    time: u64,
}

/// Applies a batch of updates to `csr` in place.
///
/// The whole batch is validated up front: on error the graph is left
/// untouched. Weight updates ([`GraphUpdate::SetWeight`]) are applied
/// first, against the pre-batch edge ids; structural updates are then
/// applied together in one pass. Add-only batches (no removals) take a
/// sorted linear merge — O(k log k + E) with no re-sort of the whole
/// adjacency — so progressive ingestion stays cheap as the graph grows;
/// batches containing removals fall back to a full rebuild. Both paths
/// produce bit-identical graphs.
///
/// Timestamps ([`GraphUpdate::AddEdgeAt`]) are carried through either
/// path; inserting a timestamped edge into an untimed graph promotes it
/// (existing edges backfill time `0`).
///
/// # Errors
///
/// [`GraphError::InvalidUpdate`] wrapping [`GraphError::NodeOutOfRange`]
/// (insertion/removal referencing an unknown node) or
/// [`GraphError::EdgeOutOfRange`] (weight update past the pre-batch edge
/// count), annotated with the offending batch index and edge endpoints.
/// When more than one entry is invalid, [`GraphError::InvalidBatch`]
/// collects every rejection (in batch order) so bulk ingest callers can
/// strip exactly the bad entries and retry the remainder.
pub fn apply_batch(csr: &mut Csr, batch: &[GraphUpdate]) -> Result<BatchOutcome, GraphError> {
    let n = csr.num_nodes();
    let m = csr.num_edges();
    // Validation collects *every* invalid entry, not just the first: bulk
    // ingest callers splitting a rejected batch need the full rejection
    // set to retry the valid remainder in one pass.
    let mut invalid: Vec<GraphError> = Vec::new();
    for (index, u) in batch.iter().enumerate() {
        let cause = match u {
            GraphUpdate::AddEdge { src, dst, .. }
            | GraphUpdate::AddEdgeAt { src, dst, .. }
            | GraphUpdate::RemoveEdge { src, dst } => {
                if *src as usize >= n || *dst as usize >= n {
                    Some(GraphError::NodeOutOfRange {
                        node: u64::from((*src).max(*dst)),
                        num_nodes: n as u64,
                    })
                } else {
                    None
                }
            }
            GraphUpdate::SetWeight { edge, .. } => {
                if *edge >= m {
                    Some(GraphError::EdgeOutOfRange {
                        edge: *edge,
                        num_edges: m,
                    })
                } else {
                    None
                }
            }
        };
        if let Some(cause) = cause {
            invalid.push(GraphError::InvalidUpdate {
                index,
                update: describe(u),
                cause: Box::new(cause),
            });
        }
    }
    match invalid.len() {
        0 => {}
        1 => return Err(invalid.pop().expect("one entry")),
        _ => return Err(GraphError::InvalidBatch { errors: invalid }),
    }

    let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
    // Phase 1: in-place weight updates (validated, cannot fail).
    for u in batch {
        if let GraphUpdate::SetWeight { edge, weight } = u {
            dirty.insert(set_weight_in(csr, *edge, *weight));
        }
    }

    // Phase 2: one structural pass covering every insertion/removal.
    let structural = batch
        .iter()
        .any(|u| !matches!(u, GraphUpdate::SetWeight { .. }));
    if structural {
        // The output graph is temporal iff the input already was or the
        // batch introduces a timestamped edge; untimed dynamic graphs never
        // pay the +8 B/edge array.
        let timed = csr.has_times()
            || batch
                .iter()
                .any(|u| matches!(u, GraphUpdate::AddEdgeAt { .. }));
        let mut additions: Vec<Addition> = Vec::new();
        for u in batch {
            match *u {
                GraphUpdate::AddEdge {
                    src,
                    dst,
                    weight,
                    label,
                } => additions.push(Addition {
                    src,
                    dst,
                    weight,
                    label,
                    time: 0,
                }),
                GraphUpdate::AddEdgeAt {
                    src,
                    dst,
                    weight,
                    label,
                    time,
                } => additions.push(Addition {
                    src,
                    dst,
                    weight,
                    label,
                    time,
                }),
                _ => {}
            }
        }
        for a in &additions {
            dirty.insert(a.src);
        }
        let has_removals = batch
            .iter()
            .any(|u| matches!(u, GraphUpdate::RemoveEdge { .. }));
        if has_removals {
            rebuild_with(csr, batch, &additions, timed, &mut dirty)?;
        } else {
            merge_additions(csr, additions, timed);
        }
    }
    Ok(BatchOutcome {
        dirty_nodes: dirty.into_iter().collect(),
        structural,
    })
}

/// Full CSR rebuild: removals dropped, additions appended, payloads
/// (weights, labels and — when `timed` — timestamps) carried through the
/// builder's stable sort.
fn rebuild_with(
    csr: &mut Csr,
    batch: &[GraphUpdate],
    additions: &[Addition],
    timed: bool,
    dirty: &mut BTreeSet<NodeId>,
) -> Result<(), GraphError> {
    let n = csr.num_nodes();
    // Removal multiset: (src, dst) -> count.
    let mut removals: std::collections::HashMap<(NodeId, NodeId), usize> =
        std::collections::HashMap::new();
    for u in batch {
        if let GraphUpdate::RemoveEdge { src, dst } = u {
            *removals.entry((*src, *dst)).or_insert(0) += 1;
        }
    }
    let mut b = CsrBuilder::with_capacity(n, csr.num_edges() + additions.len());
    for v in 0..n as NodeId {
        for e in csr.edge_range(v) {
            let t = csr.edge_target(e);
            if let Some(count) = removals.get_mut(&(v, t)) {
                if *count > 0 {
                    *count -= 1;
                    dirty.insert(v);
                    continue;
                }
            }
            if timed {
                b.push_full_at(v, t, csr.prop(e), csr.label(e), csr.time(e));
            } else {
                b.push_full(v, t, csr.prop(e), csr.label(e));
            }
        }
    }
    for a in additions {
        if timed {
            b.push_full_at(a.src, a.dst, a.weight, a.label, a.time);
        } else {
            b.push_full(a.src, a.dst, a.weight, a.label);
        }
    }
    *csr = b.build()?;
    Ok(())
}

/// Add-only fast path: stable-sorts the `k` additions by `(src, dst)` and
/// linearly merges them into the already-sorted adjacency — no re-sort of
/// the existing `E` edges. On `(src, dst)` ties existing edges come first
/// and additions keep batch order, exactly matching the builder's stable
/// sort in [`rebuild_with`], so both paths are bit-identical (pinned by the
/// `merge_matches_rebuild_bit_identically` test).
fn merge_additions(csr: &mut Csr, mut additions: Vec<Addition>, timed: bool) {
    let n = csr.num_nodes();
    let m = csr.num_edges();
    additions.sort_by_key(|a| (a.src, a.dst));
    let m_new = m + additions.len();
    let mut row_ptr: Vec<u64> = Vec::with_capacity(n + 1);
    row_ptr.push(0);
    let mut col_idx: Vec<NodeId> = Vec::with_capacity(m_new);
    let mut weights: Vec<f32> = Vec::with_capacity(m_new);
    let mut labels: Vec<u8> = Vec::with_capacity(m_new);
    let mut times: Option<Vec<u64>> = timed.then(|| Vec::with_capacity(m_new));
    let mut adds = additions.iter().peekable();
    for v in 0..n as NodeId {
        let mut e = csr.edge_range(v).start;
        let end = csr.edge_range(v).end;
        loop {
            let next_add = adds.peek().filter(|a| a.src == v);
            match next_add {
                // Existing-before-new on ties: only take the addition while
                // it sorts strictly ahead of the next existing edge.
                Some(a) if e >= end || a.dst < csr.edge_target(e) => {
                    col_idx.push(a.dst);
                    weights.push(a.weight);
                    labels.push(a.label);
                    if let Some(t) = &mut times {
                        t.push(a.time);
                    }
                    adds.next();
                }
                _ if e < end => {
                    col_idx.push(csr.edge_target(e));
                    weights.push(csr.prop(e));
                    labels.push(csr.label(e));
                    if let Some(t) = &mut times {
                        t.push(csr.time(e));
                    }
                    e += 1;
                }
                _ => break,
            }
        }
        row_ptr.push(col_idx.len() as u64);
    }
    *csr = Csr {
        row_ptr,
        col_idx,
        props: EdgeProps::F32(weights),
        labels: Some(labels),
        times,
    };
}

/// Overwrites one edge weight in place, returning the edge's source node.
/// Unweighted graphs are promoted to weighted form; INT8 graphs are
/// dequantised (INT8 cannot represent arbitrary updates).
fn set_weight_in(csr: &mut Csr, edge: EdgeId, weight: f32) -> NodeId {
    assert!(edge < csr.num_edges(), "edge id {edge} out of range");
    let src = source_of(csr, edge);
    let m = csr.num_edges();
    let props = match std::mem::replace(&mut csr.props, EdgeProps::Unweighted) {
        EdgeProps::F32(mut w) => {
            w[edge] = weight;
            EdgeProps::F32(w)
        }
        EdgeProps::Unweighted => {
            let mut w = vec![1.0f32; m];
            w[edge] = weight;
            EdgeProps::F32(w)
        }
        EdgeProps::Int8 {
            data,
            scale,
            offset,
        } => {
            let mut w: Vec<f32> = (0..m)
                .map(|e| f32::from(data[e]) * scale + offset)
                .collect();
            w[edge] = weight;
            EdgeProps::F32(w)
        }
    };
    csr.props = props;
    src
}

/// Binary-searches the row pointer for an edge's source node.
fn source_of(csr: &Csr, edge: EdgeId) -> NodeId {
    let rp = csr.row_ptr();
    let e = edge as u64;
    // partition_point: first node whose range starts after `edge`.
    let idx = rp.partition_point(|&start| start <= e);
    (idx - 1) as NodeId
}

/// A CSR graph with batched structural updates and immediate weight
/// updates, tracking which source nodes have stale aggregates.
///
/// # Examples
///
/// ```
/// use flexi_graph::dynamic::{DynamicGraph, GraphUpdate};
/// use flexi_graph::CsrBuilder;
///
/// let g = CsrBuilder::new(3).weighted_edge(0, 1, 2.0).build().unwrap();
/// let mut dg = DynamicGraph::new(g);
/// dg.queue(GraphUpdate::AddEdge { src: 0, dst: 2, weight: 5.0, label: 0 });
/// dg.commit().unwrap();
/// assert!(dg.graph().has_edge(0, 2));
/// assert_eq!(dg.take_dirty_nodes(), vec![0]);
/// ```
#[derive(Debug)]
pub struct DynamicGraph {
    csr: Csr,
    pending: Vec<GraphUpdate>,
    dirty: BTreeSet<NodeId>,
}

impl DynamicGraph {
    /// Wraps an existing graph.
    pub fn new(csr: Csr) -> Self {
        Self {
            csr,
            pending: Vec::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// The current (committed) graph.
    pub fn graph(&self) -> &Csr {
        &self.csr
    }

    /// Updates one edge's property weight in place.
    ///
    /// Takes effect immediately (no commit needed); the edge's source node
    /// is marked dirty. Unweighted graphs are promoted to weighted form.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn set_weight(&mut self, edge: EdgeId, weight: f32) {
        let src = set_weight_in(&mut self.csr, edge, weight);
        self.dirty.insert(src);
    }

    /// Queues a structural update for the next [`DynamicGraph::commit`].
    pub fn queue(&mut self, update: GraphUpdate) {
        self.pending.push(update);
    }

    /// Number of queued structural updates.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Applies all queued structural updates by rebuilding the CSR.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidUpdate`] (wrapping the range failure,
    /// annotated with batch index and endpoints) if an insertion references
    /// an unknown node; the graph is left unchanged in that case.
    pub fn commit(&mut self) -> Result<(), GraphError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        match apply_batch(&mut self.csr, &batch) {
            Ok(outcome) => {
                self.dirty.extend(outcome.dirty_nodes);
                Ok(())
            }
            Err(e) => {
                self.pending = batch;
                Err(e)
            }
        }
    }

    /// Returns and clears the set of nodes whose aggregates are stale.
    pub fn take_dirty_nodes(&mut self) -> Vec<NodeId> {
        let out: Vec<NodeId> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        out
    }

    /// Peeks at the dirty set without clearing it.
    pub fn dirty_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dirty.iter().copied()
    }

    /// Consumes the wrapper, returning the committed graph.
    pub fn into_graph(self) -> Csr {
        self.csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Csr {
        CsrBuilder::new(4)
            .weighted_edge(0, 1, 2.0)
            .weighted_edge(0, 2, 3.0)
            .weighted_edge(1, 2, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn set_weight_is_immediate_and_marks_source_dirty() {
        let mut dg = DynamicGraph::new(base());
        let e = dg.graph().edge_range(0).start + 1; // edge 0 -> 2
        dg.set_weight(e, 9.5);
        assert_eq!(dg.graph().prop(e), 9.5);
        assert_eq!(dg.take_dirty_nodes(), vec![0]);
        assert!(dg.take_dirty_nodes().is_empty(), "dirty set cleared");
    }

    #[test]
    fn set_weight_promotes_unweighted_graphs() {
        let g = CsrBuilder::new(2).edge(0, 1).edge(1, 0).build().unwrap();
        let mut dg = DynamicGraph::new(g);
        dg.set_weight(0, 4.0);
        assert!(dg.graph().is_weighted());
        assert_eq!(dg.graph().prop(0), 4.0);
        assert_eq!(dg.graph().prop(1), 1.0, "other edges keep weight 1");
    }

    #[test]
    fn set_weight_dequantizes_int8() {
        let g = base();
        let q = g.props().quantize_int8();
        let g = g.with_props(q).unwrap();
        let mut dg = DynamicGraph::new(g);
        dg.set_weight(0, 7.25);
        assert_eq!(dg.graph().prop(0), 7.25);
    }

    #[test]
    fn source_of_resolves_across_rows() {
        let g = base();
        assert_eq!(source_of(&g, 0), 0);
        assert_eq!(source_of(&g, 1), 0);
        assert_eq!(source_of(&g, 2), 1);
    }

    #[test]
    fn apply_batch_mixes_weight_and_structural_updates() {
        let mut g = base();
        let outcome = apply_batch(
            &mut g,
            &[
                GraphUpdate::SetWeight {
                    edge: 2,
                    weight: 7.0,
                }, // 1 -> 2, pre-batch id
                GraphUpdate::AddEdge {
                    src: 3,
                    dst: 0,
                    weight: 4.0,
                    label: 1,
                },
                GraphUpdate::RemoveEdge { src: 0, dst: 1 },
            ],
        )
        .unwrap();
        assert!(outcome.structural);
        assert_eq!(outcome.dirty_nodes, vec![0, 1, 3]);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
        // The weight update targeted the pre-batch edge id of 1 -> 2.
        let e12 = g.edge_range(1).start;
        assert_eq!(g.prop(e12), 7.0);
    }

    #[test]
    fn apply_batch_weight_only_is_not_structural() {
        let mut g = base();
        let outcome = apply_batch(
            &mut g,
            &[GraphUpdate::SetWeight {
                edge: 0,
                weight: 9.0,
            }],
        )
        .unwrap();
        assert!(!outcome.structural);
        assert_eq!(outcome.dirty_nodes, vec![0]);
        assert_eq!(g.prop(0), 9.0);
    }

    #[test]
    fn apply_batch_validates_before_mutating() {
        let mut g = base();
        let err = apply_batch(
            &mut g,
            &[
                GraphUpdate::SetWeight {
                    edge: 0,
                    weight: 9.0,
                },
                GraphUpdate::SetWeight {
                    edge: 99,
                    weight: 1.0,
                },
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidUpdate {
                index: 1,
                update: "set-weight edge 99".into(),
                cause: Box::new(GraphError::EdgeOutOfRange {
                    edge: 99,
                    num_edges: 3
                }),
            }
        );
        assert_eq!(g.prop(0), 2.0, "graph untouched on invalid batch");
    }

    #[test]
    fn apply_batch_reports_every_invalid_entry() {
        let mut g = base();
        let err = apply_batch(
            &mut g,
            &[
                GraphUpdate::SetWeight {
                    edge: 99,
                    weight: 1.0,
                },
                GraphUpdate::AddEdge {
                    src: 0,
                    dst: 2,
                    weight: 1.0,
                    label: 0,
                },
                GraphUpdate::AddEdge {
                    src: 2,
                    dst: 9,
                    weight: 1.0,
                    label: 0,
                },
            ],
        )
        .unwrap_err();
        // Both bad entries are reported (in batch order); the valid one in
        // between is not, so the caller can retry exactly [1].
        assert_eq!(
            err,
            GraphError::InvalidBatch {
                errors: vec![
                    GraphError::InvalidUpdate {
                        index: 0,
                        update: "set-weight edge 99".into(),
                        cause: Box::new(GraphError::EdgeOutOfRange {
                            edge: 99,
                            num_edges: 3
                        }),
                    },
                    GraphError::InvalidUpdate {
                        index: 2,
                        update: "add 2 -> 9".into(),
                        cause: Box::new(GraphError::NodeOutOfRange {
                            node: 9,
                            num_nodes: 4
                        }),
                    },
                ],
            }
        );
        assert_eq!(g.num_edges(), 3, "graph untouched on invalid batch");
        let msg = err.to_string();
        assert!(
            msg.contains("2 updates rejected") && msg.contains("#0") && msg.contains("#2"),
            "{msg}"
        );
    }

    #[test]
    fn add_edge_error_carries_index_and_endpoints() {
        let mut g = base();
        let err = apply_batch(
            &mut g,
            &[
                GraphUpdate::RemoveEdge { src: 0, dst: 1 },
                GraphUpdate::AddEdge {
                    src: 2,
                    dst: 9,
                    weight: 1.0,
                    label: 0,
                },
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidUpdate {
                index: 1,
                update: "add 2 -> 9".into(),
                cause: Box::new(GraphError::NodeOutOfRange {
                    node: 9,
                    num_nodes: 4
                }),
            }
        );
        assert!(g.has_edge(0, 1), "graph untouched on invalid batch");
        let msg = err.to_string();
        assert!(msg.contains("#1") && msg.contains("add 2 -> 9"), "{msg}");
    }

    #[test]
    fn add_edge_at_error_carries_index_and_endpoints() {
        let mut g = base();
        let err = apply_batch(
            &mut g,
            &[GraphUpdate::AddEdgeAt {
                src: 7,
                dst: 0,
                weight: 1.0,
                label: 0,
                time: 42,
            }],
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidUpdate {
                index: 0,
                update: "add 7 -> 0 @ 42".into(),
                cause: Box::new(GraphError::NodeOutOfRange {
                    node: 7,
                    num_nodes: 4
                }),
            }
        );
        assert!(!g.has_times(), "graph untouched on invalid batch");
    }

    #[test]
    fn remove_edge_error_carries_index_and_endpoints() {
        let mut g = base();
        let err = apply_batch(&mut g, &[GraphUpdate::RemoveEdge { src: 1, dst: 6 }]).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidUpdate {
                index: 0,
                update: "remove 1 -> 6".into(),
                cause: Box::new(GraphError::NodeOutOfRange {
                    node: 6,
                    num_nodes: 4
                }),
            }
        );
    }

    #[test]
    fn set_weight_error_carries_index_and_edge_id() {
        let mut g = base();
        let err = apply_batch(
            &mut g,
            &[GraphUpdate::SetWeight {
                edge: 3,
                weight: 1.0,
            }],
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidUpdate {
                index: 0,
                update: "set-weight edge 3".into(),
                cause: Box::new(GraphError::EdgeOutOfRange {
                    edge: 3,
                    num_edges: 3
                }),
            }
        );
    }

    fn assert_same_graph(a: &Csr, b: &Csr) {
        assert_eq!(a.row_ptr(), b.row_ptr());
        assert_eq!(a.col_idx(), b.col_idx());
        assert_eq!(a.has_times(), b.has_times());
        for e in 0..a.num_edges() {
            assert_eq!(a.prop(e).to_bits(), b.prop(e).to_bits(), "edge {e}");
            assert_eq!(a.label(e), b.label(e), "edge {e}");
            assert_eq!(a.time(e), b.time(e), "edge {e}");
        }
    }

    #[test]
    fn merge_matches_rebuild_bit_identically() {
        // Additions with duplicate (src, dst) keys, ties against existing
        // edges, and fresh targets — the stable-order corner cases.
        let batch = [
            GraphUpdate::AddEdgeAt {
                src: 0,
                dst: 2,
                weight: 8.0,
                label: 3,
                time: 11,
            },
            GraphUpdate::AddEdgeAt {
                src: 0,
                dst: 2,
                weight: 9.0,
                label: 4,
                time: 12,
            },
            GraphUpdate::AddEdgeAt {
                src: 3,
                dst: 1,
                weight: 1.0,
                label: 0,
                time: 13,
            },
            GraphUpdate::AddEdge {
                src: 0,
                dst: 0,
                weight: 2.5,
                label: 1,
            },
        ];
        let mut merged = base();
        let out_m = apply_batch(&mut merged, &batch).unwrap();
        // An absent removal is a no-op that forces the rebuild path.
        let mut rebuilt = base();
        let mut forced: Vec<GraphUpdate> = batch.to_vec();
        forced.push(GraphUpdate::RemoveEdge { src: 2, dst: 1 });
        let out_r = apply_batch(&mut rebuilt, &forced).unwrap();
        assert_same_graph(&merged, &rebuilt);
        assert_eq!(out_m.dirty_nodes, out_r.dirty_nodes);
        // Tie order: existing 0 -> 2 (weight 3.0) precedes both additions,
        // which keep batch order.
        let r = merged.edge_range(0);
        assert_eq!(merged.neighbors(0), &[0, 1, 2, 2, 2]);
        assert_eq!(merged.prop(r.start + 2), 3.0);
        assert_eq!(merged.prop(r.start + 3), 8.0);
        assert_eq!(merged.prop(r.start + 4), 9.0);
        assert_eq!(merged.time(r.start + 4), 12);
    }

    #[test]
    fn add_edge_at_promotes_untimed_graph_and_backfills_zero() {
        let mut g = base();
        let outcome = apply_batch(
            &mut g,
            &[GraphUpdate::AddEdgeAt {
                src: 2,
                dst: 0,
                weight: 4.0,
                label: 2,
                time: 77,
            }],
        )
        .unwrap();
        assert!(outcome.structural);
        assert_eq!(outcome.dirty_nodes, vec![2]);
        assert!(g.has_times());
        let e = g.edge_range(2).start;
        assert_eq!((g.time(e), g.prop(e), g.label(e)), (77, 4.0, 2));
        for e in g.edge_range(0).chain(g.edge_range(1)) {
            assert_eq!(g.time(e), 0, "pre-existing edges backfill time 0");
        }
    }

    #[test]
    fn untimed_add_into_timed_graph_gets_time_zero_and_removal_keeps_times() {
        let mut g = CsrBuilder::new(3)
            .timestamped_edge(0, 1, 1.0, 10)
            .timestamped_edge(1, 2, 1.0, 20)
            .build()
            .unwrap();
        apply_batch(
            &mut g,
            &[GraphUpdate::AddEdge {
                src: 2,
                dst: 0,
                weight: 1.0,
                label: 0,
            }],
        )
        .unwrap();
        assert!(g.has_times());
        assert_eq!(g.time(g.edge_range(2).start), 0);
        // A removal (rebuild path) must carry surviving timestamps.
        apply_batch(&mut g, &[GraphUpdate::RemoveEdge { src: 0, dst: 1 }]).unwrap();
        assert!(g.has_times());
        assert_eq!(g.time(g.edge_range(1).start), 20);
    }

    #[test]
    fn untimed_batches_do_not_materialize_times() {
        let mut g = base();
        apply_batch(
            &mut g,
            &[GraphUpdate::AddEdge {
                src: 3,
                dst: 0,
                weight: 1.0,
                label: 0,
            }],
        )
        .unwrap();
        assert!(!g.has_times(), "untimed graphs never pay the times array");
    }

    #[test]
    fn queued_set_weight_commits_against_pre_batch_ids() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::AddEdge {
            src: 0,
            dst: 0,
            weight: 1.0,
            label: 0,
        });
        // Pre-batch edge 0 is 0 -> 1; the insertion of 0 -> 0 sorts ahead
        // of it, so a post-commit id-0 write would hit the wrong edge.
        dg.queue(GraphUpdate::SetWeight {
            edge: 0,
            weight: 6.5,
        });
        dg.commit().unwrap();
        let g = dg.graph();
        let e01 = g.edge_range(0).start + 1; // after inserted 0 -> 0
        assert_eq!(g.edge_target(e01), 1);
        assert_eq!(g.prop(e01), 6.5);
    }

    #[test]
    fn add_edge_commits_and_keeps_sorted_adjacency() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::AddEdge {
            src: 0,
            dst: 3,
            weight: 5.0,
            label: 2,
        });
        dg.queue(GraphUpdate::AddEdge {
            src: 3,
            dst: 0,
            weight: 1.5,
            label: 0,
        });
        assert_eq!(dg.pending_updates(), 2);
        dg.commit().unwrap();
        assert_eq!(dg.pending_updates(), 0);
        let g = dg.graph();
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert!(g.has_edge(3, 0));
        let e03 = g.edge_range(0).start + 2;
        assert_eq!(g.prop(e03), 5.0);
        assert_eq!(g.label(e03), 2);
        assert_eq!(dg.take_dirty_nodes(), vec![0, 3]);
    }

    #[test]
    fn remove_edge_deletes_one_occurrence() {
        let g = CsrBuilder::new(2)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(0, 1, 2.0)
            .build()
            .unwrap();
        let mut dg = DynamicGraph::new(g);
        dg.queue(GraphUpdate::RemoveEdge { src: 0, dst: 1 });
        dg.commit().unwrap();
        assert_eq!(dg.graph().num_edges(), 1);
        assert_eq!(dg.graph().prop(0), 2.0, "first occurrence removed");
    }

    #[test]
    fn remove_absent_edge_is_a_noop() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::RemoveEdge { src: 2, dst: 0 });
        dg.commit().unwrap();
        assert_eq!(dg.graph().num_edges(), 3);
    }

    #[test]
    fn commit_rejects_out_of_range_and_preserves_graph() {
        let mut dg = DynamicGraph::new(base());
        dg.queue(GraphUpdate::AddEdge {
            src: 0,
            dst: 99,
            weight: 1.0,
            label: 0,
        });
        assert!(dg.commit().is_err());
        assert_eq!(dg.graph().num_edges(), 3, "graph unchanged on error");
    }

    #[test]
    fn empty_commit_is_free() {
        let mut dg = DynamicGraph::new(base());
        dg.commit().unwrap();
        assert!(dg.take_dirty_nodes().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_weight_rejects_bad_edge() {
        DynamicGraph::new(base()).set_weight(99, 1.0);
    }
}
