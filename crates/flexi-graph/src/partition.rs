//! Node partition plans for sharded (multi-device) graph residency.
//!
//! The paper's §7.2 extension partitions the *graph* across devices:
//! each shard stores its nodes' adjacency (1/D of the edges plus the full
//! row-pointer array for routing) and walkers migrate over the
//! interconnect when a step crosses shards. A [`PartitionPlan`] is the
//! materialised half of that design: the per-node degree census and the
//! per-shard edge totals every launch needs for its VRAM check and
//! migration accounting.
//!
//! Plans are pure topology — they depend on node→shard ownership (a fixed
//! hash) and degrees, not on weights — so a weight-only update batch
//! carries a plan across epochs untouched, and a structural batch migrates
//! it *incrementally*: only the dirty source nodes' degree contributions
//! move ([`PartitionPlan::refresh`]). [`crate::GraphHandle`] caches one
//! plan per shard count and keeps it current across
//! [`crate::GraphHandle::apply_updates`], so steady-state drains never
//! re-partition.

use crate::csr::{Csr, NodeId};

/// The shard owning `node`'s adjacency (Fibonacci hash — avalanches
/// better than `id % shards` for the clustered id ranges R-MAT emits).
///
/// This is the one ownership function in the system: partition plans, the
/// standalone partitioned engine and the session shard executor all route
/// through it, so their notions of "home shard" can never drift apart.
pub fn shard_of(node: NodeId, shards: usize) -> usize {
    ((u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards
}

/// Bytes one edge occupies in a shard's resident adjacency: the 4-byte
/// target id, the property weight at the graph's current width, and the
/// label byte when the graph carries labels.
pub fn bytes_per_edge(g: &Csr) -> usize {
    4 + g.props().bytes_per_weight() + usize::from(g.has_labels())
}

/// One graph's partitioning over a fixed shard count: per-node degrees
/// and per-shard edge totals.
///
/// Equality is structural, which is what the refresh-vs-rebuild tests
/// pin: an incrementally migrated plan must equal a from-scratch
/// [`PartitionPlan::compute`] over the same graph.
///
/// ```
/// use flexi_graph::{partition::PartitionPlan, CsrBuilder};
///
/// let g = CsrBuilder::new(4)
///     .edge(0, 1)
///     .edge(0, 2)
///     .edge(3, 0)
///     .build()
///     .unwrap();
/// let plan = PartitionPlan::compute(&g, 2);
/// // Every edge lives on exactly one shard.
/// assert_eq!(plan.shard_edges().iter().sum::<u64>(), g.num_edges() as u64);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    shards: usize,
    /// Out-degree census at the plan's epoch — what an incremental
    /// refresh diffs against.
    degrees: Vec<u32>,
    /// Edges owned by each shard.
    shard_edges: Vec<u64>,
}

impl PartitionPlan {
    /// Partitions `g` over `shards` from scratch (one O(V) pass).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn compute(g: &Csr, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut degrees = Vec::with_capacity(g.num_nodes());
        let mut shard_edges = vec![0u64; shards];
        for v in 0..g.num_nodes() as NodeId {
            let d = g.degree(v);
            degrees.push(d as u32);
            shard_edges[shard_of(v, shards)] += d as u64;
        }
        Self {
            shards,
            degrees,
            shard_edges,
        }
    }

    /// The plan's shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node`'s adjacency.
    pub fn owner(&self, node: NodeId) -> usize {
        shard_of(node, self.shards)
    }

    /// Edges owned by each shard.
    pub fn shard_edges(&self) -> &[u64] {
        &self.shard_edges
    }

    /// Total edges across all shards (each edge counted exactly once).
    pub fn total_edges(&self) -> u64 {
        self.shard_edges.iter().sum()
    }

    /// Bytes resident on each shard for `g`'s current edge representation:
    /// the shard's edges plus the full row-pointer array (needed to route
    /// remote lookups). Weight-width changes (e.g. a `SetWeight` promoting
    /// an unweighted graph to F32) are picked up here, not by a re-plan —
    /// byte totals derive from the edge census at query time.
    pub fn resident_bytes(&self, g: &Csr) -> Vec<usize> {
        let bpe = bytes_per_edge(g);
        let row = g.row_ptr().len() * 8;
        self.shard_edges
            .iter()
            .map(|&e| row + e as usize * bpe)
            .collect()
    }

    /// The busiest shard's resident bytes — the per-device VRAM bar a
    /// partitioned launch must clear.
    ///
    /// Never returns 0 for a plan built by [`PartitionPlan::compute`]:
    /// that constructor rejects `shards == 0`, so there is always at
    /// least one shard, and every shard's footprint includes the full
    /// row-pointer array (non-empty even for an edgeless graph). The
    /// `unwrap_or(0)` below is therefore an unreachable-sentinel guard,
    /// not an empty-plan code path — pinned by the zero-degree and
    /// empty-shard tests in this module.
    pub fn max_resident_bytes(&self, g: &Csr) -> usize {
        self.resident_bytes(g).into_iter().max().unwrap_or(0)
    }

    /// Incrementally migrates the plan to `g` (the post-batch graph):
    /// each dirty source node's degree delta moves between its old and new
    /// census entry, touching only that node's shard total. Returns the
    /// number of nodes whose contribution actually changed.
    ///
    /// The result is identical to `PartitionPlan::compute(g, shards)` as
    /// long as `dirty` covers every node whose out-degree changed — which
    /// is exactly the dirty set [`crate::GraphHandle::apply_updates`]
    /// reports.
    pub fn refresh(&mut self, g: &Csr, dirty: &[NodeId]) -> usize {
        let mut migrated = 0;
        for &v in dirty {
            let Some(slot) = self.degrees.get_mut(v as usize) else {
                continue;
            };
            let new = g.degree(v) as u32;
            let old = *slot;
            if new == old {
                continue;
            }
            let shard = shard_of(v, self.shards);
            self.shard_edges[shard] = self.shard_edges[shard] - u64::from(old) + u64::from(new);
            *slot = new;
            migrated += 1;
        }
        migrated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;
    use crate::dynamic::GraphUpdate;
    use crate::gen;
    use crate::handle::GraphHandle;

    fn graph(scale: u32, seed: u64) -> Csr {
        gen::rmat(scale, 1 << (scale + 2), gen::RmatParams::SOCIAL, seed)
    }

    #[test]
    fn plan_covers_each_edge_exactly_once() {
        for shards in [1, 2, 3, 4, 7] {
            let g = graph(8, 5);
            let plan = PartitionPlan::compute(&g, shards);
            assert_eq!(plan.total_edges(), g.num_edges() as u64);
            let bytes = plan.resident_bytes(&g);
            assert_eq!(bytes.len(), shards);
            let row = g.row_ptr().len() * 8;
            let edge_bytes: usize = bytes.iter().map(|b| b - row).sum();
            assert_eq!(edge_bytes, g.num_edges() * bytes_per_edge(&g));
        }
    }

    #[test]
    fn owner_matches_shard_of() {
        let g = graph(8, 7);
        let plan = PartitionPlan::compute(&g, 4);
        for v in [0u32, 1, 100, 255] {
            assert_eq!(plan.owner(v), shard_of(v, 4));
        }
    }

    #[test]
    fn refresh_equals_from_scratch_recompute() {
        let h = GraphHandle::new(graph(8, 11));
        let mut plan = PartitionPlan::compute(&h.graph(), 3);
        let n = h.graph().num_nodes() as NodeId;
        for round in 0..10u32 {
            let out = h
                .apply_updates(&[
                    GraphUpdate::AddEdge {
                        src: (round * 37) % n,
                        dst: (round * 91 + 1) % n,
                        weight: 1.0,
                        label: 0,
                    },
                    GraphUpdate::RemoveEdge {
                        src: (round * 53) % n,
                        dst: (round * 17 + 2) % n,
                    },
                ])
                .unwrap();
            plan.refresh(&out.graph, &out.dirty_nodes);
            assert_eq!(
                plan,
                PartitionPlan::compute(&out.graph, 3),
                "round {round}: incremental refresh diverged from re-partition"
            );
        }
    }

    #[test]
    fn weight_only_updates_leave_the_census_untouched() {
        let h = GraphHandle::new(graph(8, 13));
        let mut plan = PartitionPlan::compute(&h.graph(), 2);
        let before = plan.clone();
        let out = h
            .apply_updates(&[GraphUpdate::SetWeight {
                edge: 3,
                weight: 9.0,
            }])
            .unwrap();
        assert_eq!(plan.refresh(&out.graph, &out.dirty_nodes), 0);
        assert_eq!(plan, before);
    }

    #[test]
    fn resident_bytes_track_weight_width() {
        let unweighted = CsrBuilder::new(2).edge(0, 1).build().unwrap();
        let plan = PartitionPlan::compute(&unweighted, 1);
        let plain = plan.max_resident_bytes(&unweighted);
        let weighted = crate::props::WeightModel::UniformReal.apply(unweighted, 1);
        assert_eq!(
            plan.max_resident_bytes(&weighted),
            plain + 4,
            "F32 promotion adds 4 bytes/edge without re-planning"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        PartitionPlan::compute(&graph(8, 1), 0);
    }

    #[test]
    fn zero_degree_nodes_census_as_zero_but_still_cost_row_pointers() {
        // Nodes 2 and 3 have no out-edges; node 3 is additionally
        // untargeted. Their census entries are zero, yet every shard —
        // including one owning only zero-degree nodes — still pays the
        // row-pointer array, so `max_resident_bytes` cannot be 0.
        let g = CsrBuilder::new(4).edge(0, 1).edge(1, 2).build().unwrap();
        for shards in [1, 2, 4, 7] {
            let plan = PartitionPlan::compute(&g, shards);
            assert_eq!(plan.total_edges(), 2);
            let row = g.row_ptr().len() * 8;
            for (shard, bytes) in plan.resident_bytes(&g).iter().enumerate() {
                assert!(
                    *bytes >= row,
                    "shard {shard} of {shards} lost its row pointers"
                );
            }
            assert!(plan.max_resident_bytes(&g) >= row);
            // A refresh naming the zero-degree nodes is a no-op.
            let mut refreshed = plan.clone();
            assert_eq!(refreshed.refresh(&g, &[2, 3]), 0);
            assert_eq!(refreshed, plan);
        }
    }

    #[test]
    fn empty_shards_report_row_pointer_floor_not_zero() {
        // More shards than nodes guarantees empty shards (no owned
        // nodes at all). Their resident footprint is exactly the shared
        // row-pointer array — never 0 — and the busiest-shard bar stays
        // well-defined.
        let g = CsrBuilder::new(2).edge(0, 1).edge(1, 0).build().unwrap();
        let shards = 5;
        let plan = PartitionPlan::compute(&g, shards);
        let owners: Vec<usize> = (0..2).map(|v| shard_of(v, shards)).collect();
        let row = g.row_ptr().len() * 8;
        for (shard, bytes) in plan.resident_bytes(&g).iter().enumerate() {
            if owners.contains(&shard) {
                assert!(*bytes > row, "owning shard {shard} holds edges");
            } else {
                assert_eq!(plan.shard_edges()[shard], 0, "shard {shard} owns nothing");
                assert_eq!(*bytes, row, "empty shard {shard} is row pointers only");
            }
        }
        assert!(plan.max_resident_bytes(&g) > 0);
        // Even an edgeless graph keeps the bar above zero: the sentinel
        // in `max_resident_bytes` is unreachable through `compute`.
        let edgeless = CsrBuilder::new(3).build().unwrap();
        let plan = PartitionPlan::compute(&edgeless, 2);
        assert_eq!(plan.total_edges(), 0);
        assert_eq!(
            plan.max_resident_bytes(&edgeless),
            edgeless.row_ptr().len() * 8
        );
    }
}
