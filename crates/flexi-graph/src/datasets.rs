//! Laptop-scale proxies for the paper's ten real-world datasets (Table 1).
//!
//! The real graphs range from 6M to 3.6B edges and are gated behind
//! multi-hundred-GB downloads; the phenomena the evaluation measures are
//! driven by *degree skew* and *relative size ordering*, both of which these
//! R-MAT proxies preserve. Node counts are scaled by roughly 2⁻⁸ against the
//! originals and average degrees match Table 1 exactly, so dataset rows keep
//! their relative magnitudes.

use crate::csr::Csr;
use crate::gen::{rmat, RmatParams};

/// Descriptor of one named dataset proxy.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Short name used in the paper's tables (YT, CP, …).
    pub name: &'static str,
    /// Full name of the original dataset.
    pub full_name: &'static str,
    /// log2 of the proxy's node count.
    pub scale: u32,
    /// Average out-degree (matches the original's edges/nodes ratio).
    pub avg_degree: f64,
    /// R-MAT skew profile matching the original's domain.
    pub params: RmatParams,
    /// Original vertex count (for documentation/reporting).
    pub orig_vertices: &'static str,
    /// Original edge count (for documentation/reporting).
    pub orig_edges: &'static str,
    /// Original edge count, numeric (drives the harness's VRAM/time-budget
    /// scaling so OOM/OOT behave as they would at real scale).
    pub orig_edges_count: u64,
}

impl DatasetSpec {
    /// Number of nodes the proxy will have.
    pub fn num_nodes(&self) -> usize {
        1 << self.scale
    }

    /// Number of edges the proxy will have.
    pub fn num_edges(&self) -> usize {
        (self.num_nodes() as f64 * self.avg_degree) as usize
    }

    /// Materialises the proxy graph (unweighted, unlabeled).
    pub fn build(&self, seed: u64) -> Csr {
        rmat(
            self.scale,
            self.num_edges(),
            self.params,
            seed ^ hash(self.name),
        )
    }

    /// Materialises a shrunken proxy, `shrink` powers of two smaller, for
    /// fast tests. Degree profile is preserved.
    pub fn build_scaled(&self, shrink: u32, seed: u64) -> Csr {
        let scale = self.scale.saturating_sub(shrink).max(6);
        let edges = ((1usize << scale) as f64 * self.avg_degree) as usize;
        rmat(scale, edges, self.params, seed ^ hash(self.name))
    }
}

fn hash(name: &str) -> u64 {
    // FNV-1a so each dataset gets a distinct but stable generation seed.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// All ten dataset proxies, in Table 1 order.
pub const ALL_DATASETS: [DatasetSpec; 10] = [
    DatasetSpec {
        name: "YT",
        full_name: "com-youtube",
        scale: 13,
        avg_degree: 5.5,
        params: RmatParams::SOCIAL,
        orig_vertices: "1.1M",
        orig_edges: "6M",
        orig_edges_count: 6_000_000,
    },
    DatasetSpec {
        name: "CP",
        full_name: "cit-patents",
        scale: 14,
        avg_degree: 8.7,
        params: RmatParams::CITATION,
        orig_vertices: "3.8M",
        orig_edges: "33M",
        orig_edges_count: 33_000_000,
    },
    DatasetSpec {
        name: "LJ",
        full_name: "Livejournal",
        scale: 14,
        avg_degree: 18.0,
        params: RmatParams::SOCIAL,
        orig_vertices: "4.8M",
        orig_edges: "86M",
        orig_edges_count: 86_000_000,
    },
    DatasetSpec {
        name: "OK",
        full_name: "Orkut",
        scale: 14,
        avg_degree: 75.0,
        params: RmatParams::SOCIAL,
        orig_vertices: "3.1M",
        orig_edges: "234M",
        orig_edges_count: 234_000_000,
    },
    DatasetSpec {
        name: "EU",
        full_name: "EU-2015",
        scale: 15,
        avg_degree: 47.0,
        params: RmatParams::WEB,
        orig_vertices: "11M",
        orig_edges: "522M",
        orig_edges_count: 522_000_000,
    },
    DatasetSpec {
        name: "AB",
        full_name: "Arabic-2005",
        scale: 16,
        avg_degree: 48.0,
        params: RmatParams::WEB,
        orig_vertices: "23M",
        orig_edges: "1.1B",
        orig_edges_count: 1_100_000_000,
    },
    DatasetSpec {
        name: "UK",
        full_name: "UK-2005",
        scale: 16,
        avg_degree: 41.0,
        params: RmatParams::WEB,
        orig_vertices: "39M",
        orig_edges: "1.6B",
        orig_edges_count: 1_600_000_000,
    },
    DatasetSpec {
        name: "TW",
        full_name: "Twitter",
        scale: 16,
        avg_degree: 57.0,
        params: RmatParams::SOCIAL,
        orig_vertices: "42M",
        orig_edges: "2.4B",
        orig_edges_count: 2_400_000_000,
    },
    DatasetSpec {
        name: "SK",
        full_name: "SK-2005",
        scale: 17,
        avg_degree: 71.0,
        params: RmatParams::WEB,
        orig_vertices: "51M",
        orig_edges: "3.6B",
        orig_edges_count: 3_600_000_000,
    },
    DatasetSpec {
        name: "FS",
        full_name: "Friendster",
        scale: 17,
        avg_degree: 54.0,
        params: RmatParams::SOCIAL,
        orig_vertices: "66M",
        orig_edges: "3.6B",
        orig_edges_count: 3_600_000_000,
    },
];

/// Looks up a dataset proxy by its short name (case-insensitive).
pub fn proxy(name: &str) -> Option<&'static DatasetSpec> {
    ALL_DATASETS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn all_names_resolve() {
        for d in &ALL_DATASETS {
            assert!(proxy(d.name).is_some());
            assert!(proxy(&d.name.to_lowercase()).is_some());
        }
        assert!(proxy("NOPE").is_none());
    }

    #[test]
    fn sizes_are_monotone_with_table1_ordering() {
        // Proxy edge counts must preserve YT < CP < LJ < OK < EU ordering.
        let edges: Vec<usize> = ["YT", "CP", "LJ", "OK", "EU"]
            .iter()
            .map(|n| proxy(n).unwrap().num_edges())
            .collect();
        for w in edges.windows(2) {
            assert!(w[0] < w[1], "edge counts not increasing: {edges:?}");
        }
    }

    #[test]
    fn built_proxy_matches_spec_counts() {
        let d = proxy("YT").unwrap();
        let g = d.build(1);
        assert_eq!(g.num_nodes(), d.num_nodes());
        assert_eq!(g.num_edges(), d.num_edges());
    }

    #[test]
    fn scaled_build_shrinks_but_keeps_degree() {
        let d = proxy("EU").unwrap();
        let g = d.build_scaled(4, 1);
        assert_eq!(g.num_nodes(), 1 << 11);
        let s = degree_stats(&g);
        assert!(
            (s.mean - d.avg_degree).abs() < 1.0,
            "mean degree {}",
            s.mean
        );
    }

    #[test]
    fn proxies_are_skewed() {
        let d = proxy("OK").unwrap();
        let g = d.build_scaled(3, 1);
        let s = degree_stats(&g);
        assert!(
            s.max as f64 > 10.0 * s.mean,
            "expected heavy tail, max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn scaled_build_floors_at_scale_6() {
        let d = proxy("YT").unwrap();
        let g = d.build_scaled(30, 1);
        assert_eq!(g.num_nodes(), 64);
    }
}
