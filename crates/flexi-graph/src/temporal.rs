//! Temporal graph views: per-edge timestamps and cached time-window masks.
//!
//! FlexiWalker's temporal subsystem stores one opaque `u64` instant per
//! edge ([`Csr::time`]) and exposes half-open [`TimeWindow`]s over them. A
//! window is resolved against a concrete graph version into a [`TimeMask`]
//! — a bitset over edge ids — which the engine consults when weighing
//! neighbors: masked-out edges weigh `0.0` and are never traversed. Masks
//! are cached per `(epoch, window)` on
//! [`GraphHandle`](crate::handle::GraphHandle), exactly like
//! `PartitionPlan`s, so a served stream of same-window walk requests pays
//! the O(E) resolution once per ingest epoch.
//!
//! Timestamps are only ever *compared*, so any monotone clock works:
//! epoch seconds, milliseconds, or logical sequence numbers.

use crate::csr::{Csr, EdgeId};

/// A half-open time interval `[t0, t1)` selecting the edges live within it.
///
/// An edge `e` is admitted iff `t0 <= time(e) < t1`. The default window
/// ([`TimeWindow::all`]) admits every edge — including edges of untimed
/// graphs, whose implicit timestamp is `0`.
///
/// # Examples
///
/// ```
/// use flexi_graph::temporal::TimeWindow;
///
/// let w = TimeWindow::new(10, 20);
/// assert!(w.contains(10) && w.contains(19));
/// assert!(!w.contains(20) && !w.contains(9));
/// assert!(TimeWindow::all().contains(0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    /// Inclusive lower bound.
    pub t0: u64,
    /// Exclusive upper bound.
    pub t1: u64,
}

impl TimeWindow {
    /// The window `[t0, t1)`.
    pub fn new(t0: u64, t1: u64) -> Self {
        Self { t0, t1 }
    }

    /// The window admitting every timestamp.
    pub fn all() -> Self {
        Self {
            t0: 0,
            t1: u64::MAX,
        }
    }

    /// Everything before `t1`: the window `[0, t1)`.
    pub fn until(t1: u64) -> Self {
        Self { t0: 0, t1 }
    }

    /// Everything from `t0` on: the window `[t0, u64::MAX)`.
    pub fn since(t0: u64) -> Self {
        Self { t0, t1: u64::MAX }
    }

    /// Whether `t` falls inside the window.
    #[inline]
    pub fn contains(self, t: u64) -> bool {
        self.t0 <= t && t < self.t1
    }

    /// Whether this is the admit-everything window.
    pub fn is_all(self) -> bool {
        self.t0 == 0 && self.t1 == u64::MAX
    }
}

impl Default for TimeWindow {
    fn default() -> Self {
        Self::all()
    }
}

impl std::fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_all() {
            write!(f, "[..)")
        } else if self.t1 == u64::MAX {
            write!(f, "[{}..)", self.t0)
        } else {
            write!(f, "[{}..{})", self.t0, self.t1)
        }
    }
}

/// A [`TimeWindow`] resolved against one concrete graph version: a bitset
/// over edge ids marking the edges live inside the window.
///
/// Resolution is O(E) once; [`TimeMask::admits`] is O(1) per edge. Masks
/// are immutable and safely shared across worker threads behind `Arc`.
#[derive(Clone, Debug)]
pub struct TimeMask {
    window: TimeWindow,
    bits: Vec<u64>,
    num_edges: usize,
    admitted: usize,
}

impl TimeMask {
    /// Resolves `window` against `g`'s edge timestamps.
    ///
    /// Untimed graphs short-circuit: every edge carries the implicit
    /// timestamp `0`, so the mask is all-ones when the window contains `0`
    /// and all-zeros otherwise.
    pub fn compute(g: &Csr, window: TimeWindow) -> Self {
        let m = g.num_edges();
        let words = m.div_ceil(64);
        match g.times() {
            None => {
                if window.contains(0) {
                    Self::full(g, window)
                } else {
                    Self {
                        window,
                        bits: vec![0; words],
                        num_edges: m,
                        admitted: 0,
                    }
                }
            }
            Some(times) => {
                let mut bits = vec![0u64; words];
                let mut admitted = 0usize;
                for (e, &t) in times.iter().enumerate() {
                    if window.contains(t) {
                        bits[e / 64] |= 1 << (e % 64);
                        admitted += 1;
                    }
                }
                Self {
                    window,
                    bits,
                    num_edges: m,
                    admitted,
                }
            }
        }
    }

    /// The all-ones mask for `g` (every edge admitted), tagged with `window`.
    fn full(g: &Csr, window: TimeWindow) -> Self {
        let m = g.num_edges();
        let words = m.div_ceil(64);
        let mut bits = vec![u64::MAX; words];
        if m % 64 != 0 {
            if let Some(last) = bits.last_mut() {
                *last = (1u64 << (m % 64)) - 1;
            }
        }
        Self {
            window,
            bits,
            num_edges: m,
            admitted: m,
        }
    }

    /// Whether edge `e` is live inside the window.
    #[inline]
    pub fn admits(&self, e: EdgeId) -> bool {
        debug_assert!(e < self.num_edges, "edge id {e} out of mask range");
        self.bits[e / 64] & (1 << (e % 64)) != 0
    }

    /// The window this mask resolves.
    pub fn window(&self) -> TimeWindow {
        self.window
    }

    /// Number of edges the mask was resolved over.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of admitted (live) edges.
    pub fn admitted(&self) -> usize {
        self.admitted
    }

    /// Whether every edge is admitted (engines skip masking entirely).
    pub fn is_full(&self) -> bool {
        self.admitted == self.num_edges
    }

    /// Approximate resident bytes (bitset words).
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;

    fn timed() -> Csr {
        CsrBuilder::new(3)
            .timestamped_edge(0, 1, 1.0, 5)
            .timestamped_edge(0, 2, 1.0, 15)
            .timestamped_edge(1, 2, 1.0, 25)
            .build()
            .unwrap()
    }

    #[test]
    fn window_is_half_open() {
        let w = TimeWindow::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
    }

    #[test]
    fn window_helpers_and_display() {
        assert!(TimeWindow::all().is_all());
        assert_eq!(TimeWindow::default(), TimeWindow::all());
        assert!(TimeWindow::until(5).contains(0) && !TimeWindow::until(5).contains(5));
        assert!(TimeWindow::since(5).contains(u64::MAX - 1));
        assert_eq!(TimeWindow::all().to_string(), "[..)");
        assert_eq!(TimeWindow::since(3).to_string(), "[3..)");
        assert_eq!(TimeWindow::new(1, 9).to_string(), "[1..9)");
    }

    #[test]
    fn mask_selects_edges_inside_window() {
        let g = timed();
        let m = TimeMask::compute(&g, TimeWindow::new(10, 30));
        assert_eq!(m.admitted(), 2);
        assert!(!m.admits(0));
        assert!(m.admits(1));
        assert!(m.admits(2));
        assert!(!m.is_full());
        assert_eq!(m.window(), TimeWindow::new(10, 30));
    }

    #[test]
    fn all_window_is_full_even_on_timed_graphs() {
        let g = timed();
        let m = TimeMask::compute(&g, TimeWindow::all());
        assert!(m.is_full());
        assert_eq!(m.admitted(), 3);
    }

    #[test]
    fn untimed_graph_masks_all_or_nothing() {
        let g = CsrBuilder::new(2).edge(0, 1).edge(1, 0).build().unwrap();
        let live = TimeMask::compute(&g, TimeWindow::until(100));
        assert!(live.is_full(), "implicit time 0 inside [0, 100)");
        let dead = TimeMask::compute(&g, TimeWindow::since(1));
        assert_eq!(dead.admitted(), 0);
        assert!(!dead.admits(0) && !dead.admits(1));
    }

    #[test]
    fn full_mask_handles_word_boundaries() {
        // 64 and 65 edges exercise the partial-last-word path.
        for m_edges in [63usize, 64, 65, 130] {
            let mut b = CsrBuilder::new(2);
            for _ in 0..m_edges {
                b.push_timestamped(0, 1, 1.0, 7);
            }
            let g = b.build().unwrap();
            let m = TimeMask::compute(&g, TimeWindow::all());
            assert_eq!(m.admitted(), m_edges);
            assert!((0..m_edges).all(|e| m.admits(e)));
            let none = TimeMask::compute(&g, TimeWindow::until(7));
            assert_eq!(none.admitted(), 0);
        }
    }

    #[test]
    fn empty_graph_mask_is_trivial() {
        let g = CsrBuilder::new(1).build().unwrap();
        let m = TimeMask::compute(&g, TimeWindow::all());
        assert_eq!(m.num_edges(), 0);
        assert!(m.is_full(), "vacuously full");
        assert_eq!(m.memory_bytes(), 0);
    }
}
