//! Compressed-sparse-row graph representation.
//!
//! The layout mirrors what GPU random-walk frameworks upload to device
//! memory: a `row_ptr` offset array, a flat `col_idx` adjacency array, and
//! optional parallel arrays for edge property weights and edge labels.
//! Per-node adjacency is kept sorted by target id so that `has_edge` — the
//! `dist(v', u) == 1` test at the heart of Node2Vec and 2nd-order PageRank —
//! is a binary search rather than a linear scan.

use crate::props::EdgeProps;

/// Node identifier (u32 suffices for the laptop-scale proxies).
pub type NodeId = u32;

/// Edge identifier: an index into the flat adjacency/property arrays.
pub type EdgeId = usize;

/// An immutable directed graph in CSR form.
///
/// Construct via [`crate::builder::CsrBuilder`], the generators in
/// [`crate::gen`], or the dataset proxies in [`crate::datasets`].
///
/// # Examples
///
/// ```
/// use flexi_graph::CsrBuilder;
///
/// let g = CsrBuilder::new(3)
///     .edge(0, 1)
///     .edge(0, 2)
///     .edge(1, 2)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.degree(0), 2);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert!(g.has_edge(0, 2));
/// assert!(!g.has_edge(2, 0));
/// ```
#[derive(Clone, Debug)]
pub struct Csr {
    pub(crate) row_ptr: Vec<u64>,
    pub(crate) col_idx: Vec<NodeId>,
    pub(crate) props: EdgeProps,
    pub(crate) labels: Option<Vec<u8>>,
    pub(crate) times: Option<Vec<u64>>,
}

impl Csr {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        (self.row_ptr[v + 1] - self.row_ptr[v]) as usize
    }

    /// The half-open edge-id range of `v`'s out-edges.
    #[inline]
    pub fn edge_range(&self, v: NodeId) -> std::ops::Range<EdgeId> {
        let v = v as usize;
        self.row_ptr[v] as EdgeId..self.row_ptr[v + 1] as EdgeId
    }

    /// The sorted out-neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.col_idx[self.edge_range(v)]
    }

    /// Target node of edge `e`.
    #[inline]
    pub fn edge_target(&self, e: EdgeId) -> NodeId {
        self.col_idx[e]
    }

    /// The `i`-th out-neighbor of `v`.
    #[inline]
    pub fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        self.col_idx[self.row_ptr[v as usize] as usize + i]
    }

    /// Whether the directed edge `(v, u)` exists (binary search).
    #[inline]
    pub fn has_edge(&self, v: NodeId, u: NodeId) -> bool {
        self.neighbors(v).binary_search(&u).is_ok()
    }

    /// Edge property weight of edge `e` (1.0 when the graph is unweighted).
    #[inline]
    pub fn prop(&self, e: EdgeId) -> f32 {
        self.props.get(e)
    }

    /// Edge property weights container.
    pub fn props(&self) -> &EdgeProps {
        &self.props
    }

    /// Edge label of `e` (0 when the graph is unlabeled).
    #[inline]
    pub fn label(&self, e: EdgeId) -> u8 {
        self.labels.as_ref().map_or(0, |l| l[e])
    }

    /// Whether the graph carries edge labels.
    pub fn has_labels(&self) -> bool {
        self.labels.is_some()
    }

    /// Timestamp of edge `e` (0 when the graph is untimed).
    ///
    /// Timestamps are opaque `u64` instants; the temporal machinery only
    /// ever compares them, so any monotone clock (epoch seconds, logical
    /// sequence numbers) works.
    #[inline]
    pub fn time(&self, e: EdgeId) -> u64 {
        self.times.as_ref().map_or(0, |t| t[e])
    }

    /// Whether the graph carries per-edge timestamps.
    pub fn has_times(&self) -> bool {
        self.times.is_some()
    }

    /// Raw timestamp array, when the graph is temporal.
    pub fn times(&self) -> Option<&[u64]> {
        self.times.as_deref()
    }

    /// Whether the graph carries non-trivial edge property weights.
    pub fn is_weighted(&self) -> bool {
        !matches!(self.props, EdgeProps::Unweighted)
    }

    /// Raw row-pointer array (for simulator memory-footprint accounting).
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    /// Raw adjacency array.
    pub fn col_idx(&self) -> &[NodeId] {
        &self.col_idx
    }

    /// Replaces the edge property weights.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::PropLengthMismatch`] if the container's
    /// length disagrees with the edge count (the `Unweighted` variant is
    /// always accepted).
    pub fn with_props(mut self, props: EdgeProps) -> Result<Self, crate::GraphError> {
        if let Some(len) = props.len() {
            if len != self.num_edges() {
                return Err(crate::GraphError::PropLengthMismatch {
                    got: len,
                    expected: self.num_edges(),
                });
            }
        }
        self.props = props;
        Ok(self)
    }

    /// Replaces the edge labels.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::PropLengthMismatch`] on length mismatch.
    pub fn with_labels(mut self, labels: Vec<u8>) -> Result<Self, crate::GraphError> {
        if labels.len() != self.num_edges() {
            return Err(crate::GraphError::PropLengthMismatch {
                got: labels.len(),
                expected: self.num_edges(),
            });
        }
        self.labels = Some(labels);
        Ok(self)
    }

    /// Replaces the per-edge timestamps.
    ///
    /// The array is parallel to the adjacency: `times[e]` is the instant
    /// edge `e` (in sorted CSR order) became live.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::PropLengthMismatch`] on length mismatch.
    pub fn with_times(mut self, times: Vec<u64>) -> Result<Self, crate::GraphError> {
        if times.len() != self.num_edges() {
            return Err(crate::GraphError::PropLengthMismatch {
                got: times.len(),
                expected: self.num_edges(),
            });
        }
        self.times = Some(times);
        Ok(self)
    }

    /// Approximate resident bytes (used for OOM emulation in baselines).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.row_ptr.len() * 8 + self.col_idx.len() * 4;
        bytes += match &self.props {
            EdgeProps::Unweighted => 0,
            EdgeProps::F32(w) => w.len() * 4,
            EdgeProps::Int8 { data, .. } => data.len(),
        };
        if let Some(l) = &self.labels {
            bytes += l.len();
        }
        if let Some(t) = &self.times {
            bytes += t.len() * 8;
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::CsrBuilder;
    use crate::props::EdgeProps;
    use crate::GraphError;

    fn diamond() -> crate::Csr {
        // 0 -> {1, 2}, 1 -> {3}, 2 -> {3}, 3 -> {}
        CsrBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build()
            .expect("valid graph")
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = CsrBuilder::new(4)
            .edge(0, 3)
            .edge(0, 1)
            .edge(0, 2)
            .build()
            .unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn has_edge_matches_adjacency() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn zero_degree_node_has_empty_slice() {
        let g = diamond();
        assert!(g.neighbors(3).is_empty());
        assert!(g.edge_range(3).is_empty());
    }

    #[test]
    fn unweighted_prop_is_one() {
        let g = diamond();
        assert!(!g.is_weighted());
        for e in 0..g.num_edges() {
            assert_eq!(g.prop(e), 1.0);
        }
    }

    #[test]
    fn with_props_validates_length() {
        let g = diamond();
        let err = g
            .clone()
            .with_props(EdgeProps::F32(vec![1.0; 3]))
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::PropLengthMismatch {
                got: 3,
                expected: 4
            }
        );
        let ok = g.with_props(EdgeProps::F32(vec![2.0; 4])).unwrap();
        assert!(ok.is_weighted());
        assert_eq!(ok.prop(2), 2.0);
    }

    #[test]
    fn with_labels_validates_length() {
        let g = diamond();
        assert!(g.clone().with_labels(vec![0; 5]).is_err());
        let ok = g.with_labels(vec![0, 1, 2, 3]).unwrap();
        assert!(ok.has_labels());
        assert_eq!(ok.label(2), 2);
    }

    #[test]
    fn unlabeled_label_is_zero() {
        let g = diamond();
        assert!(!g.has_labels());
        assert_eq!(g.label(0), 0);
    }

    #[test]
    fn memory_bytes_accounts_for_arrays() {
        let g = diamond();
        let base = g.memory_bytes();
        assert_eq!(base, 5 * 8 + 4 * 4);
        let weighted = g.with_props(EdgeProps::F32(vec![1.0; 4])).unwrap();
        assert_eq!(weighted.memory_bytes(), base + 16);
        let timed = weighted.with_times(vec![7; 4]).unwrap();
        assert_eq!(timed.memory_bytes(), base + 16 + 32);
    }

    #[test]
    fn untimed_time_is_zero() {
        let g = diamond();
        assert!(!g.has_times());
        assert_eq!(g.time(0), 0);
        assert_eq!(g.times(), None);
    }

    #[test]
    fn with_times_validates_length() {
        let g = diamond();
        assert_eq!(
            g.clone().with_times(vec![1; 3]).unwrap_err(),
            GraphError::PropLengthMismatch {
                got: 3,
                expected: 4
            }
        );
        let timed = g.with_times(vec![10, 20, 30, 40]).unwrap();
        assert!(timed.has_times());
        assert_eq!(timed.time(2), 30);
        assert_eq!(timed.times(), Some(&[10, 20, 30, 40][..]));
    }

    #[test]
    fn empty_graph_is_legal() {
        let g = CsrBuilder::new(0).build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn single_node_self_loop() {
        let g = CsrBuilder::new(1).edge(0, 0).build().unwrap();
        assert_eq!(g.degree(0), 1);
        assert!(g.has_edge(0, 0));
    }
}
