//! Degree and weight statistics used throughout the evaluation harness.

use crate::csr::Csr;

/// Summary of a graph's out-degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest out-degree.
    pub min: usize,
    /// Largest out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Standard deviation of out-degree.
    pub std: f64,
    /// Number of zero-out-degree (sink) nodes.
    pub sinks: usize,
}

/// Computes [`DegreeStats`] for `g`.
///
/// Returns zeros for an empty graph.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std: 0.0,
            sinks: 0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0f64;
    let mut sinks = 0usize;
    for v in 0..n {
        let d = g.degree(v as u32);
        min = min.min(d);
        max = max.max(d);
        sum += d as f64;
        if d == 0 {
            sinks += 1;
        }
    }
    let mean = sum / n as f64;
    let var = (0..n)
        .map(|v| {
            let d = g.degree(v as u32) as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    DegreeStats {
        min,
        max,
        mean,
        std: var.sqrt(),
        sinks,
    }
}

/// Per-node aggregates over edge property weights.
///
/// These are exactly the `h_MAX[]` / `h_SUM[]` arrays the paper's generated
/// `preprocess()` computes (Fig. 9d): for each node, the maximum and the sum
/// of its out-edges' property weights. The eRJS bound estimator reads
/// `h_MAX`; the cost model's Σw̃ estimator reads `h_SUM`.
#[derive(Clone, Debug)]
pub struct NodePropAggregates {
    /// `h_MAX[v]` — max property weight over `v`'s out-edges (1 for sinks).
    pub h_max: Vec<f32>,
    /// `h_SUM[v]` — sum of property weights over `v`'s out-edges.
    pub h_sum: Vec<f32>,
}

impl NodePropAggregates {
    /// Computes the aggregates with a single pass over the edge array.
    pub fn compute(g: &Csr) -> Self {
        let n = g.num_nodes();
        let mut h_max = vec![1.0f32; n];
        let mut h_sum = vec![0.0f32; n];
        for v in 0..n {
            let r = g.edge_range(v as u32);
            if r.is_empty() {
                continue;
            }
            let mut mx = f32::NEG_INFINITY;
            let mut sm = 0.0f32;
            for e in r {
                let h = g.prop(e);
                mx = mx.max(h);
                sm += h;
            }
            h_max[v] = mx;
            h_sum[v] = sm;
        }
        Self { h_max, h_sum }
    }

    /// Mean property weight of `v`'s out-edges (`E[h]` in Eq. 12).
    #[inline]
    pub fn h_mean(&self, v: u32, degree: usize) -> f32 {
        if degree == 0 {
            1.0
        } else {
            self.h_sum[v as usize] / degree as f32
        }
    }
}

/// Coefficient of variation (`std/mean * 100`) of a sample, as used by the
/// Fig. 7b runtime-weight-variation histogram.
///
/// Returns `None` for empty samples or zero mean.
pub fn coefficient_of_variation(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return None;
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Some(var.sqrt() / mean * 100.0)
}

/// Builds a fixed-width histogram of values, returning per-bin counts.
///
/// Values below `lo` clamp into the first bin; values at or above `hi` clamp
/// into the last.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "need at least one bin");
    assert!(hi > lo, "need hi > lo");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &v in values {
        let idx = (((v - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;
    use crate::props::EdgeProps;

    #[test]
    fn degree_stats_on_simple_graph() {
        let g = CsrBuilder::new(3)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 2)
            .build()
            .unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert_eq!(s.sinks, 1);
    }

    #[test]
    fn degree_stats_on_empty_graph() {
        let g = CsrBuilder::new(0).build().unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.sinks, 0);
    }

    #[test]
    fn node_aggregates_match_manual_computation() {
        let g = CsrBuilder::new(2)
            .weighted_edge(0, 0, 3.0)
            .weighted_edge(0, 1, 5.0)
            .build()
            .unwrap();
        let agg = NodePropAggregates::compute(&g);
        assert_eq!(agg.h_max[0], 5.0);
        assert_eq!(agg.h_sum[0], 8.0);
        // Sink node keeps defaults.
        assert_eq!(agg.h_max[1], 1.0);
        assert_eq!(agg.h_sum[1], 0.0);
        assert_eq!(agg.h_mean(0, 2), 4.0);
        assert_eq!(agg.h_mean(1, 0), 1.0);
    }

    #[test]
    fn node_aggregates_unweighted_are_ones() {
        let g = CsrBuilder::new(2).edge(0, 1).edge(0, 1).build().unwrap();
        let agg = NodePropAggregates::compute(&g);
        assert_eq!(agg.h_max[0], 1.0);
        assert_eq!(agg.h_sum[0], 2.0);
    }

    #[test]
    fn node_aggregates_int8_use_dequantized_values() {
        let g = CsrBuilder::new(1)
            .weighted_edge(0, 0, 1.0)
            .weighted_edge(0, 0, 5.0)
            .build()
            .unwrap();
        let q = g.props().quantize_int8();
        let g = g.with_props(q).unwrap();
        let agg = NodePropAggregates::compute(&g);
        assert!((agg.h_max[0] - 5.0).abs() < 0.05);
        assert!((agg.h_sum[0] - 6.0).abs() < 0.05);
        assert_eq!(g.props(), &g.props().clone());
        assert!(!matches!(g.props(), EdgeProps::F32(_)));
    }

    #[test]
    fn cv_of_constant_sample_is_zero() {
        let cv = coefficient_of_variation(&[2.0, 2.0, 2.0]).unwrap();
        assert!(cv.abs() < 1e-12);
    }

    #[test]
    fn cv_matches_hand_computation() {
        // Sample {1, 3}: mean 2, std 1 → CV = 50%.
        let cv = coefficient_of_variation(&[1.0, 3.0]).unwrap();
        assert!((cv - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cv_rejects_empty_and_zero_mean() {
        assert!(coefficient_of_variation(&[]).is_none());
        assert!(coefficient_of_variation(&[-1.0, 1.0]).is_none());
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let h = histogram(&[-5.0, 0.1, 0.9, 1.5, 99.0], 0.0, 2.0, 2);
        assert_eq!(h, vec![3, 2]);
    }
}
