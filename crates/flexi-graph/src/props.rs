//! Edge property weights, labels and the weight models of the evaluation.
//!
//! The paper evaluates four property-weight regimes (§6.1, §6.2, §7.2):
//!
//! - **Unweighted** — `h ≡ 1`; only workload weights `w` matter.
//! - **Uniform** — `h ~ U[1, 5)` reals, the default "weighted" setting.
//! - **Pareto(α)** — `h ~ 1 + pareto(α)` power-law for the skew sweeps.
//! - **Degree-based** — `h(v, u) = d(u)`, the hardest case of Fig. 10.
//! - **Quantised INT8** — §7.2's low-precision extension.
//!
//! Labels for MetaPath are uniform integers in `{0..4}`.

use crate::csr::Csr;
use flexi_rng::{Pareto, SplitMix64, UniformRange};

/// Storage for per-edge property weights.
#[derive(Clone, Debug, PartialEq)]
pub enum EdgeProps {
    /// No stored weights; every edge has property weight 1.
    Unweighted,
    /// Full-precision weights.
    F32(Vec<f32>),
    /// Quantised weights: `w = data[e] as f32 * scale + offset` (§7.2).
    Int8 {
        /// Quantised codes.
        data: Vec<u8>,
        /// Dequantisation scale.
        scale: f32,
        /// Dequantisation offset.
        offset: f32,
    },
}

impl EdgeProps {
    /// Property weight of edge `e`.
    #[inline]
    pub fn get(&self, e: usize) -> f32 {
        match self {
            Self::Unweighted => 1.0,
            Self::F32(w) => w[e],
            Self::Int8 {
                data,
                scale,
                offset,
            } => f32::from(data[e]) * scale + offset,
        }
    }

    /// Stored length, or `None` for the implicit unweighted form.
    pub fn len(&self) -> Option<usize> {
        match self {
            Self::Unweighted => None,
            Self::F32(w) => Some(w.len()),
            Self::Int8 { data, .. } => Some(data.len()),
        }
    }

    /// Whether this is the implicit unweighted form.
    pub fn is_empty(&self) -> bool {
        matches!(self, Self::Unweighted)
    }

    /// Bytes of memory traffic a single weight read costs (4 for f32, 1 for
    /// int8) — drives the §7.2 bandwidth experiment.
    pub fn bytes_per_weight(&self) -> usize {
        match self {
            Self::Unweighted => 0,
            Self::F32(_) => 4,
            Self::Int8 { .. } => 1,
        }
    }

    /// Quantises full-precision weights to INT8 over their value range.
    ///
    /// Returns `Unweighted` unchanged.
    pub fn quantize_int8(&self) -> Self {
        match self {
            Self::F32(w) if !w.is_empty() => {
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for &x in w {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                let scale = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
                let data = w
                    .iter()
                    .map(|&x| (((x - lo) / scale).round() as i64).clamp(0, 255) as u8)
                    .collect();
                Self::Int8 {
                    data,
                    scale,
                    offset: lo,
                }
            }
            other => other.clone(),
        }
    }
}

/// How to synthesise per-edge property weights for a graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightModel {
    /// `h ≡ 1` (unweighted workloads).
    Unweighted,
    /// `h ~ U[1, 5)` — the paper's default weighted initialisation.
    UniformReal,
    /// `h ~ 1 + pareto(alpha)` power-law (skew sweeps; lower α = heavier).
    Pareto {
        /// Pareto shape parameter.
        alpha: f64,
    },
    /// `h(v, u) = out-degree(u)` (Fig. 10's degree-based distribution).
    DegreeBased,
}

impl WeightModel {
    /// Materialises this model's weights for `g`, deterministically from
    /// `seed`, and returns the re-weighted graph.
    pub fn apply(self, g: Csr, seed: u64) -> Csr {
        let m = g.num_edges();
        match self {
            Self::Unweighted => Csr {
                props: EdgeProps::Unweighted,
                ..g
            },
            Self::UniformReal => {
                let mut rng = SplitMix64::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
                let dist = UniformRange::new(1.0, 5.0);
                let w = (0..m).map(|_| dist.sample(&mut rng) as f32).collect();
                Csr {
                    props: EdgeProps::F32(w),
                    ..g
                }
            }
            Self::Pareto { alpha } => {
                let mut rng = SplitMix64::new(seed ^ 0x1234_5678_9ABC_DEF0);
                let dist = Pareto::new(alpha);
                // Shift by 1 so weights are >= 1 (zero weights would make
                // nodes unreachable and ruin transition-probability tests).
                let w = (0..m)
                    .map(|_| (1.0 + dist.sample(&mut rng)) as f32)
                    .collect();
                Csr {
                    props: EdgeProps::F32(w),
                    ..g
                }
            }
            Self::DegreeBased => {
                let w = g
                    .col_idx()
                    .iter()
                    .map(|&u| (g.degree(u) as f32).max(1.0))
                    .collect();
                Csr {
                    props: EdgeProps::F32(w),
                    ..g
                }
            }
        }
    }
}

/// Attaches uniform labels from `{0..num_labels}` for MetaPath workloads.
pub fn assign_uniform_labels(g: Csr, num_labels: u8, seed: u64) -> Csr {
    assert!(num_labels > 0, "need at least one label class");
    let mut rng = SplitMix64::new(seed ^ 0x0F0F_F0F0_1357_9BDF);
    let labels = (0..g.num_edges())
        .map(|_| rng.bounded(u64::from(num_labels)) as u8)
        .collect();
    Csr {
        labels: Some(labels),
        ..g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;

    fn star() -> Csr {
        // 0 -> 1..=4; 1 -> 0 (so node 1 has degree 1, node 0 degree 4).
        let mut b = CsrBuilder::new(5);
        for i in 1..5 {
            b.push_edge(0, i);
        }
        b.push_edge(1, 0);
        b.build().unwrap()
    }

    #[test]
    fn unweighted_model_strips_weights() {
        let g = WeightModel::Unweighted.apply(star(), 1);
        assert!(!g.is_weighted());
        assert_eq!(g.prop(0), 1.0);
    }

    #[test]
    fn uniform_real_weights_are_in_range() {
        let g = WeightModel::UniformReal.apply(star(), 7);
        for e in 0..g.num_edges() {
            let w = g.prop(e);
            assert!((1.0..5.0).contains(&w), "w = {w}");
        }
    }

    #[test]
    fn uniform_real_is_deterministic_per_seed() {
        let a = WeightModel::UniformReal.apply(star(), 7);
        let b = WeightModel::UniformReal.apply(star(), 7);
        let c = WeightModel::UniformReal.apply(star(), 8);
        let collect = |g: &Csr| (0..g.num_edges()).map(|e| g.prop(e)).collect::<Vec<_>>();
        assert_eq!(collect(&a), collect(&b));
        assert_ne!(collect(&a), collect(&c));
    }

    #[test]
    fn pareto_weights_are_at_least_one() {
        let g = WeightModel::Pareto { alpha: 1.0 }.apply(star(), 11);
        for e in 0..g.num_edges() {
            assert!(g.prop(e) >= 1.0);
        }
    }

    #[test]
    fn degree_based_weight_equals_target_degree() {
        let g = WeightModel::DegreeBased.apply(star(), 0);
        // Edge 0->1: target 1 has degree 1. Edge 1->0: target 0 has degree 4.
        let e01 = g.edge_range(0).start; // targets sorted: 1,2,3,4
        assert_eq!(g.prop(e01), 1.0);
        let e10 = g.edge_range(1).start;
        assert_eq!(g.prop(e10), 4.0);
        // Zero-degree targets clamp to 1.
        let e02 = e01 + 1; // target 2 has degree 0
        assert_eq!(g.prop(e02), 1.0);
    }

    #[test]
    fn labels_are_uniform_and_in_range() {
        let mut b = CsrBuilder::new(2);
        for _ in 0..5000 {
            b.push_edge(0, 1);
        }
        let g = assign_uniform_labels(b.build().unwrap(), 5, 3);
        let mut counts = [0usize; 5];
        for e in 0..g.num_edges() {
            counts[g.label(e) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "label {i} count {c} too low for uniform");
        }
    }

    #[test]
    fn int8_quantization_roundtrips_within_step() {
        let w = vec![1.0f32, 2.0, 3.0, 4.9];
        let q = EdgeProps::F32(w.clone()).quantize_int8();
        let step = (4.9 - 1.0) / 255.0;
        for (e, &orig) in w.iter().enumerate() {
            assert!(
                (q.get(e) - orig).abs() <= step,
                "edge {e}: {} vs {orig}",
                q.get(e)
            );
        }
        assert_eq!(q.bytes_per_weight(), 1);
    }

    #[test]
    fn int8_quantization_of_constant_weights() {
        let q = EdgeProps::F32(vec![2.0; 3]).quantize_int8();
        for e in 0..3 {
            assert_eq!(q.get(e), 2.0);
        }
    }

    #[test]
    fn quantize_unweighted_is_noop() {
        assert_eq!(EdgeProps::Unweighted.quantize_int8(), EdgeProps::Unweighted);
    }
}
