//! Edge-list to CSR construction.

use crate::csr::{Csr, NodeId};
use crate::props::EdgeProps;
use crate::GraphError;

/// Accumulates directed edges and materialises a [`Csr`].
///
/// Construction is a counting sort on source ids followed by a per-node sort
/// on target ids, so per-node adjacency ends up ordered (a requirement for
/// `Csr::has_edge`). Parallel per-edge payloads (property weights, labels)
/// are permuted consistently with the adjacency.
///
/// # Examples
///
/// ```
/// use flexi_graph::CsrBuilder;
///
/// let g = CsrBuilder::new(2)
///     .weighted_edge(0, 1, 2.5)
///     .weighted_edge(1, 0, 0.5)
///     .build()
///     .unwrap();
/// assert_eq!(g.prop(0), 2.5);
/// ```
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    num_nodes: usize,
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
    weights: Option<Vec<f32>>,
    labels: Option<Vec<u8>>,
    times: Option<Vec<u64>>,
    dedup: bool,
}

impl CsrBuilder {
    /// Creates a builder for a graph on `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            src: Vec::new(),
            dst: Vec::new(),
            weights: None,
            labels: None,
            times: None,
            dedup: false,
        }
    }

    /// Pre-allocates capacity for `edges` edges.
    pub fn with_capacity(num_nodes: usize, edges: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.src.reserve(edges);
        b.dst.reserve(edges);
        b
    }

    /// Requests removal of duplicate `(src, dst)` pairs at build time.
    ///
    /// For duplicate edges the payload of the first occurrence (in sorted
    /// order) is kept.
    pub fn dedup(mut self) -> Self {
        self.dedup = true;
        self
    }

    /// Adds an unweighted directed edge.
    pub fn edge(mut self, src: NodeId, dst: NodeId) -> Self {
        self.push_edge(src, dst);
        self
    }

    /// Adds a weighted directed edge.
    pub fn weighted_edge(mut self, src: NodeId, dst: NodeId, w: f32) -> Self {
        self.push_weighted(src, dst, w);
        self
    }

    /// Adds a weighted directed edge with a timestamp.
    pub fn timestamped_edge(mut self, src: NodeId, dst: NodeId, w: f32, time: u64) -> Self {
        self.push_timestamped(src, dst, w, time);
        self
    }

    /// Adds an unweighted edge (by-reference form for loops).
    pub fn push_edge(&mut self, src: NodeId, dst: NodeId) {
        self.src.push(src);
        self.dst.push(dst);
        if let Some(w) = &mut self.weights {
            w.push(1.0);
        }
        if let Some(l) = &mut self.labels {
            l.push(0);
        }
        if let Some(t) = &mut self.times {
            t.push(0);
        }
    }

    /// Adds a weighted edge (by-reference form for loops).
    pub fn push_weighted(&mut self, src: NodeId, dst: NodeId, w: f32) {
        let weights = self
            .weights
            .get_or_insert_with(|| vec![1.0; self.src.len()]);
        weights.push(w);
        self.src.push(src);
        self.dst.push(dst);
        if let Some(l) = &mut self.labels {
            l.push(0);
        }
        if let Some(t) = &mut self.times {
            t.push(0);
        }
    }

    /// Adds a weighted, labeled edge.
    pub fn push_full(&mut self, src: NodeId, dst: NodeId, w: f32, label: u8) {
        let weights = self
            .weights
            .get_or_insert_with(|| vec![1.0; self.src.len()]);
        let labels = self.labels.get_or_insert_with(|| vec![0; self.src.len()]);
        weights.push(w);
        labels.push(label);
        self.src.push(src);
        self.dst.push(dst);
        if let Some(t) = &mut self.times {
            t.push(0);
        }
    }

    /// Adds a weighted, timestamped edge (by-reference form for loops).
    ///
    /// Earlier edges without an explicit timestamp backfill time `0`.
    pub fn push_timestamped(&mut self, src: NodeId, dst: NodeId, w: f32, time: u64) {
        let times = self.times.get_or_insert_with(|| vec![0; self.src.len()]);
        times.push(time);
        let weights = self
            .weights
            .get_or_insert_with(|| vec![1.0; self.src.len()]);
        weights.push(w);
        self.src.push(src);
        self.dst.push(dst);
        if let Some(l) = &mut self.labels {
            l.push(0);
        }
    }

    /// Adds a weighted, labeled, timestamped edge (by-reference form).
    pub fn push_full_at(&mut self, src: NodeId, dst: NodeId, w: f32, label: u8, time: u64) {
        let times = self.times.get_or_insert_with(|| vec![0; self.src.len()]);
        times.push(time);
        let weights = self
            .weights
            .get_or_insert_with(|| vec![1.0; self.src.len()]);
        let labels = self.labels.get_or_insert_with(|| vec![0; self.src.len()]);
        weights.push(w);
        labels.push(label);
        self.src.push(src);
        self.dst.push(dst);
    }

    /// Number of edges accumulated so far.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether no edges have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Builds the CSR.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>=
    /// num_nodes`.
    pub fn build(self) -> Result<Csr, GraphError> {
        let n = self.num_nodes;
        for &v in self.src.iter().chain(self.dst.iter()) {
            if (v as usize) >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u64::from(v),
                    num_nodes: n as u64,
                });
            }
        }

        let m = self.src.len();
        // Counting sort by source.
        let mut counts = vec![0u64; n + 1];
        for &s in &self.src {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();

        let mut order: Vec<u32> = (0..m as u32).collect();
        // Stable sort by (src, dst) — keeps payload association simple and
        // gives sorted per-node adjacency in one pass.
        order.sort_by_key(|&i| (self.src[i as usize], self.dst[i as usize]));

        let mut col_idx = Vec::with_capacity(m);
        let mut weights = self.weights.as_ref().map(|_| Vec::with_capacity(m));
        let mut labels = self.labels.as_ref().map(|_| Vec::with_capacity(m));
        let mut times = self.times.as_ref().map(|_| Vec::with_capacity(m));
        let mut prev: Option<(NodeId, NodeId)> = None;
        let mut kept_row_counts = vec![0u64; n];
        for &i in &order {
            let i = i as usize;
            let key = (self.src[i], self.dst[i]);
            if self.dedup && prev == Some(key) {
                continue;
            }
            prev = Some(key);
            kept_row_counts[key.0 as usize] += 1;
            col_idx.push(self.dst[i]);
            if let (Some(out), Some(src)) = (&mut weights, &self.weights) {
                out.push(src[i]);
            }
            if let (Some(out), Some(src)) = (&mut labels, &self.labels) {
                out.push(src[i]);
            }
            if let (Some(out), Some(src)) = (&mut times, &self.times) {
                out.push(src[i]);
            }
        }

        let row_ptr = if self.dedup {
            let mut rp = vec![0u64; n + 1];
            for i in 0..n {
                rp[i + 1] = rp[i] + kept_row_counts[i];
            }
            rp
        } else {
            row_ptr
        };

        let props = match weights {
            Some(w) => EdgeProps::F32(w),
            None => EdgeProps::Unweighted,
        };
        Ok(Csr {
            row_ptr,
            col_idx,
            props,
            labels,
            times,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency_with_payload_permuted() {
        let mut b = CsrBuilder::new(3);
        b.push_full(0, 2, 2.0, 20);
        b.push_full(0, 1, 1.0, 10);
        b.push_full(1, 0, 5.0, 50);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(0), &[1, 2]);
        let r = g.edge_range(0);
        assert_eq!(g.prop(r.start), 1.0);
        assert_eq!(g.prop(r.start + 1), 2.0);
        assert_eq!(g.label(r.start), 10);
        assert_eq!(g.label(r.start + 1), 20);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.prop(g.edge_range(1).start), 5.0);
    }

    #[test]
    fn out_of_range_src_is_rejected() {
        let err = CsrBuilder::new(2).edge(2, 0).build().unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: 2,
                num_nodes: 2
            }
        );
    }

    #[test]
    fn out_of_range_dst_is_rejected() {
        let err = CsrBuilder::new(2).edge(0, 7).build().unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 7, .. }));
    }

    #[test]
    fn dedup_removes_duplicates_keeping_first_payload() {
        let mut b = CsrBuilder::new(2).dedup();
        b.push_weighted(0, 1, 3.0);
        b.push_weighted(0, 1, 9.0);
        b.push_weighted(1, 0, 1.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.prop(g.edge_range(0).start), 3.0);
    }

    #[test]
    fn without_dedup_duplicates_are_kept() {
        let g = CsrBuilder::new(2).edge(0, 1).edge(0, 1).build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn mixing_weighted_and_unweighted_backfills_ones() {
        let mut b = CsrBuilder::new(2);
        b.push_edge(0, 1);
        b.push_weighted(1, 0, 4.0);
        let g = b.build().unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.prop(g.edge_range(0).start), 1.0);
        assert_eq!(g.prop(g.edge_range(1).start), 4.0);
    }

    #[test]
    fn timestamps_permute_with_adjacency_and_backfill_zero() {
        let mut b = CsrBuilder::new(3);
        b.push_edge(0, 2); // Pre-timestamp edge: backfills time 0.
        b.push_timestamped(0, 1, 2.0, 50);
        b.push_full_at(1, 0, 3.0, 4, 75);
        let g = b.build().unwrap();
        assert!(g.has_times());
        assert_eq!(g.neighbors(0), &[1, 2]);
        let r = g.edge_range(0);
        assert_eq!(g.time(r.start), 50);
        assert_eq!(g.time(r.start + 1), 0);
        assert_eq!(g.prop(r.start), 2.0);
        let r1 = g.edge_range(1);
        assert_eq!((g.time(r1.start), g.label(r1.start)), (75, 4));
        // Edges pushed after the times array exists backfill too.
        let mut b = CsrBuilder::new(2);
        b.push_timestamped(0, 1, 1.0, 9);
        b.push_weighted(1, 0, 2.0);
        let g = b.build().unwrap();
        assert_eq!(g.time(g.edge_range(1).start), 0);
    }

    #[test]
    fn dedup_keeps_first_timestamp() {
        let mut b = CsrBuilder::new(2).dedup();
        b.push_timestamped(0, 1, 1.0, 10);
        b.push_timestamped(0, 1, 1.0, 99);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.time(0), 10);
    }

    #[test]
    fn len_and_is_empty_track_pushes() {
        let mut b = CsrBuilder::new(2);
        assert!(b.is_empty());
        b.push_edge(0, 1);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn isolated_nodes_get_empty_ranges() {
        let g = CsrBuilder::new(5).edge(0, 4).build().unwrap();
        for v in 1..4 {
            assert_eq!(g.degree(v), 0);
        }
        assert_eq!(g.degree(0), 1);
    }
}
