//! Out-of-core block storage: fixed-size CSR blocks spilled to disk and
//! served back through a bounded resident cache.
//!
//! The partitioned topology (PR 5) serves graphs that overflow one
//! *device* by hash-sharding the adjacency across a fleet; this module is
//! the next cliff — graphs that overflow the *host*. A graph is spilled
//! once into fixed-size **blocks** (each holding the full adjacency of the
//! nodes it owns), written to a temporary file in a binary format that
//! reuses the [`crate::io`] flag-bit scheme, and read back on demand
//! through a [`ResidentCache`] bounded by a configurable byte budget.
//!
//! Ownership routes through the same [`shard_of`] Fibonacci hash as
//! partition plans — `block_of(v) = shard_of(v, blocks)` — so block
//! residency, shard residency and the migration census can never disagree
//! about a node's home. The block *count* is chosen from the
//! [`PartitionPlan`] degree census at spill time: the smallest count whose
//! busiest block fits the requested `block_bytes` target (doubling until
//! it fits or a single node's adjacency alone exceeds the target, in
//! which case that oversized block is accepted — it is pinned through
//! each activation and evicted immediately after).
//!
//! Epoch lifecycle mirrors the other handle-cached artifacts
//! ([`crate::GraphHandle::partition_plan`] and friends): the handle owns
//! one [`BlockRuntime`] per `(block_bytes, resident_budget)` request and
//! migrates it across [`crate::GraphHandle::apply_updates`] batches by
//! re-spilling exactly the blocks owning dirty nodes and dropping them
//! from the resident cache. Blocks encode weight values, so — like
//! sampler-state artifacts and unlike plans — **both** weight-only and
//! structural batches migrate them.

use crate::csr::{Csr, NodeId};
use crate::partition::{shard_of, PartitionPlan};
use crate::props::EdgeProps;
use crate::GraphError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Magic header of a block-spill file (sibling of io.rs's `FXWGRPH1`).
const BLOCK_MAGIC: &[u8; 8] = b"FXWBLKS1";

/// Fixed per-block payload header: `u32` node count + `u64` edge count.
const BLOCK_HEADER_BYTES: usize = 12;

/// Hard ceiling on the block count the planner will try — a backstop
/// against pathological `block_bytes` targets, far above what the
/// laptop-scale proxies need.
const MAX_BLOCKS: usize = 4096;

/// Process-wide spill-file sequence numbers (unique file names).
static NEXT_SPILL_ID: AtomicU64 = AtomicU64::new(1);

/// The block owning `node`'s adjacency — the same Fibonacci ownership
/// hash as [`shard_of`], so blocks and shards agree on every node's home.
pub fn block_of(node: NodeId, blocks: usize) -> usize {
    shard_of(node, blocks)
}

/// Bytes one edge occupies in a spilled block record: the 4-byte target
/// id plus the weight/label/timestamp columns the graph actually carries
/// (Int8 weights spill as their 1-byte codes).
pub fn bytes_per_block_edge(g: &Csr) -> usize {
    4 + g.props().bytes_per_weight() + usize::from(g.has_labels()) + 8 * usize::from(g.has_times())
}

/// The block geometry of one spilled graph: how many blocks, which nodes
/// and edges each owns, and each block's on-disk payload size.
///
/// Built on the [`PartitionPlan`] degree census (edges per block come
/// straight from the plan's shard totals with `shards = blocks`), kept
/// current across epochs by [`BlockIndex::refresh`] — the same
/// refresh≡recompute contract the plan cache pins, *given the same block
/// count*. The count itself is frozen at spill time so a runtime keeps
/// its geometry across updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockIndex {
    blocks: usize,
    /// The `block_bytes` target the count was chosen for.
    target_bytes: usize,
    /// Out-degree census at the index's epoch (what refresh diffs).
    degrees: Vec<u32>,
    /// Nodes owned by each block (fixed: updates never add nodes).
    node_counts: Vec<u32>,
    /// Edges owned by each block.
    edge_counts: Vec<u64>,
    /// Bytes per spilled edge record at the index's epoch.
    record_bytes: usize,
}

impl BlockIndex {
    /// Plans `g`'s block geometry for a `block_bytes` payload target.
    ///
    /// Starts from `ceil(total payload / block_bytes)` blocks and doubles
    /// until every block's payload fits the target, doubling stops
    /// helping (a single node's adjacency alone exceeds the target — the
    /// documented oversized-block fallback), or the `MAX_BLOCKS`
    /// backstop is hit. A zero `block_bytes` target degenerates to one
    /// block.
    pub fn plan(g: &Csr, block_bytes: usize) -> Self {
        let record = bytes_per_block_edge(g);
        let total = BLOCK_HEADER_BYTES + 8 * g.num_nodes() + record * g.num_edges();
        let mut blocks = if block_bytes == 0 {
            1
        } else {
            total.div_ceil(block_bytes).max(1)
        };
        loop {
            let index = Self::census(g, blocks, block_bytes, record);
            let max = index.max_payload_bytes();
            if max <= block_bytes.max(1) || blocks >= MAX_BLOCKS {
                return index;
            }
            // Doubling cannot split a single node's adjacency: once the
            // busiest block is one oversized node, accept it.
            if index
                .degrees
                .iter()
                .map(|&d| Self::payload_of(1, u64::from(d), record))
                .max()
                .unwrap_or(0)
                >= max
            {
                return index;
            }
            blocks = (blocks * 2).min(MAX_BLOCKS);
        }
    }

    /// One census pass at a fixed block count, routed through the
    /// [`PartitionPlan`] degree census for the edge totals.
    fn census(g: &Csr, blocks: usize, target_bytes: usize, record_bytes: usize) -> Self {
        let plan = PartitionPlan::compute(g, blocks);
        let mut node_counts = vec![0u32; blocks];
        let mut degrees = Vec::with_capacity(g.num_nodes());
        for v in 0..g.num_nodes() as NodeId {
            node_counts[block_of(v, blocks)] += 1;
            degrees.push(g.degree(v) as u32);
        }
        Self {
            blocks,
            target_bytes,
            degrees,
            node_counts,
            edge_counts: plan.shard_edges().to_vec(),
            record_bytes,
        }
    }

    fn payload_of(nodes: u64, edges: u64, record_bytes: usize) -> usize {
        BLOCK_HEADER_BYTES + 8 * nodes as usize + record_bytes * edges as usize
    }

    /// The number of blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The `block_bytes` payload target the geometry was planned for.
    pub fn target_bytes(&self) -> usize {
        self.target_bytes
    }

    /// The block owning `node`.
    pub fn owner(&self, node: NodeId) -> usize {
        block_of(node, self.blocks)
    }

    /// Nodes owned by `block`.
    pub fn node_count(&self, block: usize) -> usize {
        self.node_counts[block] as usize
    }

    /// Edges owned by `block`.
    pub fn edge_count(&self, block: usize) -> u64 {
        self.edge_counts[block]
    }

    /// On-disk payload bytes of `block` at the index's epoch.
    pub fn payload_bytes(&self, block: usize) -> usize {
        Self::payload_of(
            u64::from(self.node_counts[block]),
            self.edge_counts[block],
            self.record_bytes,
        )
    }

    /// The busiest block's payload bytes — the floor a resident budget
    /// must admit for every block to be loadable.
    pub fn max_payload_bytes(&self) -> usize {
        (0..self.blocks)
            .map(|b| self.payload_bytes(b))
            .max()
            .unwrap_or(0)
    }

    /// Total payload bytes across all blocks (the spilled CSR footprint).
    pub fn total_payload_bytes(&self) -> usize {
        (0..self.blocks).map(|b| self.payload_bytes(b)).sum()
    }

    /// Migrates the index to the post-batch graph `g`, given the batch's
    /// dirty source nodes. Returns the affected blocks, sorted and
    /// deduplicated — every block owning a dirty node counts (its spilled
    /// payload is stale even when the degree did not change, e.g. a
    /// weight-only batch). A change in the edge-record width (a
    /// `SetWeight` promoting an unweighted graph to F32) dirties every
    /// block.
    pub fn refresh(&mut self, g: &Csr, dirty: &[NodeId]) -> Vec<usize> {
        let record = bytes_per_block_edge(g);
        if record != self.record_bytes {
            self.record_bytes = record;
            for v in 0..self.degrees.len() {
                self.degrees[v] = g.degree(v as NodeId) as u32;
            }
            let plan = PartitionPlan::compute(g, self.blocks);
            self.edge_counts = plan.shard_edges().to_vec();
            return (0..self.blocks).collect();
        }
        let mut touched: Vec<usize> = Vec::new();
        for &v in dirty {
            let Some(slot) = self.degrees.get_mut(v as usize) else {
                continue;
            };
            let block = block_of(v, self.blocks);
            let new = g.degree(v) as u32;
            let old = *slot;
            if new != old {
                self.edge_counts[block] = self.edge_counts[block] - u64::from(old) + u64::from(new);
                *slot = new;
            }
            touched.push(block);
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }
}

/// One block's adjacency, loaded into memory: a mini-CSR over the block's
/// owned nodes (sorted by id), with whatever weight/label/timestamp
/// columns the graph carries.
#[derive(Clone, Debug)]
pub struct BlockData {
    block: usize,
    nodes: Vec<NodeId>,
    row_ptr: Vec<u64>,
    col_idx: Vec<NodeId>,
    weights: Option<Vec<f32>>,
    labels: Option<Vec<u8>>,
    times: Option<Vec<u64>>,
    /// On-disk payload bytes — what the resident budget charges.
    bytes: usize,
}

impl BlockData {
    /// The block id this data belongs to.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Nodes resident in this block (ascending ids).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edges resident in this block.
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// On-disk payload bytes (the resident-budget charge).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The sorted out-neighbor slice of `v`, or `None` when this block
    /// does not own `v`.
    pub fn neighbors(&self, v: NodeId) -> Option<&[NodeId]> {
        let i = self.nodes.binary_search(&v).ok()?;
        Some(&self.col_idx[self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize])
    }

    /// Whether the block-resident adjacency contains the edge `(v, u)` —
    /// the per-step verification hook the out-of-core scheduler uses to
    /// prove steps were served from block data.
    pub fn has_edge(&self, v: NodeId, u: NodeId) -> bool {
        self.neighbors(v)
            .is_some_and(|ns| ns.binary_search(&u).is_ok())
    }

    /// Weight of the local edge slot `e` (1.0 for unweighted graphs).
    pub fn weight(&self, e: usize) -> f32 {
        self.weights.as_ref().map_or(1.0, |w| w[e])
    }

    /// Label of the local edge slot `e` (0 for unlabeled graphs).
    pub fn label(&self, e: usize) -> u8 {
        self.labels.as_ref().map_or(0, |l| l[e])
    }

    /// Timestamp of the local edge slot `e`, or `None` when the graph
    /// carries no timestamps.
    pub fn time(&self, e: usize) -> Option<u64> {
        self.times.as_ref().map(|t| t[e])
    }
}

struct StoreInner {
    file: File,
    /// Per-block `(offset, len)` into the spill file. Respills append and
    /// repoint, so superseded payloads become dead bytes — acceptable for
    /// a session-lifetime temporary file.
    dir: Vec<(u64, u64)>,
    end: u64,
}

/// The on-disk half of a spilled graph: one append-only temporary file
/// holding every block's payload, plus the in-memory directory locating
/// them.
///
/// The file starts with `FXWBLKS1`, the io.rs flag byte (1 = F32
/// weights, 2 = labels, 4 = Int8, 8 = timestamps), the Int8
/// dequantisation pair when flag 4 is set, and the block count; block
/// payloads follow. The header describes the *initial* spill — respills
/// across epochs keep the in-memory flags authoritative (the file is
/// private to this process and deleted on drop, never re-opened cold).
pub struct BlockStore {
    path: PathBuf,
    flags: Mutex<(u8, Option<(f32, f32)>)>,
    inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStore")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

fn prop_flags(g: &Csr) -> (u8, Option<(f32, f32)>) {
    let (mut flags, int8) = match g.props() {
        EdgeProps::Unweighted => (0u8, None),
        EdgeProps::F32(_) => (1u8, None),
        EdgeProps::Int8 { scale, offset, .. } => (4u8, Some((*scale, *offset))),
    };
    if g.has_labels() {
        flags |= 2;
    }
    if g.has_times() {
        flags |= 8;
    }
    (flags, int8)
}

/// Buckets every node into its owning block — one O(V) pass shared by
/// spill and respill.
fn nodes_by_block(n: usize, blocks: usize) -> Vec<Vec<NodeId>> {
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); blocks];
    for v in 0..n as NodeId {
        buckets[block_of(v, blocks)].push(v);
    }
    buckets
}

/// Encodes one block's payload: node count, edge count, the
/// `(id, degree)` table, then the column/weight/label/time arrays.
fn encode_block(g: &Csr, nodes: &[NodeId]) -> Vec<u8> {
    let edges: u64 = nodes.iter().map(|&v| g.degree(v) as u64).sum();
    let mut buf = Vec::with_capacity(BLOCK_HEADER_BYTES + 8 * nodes.len() + 4 * edges as usize);
    buf.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    buf.extend_from_slice(&edges.to_le_bytes());
    for &v in nodes {
        buf.extend_from_slice(&v.to_le_bytes());
        buf.extend_from_slice(&(g.degree(v) as u32).to_le_bytes());
    }
    for &v in nodes {
        for e in g.edge_range(v) {
            buf.extend_from_slice(&g.edge_target(e).to_le_bytes());
        }
    }
    match g.props() {
        EdgeProps::Unweighted => {}
        EdgeProps::F32(w) => {
            for &v in nodes {
                for e in g.edge_range(v) {
                    buf.extend_from_slice(&w[e].to_le_bytes());
                }
            }
        }
        EdgeProps::Int8 { data, .. } => {
            for &v in nodes {
                for e in g.edge_range(v) {
                    buf.push(data[e]);
                }
            }
        }
    }
    if g.has_labels() {
        for &v in nodes {
            for e in g.edge_range(v) {
                buf.push(g.label(e));
            }
        }
    }
    if g.has_times() {
        for &v in nodes {
            for e in g.edge_range(v) {
                buf.extend_from_slice(&g.time(e).to_le_bytes());
            }
        }
    }
    buf
}

fn read_u32(buf: &[u8], at: &mut usize) -> Result<u32, GraphError> {
    let end = *at + 4;
    let bytes = buf
        .get(*at..end)
        .ok_or_else(|| GraphError::Parse("block payload truncated".into()))?;
    *at = end;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

fn read_u64(buf: &[u8], at: &mut usize) -> Result<u64, GraphError> {
    let end = *at + 8;
    let bytes = buf
        .get(*at..end)
        .ok_or_else(|| GraphError::Parse("block payload truncated".into()))?;
    *at = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

impl BlockStore {
    /// Spills `g` into `index.blocks()` payloads under a fresh temporary
    /// file.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures as [`GraphError::Io`].
    pub fn spill(g: &Csr, index: &BlockIndex) -> Result<Self, GraphError> {
        let path = std::env::temp_dir().join(format!(
            "flexiwalker-blocks-{}-{}.bin",
            std::process::id(),
            NEXT_SPILL_ID.fetch_add(1, Ordering::Relaxed),
        ));
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        let (flags, int8) = prop_flags(g);
        file.write_all(BLOCK_MAGIC)?;
        file.write_all(&[flags])?;
        if let Some((scale, offset)) = int8 {
            file.write_all(&scale.to_le_bytes())?;
            file.write_all(&offset.to_le_bytes())?;
        }
        file.write_all(&(index.blocks() as u64).to_le_bytes())?;
        let mut end = file.stream_position()?;
        let mut dir = Vec::with_capacity(index.blocks());
        for nodes in nodes_by_block(g.num_nodes(), index.blocks()) {
            let payload = encode_block(g, &nodes);
            file.write_all(&payload)?;
            dir.push((end, payload.len() as u64));
            end += payload.len() as u64;
        }
        file.flush()?;
        Ok(Self {
            path,
            flags: Mutex::new((flags, int8)),
            inner: Mutex::new(StoreInner { file, dir, end }),
        })
    }

    /// The spill file's location (diagnostics; deleted on drop).
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Bytes the spill file currently occupies, dead payloads included.
    pub fn file_bytes(&self) -> u64 {
        self.lock_inner().end
    }

    /// Reads one block's payload back into memory.
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] on read failures, [`GraphError::Parse`] on a
    /// corrupt payload or out-of-range block id.
    pub fn load(&self, block: usize) -> Result<BlockData, GraphError> {
        let (flags, int8) = *self.flags.lock().expect("block store flags poisoned");
        let buf = {
            let mut inner = self.lock_inner();
            let &(offset, len) = inner
                .dir
                .get(block)
                .ok_or_else(|| GraphError::Parse(format!("block {block} out of range")))?;
            let mut buf = vec![0u8; len as usize];
            inner.file.seek(SeekFrom::Start(offset))?;
            inner.file.read_exact(&mut buf)?;
            buf
        };
        let mut at = 0usize;
        let node_count = read_u32(&buf, &mut at)? as usize;
        let edge_count = read_u64(&buf, &mut at)? as usize;
        let mut nodes = Vec::with_capacity(node_count);
        let mut row_ptr = Vec::with_capacity(node_count + 1);
        row_ptr.push(0u64);
        for _ in 0..node_count {
            nodes.push(read_u32(&buf, &mut at)?);
            let degree = read_u32(&buf, &mut at)?;
            row_ptr.push(row_ptr.last().expect("non-empty") + u64::from(degree));
        }
        if *row_ptr.last().expect("non-empty") != edge_count as u64 {
            return Err(GraphError::Parse(format!(
                "block {block}: degree table disagrees with edge count"
            )));
        }
        // The three big columns decode from whole sub-slices (one bounds
        // check each), not element-wise reads — block loads are the hot
        // path of a thrashing cache.
        let col_slice = buf
            .get(at..at + 4 * edge_count)
            .ok_or_else(|| GraphError::Parse("block payload truncated".into()))?;
        at += 4 * edge_count;
        let col_idx: Vec<NodeId> = col_slice
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let weights = if flags & 4 != 0 {
            let (scale, offset) = int8.unwrap_or((1.0, 0.0));
            let codes = buf
                .get(at..at + edge_count)
                .ok_or_else(|| GraphError::Parse("block payload truncated".into()))?;
            at += edge_count;
            Some(
                codes
                    .iter()
                    .map(|&c| f32::from(c) * scale + offset)
                    .collect(),
            )
        } else if flags & 1 != 0 {
            let w_slice = buf
                .get(at..at + 4 * edge_count)
                .ok_or_else(|| GraphError::Parse("block payload truncated".into()))?;
            at += 4 * edge_count;
            Some(
                w_slice
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect(),
            )
        } else {
            None
        };
        let labels = (flags & 2 != 0)
            .then(|| {
                let slice = buf
                    .get(at..at + edge_count)
                    .ok_or_else(|| GraphError::Parse("block payload truncated".into()))?;
                at += edge_count;
                Ok::<_, GraphError>(slice.to_vec())
            })
            .transpose()?;
        let times = (flags & 8 != 0)
            .then(|| {
                let t_slice = buf
                    .get(at..at + 8 * edge_count)
                    .ok_or_else(|| GraphError::Parse("block payload truncated".into()))?;
                at += 8 * edge_count;
                Ok::<_, GraphError>(
                    t_slice
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                        .collect(),
                )
            })
            .transpose()?;
        Ok(BlockData {
            block,
            nodes,
            row_ptr,
            col_idx,
            weights,
            labels,
            times,
            bytes: buf.len(),
        })
    }

    /// Re-spills the given blocks against the post-batch graph `g`: fresh
    /// payloads append to the file and the directory repoints to them.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures as [`GraphError::Io`].
    pub fn respill(&self, g: &Csr, index: &BlockIndex, blocks: &[usize]) -> Result<(), GraphError> {
        if blocks.is_empty() {
            return Ok(());
        }
        *self.flags.lock().expect("block store flags poisoned") = prop_flags(g);
        let mut member = vec![false; index.blocks()];
        for &b in blocks {
            if let Some(slot) = member.get_mut(b) {
                *slot = true;
            }
        }
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); index.blocks()];
        for v in 0..g.num_nodes() as NodeId {
            let b = block_of(v, index.blocks());
            if member[b] {
                buckets[b].push(v);
            }
        }
        let mut inner = self.lock_inner();
        let end = inner.end;
        inner.file.seek(SeekFrom::Start(end))?;
        for &b in blocks {
            if b >= index.blocks() {
                continue;
            }
            let payload = encode_block(g, &buckets[b]);
            inner.file.write_all(&payload)?;
            inner.dir[b] = (inner.end, payload.len() as u64);
            inner.end += payload.len() as u64;
        }
        inner.file.flush()?;
        Ok(())
    }

    fn lock_inner(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("block store lock poisoned")
    }
}

impl Drop for BlockStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Cumulative activity counters of one [`ResidentCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Blocks read from the spill file (cache misses).
    pub loads: u64,
    /// Fetches served from resident data.
    pub hits: u64,
    /// Blocks evicted to honour the byte budget.
    pub evictions: u64,
}

struct CacheEntry {
    block: usize,
    data: Arc<BlockData>,
    last_use: u64,
    pins: u32,
}

struct CacheState {
    entries: Vec<CacheEntry>,
    used: usize,
    tick: u64,
    counters: CacheCounters,
}

/// A bounded cache of loaded blocks: at most `budget` payload bytes stay
/// resident, evicting least-recently-used **unpinned** blocks first
/// (ties broken by lowest block id, for determinism).
///
/// Pinned blocks are never evicted — the scheduler pins the block it is
/// draining — so the budget can be transiently exceeded while an
/// oversized pinned block is active; eviction settles back under the
/// budget as soon as the pin drops (or at the next fetch), which is the
/// invariant `tests/integration_outofcore.rs` sweeps.
pub struct ResidentCache {
    budget: usize,
    state: Mutex<CacheState>,
}

impl std::fmt::Debug for ResidentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidentCache")
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl ResidentCache {
    /// An empty cache bounded by `budget` payload bytes.
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            state: Mutex::new(CacheState {
                entries: Vec::new(),
                used: 0,
                tick: 0,
                counters: CacheCounters::default(),
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Payload bytes currently resident.
    pub fn used_bytes(&self) -> usize {
        self.lock().used
    }

    /// Whether `block` is resident right now.
    pub fn is_resident(&self, block: usize) -> bool {
        self.lock().entries.iter().any(|e| e.block == block)
    }

    /// The ids of every resident block, ascending — one snapshot per
    /// call, so a scheduler can consult residency without re-locking per
    /// candidate block.
    pub fn resident_blocks(&self) -> Vec<usize> {
        let mut blocks: Vec<usize> = self.lock().entries.iter().map(|e| e.block).collect();
        blocks.sort_unstable();
        blocks
    }

    /// Cumulative load/hit/eviction counters.
    pub fn counters(&self) -> CacheCounters {
        self.lock().counters
    }

    /// Fetches `block` through the cache, pinned: a resident block is a
    /// hit, otherwise the payload loads from `store` (counted as a load)
    /// and LRU eviction runs to settle back under the budget. The caller
    /// owns one pin and must [`ResidentCache::unpin`] it.
    ///
    /// Returns the block data and whether the fetch was a hit.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::load`].
    pub fn fetch_pinned(
        &self,
        block: usize,
        store: &BlockStore,
    ) -> Result<(Arc<BlockData>, bool), GraphError> {
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(entry) = state.entries.iter_mut().find(|e| e.block == block) {
            entry.last_use = tick;
            entry.pins += 1;
            let data = Arc::clone(&entry.data);
            state.counters.hits += 1;
            return Ok((data, true));
        }
        // Load while holding the lock: concurrent fetchers of the same
        // block must not both charge the budget, and the scheduler is
        // sequential anyway.
        let data = Arc::new(store.load(block)?);
        state.counters.loads += 1;
        state.used += data.bytes();
        state.entries.push(CacheEntry {
            block,
            data: Arc::clone(&data),
            last_use: tick,
            pins: 1,
        });
        Self::evict_to_budget(&mut state, self.budget);
        Ok((data, false))
    }

    /// Drops one pin from `block` and settles the budget (an unpinned
    /// oversized block is evicted here).
    pub fn unpin(&self, block: usize) {
        let mut state = self.lock();
        if let Some(entry) = state.entries.iter_mut().find(|e| e.block == block) {
            entry.pins = entry.pins.saturating_sub(1);
        }
        Self::evict_to_budget(&mut state, self.budget);
    }

    /// Drops the given blocks from residency (stale after an epoch
    /// migration re-spilled them).
    pub fn invalidate(&self, blocks: &[usize]) {
        let mut state = self.lock();
        state.entries.retain(|e| !blocks.contains(&e.block));
        state.used = state.entries.iter().map(|e| e.data.bytes()).sum();
    }

    fn evict_to_budget(state: &mut CacheState, budget: usize) {
        while state.used > budget {
            let victim = state
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|(_, e)| (e.last_use, e.block))
                .map(|(i, _)| i);
            let Some(i) = victim else {
                // Everything resident is pinned: the budget is
                // transiently exceeded until a pin drops.
                return;
            };
            let entry = state.entries.swap_remove(i);
            state.used -= entry.data.bytes();
            state.counters.evictions += 1;
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().expect("resident cache lock poisoned")
    }
}

/// The complete out-of-core runtime for one graph epoch stream: the block
/// geometry, the spill file, and the bounded resident cache — the
/// artifact [`crate::GraphHandle::block_runtime`] caches per
/// `(block_bytes, resident_budget)` request and migrates across update
/// batches.
#[derive(Debug)]
pub struct BlockRuntime {
    blocks: usize,
    block_bytes: usize,
    resident_budget: usize,
    index: Mutex<BlockIndex>,
    store: BlockStore,
    cache: ResidentCache,
}

impl BlockRuntime {
    /// Plans, spills and wraps `g` under a fresh runtime.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::spill`].
    pub fn build(g: &Csr, block_bytes: usize, resident_budget: usize) -> Result<Self, GraphError> {
        let index = BlockIndex::plan(g, block_bytes);
        let store = BlockStore::spill(g, &index)?;
        Ok(Self {
            blocks: index.blocks(),
            block_bytes,
            resident_budget,
            index: Mutex::new(index),
            store,
            cache: ResidentCache::new(resident_budget),
        })
    }

    /// The number of blocks the graph spilled into.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The `block_bytes` payload target the geometry was planned for.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// The resident cache's byte budget.
    pub fn resident_budget(&self) -> usize {
        self.resident_budget
    }

    /// The block owning `node`.
    pub fn block_of(&self, node: NodeId) -> usize {
        block_of(node, self.blocks)
    }

    /// The bounded resident cache.
    pub fn cache(&self) -> &ResidentCache {
        &self.cache
    }

    /// The on-disk block store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// A clone of the current block geometry.
    pub fn index(&self) -> BlockIndex {
        self.lock_index().clone()
    }

    /// The busiest block's payload bytes (the budget floor).
    pub fn max_block_bytes(&self) -> usize {
        self.lock_index().max_payload_bytes()
    }

    /// Total spilled payload bytes (the out-of-core CSR footprint).
    pub fn spilled_bytes(&self) -> usize {
        self.lock_index().total_payload_bytes()
    }

    /// Fetches `block` pinned through the resident cache; see
    /// [`ResidentCache::fetch_pinned`].
    ///
    /// # Errors
    ///
    /// As [`BlockStore::load`].
    pub fn fetch_pinned(&self, block: usize) -> Result<(Arc<BlockData>, bool), GraphError> {
        self.cache.fetch_pinned(block, &self.store)
    }

    /// Drops one pin from `block`; see [`ResidentCache::unpin`].
    pub fn unpin(&self, block: usize) {
        self.cache.unpin(block);
    }

    /// Migrates the runtime across one update batch: the geometry census
    /// refreshes, every block owning a dirty node re-spills against the
    /// post-batch graph, and those blocks drop from the resident cache.
    /// Returns the number of blocks re-spilled.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::respill`]; on error the runtime must be
    /// considered stale (the handle drops the cached slot).
    pub fn migrate(&self, g: &Csr, dirty: &[NodeId]) -> Result<usize, GraphError> {
        let dirty_blocks = {
            let mut index = self.lock_index();
            let dirty_blocks = index.refresh(g, dirty);
            self.store.respill(g, &index, &dirty_blocks)?;
            dirty_blocks
        };
        self.cache.invalidate(&dirty_blocks);
        Ok(dirty_blocks.len())
    }

    fn lock_index(&self) -> MutexGuard<'_, BlockIndex> {
        self.index.lock().expect("block index lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;
    use crate::gen;

    fn graph(scale: u32, seed: u64) -> Csr {
        gen::rmat(scale, 1 << (scale + 2), gen::RmatParams::SOCIAL, seed)
    }

    fn weighted(scale: u32, seed: u64) -> Csr {
        crate::props::WeightModel::UniformReal.apply(graph(scale, seed), seed)
    }

    #[test]
    fn index_census_covers_every_node_and_edge() {
        let g = weighted(8, 3);
        let index = BlockIndex::plan(&g, 4096);
        assert!(index.blocks() > 1, "target forces multiple blocks");
        let nodes: usize = (0..index.blocks()).map(|b| index.node_count(b)).sum();
        let edges: u64 = (0..index.blocks()).map(|b| index.edge_count(b)).sum();
        assert_eq!(nodes, g.num_nodes());
        assert_eq!(edges, g.num_edges() as u64);
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(index.owner(v), block_of(v, index.blocks()));
        }
    }

    #[test]
    fn planner_fits_target_or_stops_at_single_node_blocks() {
        let g = weighted(8, 5);
        for target in [1 << 12, 1 << 14, 1 << 20] {
            let index = BlockIndex::plan(&g, target);
            let single_max = (0..g.num_nodes() as NodeId)
                .map(|v| BLOCK_HEADER_BYTES + 8 + bytes_per_block_edge(&g) * g.degree(v))
                .max()
                .unwrap();
            assert!(
                index.max_payload_bytes() <= target.max(single_max),
                "target {target}: busiest block {} exceeds both the target and the \
                 single-node floor {single_max}",
                index.max_payload_bytes()
            );
        }
        // A giant target degenerates to one block holding everything.
        let whole = BlockIndex::plan(&g, usize::MAX);
        assert_eq!(whole.blocks(), 1);
        assert_eq!(whole.total_payload_bytes(), whole.max_payload_bytes());
    }

    #[test]
    fn spilled_blocks_round_trip_the_adjacency() {
        let g = weighted(8, 7);
        let index = BlockIndex::plan(&g, 8192);
        let store = BlockStore::spill(&g, &index).unwrap();
        for b in 0..index.blocks() {
            let data = store.load(b).unwrap();
            assert_eq!(data.block(), b);
            assert_eq!(data.bytes(), index.payload_bytes(b));
            for &v in data.nodes() {
                assert_eq!(block_of(v, index.blocks()), b);
                assert_eq!(data.neighbors(v).unwrap(), g.neighbors(v));
            }
            let mut e = 0usize;
            for &v in data.nodes() {
                for ge in g.edge_range(v) {
                    assert_eq!(data.weight(e), g.prop(ge));
                    e += 1;
                }
            }
        }
        // Foreign nodes are absent, not empty.
        let other = (0..g.num_nodes() as NodeId)
            .find(|&v| block_of(v, index.blocks()) != 0)
            .unwrap();
        assert!(store.load(0).unwrap().neighbors(other).is_none());
    }

    #[test]
    fn labeled_timestamped_blocks_round_trip() {
        let mut b = CsrBuilder::new(4);
        b.push_full_at(0, 1, 2.0, 3, 10);
        b.push_full_at(0, 2, 4.0, 1, 20);
        b.push_full_at(2, 3, 8.0, 0, 30);
        let g = b.build().unwrap();
        let index = BlockIndex::plan(&g, usize::MAX);
        let store = BlockStore::spill(&g, &index).unwrap();
        let data = store.load(0).unwrap();
        assert_eq!(data.num_edges(), 3);
        let labels = data.labels.as_ref().unwrap();
        let times = data.times.as_ref().unwrap();
        // Node iteration order within the block is ascending id, matching
        // the CSR's own edge order node-by-node.
        let mut e = 0usize;
        for &v in data.nodes() {
            for ge in g.edge_range(v) {
                assert_eq!(data.weight(e), g.prop(ge));
                assert_eq!(labels[e], g.label(ge));
                assert_eq!(times[e], g.time(ge));
                e += 1;
            }
        }
    }

    #[test]
    fn int8_blocks_dequantise_like_the_graph() {
        let g = weighted(6, 9);
        let q = g.clone().with_props(g.props().quantize_int8()).unwrap();
        let index = BlockIndex::plan(&q, usize::MAX);
        let store = BlockStore::spill(&q, &index).unwrap();
        let data = store.load(0).unwrap();
        let mut e = 0usize;
        for &v in data.nodes() {
            for ge in q.edge_range(v) {
                assert_eq!(data.weight(e), q.prop(ge));
                e += 1;
            }
        }
    }

    #[test]
    fn cache_serves_hits_and_counts_loads() {
        let g = weighted(7, 11);
        let rt = BlockRuntime::build(&g, 2048, usize::MAX).unwrap();
        let (first, hit) = rt.fetch_pinned(0).unwrap();
        assert!(!hit);
        let (again, hit) = rt.fetch_pinned(0).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &again));
        rt.unpin(0);
        rt.unpin(0);
        let c = rt.cache().counters();
        assert_eq!((c.loads, c.hits, c.evictions), (1, 1, 0));
    }

    #[test]
    fn eviction_honours_budget_and_lru_order() {
        let g = weighted(8, 13);
        let index = BlockIndex::plan(&g, 2048);
        assert!(index.blocks() >= 4);
        // Budget fits roughly two blocks.
        let budget = index.payload_bytes(0) + index.payload_bytes(1);
        let rt = BlockRuntime::build(&g, 2048, budget).unwrap();
        for b in 0..index.blocks() {
            let (_, hit) = rt.fetch_pinned(b).unwrap();
            assert!(!hit);
            rt.unpin(b);
            assert!(
                rt.cache().used_bytes() <= budget,
                "budget exceeded with nothing pinned"
            );
        }
        assert!(rt.cache().counters().evictions > 0);
        // The most recent block survived; the least recent did not.
        assert!(rt.cache().is_resident(index.blocks() - 1));
        assert!(!rt.cache().is_resident(0));
    }

    #[test]
    fn pinned_blocks_are_never_evicted() {
        let g = weighted(8, 15);
        let index = BlockIndex::plan(&g, 2048);
        assert!(index.blocks() >= 3);
        // Budget fits only one block: pinning block 0 and fetching others
        // must keep 0 resident and over-budget until the pin drops.
        let budget = index.payload_bytes(0);
        let rt = BlockRuntime::build(&g, 2048, budget).unwrap();
        let _ = rt.fetch_pinned(0).unwrap();
        for b in 1..index.blocks() {
            let _ = rt.fetch_pinned(b).unwrap();
            assert!(rt.cache().is_resident(0), "pinned block 0 evicted");
            rt.unpin(b);
        }
        rt.unpin(0);
        // With every pin dropped, eviction settles back under budget.
        let (_, _) = rt.fetch_pinned(1).unwrap();
        rt.unpin(1);
        assert!(rt.cache().used_bytes() <= budget);
    }

    #[test]
    fn migrate_respills_dirty_blocks_and_invalidates_them() {
        let h = crate::GraphHandle::new(weighted(7, 17));
        let g0 = h.graph();
        let rt = BlockRuntime::build(&g0, 2048, usize::MAX).unwrap();
        // Warm every block.
        for b in 0..rt.blocks() {
            rt.fetch_pinned(b).unwrap();
            rt.unpin(b);
        }
        let out = h
            .apply_updates(&[crate::GraphUpdate::SetWeight {
                edge: 0,
                weight: 99.0,
            }])
            .unwrap();
        let respilled = rt.migrate(&out.graph, &out.dirty_nodes).unwrap();
        assert_eq!(respilled, 1, "weight-only batch respills the owner block");
        let dirty_block = rt.block_of(out.dirty_nodes[0]);
        assert!(!rt.cache().is_resident(dirty_block), "stale block dropped");
        // Reloading serves the post-batch weights.
        let (data, hit) = rt.fetch_pinned(dirty_block).unwrap();
        assert!(!hit);
        rt.unpin(dirty_block);
        let v = out.dirty_nodes[0];
        let local: usize = data
            .nodes()
            .iter()
            .take_while(|&&u| u != v)
            .map(|&u| out.graph.degree(u))
            .sum();
        assert_eq!(data.weight(local), 99.0);
    }

    #[test]
    fn migrate_tracks_structural_batches_against_recompute() {
        let h = crate::GraphHandle::new(weighted(7, 19));
        let rt = BlockRuntime::build(&h.graph(), 2048, usize::MAX).unwrap();
        let n = h.graph().num_nodes() as NodeId;
        for round in 0..6u32 {
            let out = h
                .apply_updates(&[crate::GraphUpdate::AddEdge {
                    src: (round * 31) % n,
                    dst: (round * 57 + 1) % n,
                    weight: 2.0,
                    label: 0,
                }])
                .unwrap();
            rt.migrate(&out.graph, &out.dirty_nodes).unwrap();
            // The migrated geometry equals a fresh census at the same
            // (frozen) block count.
            let fresh = BlockIndex::census(
                &out.graph,
                rt.blocks(),
                rt.block_bytes(),
                bytes_per_block_edge(&out.graph),
            );
            assert_eq!(rt.index(), fresh, "round {round}: refresh diverged");
            // And the respilled payloads serve the post-batch adjacency.
            for b in 0..rt.blocks() {
                let (data, _) = rt.fetch_pinned(b).unwrap();
                for &v in data.nodes() {
                    assert_eq!(data.neighbors(v).unwrap(), out.graph.neighbors(v));
                }
                rt.unpin(b);
            }
        }
    }

    #[test]
    fn weight_promotion_dirties_every_block() {
        let g = graph(7, 21); // unweighted
        let h = crate::GraphHandle::new(g);
        let rt = BlockRuntime::build(&h.graph(), 2048, usize::MAX).unwrap();
        assert!(rt.blocks() > 1);
        let out = h
            .apply_updates(&[crate::GraphUpdate::SetWeight {
                edge: 0,
                weight: 5.0,
            }])
            .unwrap();
        // SetWeight on an unweighted graph promotes props to F32: the
        // edge-record width changed, so every block's payload is stale.
        let respilled = rt.migrate(&out.graph, &out.dirty_nodes).unwrap();
        assert_eq!(respilled, rt.blocks());
        let (data, _) = rt.fetch_pinned(rt.block_of(out.dirty_nodes[0])).unwrap();
        rt.unpin(data.block());
        assert!(data.weights.is_some(), "respill picked up the F32 column");
    }

    #[test]
    fn invalidate_drops_stale_residency() {
        let g = weighted(7, 23);
        let rt = BlockRuntime::build(&g, 2048, usize::MAX).unwrap();
        rt.fetch_pinned(0).unwrap();
        rt.unpin(0);
        assert!(rt.cache().is_resident(0));
        rt.cache().invalidate(&[0]);
        assert!(!rt.cache().is_resident(0));
        assert_eq!(rt.cache().used_bytes(), 0);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let g = weighted(6, 25);
        let path = {
            let rt = BlockRuntime::build(&g, 4096, usize::MAX).unwrap();
            let p = rt.store().path().to_path_buf();
            assert!(p.exists());
            p
        };
        assert!(!path.exists(), "spill file outlived its runtime");
    }

    #[test]
    fn empty_graph_spills_one_empty_block() {
        let g = CsrBuilder::new(0).build().unwrap();
        let rt = BlockRuntime::build(&g, 4096, 1 << 20).unwrap();
        assert_eq!(rt.blocks(), 1);
        let (data, _) = rt.fetch_pinned(0).unwrap();
        rt.unpin(0);
        assert!(data.nodes().is_empty());
        assert_eq!(data.num_edges(), 0);
    }
}
