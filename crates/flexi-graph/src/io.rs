//! Graph serialisation: plain-text edge lists and a compact binary format.
//!
//! The text format is the SNAP-style `src dst [weight [label]]` one-per-line
//! layout, with `#` comments. The binary format is a little-endian dump of
//! the CSR arrays with a magic header, suitable for caching generated
//! proxies between benchmark runs.

use crate::builder::CsrBuilder;
use crate::csr::Csr;
use crate::props::EdgeProps;
use crate::GraphError;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a text edge list.
///
/// Lines starting with `#` are comments. Each data line is
/// `src dst [weight [label]]` separated by whitespace. The node count is
/// `max id + 1` unless `num_nodes` is given.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines.
pub fn read_edge_list<R: Read>(reader: R, num_nodes: Option<usize>) -> Result<Csr, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32, Option<f32>, Option<u8>)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let src: u32 = parse_field(parts.next(), "src", lineno)?;
        let dst: u32 = parse_field(parts.next(), "dst", lineno)?;
        let weight = match parts.next() {
            Some(tok) => Some(tok.parse::<f32>().map_err(|_| {
                GraphError::Parse(format!("line {}: bad weight {tok:?}", lineno + 1))
            })?),
            None => None,
        };
        let label = match parts.next() {
            Some(tok) => Some(tok.parse::<u8>().map_err(|_| {
                GraphError::Parse(format!("line {}: bad label {tok:?}", lineno + 1))
            })?),
            None => None,
        };
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst, weight, label));
    }
    let n = num_nodes.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    let any_weight = edges.iter().any(|e| e.2.is_some());
    let any_label = edges.iter().any(|e| e.3.is_some());
    let mut b = CsrBuilder::with_capacity(n, edges.len());
    for (s, d, w, l) in edges {
        match (any_weight, any_label) {
            (false, false) => b.push_edge(s, d),
            (true, false) => b.push_weighted(s, d, w.unwrap_or(1.0)),
            (_, true) => b.push_full(s, d, w.unwrap_or(1.0), l.unwrap_or(0)),
        }
    }
    b.build()
}

fn parse_field(tok: Option<&str>, what: &str, lineno: usize) -> Result<u32, GraphError> {
    let tok =
        tok.ok_or_else(|| GraphError::Parse(format!("line {}: missing {what}", lineno + 1)))?;
    tok.parse::<u32>()
        .map_err(|_| GraphError::Parse(format!("line {}: bad {what} {tok:?}", lineno + 1)))
}

/// Writes `g` as a text edge list (weights/labels included when present).
///
/// # Errors
///
/// Propagates I/O failures as [`GraphError::Io`].
pub fn write_edge_list<W: Write>(g: &Csr, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for v in 0..g.num_nodes() as u32 {
        for e in g.edge_range(v) {
            let u = g.edge_target(e);
            match (g.is_weighted(), g.has_labels()) {
                (false, false) => writeln!(w, "{v} {u}")?,
                (true, false) => writeln!(w, "{v} {u} {}", g.prop(e))?,
                (_, true) => writeln!(w, "{v} {u} {} {}", g.prop(e), g.label(e))?,
            }
        }
    }
    w.flush()?;
    Ok(())
}

const BINARY_MAGIC: &[u8; 8] = b"FXWGRPH1";

/// Writes `g` in the compact binary format.
///
/// # Errors
///
/// Propagates I/O failures as [`GraphError::Io`].
pub fn write_binary<W: Write>(g: &Csr, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    let n = g.num_nodes() as u64;
    let m = g.num_edges() as u64;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    let mut flags: u8 = match (g.props(), g.has_labels()) {
        (EdgeProps::Unweighted, false) => 0,
        (EdgeProps::Unweighted, true) => 2,
        (EdgeProps::F32(_), false) => 1,
        (EdgeProps::F32(_), true) => 3,
        (EdgeProps::Int8 { .. }, false) => 4,
        (EdgeProps::Int8 { .. }, true) => 6,
    };
    if g.has_times() {
        flags |= 8;
    }
    w.write_all(&[flags])?;
    for rp in g.row_ptr() {
        w.write_all(&rp.to_le_bytes())?;
    }
    for ci in g.col_idx() {
        w.write_all(&ci.to_le_bytes())?;
    }
    match g.props() {
        EdgeProps::Unweighted => {}
        EdgeProps::F32(ws) => {
            for x in ws {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        EdgeProps::Int8 {
            data,
            scale,
            offset,
        } => {
            w.write_all(&scale.to_le_bytes())?;
            w.write_all(&offset.to_le_bytes())?;
            w.write_all(data)?;
        }
    }
    if g.has_labels() {
        for e in 0..g.num_edges() {
            w.write_all(&[g.label(e)])?;
        }
    }
    if let Some(times) = g.times() {
        for t in times {
            w.write_all(&t.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph from the compact binary format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on bad magic or truncated data.
pub fn read_binary<R: Read>(reader: R) -> Result<Csr, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Parse("bad magic header".into()));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let mut flags = [0u8; 1];
    r.read_exact(&mut flags)?;
    let flags = flags[0];

    let mut row_ptr = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        row_ptr.push(read_u64(&mut r)?);
    }
    let mut col_idx = Vec::with_capacity(m);
    for _ in 0..m {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        col_idx.push(u32::from_le_bytes(b));
    }
    let props = if flags & 1 != 0 {
        let mut ws = Vec::with_capacity(m);
        for _ in 0..m {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            ws.push(f32::from_le_bytes(b));
        }
        EdgeProps::F32(ws)
    } else if flags & 4 != 0 {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        let scale = f32::from_le_bytes(b);
        r.read_exact(&mut b)?;
        let offset = f32::from_le_bytes(b);
        let mut data = vec![0u8; m];
        r.read_exact(&mut data)?;
        EdgeProps::Int8 {
            data,
            scale,
            offset,
        }
    } else {
        EdgeProps::Unweighted
    };
    let labels = if flags & 2 != 0 {
        let mut l = vec![0u8; m];
        r.read_exact(&mut l)?;
        Some(l)
    } else {
        None
    };
    let times = if flags & 8 != 0 {
        let mut t = Vec::with_capacity(m);
        for _ in 0..m {
            t.push(read_u64(&mut r)?);
        }
        Some(t)
    } else {
        None
    };
    Ok(Csr {
        row_ptr,
        col_idx,
        props,
        labels,
        times,
    })
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Convenience wrapper: writes the binary format to `path`.
pub fn save_binary(g: &Csr, path: &Path) -> Result<(), GraphError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Convenience wrapper: reads the binary format from `path`.
pub fn load_binary(path: &Path) -> Result<Csr, GraphError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::props::{assign_uniform_labels, WeightModel};

    fn sample() -> Csr {
        let g = gen::rmat(7, 400, gen::RmatParams::SOCIAL, 3);
        let g = WeightModel::UniformReal.apply(g, 3);
        assign_uniform_labels(g, 5, 3)
    }

    fn csr_eq(a: &Csr, b: &Csr) {
        assert_eq!(a.row_ptr(), b.row_ptr());
        assert_eq!(a.col_idx(), b.col_idx());
        for e in 0..a.num_edges() {
            assert_eq!(a.prop(e), b.prop(e), "prop mismatch at {e}");
            assert_eq!(a.label(e), b.label(e), "label mismatch at {e}");
        }
    }

    #[test]
    fn text_roundtrip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(g.num_nodes())).unwrap();
        csr_eq(&g, &g2);
    }

    #[test]
    fn binary_roundtrip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        csr_eq(&g, &g2);
    }

    #[test]
    fn binary_roundtrip_unweighted() {
        let g = gen::cycle(10);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        csr_eq(&g, &g2);
        assert!(!g2.is_weighted());
    }

    #[test]
    fn binary_roundtrip_int8() {
        let g = sample();
        let q = g.props().quantize_int8();
        let g = g.with_props(q).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        csr_eq(&g, &g2);
        assert!(matches!(g2.props(), EdgeProps::Int8 { .. }));
    }

    #[test]
    fn text_reader_handles_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1\n1 0\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_reader_infers_node_count() {
        let g = read_edge_list("0 9\n".as_bytes(), None).unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn text_reader_rejects_garbage() {
        assert!(matches!(
            read_edge_list("0 x\n".as_bytes(), None),
            Err(GraphError::Parse(_))
        ));
        assert!(matches!(
            read_edge_list("0\n".as_bytes(), None),
            Err(GraphError::Parse(_))
        ));
        assert!(matches!(
            read_edge_list("0 1 notaweight\n".as_bytes(), None),
            Err(GraphError::Parse(_))
        ));
    }

    #[test]
    fn binary_reader_rejects_bad_magic() {
        let buf = b"NOTMAGIC________".to_vec();
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::Parse(_))));
    }

    #[test]
    fn binary_reader_rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = crate::builder::CsrBuilder::new(0).build().unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_nodes(), 0);
        assert_eq!(g2.num_edges(), 0);
    }
}
