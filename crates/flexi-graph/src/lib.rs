//! Graph substrate for FlexiWalker.
//!
//! Provides the compressed-sparse-row graph that every sampling kernel and
//! walk engine operates on, together with:
//!
//! - [`builder::CsrBuilder`] — edge-list ingestion with sorting, optional
//!   deduplication and validation;
//! - [`gen`] — seeded synthetic generators (R-MAT/Kronecker, Erdős–Rényi,
//!   Zipf-degree) used to stand in for the paper's real-world datasets;
//! - [`datasets`] — the ten named dataset *proxies* of Table 1 (YT … FS),
//!   parameterised to match each graph's degree-skew profile at laptop scale;
//! - [`props`] — edge property weight models: unweighted, uniform `[1, 5)`,
//!   Pareto power-law, degree-based, and quantised INT8 (paper §6.1, §7.2),
//!   plus edge labels `{0..4}` for MetaPath;
//! - [`io`] — plain-text edge-list and compact binary round-trip formats;
//! - [`blocks`] — out-of-core block spill: fixed-size CSR blocks on disk
//!   behind a budget-bounded resident cache (the `Topology::OutOfCore`
//!   substrate);
//! - [`stats`] — degree/weight statistics used by the evaluation harness.

pub mod blocks;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod dynamic;
pub mod gen;
pub mod handle;
pub mod io;
pub mod partition;
pub mod props;
pub mod stats;
pub mod temporal;

pub use blocks::{
    block_of, BlockData, BlockIndex, BlockRuntime, BlockStore, CacheCounters, ResidentCache,
};
pub use builder::CsrBuilder;
pub use csr::{Csr, EdgeId, NodeId};
pub use datasets::{proxy, DatasetSpec, ALL_DATASETS};
pub use dynamic::GraphUpdate;
pub use handle::{
    DynState, GraphHandle, GraphSnapshot, GraphVersion, PlanFetch, StateMaintainer, UpdateOutcome,
};
pub use partition::{shard_of, PartitionPlan};
pub use props::{EdgeProps, WeightModel};
pub use temporal::{TimeMask, TimeWindow};

/// Errors produced by graph construction and I/O.
#[derive(Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node id outside `[0, num_nodes)`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The declared node count.
        num_nodes: u64,
    },
    /// An update referenced an edge id outside `[0, num_edges)`.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: usize,
        /// The number of edges in the graph.
        num_edges: usize,
    },
    /// A property/label array length did not match the edge count.
    PropLengthMismatch {
        /// Number of property entries supplied.
        got: usize,
        /// Number of edges in the graph.
        expected: usize,
    },
    /// A batch entry failed validation in [`dynamic::apply_batch`].
    ///
    /// Wraps the underlying range error with the entry's position in the
    /// batch and a rendering of the offending update (edge endpoints or
    /// edge id), so a failed mixed batch is attributable at a glance.
    InvalidUpdate {
        /// Zero-based position of the offending update within the batch.
        index: usize,
        /// Human-readable rendering of the update, e.g. `add 3 -> 99`.
        update: String,
        /// The underlying validation failure.
        cause: Box<GraphError>,
    },
    /// Two or more batch entries failed validation in
    /// [`dynamic::apply_batch`].
    ///
    /// Carries one [`GraphError::InvalidUpdate`] per offending entry, in
    /// batch order, so bulk ingest callers can drop exactly the rejected
    /// entries and retry the valid remainder. A batch with a single bad
    /// entry still surfaces the plain `InvalidUpdate`.
    InvalidBatch {
        /// One `InvalidUpdate` per offending entry, in batch order.
        errors: Vec<GraphError>,
    },
    /// Input file or stream was malformed.
    Parse(String),
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range (num_nodes = {num_nodes})")
            }
            Self::EdgeOutOfRange { edge, num_edges } => {
                write!(f, "edge id {edge} out of range (num_edges = {num_edges})")
            }
            Self::PropLengthMismatch { got, expected } => {
                write!(f, "property array has {got} entries, expected {expected}")
            }
            Self::InvalidUpdate {
                index,
                update,
                cause,
            } => {
                write!(f, "update #{index} ({update}) rejected: {cause}")
            }
            Self::InvalidBatch { errors } => {
                write!(f, "{} updates rejected: ", errors.len())?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            Self::Parse(msg) => write!(f, "parse error: {msg}"),
            Self::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}
