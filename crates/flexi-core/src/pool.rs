//! A std-only host-side worker pool for fanning independent walk jobs
//! across threads.
//!
//! The paper scales by *query parallelism* (§6.6): independent batches run
//! concurrently and results merge deterministically. This module is the
//! host-side half of that story — a scoped-thread pool that executes an
//! indexed job list and hands results back **in index order**, so callers
//! (the session drain executor, [`crate::multi_device::MultiDeviceEngine`])
//! get output that is bit-identical to a sequential loop no matter how
//! many threads ran.
//!
//! Work distribution reuses the §5.3 scheme one level up: a single
//! [`QueryQueue`] over job indices, popped in chunks
//! ([`QueryQueue::pop_chunk`]) so the shared counter is touched once per
//! chunk rather than once per job. There is no channel, no deque, and no
//! dependency — `std::thread::scope` plus one atomic.

use crate::queue::QueryQueue;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome of one [`WorkerPool::run_indexed`] call.
#[derive(Debug)]
pub struct PoolRun<R> {
    /// Per-job results, in job-index order (independent of which worker
    /// ran what).
    pub results: Vec<R>,
    /// Jobs executed by each worker, indexed by worker slot. The split is
    /// scheduling-dependent; the merged `results` are not.
    pub per_worker: Vec<u64>,
}

/// A fixed-width pool of host worker threads.
///
/// Threads are scoped per call: `run_indexed` spawns, drains the job list,
/// and joins before returning, so the pool itself is just a width and is
/// trivially `Clone`/`Send`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A pool as wide as the host allows.
    pub fn host() -> Self {
        Self::new(Self::available())
    }

    /// The host's available parallelism (1 if it cannot be queried).
    pub fn available() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// The pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(index, &items[index])` for every job, fanning across the
    /// pool, and returns the results in index order.
    ///
    /// `chunk` is the number of job indices a worker claims per atomic pop
    /// (clamped to at least 1); larger chunks cost less contention but
    /// balance worse. With one worker — or one job — everything runs
    /// inline on the calling thread and no thread is spawned, which is the
    /// sequential path the parallel results are guaranteed to match.
    pub fn run_indexed<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> PoolRun<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers.min(items.len()).max(1);
        if workers == 1 {
            return PoolRun {
                results: items.iter().enumerate().map(|(i, t)| f(i, t)).collect(),
                per_worker: vec![items.len() as u64],
            };
        }
        let queue = QueryQueue::new(items.len());
        let chunk = chunk.max(1);
        let mut harvested: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut got: Vec<(usize, R)> = Vec::new();
                        while let Some(range) = queue.pop_chunk(chunk) {
                            for i in range {
                                got.push((i, f(i, &items[i])));
                            }
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        let per_worker: Vec<u64> = harvested.iter().map(|v| v.len() as u64).collect();
        // Deterministic merge: place every result at its job index.
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for worker in &mut harvested {
            for (i, r) in worker.drain(..) {
                debug_assert!(slots[i].is_none(), "job {i} executed twice");
                slots[i] = Some(r);
            }
        }
        PoolRun {
            results: slots
                .into_iter()
                .map(|s| s.expect("every job index claimed exactly once"))
                .collect(),
            per_worker,
        }
    }

    /// [`WorkerPool::run_indexed`] with *pipelined job completion*: items
    /// belong to jobs (`job_of(item_index) -> job id` in `0..jobs`), and
    /// the worker that finishes a job's **last** item immediately calls
    /// `complete(job, results)` — on the worker thread, while other
    /// workers are still executing later items — instead of every
    /// completion waiting for the full-list barrier.
    ///
    /// `complete` receives the job's `(item index, result)` pairs in
    /// ascending item order, exactly once per non-empty job; jobs with no
    /// items complete first, on the calling thread, in job-id order.
    /// Which worker (and when) a job completes is scheduling-dependent, so
    /// `complete` must be a pure function of its inputs — or do its own
    /// ordering, as the drain executor's out-of-core replay funnel does —
    /// for the overall run to stay deterministic. Item results are passed
    /// to `complete` rather than returned; the call returns only the
    /// per-worker item counts.
    ///
    /// With one worker — or one item — everything runs inline on the
    /// calling thread in item order, completions interleaved at each
    /// job's last item: the sequential path pipelined results must match.
    pub fn run_pipelined<T, R, F, C>(
        &self,
        items: &[T],
        chunk: usize,
        job_of: impl Fn(usize) -> usize + Sync,
        jobs: usize,
        f: F,
        complete: C,
    ) -> Vec<u64>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        C: Fn(usize, Vec<(usize, R)>) + Sync,
    {
        // Per-job membership, resolved once: ascending item order within
        // each job falls out of the ascending scan.
        let mut job_items: Vec<Vec<usize>> = (0..jobs).map(|_| Vec::new()).collect();
        for i in 0..items.len() {
            let j = job_of(i);
            assert!(j < jobs, "job_of({i}) = {j} out of 0..{jobs}");
            job_items[j].push(i);
        }
        for (j, members) in job_items.iter().enumerate() {
            if members.is_empty() {
                complete(j, Vec::new());
            }
        }
        let remaining: Vec<AtomicUsize> = job_items
            .iter()
            .map(|m| AtomicUsize::new(m.len()))
            .collect();
        let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        // Runs on whichever thread finished item `i`: park the result,
        // and if it was the job's last outstanding item, gather and
        // complete. The Release/Acquire pair on `remaining` makes every
        // sibling's parked result visible to the completing worker.
        let finish_item = |i: usize, r: R| {
            let j = job_of(i);
            *slots[i].lock().expect("result slot lock") = Some(r);
            if remaining[j].fetch_sub(1, Ordering::AcqRel) == 1 {
                let gathered: Vec<(usize, R)> = job_items[j]
                    .iter()
                    .map(|&i| {
                        let r = slots[i]
                            .lock()
                            .expect("result slot lock")
                            .take()
                            .expect("sibling item completed before its job");
                        (i, r)
                    })
                    .collect();
                complete(j, gathered);
            }
        };

        let workers = self.workers.min(items.len()).max(1);
        if workers == 1 {
            for (i, t) in items.iter().enumerate() {
                let r = f(i, t);
                finish_item(i, r);
            }
            return vec![items.len() as u64];
        }
        let queue = QueryQueue::new(items.len());
        let chunk = chunk.max(1);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut executed = 0u64;
                        while let Some(range) = queue.pop_chunk(chunk) {
                            for i in range {
                                let r = f(i, &items[i]);
                                finish_item(i, r);
                                executed += 1;
                            }
                        }
                        executed
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        })
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 2, 4, 8] {
            let run = WorkerPool::new(workers).run_indexed(&items, 3, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(run.results, (0..257).map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(run.per_worker.iter().sum::<u64>(), 257);
            assert!(run.per_worker.len() <= workers.max(1));
        }
    }

    #[test]
    fn single_worker_runs_inline_without_spawning() {
        // An inline run executes strictly in index order.
        let order = AtomicU64::new(0);
        let items = [10u64, 20, 30];
        let run = WorkerPool::new(1).run_indexed(&items, 1, |i, &x| {
            assert_eq!(order.fetch_add(1, Ordering::SeqCst), i as u64);
            x
        });
        assert_eq!(run.results, vec![10, 20, 30]);
        assert_eq!(run.per_worker, vec![3]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let run = WorkerPool::new(4).run_indexed(&[] as &[u8], 1, |_, &x| x);
        assert!(run.results.is_empty());
        assert_eq!(run.per_worker.iter().sum::<u64>(), 0);
    }

    #[test]
    fn pool_never_spawns_more_workers_than_jobs() {
        let items = [1u8, 2];
        let run = WorkerPool::new(16).run_indexed(&items, 1, |_, &x| x);
        assert_eq!(run.results, vec![1, 2]);
        assert!(run.per_worker.len() <= 2);
    }

    #[test]
    fn width_is_clamped_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
        assert!(WorkerPool::available() >= 1);
    }

    /// Pipelined-completion semantics under deliberately *skewed* task
    /// durations — slowest-first, so under any pipelined scheduling the
    /// first-claimed task finishes last and every fast task's result
    /// must wait in its slot. The index-ordered output must not depend on
    /// the worker count or the skew.
    #[test]
    fn skewed_slowest_first_durations_stay_deterministic() {
        let items: Vec<usize> = (0..24).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for workers in [1usize, 2, 4, 8] {
            let run = WorkerPool::new(workers).run_indexed(&items, 1, |i, &x| {
                // Task 0 sleeps longest; later tasks are near-instant.
                let micros = (items.len() - i) as u64 * 300;
                std::thread::sleep(std::time::Duration::from_micros(micros));
                x * x
            });
            assert_eq!(
                run.results, expected,
                "workers {workers}: skewed durations must not reorder results"
            );
            assert_eq!(run.per_worker.iter().sum::<u64>(), items.len() as u64);
        }
    }

    /// More worker slots than jobs: the pool must clamp its fan-out, so
    /// `per_worker` never reports more slots than there was work for.
    #[test]
    fn per_worker_shape_when_workers_exceed_jobs() {
        for (workers, jobs) in [(8usize, 3usize), (16, 1), (4, 2)] {
            let items: Vec<usize> = (0..jobs).collect();
            let run = WorkerPool::new(workers).run_indexed(&items, 1, |_, &x| x);
            assert_eq!(run.results, items);
            assert!(
                run.per_worker.len() <= jobs,
                "{workers} workers over {jobs} jobs spawned {} slots",
                run.per_worker.len()
            );
            assert_eq!(run.per_worker.iter().sum::<u64>(), jobs as u64);
        }
    }

    #[test]
    fn pipelined_completion_fires_once_per_job_with_ordered_members() {
        use std::sync::Mutex;
        // 10 items over 4 jobs, interleaved membership (i % 4), skewed
        // slowest-first durations so completion order differs from job
        // order under parallel scheduling.
        type Completions = Vec<(usize, Vec<(usize, usize)>)>;
        let items: Vec<usize> = (0..10).collect();
        for workers in [1usize, 2, 4, 8] {
            let completed: Mutex<Completions> = Mutex::new(Vec::new());
            let per_worker = WorkerPool::new(workers).run_pipelined(
                &items,
                1,
                |i| i % 4,
                4,
                |i, &x| {
                    std::thread::sleep(std::time::Duration::from_micros(
                        (items.len() - i) as u64 * 200,
                    ));
                    x * 10
                },
                |job, results| completed.lock().unwrap().push((job, results)),
            );
            assert_eq!(per_worker.iter().sum::<u64>(), items.len() as u64);
            let mut done = completed.into_inner().unwrap();
            assert_eq!(done.len(), 4, "every job completes exactly once");
            done.sort_by_key(|(job, _)| *job);
            for (job, results) in &done {
                let expect: Vec<(usize, usize)> = (0..items.len())
                    .filter(|i| i % 4 == *job)
                    .map(|i| (i, i * 10))
                    .collect();
                assert_eq!(results, &expect, "job {job} members in item order");
            }
        }
    }

    #[test]
    fn pipelined_jobs_without_items_complete_upfront() {
        use std::sync::Mutex;
        let items = [7usize];
        let completed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        WorkerPool::new(4).run_pipelined(
            &items,
            1,
            |_| 1, // the only item belongs to job 1; jobs 0 and 2 are empty
            3,
            |_, &x| x,
            |job, _| completed.lock().unwrap().push(job),
        );
        let done = completed.into_inner().unwrap();
        // Empty jobs complete first in job order, then the real one.
        assert_eq!(done, vec![0, 2, 1]);
    }
}
