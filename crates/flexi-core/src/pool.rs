//! A std-only host-side worker pool for fanning independent walk jobs
//! across threads.
//!
//! The paper scales by *query parallelism* (§6.6): independent batches run
//! concurrently and results merge deterministically. This module is the
//! host-side half of that story — a scoped-thread pool that executes an
//! indexed job list and hands results back **in index order**, so callers
//! (the session drain executor, [`crate::multi_device::MultiDeviceEngine`])
//! get output that is bit-identical to a sequential loop no matter how
//! many threads ran.
//!
//! Work distribution reuses the §5.3 scheme one level up: a single
//! [`QueryQueue`] over job indices, popped in chunks
//! ([`QueryQueue::pop_chunk`]) so the shared counter is touched once per
//! chunk rather than once per job. There is no channel, no deque, and no
//! dependency — `std::thread::scope` plus one atomic.

use crate::queue::QueryQueue;

/// Outcome of one [`WorkerPool::run_indexed`] call.
#[derive(Debug)]
pub struct PoolRun<R> {
    /// Per-job results, in job-index order (independent of which worker
    /// ran what).
    pub results: Vec<R>,
    /// Jobs executed by each worker, indexed by worker slot. The split is
    /// scheduling-dependent; the merged `results` are not.
    pub per_worker: Vec<u64>,
}

/// A fixed-width pool of host worker threads.
///
/// Threads are scoped per call: `run_indexed` spawns, drains the job list,
/// and joins before returning, so the pool itself is just a width and is
/// trivially `Clone`/`Send`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A pool as wide as the host allows.
    pub fn host() -> Self {
        Self::new(Self::available())
    }

    /// The host's available parallelism (1 if it cannot be queried).
    pub fn available() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// The pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(index, &items[index])` for every job, fanning across the
    /// pool, and returns the results in index order.
    ///
    /// `chunk` is the number of job indices a worker claims per atomic pop
    /// (clamped to at least 1); larger chunks cost less contention but
    /// balance worse. With one worker — or one job — everything runs
    /// inline on the calling thread and no thread is spawned, which is the
    /// sequential path the parallel results are guaranteed to match.
    pub fn run_indexed<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> PoolRun<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers.min(items.len()).max(1);
        if workers == 1 {
            return PoolRun {
                results: items.iter().enumerate().map(|(i, t)| f(i, t)).collect(),
                per_worker: vec![items.len() as u64],
            };
        }
        let queue = QueryQueue::new(items.len());
        let chunk = chunk.max(1);
        let mut harvested: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut got: Vec<(usize, R)> = Vec::new();
                        while let Some(range) = queue.pop_chunk(chunk) {
                            for i in range {
                                got.push((i, f(i, &items[i])));
                            }
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        let per_worker: Vec<u64> = harvested.iter().map(|v| v.len() as u64).collect();
        // Deterministic merge: place every result at its job index.
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for worker in &mut harvested {
            for (i, r) in worker.drain(..) {
                debug_assert!(slots[i].is_none(), "job {i} executed twice");
                slots[i] = Some(r);
            }
        }
        PoolRun {
            results: slots
                .into_iter()
                .map(|s| s.expect("every job index claimed exactly once"))
                .collect(),
            per_worker,
        }
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 2, 4, 8] {
            let run = WorkerPool::new(workers).run_indexed(&items, 3, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(run.results, (0..257).map(|x| x * 2).collect::<Vec<_>>());
            assert_eq!(run.per_worker.iter().sum::<u64>(), 257);
            assert!(run.per_worker.len() <= workers.max(1));
        }
    }

    #[test]
    fn single_worker_runs_inline_without_spawning() {
        // An inline run executes strictly in index order.
        let order = AtomicU64::new(0);
        let items = [10u64, 20, 30];
        let run = WorkerPool::new(1).run_indexed(&items, 1, |i, &x| {
            assert_eq!(order.fetch_add(1, Ordering::SeqCst), i as u64);
            x
        });
        assert_eq!(run.results, vec![10, 20, 30]);
        assert_eq!(run.per_worker, vec![3]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let run = WorkerPool::new(4).run_indexed(&[] as &[u8], 1, |_, &x| x);
        assert!(run.results.is_empty());
        assert_eq!(run.per_worker.iter().sum::<u64>(), 0);
    }

    #[test]
    fn pool_never_spawns_more_workers_than_jobs() {
        let items = [1u8, 2];
        let run = WorkerPool::new(16).run_indexed(&items, 1, |_, &x| x);
        assert_eq!(run.results, vec![1, 2]);
        assert!(run.per_worker.len() <= 2);
    }

    #[test]
    fn width_is_clamped_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
        assert!(WorkerPool::available() >= 1);
    }
}
