//! The FlexiWalker execution engine (paper §5).
//!
//! One persistent warp kernel interleaves the registered samplers: every
//! lane owns a walk query, thread-granular strategies (eRJS trials) run
//! per lane, and when a ballot finds lanes that chose a warp-granular
//! strategy (eRVS) the whole warp executes it for those lanes one at a
//! time, sharing query parameters through shuffles — the §5.2 design
//! generalised over the pluggable [`SamplerRegistry`]. Queries are pulled
//! from the §5.3 atomic queue, and every step consults Flexi-Runtime for
//! the sampler choice.
//!
//! Work is described by a [`WalkRequest`] job struct — an *owned* job
//! with no borrow lifetimes: the graph is an epoch-versioned
//! [`GraphHandle`], the workload and query set are shared `Arc`s. Engines
//! implement [`WalkEngine::run`] over it, pinning one [`GraphSnapshot`]
//! per launch so a run sees a consistent graph version even while updates
//! land on the handle. Every walk query draws from its own Philox stream
//! keyed by the request's [`WalkRequest::query_offset`], so paths are
//! identical regardless of warp placement, host-thread count, or how a
//! query set is split across requests — the foundation of the session
//! API's batching guarantee.

use crate::preprocess::Aggregates;
use crate::profile::{run_profile, ProfileResult};
use crate::queue::QueryQueue;
use crate::runtime::{ChurnProfile, CostModel, RuntimeEnv, SelectionStrategy};
use crate::walker::{CompiledWalker, IntoWalker, WalkerHandle, WalkerRegistry};
use crate::workload::{DynamicWalk, WalkState};
use flexi_compiler::CompiledWalk;
use flexi_gpu_sim::{CostStats, Device, DeviceSpec, WarpCtx, WARP_SIZE};
use flexi_graph::{
    Csr, DynState, EdgeId, GraphHandle, GraphSnapshot, GraphVersion, NodeId, PlanFetch,
    StateMaintainer, TimeWindow,
};
use flexi_rng::Philox4x32;
use flexi_sampling::kernels::{warp_max_reduce, ErvsMode, NeighborView};
use flexi_sampling::{
    ErvsSampler, Granularity, NodeState, Sampler, SamplerId, SamplerRegistry, StateTable,
};
use std::sync::Arc;

/// Default simulated-time budget (the paper's 12-hour OOT cutoff).
pub const DEFAULT_TIME_BUDGET: f64 = 12.0 * 3600.0;

/// Seed salt separating per-query streams from per-lane warp streams.
const QUERY_STREAM_SALT: u64 = 0x51E5_7A1C_0FFE_E75D;

/// Run configuration shared by every engine.
#[derive(Clone, Debug)]
pub struct WalkConfig {
    /// Steps per walk (the paper uses 80; MetaPath overrides to its schema
    /// depth via [`DynamicWalk::preferred_steps`]).
    pub steps: usize,
    /// Whether to materialise full walk paths in the report.
    pub record_paths: bool,
    /// Simulated-seconds budget; exceeding it is an OOT (paper §6.1).
    pub time_budget: f64,
    /// Host threads for warp execution (walk paths are identical at any
    /// thread count thanks to per-query RNG streams).
    pub host_threads: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            steps: 80,
            record_paths: false,
            time_budget: DEFAULT_TIME_BUDGET,
            host_threads: 1,
            seed: 0x5EED,
        }
    }
}

/// Conversion into the shared query set a [`WalkRequest`] owns.
pub trait IntoQueries {
    /// Produces the request's shared query set.
    fn into_queries(self) -> Arc<[NodeId]>;
}

impl IntoQueries for Arc<[NodeId]> {
    fn into_queries(self) -> Arc<[NodeId]> {
        self
    }
}

impl IntoQueries for Vec<NodeId> {
    fn into_queries(self) -> Arc<[NodeId]> {
        self.into()
    }
}

impl IntoQueries for &Vec<NodeId> {
    fn into_queries(self) -> Arc<[NodeId]> {
        self.as_slice().into()
    }
}

impl IntoQueries for &[NodeId] {
    fn into_queries(self) -> Arc<[NodeId]> {
        self.into()
    }
}

impl<const N: usize> IntoQueries for &[NodeId; N] {
    fn into_queries(self) -> Arc<[NodeId]> {
        self.as_slice().into()
    }
}

/// One walk job: the graph handle to walk, the walker, the query set,
/// and the run configuration — the unit both [`WalkEngine::run`] and the
/// session API operate on.
///
/// The request is fully owned (no borrow lifetimes): the graph travels as
/// an epoch-versioned [`GraphHandle`] and the walk algorithm as a
/// [`WalkerHandle`] — either already lowered, or a registry name the
/// serving session/engine resolves at run time. A request can outlive the
/// scope that built it, cross threads, and keep serving after runtime
/// updates — engines resolve the graph handle to a pinned
/// [`GraphSnapshot`] at launch.
#[derive(Clone)]
pub struct WalkRequest {
    /// Versioned handle of the graph being walked.
    pub graph: GraphHandle,
    /// The walk algorithm, addressed by handle.
    pub walker: WalkerHandle,
    /// Starting nodes, one walk each.
    pub queries: Arc<[NodeId]>,
    /// Run configuration.
    pub config: WalkConfig,
    /// Global index of `queries[0]` in the submitter's cumulative query
    /// stream.
    ///
    /// [`FlexiWalkerEngine`] (and therefore the session API built on it)
    /// draws query `i`'s randomness from Philox stream `query_offset + i`,
    /// so two requests covering the same global indices (with the same
    /// seed) produce identical paths regardless of how the set is batched.
    /// Baseline engines seed their RNG from the config seed alone and
    /// ignore this field — the batch-split guarantee is FlexiWalker's.
    pub query_offset: u64,
    /// Restricts the walk to edges whose timestamp falls inside this
    /// half-open window: masked-out edges weigh `0.0` and are never
    /// traversed, and walks start with their clock at `window.t0`. `None`
    /// walks the whole graph (equivalent to [`TimeWindow::all`]).
    ///
    /// The window is resolved against the pinned snapshot through the
    /// handle's per-epoch [`TimeMask`](flexi_graph::TimeMask) cache.
    pub window: Option<TimeWindow>,
}

impl WalkRequest {
    /// A request with the default [`WalkConfig`] and offset 0.
    ///
    /// `graph` accepts a `&GraphHandle` (cheap clone of the same versioned
    /// graph), an owned [`GraphHandle`], or a bare [`Csr`] / `Arc<Csr>`
    /// (wrapped in a fresh handle). `walker` accepts a registry name
    /// (`"node2vec"`), a `&W` workload struct, an `Arc<dyn DynamicWalk>`,
    /// a lowered [`CompiledWalker`] or an existing [`WalkerHandle`];
    /// `queries` accepts slices, vectors or a shared `Arc<[NodeId]>`.
    pub fn new(
        graph: impl Into<GraphHandle>,
        walker: impl IntoWalker,
        queries: impl IntoQueries,
    ) -> Self {
        Self {
            graph: graph.into(),
            walker: walker.into_walker(),
            queries: queries.into_queries(),
            config: WalkConfig::default(),
            query_offset: 0,
            window: None,
        }
    }

    /// Pins the request's current graph version for one launch.
    pub fn snapshot(&self) -> GraphSnapshot {
        self.graph.snapshot()
    }

    /// Replaces the walker handle (e.g. with a registry-resolved one).
    pub fn with_walker(mut self, walker: WalkerHandle) -> Self {
        self.walker = walker;
        self
    }

    /// Replaces the run configuration.
    pub fn with_config(mut self, config: WalkConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the walk length.
    pub fn steps(mut self, steps: usize) -> Self {
        self.config.steps = steps;
        self
    }

    /// Sets the experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables or disables path recording.
    pub fn record_paths(mut self, record: bool) -> Self {
        self.config.record_paths = record;
        self
    }

    /// Sets the host-thread count for warp execution.
    pub fn host_threads(mut self, threads: usize) -> Self {
        self.config.host_threads = threads;
        self
    }

    /// Sets the simulated-time budget.
    pub fn time_budget(mut self, seconds: f64) -> Self {
        self.config.time_budget = seconds;
        self
    }

    /// Sets the global query-stream offset (see [`WalkRequest::query_offset`]).
    pub fn query_offset(mut self, offset: u64) -> Self {
        self.query_offset = offset;
        self
    }

    /// Restricts the walk to edges timestamped inside `window`
    /// (see [`WalkRequest::window`]).
    pub fn window(mut self, window: TimeWindow) -> Self {
        self.window = Some(window);
        self
    }
}

impl std::fmt::Debug for WalkRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalkRequest")
            .field("graph", &self.graph.version())
            .field("walker", &self.walker)
            .field("queries", &self.queries.len())
            .field("config", &self.config)
            .field("query_offset", &self.query_offset)
            .field("window", &self.window)
            .finish()
    }
}

/// Errors every engine can report (the paper's OOM / OOT / unsupported
/// table entries).
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Device memory exhausted.
    OutOfMemory {
        /// Bytes the failing allocation requested.
        requested: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// Simulated time exceeded the budget.
    OutOfTime {
        /// The exceeded budget in simulated seconds.
        budget_secs: f64,
    },
    /// The engine cannot run this workload at all.
    Unsupported(&'static str),
    /// The request addressed a walker name no registry resolves.
    UnknownWalker {
        /// The unresolved walker name.
        name: String,
    },
    /// A walker definition failed to lower (malformed DSL, unresolvable
    /// references, invalid overrides).
    WalkerCompile {
        /// The walker's registry name.
        name: String,
        /// The compiler's diagnostic.
        message: String,
    },
    /// Out-of-core block storage failed: the spill file could not be
    /// read, or a recorded step was absent from the owning block's
    /// adjacency (spill diverged from the served graph).
    Io(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfMemory {
                requested,
                available,
            } => write!(f, "OOM (requested {requested} B, available {available} B)"),
            Self::OutOfTime { budget_secs } => write!(f, "OOT (budget {budget_secs} s)"),
            Self::Unsupported(what) => write!(f, "unsupported: {what}"),
            Self::UnknownWalker { name } => write!(f, "unknown walker {name:?}"),
            Self::WalkerCompile { name, message } => {
                write!(f, "walker {name:?} failed to compile: {message}")
            }
            Self::Io(msg) => write!(f, "block I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-sampler step counts, keyed by [`SamplerId`].
///
/// Replaces the former hardcoded `chosen_rjs` / `chosen_rvs` report
/// fields: any registered strategy — including third-party ones — shows up
/// here under its own id.
#[derive(Clone, Debug, Default)]
pub struct SamplerTally {
    counts: Vec<(SamplerId, u64)>,
}

/// Equality is by per-sampler counts, independent of recording order —
/// warp-output order varies with host-thread scheduling and device merge
/// order, and must not make otherwise-identical reports compare unequal.
impl PartialEq for SamplerTally {
    fn eq(&self, other: &Self) -> bool {
        self.counts.iter().all(|(id, n)| other.get(id) == *n)
            && other.counts.iter().all(|(id, n)| self.get(id) == *n)
    }
}

impl Eq for SamplerTally {}

impl SamplerTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `steps` sampling steps under `id`.
    pub fn record(&mut self, id: SamplerId, steps: u64) {
        if steps == 0 {
            return;
        }
        match self.counts.iter_mut().find(|(k, _)| *k == id) {
            Some((_, n)) => *n += steps,
            None => self.counts.push((id, steps)),
        }
    }

    /// Steps sampled by `id` (0 if the strategy never ran).
    pub fn get(&self, id: &str) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| *k == id)
            .map_or(0, |(_, n)| *n)
    }

    /// Iterates `(id, steps)` pairs in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (SamplerId, u64)> + '_ {
        self.counts.iter().copied()
    }

    /// Total steps across all strategies.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &SamplerTally) {
        for (id, n) in other.iter() {
            self.record(id, n);
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

impl std::fmt::Display for SamplerTally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (id, n) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{id}: {n}")?;
            first = false;
        }
        Ok(())
    }
}

/// Scale-out accounting for a run executed under a multi-device
/// [`Topology`](crate::topology::Topology): where steps executed and what
/// walker migration cost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Number of shards (devices) the run spanned.
    pub shards: usize,
    /// Steps executed by each shard. Under a partitioned topology a step
    /// is attributed to the device owning the walker's *current* node;
    /// under a duplicated-graph topology, to the device serving the query.
    pub per_shard_steps: Vec<u64>,
    /// Walker migrations across the interconnect (partitioned topologies;
    /// zero when the graph is duplicated and walkers never move).
    pub migrations: u64,
    /// Simulated seconds the migrations spent on the link.
    pub link_seconds: f64,
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Engine name.
    pub engine: &'static str,
    /// The graph version the run was served from (which epoch of which
    /// handle) — lets callers correlate walk output with the update
    /// stream that produced the topology it traversed.
    pub graph_version: GraphVersion,
    /// Main walk time in simulated seconds (excludes profile/preprocess,
    /// which the paper reports separately in Table 3).
    pub sim_seconds: f64,
    /// Walk time under full device saturation: aggregate warp work divided
    /// by total device parallelism. Equals `sim_seconds` for saturated
    /// launches and for CPU engines; the harness extrapolates from this so
    /// an underfilled test launch does not penalise a device that would be
    /// full at paper scale.
    pub saturated_seconds: f64,
    /// Device activity of the main walk.
    pub stats: CostStats,
    /// Number of walk queries processed.
    pub queries: usize,
    /// Total steps taken across all walks.
    pub steps_taken: u64,
    /// Full paths (only when [`WalkConfig::record_paths`]).
    pub paths: Option<Vec<Vec<NodeId>>>,
    /// Sampling steps per strategy, keyed by sampler id.
    pub sampler_steps: SamplerTally,
    /// Sampler-state artifacts built from scratch for this run (cold
    /// epoch-cache misses on the incremental-state path).
    pub sampler_state_builds: u64,
    /// Sampler-state artifacts served from the handle's epoch cache.
    pub sampler_state_hits: u64,
    /// Profiling time (Table 3); zero when served from a session cache.
    pub profile_seconds: f64,
    /// Preprocessing time (Table 3); zero when served from a session cache.
    pub preprocess_seconds: f64,
    /// Compiler / runtime warnings.
    pub warnings: Vec<String>,
    /// Board power under load (energy model input, Fig. 16).
    pub watts: f64,
    /// Scale-out accounting, when the run spanned a multi-device
    /// topology (`None` for plain single-device runs).
    pub shards: Option<ShardStats>,
    /// Out-of-core accounting, when the run was served from disk-resident
    /// blocks under [`Topology::OutOfCore`](crate::Topology::OutOfCore)
    /// (`None` for memory-resident runs).
    pub blocks: Option<crate::out_of_core::BlockStats>,
}

impl RunReport {
    /// Energy of the main walk phase in joules.
    ///
    /// Uses the saturated time: load watts apply when the device is busy.
    pub fn joules(&self) -> f64 {
        self.watts * self.saturated_seconds
    }

    /// Joules per query (Fig. 16's metric).
    pub fn joules_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.joules() / self.queries as f64
        }
    }
}

/// Uniform interface over FlexiWalker and every baseline system.
pub trait WalkEngine: Sync {
    /// Engine name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Runs the walk job described by `req`.
    ///
    /// # Errors
    ///
    /// [`EngineError::OutOfMemory`] / [`EngineError::OutOfTime`] /
    /// [`EngineError::Unsupported`] mirror the paper's OOM/OOT/`-` table
    /// entries.
    fn run(&self, req: &WalkRequest) -> Result<RunReport, EngineError>;
}

/// Compile outcome for one workload — the estimator artifacts a session
/// caches across submissions.
#[derive(Clone, Debug, Default)]
pub struct CompiledArtifacts {
    /// The generated estimators, or `None` when the compiler fell back.
    pub compiled: Option<CompiledWalk>,
    /// Compiler warnings to surface in the run report.
    pub warnings: Vec<String>,
}

/// Runs Flexi-Compiler over the workload's `get_weight` spec — the same
/// lowering [`crate::walker::WalkerDef::lower`] performs, exposed for
/// callers holding a bare workload.
pub fn compile_workload(w: &dyn DynamicWalk) -> CompiledArtifacts {
    crate::walker::compile_spec(&w.spec())
}

/// Reusable per-(graph, workload) state: compiled estimators, preprocessed
/// aggregates, and the profiled cost model. Produced by
/// [`FlexiWalkerEngine::prepare`] and cached by the session API.
#[derive(Clone, Debug)]
pub struct PreparedState {
    /// Compile outcome.
    pub artifacts: CompiledArtifacts,
    /// Preprocessed `_MAX`/`_SUM` aggregates.
    pub aggregates: Arc<Aggregates>,
    /// Profiling outcome (`None` when profiling is disabled).
    pub profile: Option<ProfileResult>,
}

/// The FlexiWalker engine: compile → preprocess → profile → adaptive walk.
#[derive(Clone, Debug)]
pub struct FlexiWalkerEngine {
    spec: DeviceSpec,
    /// Sampler-selection strategy (Fig. 13 compares these).
    pub strategy: SelectionStrategy,
    /// Skip the profiling kernels and use the default cost ratio.
    pub skip_profile: bool,
    /// Pin the cost model's `EdgeCost_RJS / EdgeCost_RVS` ratio instead of
    /// profiling it (ratio-sensitivity ablations).
    pub cost_ratio_override: Option<f64>,
    /// Maintain per-node sampler state (alias tables / CDFs) through the
    /// graph handle's epoch cache and serve eligible walks from it.
    /// Opt-in: the state path changes RNG draw sequences, so runs with it
    /// on are bit-identical to each other but not to stateless runs.
    /// Silently inert for walkers whose weights read walk state, and for
    /// time-windowed requests (the artifact cannot encode a mask).
    pub incremental_state: bool,
    /// Expected update churn amortised into stateful pricing (zero by
    /// default). Sessions feed observed refresh rates back here so the
    /// argmin prices table maintenance alongside sampling.
    pub churn: ChurnProfile,
    registry: SamplerRegistry,
    walkers: WalkerRegistry,
}

impl FlexiWalkerEngine {
    /// FlexiWalker with the paper's cost-model selection over the built-in
    /// eRVS/eRJS pair.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_strategy(spec, SelectionStrategy::CostModel)
    }

    /// FlexiWalker with an explicit selection strategy (ablations).
    pub fn with_strategy(spec: DeviceSpec, strategy: SelectionStrategy) -> Self {
        Self {
            spec,
            strategy,
            skip_profile: false,
            cost_ratio_override: None,
            incremental_state: false,
            churn: ChurnProfile::default(),
            registry: SamplerRegistry::builtin(),
            walkers: WalkerRegistry::builtin(),
        }
    }

    /// Enables (or disables) the incremental sampler-state path.
    pub fn with_incremental_state(mut self, on: bool) -> Self {
        self.incremental_state = on;
        self
    }

    /// Sets the churn profile stateful pricing amortises over.
    pub fn with_churn(mut self, churn: ChurnProfile) -> Self {
        self.churn = churn;
        self
    }

    /// Replaces the sampler registry wholesale.
    pub fn with_registry(mut self, registry: SamplerRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Replaces the walker registry wholesale.
    pub fn with_walkers(mut self, walkers: WalkerRegistry) -> Self {
        self.walkers = walkers;
        self
    }

    /// Registers an additional (or replacement) sampling strategy.
    pub fn register_sampler(&mut self, sampler: Arc<dyn Sampler>) {
        self.registry.register(sampler);
    }

    /// Registers an additional (or replacement) walker definition.
    pub fn register_walker(&mut self, def: crate::walker::WalkerDef) {
        self.walkers.register(def);
    }

    /// The registered walker definitions.
    pub fn walkers(&self) -> &WalkerRegistry {
        &self.walkers
    }

    /// Resolves a request's walker against this engine's registry,
    /// returning a request whose handle owns the lowered walker. Already
    /// resolved requests pass through unchanged (cheap `Arc` clones).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownWalker`] / [`EngineError::WalkerCompile`] as
    /// [`WalkerRegistry::resolve`].
    pub fn resolve_request(&self, req: &WalkRequest) -> Result<WalkRequest, EngineError> {
        if req.walker.is_resolved() {
            return Ok(req.clone());
        }
        let cw = self.walkers.resolve(req.walker.name())?;
        Ok(req
            .clone()
            .with_walker(WalkerHandle::resolved(Arc::new(cw))))
    }

    /// Re-registers eRVS at the given optimisation stage (the Fig. 12a
    /// ablation axis).
    pub fn with_ervs_mode(mut self, mode: ErvsMode) -> Self {
        self.registry
            .register(Arc::new(ErvsSampler::with_mode(mode)));
        self
    }

    /// The registered sampling strategies.
    pub fn registry(&self) -> &SamplerRegistry {
        &self.registry
    }

    /// The device specification in use.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Computes the preprocessed aggregates the compiled estimators need.
    pub fn aggregates_for(&self, g: &Csr, artifacts: &CompiledArtifacts) -> Aggregates {
        match &artifacts.compiled {
            Some(c) if !c.preprocess.is_empty() => {
                Aggregates::compute(g, &c.preprocess, &self.spec)
            }
            _ => Aggregates::default(),
        }
    }

    /// Runs the §5.1 profiling kernels, unless disabled on this engine.
    pub fn profile_for(&self, g: &Csr, w: &dyn DynamicWalk, seed: u64) -> Option<ProfileResult> {
        if self.skip_profile || self.cost_ratio_override.is_some() {
            None
        } else {
            let device = Device::new(self.spec.clone());
            Some(run_profile(&device, g, w.bytes_per_weight(g), seed))
        }
    }

    /// Full preparation pass over a lowered walker: reuse its compiled
    /// artifacts, then preprocess + profile. The result is reusable across
    /// every run over the same `(graph, walker)` pair — the session API
    /// caches each piece independently.
    pub fn prepare(&self, g: &Csr, walker: &CompiledWalker, seed: u64) -> PreparedState {
        let artifacts = walker.artifacts().clone();
        let aggregates = Arc::new(self.aggregates_for(g, &artifacts));
        let profile = self.profile_for(g, walker.walk_dyn(), seed);
        PreparedState {
            artifacts,
            aggregates,
            profile,
        }
    }

    /// The cost model for a run, honouring the ratio override and carrying
    /// this engine's churn profile into stateful pricing.
    fn cost_model(&self, profile: Option<&ProfileResult>) -> CostModel {
        let mut model = match self.cost_ratio_override {
            Some(edge_cost_ratio) => CostModel::with_ratio(edge_cost_ratio),
            None => profile.map_or(CostModel::default_ratio(), ProfileResult::cost_model),
        };
        model.churn = self.churn;
        model
    }

    /// Runs `req` against previously prepared state (the session fast
    /// path), pinning the handle's current version.
    ///
    /// # Errors
    ///
    /// As [`WalkEngine::run`].
    pub fn run_with(
        &self,
        req: &WalkRequest,
        prepared: &PreparedState,
    ) -> Result<RunReport, EngineError> {
        let snap = req.snapshot();
        self.run_on(&snap, req, prepared)
    }

    /// Runs `req` against an explicitly pinned graph snapshot.
    ///
    /// The session API uses this to guarantee the walk executes over
    /// exactly the version its caches were prepared for — resolving the
    /// handle twice could interleave with a concurrent
    /// `apply_updates` and pair fresh topology with stale aggregates.
    ///
    /// # Errors
    ///
    /// As [`WalkEngine::run`].
    pub fn run_on(
        &self,
        snap: &GraphSnapshot,
        req: &WalkRequest,
        prepared: &PreparedState,
    ) -> Result<RunReport, EngineError> {
        self.run_on_resident(snap, req, prepared, snap.graph.memory_bytes())
    }

    /// [`FlexiWalkerEngine::run_on`] with an explicit device-resident
    /// footprint for the OOM check.
    ///
    /// A single-device (or duplicated-graph) launch must fit the whole
    /// graph — which is what [`FlexiWalkerEngine::run_on`] passes. A
    /// *partitioned* shard holds only its partition's edges plus the
    /// row-pointer array, so the session shard executor passes the
    /// [`PartitionPlan`](flexi_graph::PartitionPlan) footprint instead:
    /// that is precisely what lets partitioned topologies serve graphs
    /// that overflow one device's VRAM.
    ///
    /// # Errors
    ///
    /// As [`WalkEngine::run`].
    pub fn run_on_resident(
        &self,
        snap: &GraphSnapshot,
        req: &WalkRequest,
        prepared: &PreparedState,
        resident_bytes: usize,
    ) -> Result<RunReport, EngineError> {
        let g: &Csr = &snap.graph;
        let cw = req.walker.get()?;
        let w: &dyn DynamicWalk = cw.walk_dyn();
        let queries: &[NodeId] = &req.queries;
        let cfg = &req.config;
        let mut warnings = prepared.artifacts.warnings.clone();

        if self.registry.is_empty() {
            return Err(EngineError::Unsupported("empty sampler registry"));
        }
        // An explicitly named strategy must exist, in every mode.
        if let SelectionStrategy::Only(id) = self.strategy {
            if !self.registry.contains(id) {
                return Err(EngineError::Unsupported("selected sampler not registered"));
            }
        }

        // Effective strategy: without compiled estimators, strategies that
        // need a bound estimate lose their estimator (the §7.1 fallback).
        // An explicit `Only` of a bound-free strategy — custom or built-in
        // — is honoured untouched; an `Only` of a bound-needing strategy
        // degrades to the highest-priority bound-free one. CostModel,
        // Random and DegreeThreshold keep selecting, restricted to
        // bound-free candidates (for the built-in registry that is exactly
        // "running eRVS-only").
        let bounds_available = prepared.artifacts.compiled.is_some();
        let strategy = if bounds_available {
            self.strategy
        } else {
            let any_bounded = self.registry.iter().any(|s| s.needs_bound());
            match self.strategy {
                SelectionStrategy::Only(id)
                    if self.registry.get(id).is_some_and(|s| !s.needs_bound()) =>
                {
                    SelectionStrategy::Only(id)
                }
                other => {
                    let fallback = self.registry.iter().find(|s| !s.needs_bound()).ok_or(
                        EngineError::Unsupported(
                            "no bound-free sampler registered for the compiler-fallback mode",
                        ),
                    )?;
                    if any_bounded {
                        warnings.push(format!(
                            "no usable bound estimator; bound-requiring samplers disabled \
                             (running {}-class only)",
                            fallback.id()
                        ));
                    }
                    match other {
                        SelectionStrategy::Only(_) => SelectionStrategy::Only(fallback.id()),
                        keep => keep,
                    }
                }
            }
        };

        let device = Device::new(self.spec.clone());
        device
            .pool()
            .try_alloc(resident_bytes)
            .map_err(|e| match e {
                flexi_gpu_sim::SimError::OutOfMemory {
                    requested,
                    available,
                } => EngineError::OutOfMemory {
                    requested,
                    available,
                },
            })?;

        let cost_model = self.cost_model(prepared.profile.as_ref());
        let steps = w.preferred_steps().unwrap_or(cfg.steps);
        let queue = QueryQueue::new(queries.len());
        let slots = self.spec.total_warp_slots();
        let num_warps = queries.len().div_ceil(WARP_SIZE).min(slots).max(1);

        // Resolve the request's time window against the pinned snapshot,
        // through the handle's per-epoch mask cache. Full masks (every edge
        // admitted, e.g. an all-window or a window covering the whole
        // timestamp range) cost nothing per edge: the kernel skips masking.
        let mask: Option<Arc<flexi_graph::TimeMask>> = match req.window {
            Some(window) if !window.is_all() => {
                let (mask, _) = req.graph.time_mask(snap, window);
                (!mask.is_full()).then_some(mask)
            }
            _ => None,
        };

        // Launch-invariant candidate set: every registered strategy, minus
        // the bound-needing ones when no estimator exists. Computed once so
        // per-step selection never allocates. On the incremental-state path
        // each state-capable candidate additionally carries its per-node
        // artifact, fetched through the handle's epoch cache — eligible
        // only when the walker's weights are edge-pure and no time mask is
        // in force (a precomputed table cannot encode either).
        let state_eligible = self.incremental_state && cw.static_weights() && mask.is_none();
        let mut sampler_state_builds = 0u64;
        let mut sampler_state_hits = 0u64;
        let candidates: Vec<Candidate> = self
            .registry
            .iter()
            .filter(|s| bounds_available || !s.needs_bound())
            .map(|s| {
                let state = (state_eligible && s.supports_state())
                    .then(|| {
                        let maintainer: Arc<dyn StateMaintainer> =
                            Arc::new(SamplerStateMaintainer {
                                sampler: Arc::clone(s),
                                walk: Arc::clone(cw.walk()),
                                fingerprint: cw.fingerprint(),
                            });
                        let (state, fetch) = req.graph.sampler_state(snap, &maintainer);
                        match fetch {
                            PlanFetch::Cached => sampler_state_hits += 1,
                            PlanFetch::Built => sampler_state_builds += 1,
                        }
                        state.downcast::<StateTable>().ok()
                    })
                    .flatten();
                Candidate {
                    sampler: Arc::clone(s),
                    state,
                }
            })
            .collect();

        let kernel_cfg = WarpKernelCfg {
            compiled: prepared.artifacts.compiled.as_ref(),
            aggregates: &prepared.aggregates,
            candidates,
            strategy,
            cost_model,
            steps,
            record_paths: cfg.record_paths,
            seed: cfg.seed,
            query_offset: req.query_offset,
            mask: mask.as_deref(),
            start_time: req.window.map_or(0, |w| w.t0),
        };
        let kernel = |ctx: &mut WarpCtx| walk_warp(ctx, g, w, &queue, queries, &kernel_cfg);
        let launch = if cfg.host_threads > 1 {
            device.launch_parallel(num_warps, cfg.host_threads, cfg.seed, kernel)
        } else {
            device.launch(num_warps, cfg.seed, kernel)
        };

        if launch.sim_seconds > cfg.time_budget {
            return Err(EngineError::OutOfTime {
                budget_secs: cfg.time_budget,
            });
        }

        let mut sampler_steps = SamplerTally::new();
        let mut steps_taken = 0;
        let mut paths = cfg.record_paths.then(|| vec![Vec::new(); queries.len()]);
        for out in &launch.outputs {
            for (idx, n) in out.tallies.iter().enumerate() {
                if let Some(c) = kernel_cfg.candidates.get(idx) {
                    sampler_steps.record(c.sampler.id(), *n);
                }
            }
            for (q, path, s) in &out.finished {
                steps_taken += s;
                if let Some(paths) = &mut paths {
                    paths[*q] = path.clone();
                }
            }
        }

        let saturated_seconds = self
            .spec
            .saturated_seconds(&launch.stats)
            .min(launch.sim_seconds);
        Ok(RunReport {
            engine: "FlexiWalker",
            graph_version: snap.version,
            sim_seconds: launch.sim_seconds,
            saturated_seconds,
            stats: launch.stats,
            queries: queries.len(),
            steps_taken,
            paths,
            sampler_steps,
            sampler_state_builds,
            sampler_state_hits,
            profile_seconds: prepared.profile.as_ref().map_or(0.0, |p| p.sim_seconds),
            preprocess_seconds: prepared.aggregates.sim_seconds,
            warnings,
            watts: self.spec.load_watts,
            shards: None,
            blocks: None,
        })
    }
}

// The drain executor and the multi-device fleet fan these types across
// host threads; pin the thread-safety contract at compile time so a
// future field (a Cell, an Rc) cannot silently take parallel drains away.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WalkRequest>();
    assert_send_sync::<RunReport>();
    assert_send_sync::<PreparedState>();
    assert_send_sync::<FlexiWalkerEngine>();
    assert_send_sync::<GraphSnapshot>();
    assert_send_sync::<EngineError>();
};

impl WalkEngine for FlexiWalkerEngine {
    fn name(&self) -> &'static str {
        "FlexiWalker"
    }

    fn run(&self, req: &WalkRequest) -> Result<RunReport, EngineError> {
        let req = self.resolve_request(req)?;
        let walker = Arc::clone(req.walker.get()?);
        let snap = req.snapshot();
        let prepared = self.prepare(&snap.graph, &walker, req.config.seed);
        self.run_on(&snap, &req, &prepared)
    }
}

/// Frontier-compacted, structure-of-arrays walker state for one warp's
/// resident lanes (§5.2).
///
/// Each per-walker field lives in its own `WARP_SIZE` array so the
/// per-step scans (retire, select, advance) walk dense homogeneous
/// memory instead of hopping across `Option<Lane>` records, and the hot
/// row invariants of each lane's current node — adjacency row start and
/// length — are hoisted here once per step and reused by selection, the
/// sampling views, the eRJS bound and the advance. The refill scan still
/// touches every slot (each empty slot charges its queue-pop atomic,
/// exactly like the record-per-lane kernel did), so the simulated cost
/// sequence is bit-identical; only the host-side layout changed.
struct WarpLanes {
    query: [usize; WARP_SIZE],
    state: [WalkState; WARP_SIZE],
    steps_taken: [u64; WARP_SIZE],
    /// Each query's private RNG stream (placement-independent randomness).
    rng: [Philox4x32; WARP_SIZE],
    path: [Vec<NodeId>; WARP_SIZE],
    occupied: [bool; WARP_SIZE],
    /// Hoisted per-(lane, step) invariant: the adjacency row start of the
    /// lane's current node.
    row_start: [EdgeId; WARP_SIZE],
    /// Hoisted per-(lane, step) invariant: that row's length (the degree).
    row_len: [usize; WARP_SIZE],
}

impl WarpLanes {
    fn new() -> Self {
        WarpLanes {
            query: [0; WARP_SIZE],
            state: [WalkState::start(0); WARP_SIZE],
            steps_taken: [0; WARP_SIZE],
            rng: std::array::from_fn(|_| Philox4x32::new(0, 0)),
            path: std::array::from_fn(|_| Vec::new()),
            occupied: [false; WARP_SIZE],
            row_start: [0; WARP_SIZE],
            row_len: [0; WARP_SIZE],
        }
    }

    /// Retires lane `l`: its walk output moves to `out` and the slot
    /// frees for the next refill.
    fn finish(&mut self, l: usize, out: &mut WarpOut) {
        self.occupied[l] = false;
        out.finished.push((
            self.query[l],
            std::mem::take(&mut self.path[l]),
            self.steps_taken[l],
        ));
    }
}

/// Per-warp kernel output.
#[derive(Debug, Default)]
struct WarpOut {
    finished: Vec<(usize, Vec<NodeId>, u64)>,
    /// Steps per candidate position.
    tallies: Vec<u64>,
}

/// One selectable strategy for a run: the sampler plus the resident
/// per-node state artifact serving it (incremental-state path only).
struct Candidate {
    sampler: Arc<dyn Sampler>,
    state: Option<Arc<StateTable>>,
}

impl Candidate {
    /// The resident artifact for `v`, when one serves this candidate.
    #[inline]
    fn node_state(&self, v: NodeId) -> Option<&NodeState> {
        self.state.as_ref().and_then(|t| t.node(v as usize))
    }
}

/// Bridges one `(sampler, walker)` pair to the graph handle's epoch-keyed
/// state cache: builds per-node artifacts from the walker's edge-pure
/// weights, and patches exactly the dirty frontier on refresh. Each node's
/// artifact is a pure function of its weight vector, so a patch is
/// bit-identical to a from-scratch rebuild of the same epoch.
struct SamplerStateMaintainer {
    sampler: Arc<dyn Sampler>,
    walk: Arc<dyn DynamicWalk>,
    /// Value fingerprint of the walker the weights come from — part of the
    /// cache key, so two walkers sharing a sampler never share tables.
    fingerprint: u64,
}

impl SamplerStateMaintainer {
    fn node_state(&self, g: &Csr, v: NodeId) -> Option<NodeState> {
        // Eligibility (CompiledWalker::static_weights) guarantees the
        // weight ignores everything in the start state but the edge.
        let st = WalkState::start(v);
        let weights: Vec<f32> = g
            .edge_range(v)
            .map(|e| self.walk.weight(g, &st, e))
            .collect();
        self.sampler.build_node_state(&weights)
    }
}

impl StateMaintainer for SamplerStateMaintainer {
    fn state_key(&self) -> String {
        format!("{}@{:016x}", self.sampler.id(), self.fingerprint)
    }

    fn build(&self, graph: &Csr) -> DynState {
        let nodes = (0..graph.num_nodes() as u32)
            .map(|v| self.node_state(graph, v).map(Arc::new))
            .collect();
        Arc::new(StateTable::new(nodes))
    }

    fn refresh(&self, prev: &DynState, graph: &Csr, dirty: &[NodeId]) -> DynState {
        let table = prev
            .downcast_ref::<StateTable>()
            .expect("state slot holds this maintainer's table");
        Arc::new(
            table.patched(
                dirty
                    .iter()
                    .map(|&v| (v as usize, self.node_state(graph, v))),
            ),
        )
    }
}

/// Launch-invariant parameters of the §5.2 warp kernel.
struct WarpKernelCfg<'a> {
    compiled: Option<&'a CompiledWalk>,
    aggregates: &'a Aggregates,
    /// Strategies selectable this run, in registry priority order
    /// (bound-needing strategies are excluded when no estimator exists).
    candidates: Vec<Candidate>,
    strategy: SelectionStrategy,
    cost_model: CostModel,
    steps: usize,
    record_paths: bool,
    seed: u64,
    query_offset: u64,
    /// Time-window mask over edge ids; `None` means every edge is live
    /// (no window, or a full mask).
    mask: Option<&'a flexi_graph::TimeMask>,
    /// Initial walk clock: the window's lower bound (0 without a window).
    start_time: u64,
}

/// The §5.2 concurrent kernel body for one warp.
fn walk_warp(
    ctx: &mut WarpCtx,
    g: &Csr,
    w: &dyn DynamicWalk,
    queue: &QueryQueue,
    queries: &[NodeId],
    kc: &WarpKernelCfg<'_>,
) -> WarpOut {
    let mut out = WarpOut {
        finished: Vec::new(),
        tallies: vec![0; kc.candidates.len()],
    };
    let bytes_per_weight = w.bytes_per_weight(g);
    let mut lanes = WarpLanes::new();
    // The compacted frontier: lanes still walking, ascending. Rebuilt by
    // each refill, pruned after retire/select, so the per-phase loops
    // visit only live work instead of scanning all `WARP_SIZE` slots.
    let mut active: Vec<usize> = Vec::with_capacity(WARP_SIZE);

    // PER_KERNEL estimators are state-independent (§4.2 flag semantics):
    // evaluate the (max, sum) pair once and let every step's cost-model
    // selection — and the eRJS bound — reuse the registers instead of
    // re-walking the estimator tree per lane per step.
    let per_kernel_ests: Option<(Option<f64>, Option<f64>)> = kc.compiled.and_then(|c| {
        (c.flag == flexi_compiler::BoundGranularity::PerKernel).then(|| {
            let env = RuntimeEnv {
                graph: g,
                aggregates: kc.aggregates,
                workload: w,
                state: WalkState::start(0),
            };
            ctx.alu(4);
            (c.max_estimator.eval(&env), c.sum_estimator.eval(&env))
        })
    });
    let per_kernel_bound: Option<f64> = per_kernel_ests.and_then(|(max, _)| max);

    loop {
        // Refill idle lanes from the global queue (§5.3). Every empty
        // slot pays its pop atomic each round, occupied or not — the
        // frontier compaction below must not change the simulated cost.
        active.clear();
        for l in 0..WARP_SIZE {
            if !lanes.occupied[l] {
                ctx.atomic();
                if let Some(q) = queue.pop() {
                    let start = queries[q];
                    lanes.occupied[l] = true;
                    lanes.query[l] = q;
                    lanes.state[l] = WalkState::start_at(start, kc.start_time);
                    lanes.steps_taken[l] = 0;
                    lanes.path[l].clear();
                    if kc.record_paths {
                        lanes.path[l].push(start);
                    }
                    lanes.rng[l] =
                        Philox4x32::new(kc.seed ^ QUERY_STREAM_SALT, kc.query_offset + q as u64);
                }
            }
            if lanes.occupied[l] {
                active.push(l);
            }
        }
        if active.is_empty() {
            break;
        }

        // Retire finished walks, hoist each survivor's adjacency row and
        // pick a sampler for the rest.
        let mut choice: [Option<usize>; WARP_SIZE] = [None; WARP_SIZE];
        for &l in &active {
            let range = g.edge_range(lanes.state[l].cur);
            let deg = range.len();
            if lanes.state[l].step >= kc.steps || deg == 0 {
                lanes.finish(l, &mut out);
                continue;
            }
            lanes.row_start[l] = range.start;
            lanes.row_len[l] = deg;
            let state = lanes.state[l];
            ctx.bind_stream(lanes.rng[l].clone());
            choice[l] = select_sampler(ctx, l, deg, g, w, kc, per_kernel_ests, &state);
            lanes.rng[l] = ctx.unbind_stream();
            if choice[l].is_none() {
                // No runnable strategy at this node (e.g. every candidate
                // unpriceable): the walk must terminate, not spin — a lane
                // left active but never advanced would loop forever.
                lanes.finish(l, &mut out);
            }
        }
        // Compact: only lanes with a chosen strategy enter the phases.
        active.retain(|&l| choice[l].is_some());

        // Phase 0: lanes whose chosen strategy holds a resident per-node
        // artifact draw from it directly — no weight scan, no bound
        // estimation; the table already encodes the distribution.
        for &l in &active {
            let Some(idx) = choice[l] else { continue };
            let cand = &kc.candidates[idx];
            let Some(node_state) = cand.node_state(lanes.state[l].cur) else {
                continue;
            };
            ctx.bind_stream(lanes.rng[l].clone());
            let picked = node_state.sample_warp(ctx, l);
            lanes.rng[l] = ctx.unbind_stream();
            out.tallies[idx] += 1;
            advance_lane(&mut lanes, l, picked, g, kc.record_paths, &mut out);
            choice[l] = None;
        }

        // Phase 1: thread-granular lanes run their trials independently.
        for &l in &active {
            let Some(idx) = choice[l] else { continue };
            let sampler = kc.candidates[idx].sampler.as_ref();
            if sampler.granularity() != Granularity::Lane {
                continue;
            }
            let state = lanes.state[l];
            let bound = if sampler.needs_bound() {
                rjs_bound(
                    ctx,
                    g,
                    w,
                    kc,
                    &state,
                    per_kernel_bound,
                    lanes.row_start[l],
                    lanes.row_len[l],
                    bytes_per_weight,
                )
            } else {
                None
            };
            ctx.bind_stream(lanes.rng[l].clone());
            let picked = with_row_view(
                g,
                w,
                kc.mask,
                &state,
                lanes.row_start[l],
                lanes.row_len[l],
                bytes_per_weight,
                |view| sampler.sample_lane(ctx, l, view, bound),
            );
            lanes.rng[l] = ctx.unbind_stream();
            out.tallies[idx] += 1;
            advance_lane(&mut lanes, l, picked, g, kc.record_paths, &mut out);
        }

        // Ballot: does any lane need a warp-granular strategy?
        let mut preds = [false; WARP_SIZE];
        for &l in &active {
            preds[l] = choice[l]
                .is_some_and(|idx| kc.candidates[idx].sampler.granularity() == Granularity::Warp);
        }
        let mask = ctx.ballot(&preds);
        if mask != 0 {
            // Phase 2: the whole warp cooperates on each such lane in turn,
            // sharing the query parameters via shuffles (§5.2).
            for &l in &active {
                if mask & (1 << l) == 0 {
                    continue;
                }
                let idx = choice[l].expect("mask implies choice");
                let sampler = kc.candidates[idx].sampler.as_ref();
                let state = lanes.state[l];
                let dummy = [0u32; WARP_SIZE];
                ctx.shfl(&dummy, l); // Broadcast target node.
                ctx.shfl(&dummy, l); // Broadcast step/query id.
                ctx.bind_stream(lanes.rng[l].clone());
                let picked = with_row_view(
                    g,
                    w,
                    kc.mask,
                    &state,
                    lanes.row_start[l],
                    lanes.row_len[l],
                    bytes_per_weight,
                    |view| sampler.sample_warp(ctx, view),
                );
                lanes.rng[l] = ctx.unbind_stream();
                out.tallies[idx] += 1;
                advance_lane(&mut lanes, l, picked, g, kc.record_paths, &mut out);
            }
        }
    }
    out
}

/// Builds the lane's [`NeighborView`] with the time-mask branch resolved
/// **once** — outside the per-edge weight loop — and hands it to `body`.
///
/// The masked and unmasked arms use distinct closures, so an unwindowed
/// walk (the common case) pays no per-edge `Option` check at all; the
/// windowed arm hoists the mask reference out of the loop. Both produce
/// exactly the weights [`WarpKernelCfg::masked_weight`] would.
#[allow(clippy::too_many_arguments)]
fn with_row_view<R>(
    g: &Csr,
    w: &dyn DynamicWalk,
    mask: Option<&flexi_graph::TimeMask>,
    state: &WalkState,
    row_start: EdgeId,
    row_len: usize,
    bytes_per_weight: usize,
    body: impl FnOnce(&NeighborView) -> R,
) -> R {
    match mask {
        Some(m) => {
            let wf = |i: usize| {
                let edge = row_start + i;
                if m.admits(edge) {
                    w.weight(g, state, edge)
                } else {
                    0.0
                }
            };
            body(&NeighborView::new(&wf, row_len, bytes_per_weight))
        }
        None => {
            let wf = |i: usize| w.weight(g, state, row_start + i);
            body(&NeighborView::new(&wf, row_len, bytes_per_weight))
        }
    }
}

/// Applies a sampled neighbor index (or dead end) to lane `l`, resolving
/// the edge id from the row start hoisted at the top of the step.
fn advance_lane(
    lanes: &mut WarpLanes,
    l: usize,
    picked: Option<usize>,
    g: &Csr,
    record_paths: bool,
    out: &mut WarpOut,
) {
    match picked {
        Some(i) => {
            let edge = lanes.row_start[l] + i;
            let next = g.edge_target(edge);
            // Traversing an edge advances the walk clock to its timestamp
            // (0 on untimed graphs, leaving the clock untouched).
            lanes.state[l].advance_at(next, g.time(edge));
            lanes.steps_taken[l] += 1;
            if record_paths {
                lanes.path[l].push(next);
            }
        }
        // Dead end (all weights zero): the walk terminates here.
        None => lanes.finish(l, out),
    }
}

/// Flexi-Runtime's per-step selection, with cost accounting. Returns the
/// position of the chosen strategy in the run's candidate set. `deg` is
/// the lane's hoisted current-node degree; `per_kernel_ests` is the
/// kernel-start (max, sum) estimator pair when the bound granularity is
/// PER_KERNEL (state-independent, so every step reuses it).
#[allow(clippy::too_many_arguments)]
fn select_sampler(
    ctx: &mut WarpCtx,
    lane: usize,
    deg: usize,
    g: &Csr,
    w: &dyn DynamicWalk,
    kc: &WarpKernelCfg<'_>,
    per_kernel_ests: Option<(Option<f64>, Option<f64>)>,
    state: &WalkState,
) -> Option<usize> {
    match kc.strategy {
        SelectionStrategy::Only(id) => kc.candidates.iter().position(|c| c.sampler.id() == id),
        SelectionStrategy::Random => {
            // Uniform over the run's precomputed candidate set.
            if kc.candidates.is_empty() {
                return None;
            }
            Some(ctx.draw_u32(lane) as usize % kc.candidates.len())
        }
        SelectionStrategy::DegreeThreshold(t) => {
            let wanted = if deg >= t {
                Granularity::Lane
            } else {
                Granularity::Warp
            };
            kc.candidates
                .iter()
                .position(|c| c.sampler.granularity() == wanted)
                .or(if kc.candidates.is_empty() {
                    None
                } else {
                    Some(0)
                })
        }
        SelectionStrategy::CostModel => {
            let deg = deg as f64;
            let (max_est, sum_est) = match kc.compiled {
                // PER_KERNEL estimators were evaluated once at kernel
                // start — register-resident constants by §4.2, free here.
                Some(_) if per_kernel_ests.is_some() => {
                    per_kernel_ests.expect("guarded by is_some")
                }
                Some(c) => {
                    let env = RuntimeEnv {
                        graph: g,
                        aggregates: kc.aggregates,
                        workload: w,
                        state: *state,
                    };
                    // PER_STEP estimators read the per-node aggregates
                    // (h_MAX, h_SUM) at the lane's current node.
                    ctx.read_random(4);
                    ctx.read_random(4);
                    (c.max_estimator.eval(&env), c.sum_estimator.eval(&env))
                }
                None => (None, None),
            };
            ctx.alu(3 * kc.candidates.len().max(1) as u64);
            // The generalised Eq. 11 argmin, priced per candidate: a
            // resident artifact for this node swaps the strategy's step
            // cost for its (cheaper) state-serving cost plus the
            // churn-amortised update charge. Strict `<` keeps the earlier
            // candidate on ties, reproducing the paper's priority order.
            let inputs = kc.cost_model.inputs(deg, max_est, sum_est);
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in kc.candidates.iter().enumerate() {
                let stateful = c.node_state(state.cur).is_some();
                let (sample, update) = kc.cost_model.price(c.sampler.as_ref(), stateful, &inputs);
                let Some(total) = sample.map(|s| s + update) else {
                    continue;
                };
                if best.is_none_or(|(_, b)| total < b) {
                    best = Some((i, total));
                }
            }
            best.map(|(i, _)| i)
        }
    }
}

/// The eRJS upper bound for the lane's current node (§3.3). `row_start`,
/// `row_len` and `bytes_per_weight` are the kernel's hoisted invariants,
/// reused by the no-estimator fallback's exact max reduction.
#[allow(clippy::too_many_arguments)]
fn rjs_bound(
    ctx: &mut WarpCtx,
    g: &Csr,
    w: &dyn DynamicWalk,
    kc: &WarpKernelCfg<'_>,
    state: &WalkState,
    per_kernel_bound: Option<f64>,
    row_start: EdgeId,
    row_len: usize,
    bytes_per_weight: usize,
) -> Option<f32> {
    // Float-safety headroom: the estimator math is f64 while kernel weights
    // are f32; a hair of slack keeps "bound >= max" airtight.
    const SLACK: f64 = 1.0 + 1e-5;
    if let Some(b) = per_kernel_bound {
        return Some((b * SLACK) as f32);
    }
    if let Some(c) = kc.compiled {
        let env = RuntimeEnv {
            graph: g,
            aggregates: kc.aggregates,
            workload: w,
            state: *state,
        };
        // PER_STEP bounds read h_MAX[cur]; the estimator arithmetic is a
        // handful of register ops either way.
        if c.flag == flexi_compiler::BoundGranularity::PerStep {
            ctx.read_random(4);
        }
        ctx.alu(4);
        if let Some(b) = c.max_estimator.eval(&env) {
            return Some((b * SLACK) as f32);
        }
    }
    // No estimator: pay the exact max reduction (NextDoor's cost). Masked
    // edges weigh 0 in the kernel, so the reduction can mask them too and
    // stay a tight, sound bound.
    let m = with_row_view(
        g,
        w,
        kc.mask,
        state,
        row_start,
        row_len,
        bytes_per_weight,
        |view| warp_max_reduce(ctx, view),
    );
    (m > 0.0).then_some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{MetaPath, Node2Vec, SecondOrderPr, TemporalUniform, UniformWalk};
    use flexi_graph::{gen, props, CsrBuilder, WeightModel};
    use flexi_sampling::ids;
    use flexi_sampling::stat;

    fn small_graph() -> Csr {
        let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 11);
        WeightModel::UniformReal.apply(g, 11)
    }

    fn cfg(steps: usize) -> WalkConfig {
        WalkConfig {
            steps,
            record_paths: true,
            ..WalkConfig::default()
        }
    }

    fn run(
        engine: &FlexiWalkerEngine,
        g: &Csr,
        w: impl IntoWalker,
        queries: &[NodeId],
        c: &WalkConfig,
    ) -> Result<RunReport, EngineError> {
        WalkEngine::run(
            engine,
            &WalkRequest::new(g.clone(), w, queries).with_config(c.clone()),
        )
    }

    #[test]
    fn time_window_masks_walks_to_live_edges() {
        // 0→1 @5, 0→2 @10, 1→0 @6, 2→0 @12.
        let mut b = CsrBuilder::new(3);
        b.push_timestamped(0, 1, 1.0, 5);
        b.push_timestamped(0, 2, 1.0, 10);
        b.push_timestamped(1, 0, 1.0, 6);
        b.push_timestamped(2, 0, 1.0, 12);
        let g = b.build().unwrap();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries = [0u32; 8];
        let windowed = WalkEngine::run(
            &engine,
            &WalkRequest::new(g.clone(), &UniformWalk, &queries[..])
                .with_config(cfg(6))
                .window(TimeWindow::since(10)),
        )
        .unwrap();
        for path in windowed.paths.as_ref().unwrap() {
            assert!(!path.contains(&1), "edge @5 lies outside [10..): {path:?}");
        }
        // The same request without the window does reach node 1.
        let free = run(&engine, &g, &UniformWalk, &queries, &cfg(6)).unwrap();
        assert!(free.paths.as_ref().unwrap().iter().any(|p| p.contains(&1)));
    }

    #[test]
    fn temporal_walker_advances_the_clock_forward_only() {
        // 0→1 @10, then from 1: @5 (backwards, inadmissible) or @20.
        let mut b = CsrBuilder::new(4);
        b.push_timestamped(0, 1, 1.0, 10);
        b.push_timestamped(1, 2, 1.0, 5);
        b.push_timestamped(1, 3, 1.0, 20);
        let g = b.build().unwrap();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries = [0u32; 8];
        let report = run(&engine, &g, &TemporalUniform, &queries, &cfg(3)).unwrap();
        for path in report.paths.as_ref().unwrap() {
            assert_eq!(
                path,
                &vec![0, 1, 3],
                "after traversing @10 the clock forbids the @5 edge"
            );
        }
    }

    #[test]
    fn walks_have_requested_length_and_valid_edges() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries: Vec<NodeId> = (0..64).collect();
        let w = Node2Vec::paper(true);
        let report = run(&engine, &g, &w, &queries, &cfg(10)).unwrap();
        let paths = report.paths.as_ref().unwrap();
        assert_eq!(paths.len(), 64);
        for (q, path) in paths.iter().enumerate() {
            assert_eq!(path[0], queries[q]);
            assert!(path.len() <= 11, "path too long: {}", path.len());
            for pair in path.windows(2) {
                assert!(
                    g.has_edge(pair[0], pair[1]),
                    "walk used a non-edge {} -> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
        assert_eq!(report.queries, 64);
        assert!(report.steps_taken > 0);
        assert!(report.sim_seconds > 0.0);
        assert_eq!(report.sampler_steps.total(), report.steps_taken);
    }

    #[test]
    fn adaptive_engine_uses_both_kernels_on_mixed_graph() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries: Vec<NodeId> = (0..128u32).collect();
        let w = Node2Vec::paper(true);
        let report = run(&engine, &g, &w, &queries, &cfg(20)).unwrap();
        let rjs = report.sampler_steps.get(ids::ERJS);
        let rvs = report.sampler_steps.get(ids::ERVS);
        assert!(
            rjs > 0 && rvs > 0,
            "expected both kernels on an R-MAT graph: rjs {rjs} rvs {rvs}"
        );
    }

    #[test]
    fn forced_strategies_use_one_kernel() {
        let g = small_graph();
        let queries: Vec<NodeId> = (0..32u32).collect();
        let w = Node2Vec::paper(true);
        let rvs_engine =
            FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), SelectionStrategy::RVS_ONLY);
        let rvs = run(&rvs_engine, &g, &w, &queries, &cfg(10)).unwrap();
        assert_eq!(rvs.sampler_steps.get(ids::ERJS), 0);
        assert!(rvs.sampler_steps.get(ids::ERVS) > 0);
        let rjs_engine =
            FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), SelectionStrategy::RJS_ONLY);
        let rjs = run(&rjs_engine, &g, &w, &queries, &cfg(10)).unwrap();
        assert_eq!(rjs.sampler_steps.get(ids::ERVS), 0);
        assert!(rjs.sampler_steps.get(ids::ERJS) > 0);
    }

    #[test]
    fn single_step_distribution_matches_exact_sampling() {
        // Star graph: 0 -> {1..6} with distinct weights; one walk step from
        // node 0 must follow p = w̃/Σw̃. Repeat over many seeds.
        let mut b = CsrBuilder::new(7);
        let weights = [3.0f32, 2.0, 4.0, 1.0, 0.5, 2.5];
        for (i, &wgt) in weights.iter().enumerate() {
            b.push_weighted(0, (i + 1) as u32, wgt);
        }
        let g = b.build().unwrap();
        let w = UniformWalk;
        let mut counts = vec![0u64; 6];
        for seed in 0..6000u64 {
            let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
            let mut c = cfg(1);
            c.seed = seed;
            let report = run(&engine, &g, &w, &[0], &c).unwrap();
            let path = &report.paths.as_ref().unwrap()[0];
            assert_eq!(path.len(), 2);
            counts[(path[1] - 1) as usize] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&weights), "engine 1-step");
    }

    #[test]
    fn rjs_and_rvs_modes_draw_from_same_distribution() {
        // Forced eRJS and forced eRVS must both produce the target
        // distribution (the selection cannot change walk semantics).
        let mut b = CsrBuilder::new(5);
        let weights = [1.0f32, 2.0, 3.0, 4.0];
        for (i, &wgt) in weights.iter().enumerate() {
            b.push_weighted(0, (i + 1) as u32, wgt);
        }
        let g = b.build().unwrap();
        let w = UniformWalk;
        for strategy in [SelectionStrategy::RJS_ONLY, SelectionStrategy::RVS_ONLY] {
            let mut counts = vec![0u64; 4];
            for seed in 0..5000u64 {
                let engine = FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), strategy);
                let mut c = cfg(1);
                c.seed = seed;
                let report = run(&engine, &g, &w, &[0], &c).unwrap();
                let path = &report.paths.as_ref().unwrap()[0];
                counts[(path[1] - 1) as usize] += 1;
            }
            stat::assert_matches_distribution(
                &counts,
                &stat::normalize(&weights),
                &format!("{strategy:?}"),
            );
        }
    }

    #[test]
    fn node2vec_never_violates_transition_support() {
        // With b tiny, distance-2 moves dominate, but every move must still
        // be a real edge; with MetaPath, every move must match the schema.
        let g = small_graph();
        let g = props::assign_uniform_labels(g, 5, 3);
        let w = MetaPath::paper(true);
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries: Vec<NodeId> = (0..128u32).collect();
        let report = run(&engine, &g, &w, &queries, &cfg(5)).unwrap();
        for path in report.paths.as_ref().unwrap() {
            for (step, pair) in path.windows(2).enumerate() {
                // The traversed edge must carry the schema label.
                let r = g.edge_range(pair[0]);
                let found = r
                    .clone()
                    .any(|e| g.edge_target(e) == pair[1] && g.label(e) == w.wanted_label(step));
                assert!(
                    found,
                    "step {step} violated schema: {} -> {}",
                    pair[0], pair[1]
                );
            }
        }
    }

    #[test]
    fn metapath_uses_schema_depth() {
        let g = props::assign_uniform_labels(small_graph(), 5, 3);
        let w = MetaPath::paper(false);
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let report = run(&engine, &g, &w, &[0, 1, 2], &cfg(80)).unwrap();
        for path in report.paths.as_ref().unwrap() {
            assert!(path.len() <= 6, "MetaPath must stop at schema depth");
        }
    }

    #[test]
    fn sink_start_terminates_immediately() {
        let g = CsrBuilder::new(2).edge(0, 1).build().unwrap();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let w = UniformWalk;
        let report = run(&engine, &g, &w, &[1], &cfg(10)).unwrap();
        assert_eq!(report.paths.as_ref().unwrap()[0], vec![1]);
        assert_eq!(report.steps_taken, 0);
    }

    #[test]
    fn empty_query_set_is_ok() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let report = run(&engine, &g, &Node2Vec::paper(true), &[], &cfg(10)).unwrap();
        assert_eq!(report.queries, 0);
        assert_eq!(report.steps_taken, 0);
    }

    #[test]
    fn graph_larger_than_vram_is_oom() {
        let g = small_graph();
        let mut spec = DeviceSpec::tiny();
        spec.vram_bytes = 16; // Absurdly small.
        let engine = FlexiWalkerEngine::new(spec);
        let err = run(&engine, &g, &Node2Vec::paper(true), &[0], &cfg(1)).unwrap_err();
        assert!(matches!(err, EngineError::OutOfMemory { .. }));
    }

    #[test]
    fn tiny_time_budget_is_oot() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let mut c = cfg(80);
        c.time_budget = 1e-12;
        let queries: Vec<NodeId> = (0..64u32).collect();
        let err = run(&engine, &g, &Node2Vec::paper(true), &queries, &c).unwrap_err();
        assert!(matches!(err, EngineError::OutOfTime { .. }));
    }

    #[test]
    fn parallel_hosts_produce_identical_paths() {
        // Per-query RNG streams make paths placement-independent: the same
        // request at 1 and 4 host threads is bit-identical.
        let g = small_graph();
        let queries: Vec<NodeId> = (0..96u32).collect();
        let w = SecondOrderPr::paper();
        let mut c1 = cfg(10);
        c1.record_paths = true;
        let seq = run(
            &FlexiWalkerEngine::new(DeviceSpec::tiny()),
            &g,
            &w,
            &queries,
            &c1,
        )
        .unwrap();
        let mut c2 = c1.clone();
        c2.host_threads = 4;
        let par = run(
            &FlexiWalkerEngine::new(DeviceSpec::tiny()),
            &g,
            &w,
            &queries,
            &c2,
        )
        .unwrap();
        assert_eq!(seq.queries, par.queries);
        assert_eq!(seq.paths, par.paths);
        assert_eq!(seq.steps_taken, par.steps_taken);
    }

    #[test]
    fn batch_split_produces_identical_paths() {
        // The engine-level half of the session guarantee: running queries
        // [0, N) in one request equals two requests of [0, N/2) and
        // [N/2, N) with matching offsets.
        let g = small_graph();
        let queries: Vec<NodeId> = (0..64u32).collect();
        let w = Node2Vec::paper(true);
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let c = cfg(12);
        let whole = WalkEngine::run(
            &engine,
            &WalkRequest::new(g.clone(), &w, &queries).with_config(c.clone()),
        )
        .unwrap();
        let first = WalkEngine::run(
            &engine,
            &WalkRequest::new(g.clone(), &w, &queries[..32]).with_config(c.clone()),
        )
        .unwrap();
        let second = WalkEngine::run(
            &engine,
            &WalkRequest::new(g.clone(), &w, &queries[32..])
                .with_config(c.clone())
                .query_offset(32),
        )
        .unwrap();
        let whole_paths = whole.paths.as_ref().unwrap();
        let mut split_paths = first.paths.clone().unwrap();
        split_paths.extend(second.paths.clone().unwrap());
        assert_eq!(whole_paths, &split_paths);
    }

    #[test]
    fn prepared_state_reuse_matches_fresh_runs() {
        let g = small_graph();
        let queries: Vec<NodeId> = (0..48u32).collect();
        let w = Node2Vec::paper(true);
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let c = cfg(10);
        let req = WalkRequest::new(g.clone(), &w, &queries).with_config(c.clone());
        let walker = Arc::clone(req.walker.get().unwrap());
        let prepared = engine.prepare(&g, &walker, c.seed);
        let cached = engine.run_with(&req, &prepared).unwrap();
        let fresh = WalkEngine::run(&engine, &req).unwrap();
        assert_eq!(cached.paths, fresh.paths);
        assert_eq!(cached.sampler_steps, fresh.sampler_steps);
    }

    #[test]
    fn named_requests_resolve_through_the_engine_registry() {
        // The four built-ins are ordinary registry entries; a request can
        // address them by name and must match the struct-built run bitwise.
        let g = small_graph();
        let queries: Vec<NodeId> = (0..32u32).collect();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let by_name = run(&engine, &g, "node2vec", &queries, &cfg(8)).unwrap();
        let by_struct = run(&engine, &g, &Node2Vec::paper(true), &queries, &cfg(8)).unwrap();
        assert_eq!(by_name.paths, by_struct.paths);
        assert_eq!(by_name.sampler_steps, by_struct.sampler_steps);
        // Unknown names are typed run errors, not panics.
        let err = run(&engine, &g, "no-such-walker", &queries, &cfg(2)).unwrap_err();
        assert!(matches!(err, EngineError::UnknownWalker { .. }));
    }

    #[test]
    fn custom_sampler_is_selectable_and_reported() {
        // A third-party strategy registered via the registry must win the
        // cost-model selection and appear in the report under its own id.
        use flexi_sampling::{CostInputs, ScalarCost};
        #[derive(Debug)]
        struct ToySampler;
        impl Sampler for ToySampler {
            fn id(&self) -> SamplerId {
                "toy"
            }
            fn granularity(&self) -> Granularity {
                Granularity::Warp
            }
            fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
                Some(inp.deg * 1e-3) // Undercut everything.
            }
            fn sample_warp(&self, ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
                // Exact linear-CDF sample, charged as one coalesced pass.
                ctx.read_coalesced(view.deg * view.bytes_per_weight);
                let total: f64 = (0..view.deg)
                    .map(|i| f64::from((view.weight)(i).max(0.0)))
                    .sum();
                if total <= 0.0 {
                    return None;
                }
                let mut target = ctx.draw_f64(0) * total;
                for i in 0..view.deg {
                    let wi = f64::from((view.weight)(i).max(0.0));
                    if wi <= 0.0 {
                        continue;
                    }
                    target -= wi;
                    if target <= 0.0 {
                        return Some(i);
                    }
                }
                (0..view.deg).rev().find(|&i| (view.weight)(i) > 0.0)
            }
            fn sample_scalar(
                &self,
                weights: &[f32],
                _bound: Option<f32>,
                rng: &mut dyn flexi_rng::RandomSource,
            ) -> (Option<usize>, ScalarCost) {
                flexi_sampling::scalar::sample_linear_cdf(weights, &mut { rng })
            }
        }

        let g = small_graph();
        let mut engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        engine.register_sampler(Arc::new(ToySampler));
        let queries: Vec<NodeId> = (0..64u32).collect();
        let report = run(&engine, &g, &Node2Vec::paper(true), &queries, &cfg(10)).unwrap();
        assert!(
            report.sampler_steps.get("toy") > 0,
            "toy sampler never selected: {}",
            report.sampler_steps
        );
        assert_eq!(report.sampler_steps.total(), report.steps_taken);
        for path in report.paths.as_ref().unwrap() {
            for pair in path.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn wholly_unpriceable_registry_terminates_instead_of_spinning() {
        // A registry whose only strategy can never be priced must not hang
        // the warp loop: walks terminate with zero steps.
        use flexi_sampling::{CostInputs, ScalarCost};
        #[derive(Debug)]
        struct Unpriceable;
        impl Sampler for Unpriceable {
            fn id(&self) -> SamplerId {
                "unpriceable"
            }
            fn granularity(&self) -> Granularity {
                Granularity::Warp
            }
            fn step_cost(&self, _inp: &CostInputs) -> Option<f64> {
                None
            }
            fn sample_warp(&self, _ctx: &mut WarpCtx, _view: &NeighborView<'_>) -> Option<usize> {
                unreachable!("never selected")
            }
            fn sample_scalar(
                &self,
                _w: &[f32],
                _b: Option<f32>,
                _r: &mut dyn flexi_rng::RandomSource,
            ) -> (Option<usize>, ScalarCost) {
                (None, ScalarCost::default())
            }
        }
        let g = small_graph();
        let mut registry = SamplerRegistry::empty();
        registry.register(Arc::new(Unpriceable));
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny()).with_registry(registry);
        let queries: Vec<NodeId> = (0..8u32).collect();
        let report = run(&engine, &g, &Node2Vec::paper(true), &queries, &cfg(5)).unwrap();
        assert_eq!(report.queries, 8);
        assert_eq!(report.steps_taken, 0, "no strategy was runnable");
        for (q, path) in report.paths.as_ref().unwrap().iter().enumerate() {
            assert_eq!(path, &vec![queries[q]]);
        }
    }

    #[test]
    fn sampler_tally_equality_ignores_recording_order() {
        let mut a = SamplerTally::new();
        a.record(ids::ERVS, 5);
        a.record(ids::ERJS, 2);
        let mut b = SamplerTally::new();
        b.record(ids::ERJS, 2);
        b.record(ids::ERVS, 5);
        assert_eq!(a, b);
        b.record("toy", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn unknown_forced_sampler_is_unsupported() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::with_strategy(
            DeviceSpec::tiny(),
            SelectionStrategy::Only("no-such-sampler"),
        );
        let err = run(&engine, &g, &Node2Vec::paper(true), &[0], &cfg(1)).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }

    #[test]
    fn fallback_mode_honours_bound_free_custom_only_strategy() {
        // An unanalyzable workload must NOT override an explicit Only() of
        // a strategy that never needed a bound estimator.
        use crate::workload::UniformWalk;
        use flexi_compiler::WalkSpec;
        use flexi_graph::EdgeId;
        use flexi_sampling::{CostInputs, ScalarCost};

        // UniformWalk semantics with a DSL source the compiler rejects.
        #[derive(Clone, Copy)]
        struct Hostile;
        impl DynamicWalk for Hostile {
            fn name(&self) -> &str {
                "hostile"
            }
            fn weight(&self, g: &Csr, st: &WalkState, edge: EdgeId) -> f32 {
                UniformWalk.weight(g, st, edge)
            }
            fn spec(&self) -> WalkSpec {
                WalkSpec {
                    source: "get_weight(edge) { x = 0; while (x < h[edge]) { x = x + 1; } \
                             return x; }"
                        .to_string(),
                    hyperparams: vec![],
                }
            }
        }

        #[derive(Debug)]
        struct Cdf;
        impl Sampler for Cdf {
            fn id(&self) -> SamplerId {
                "cdf"
            }
            fn granularity(&self) -> Granularity {
                Granularity::Warp
            }
            fn step_cost(&self, inp: &CostInputs) -> Option<f64> {
                Some(inp.deg)
            }
            fn sample_warp(&self, ctx: &mut WarpCtx, view: &NeighborView<'_>) -> Option<usize> {
                ctx.read_coalesced(view.deg * view.bytes_per_weight);
                let total: f64 = (0..view.deg)
                    .map(|i| f64::from((view.weight)(i).max(0.0)))
                    .sum();
                if total <= 0.0 {
                    return None;
                }
                let mut target = ctx.draw_f64(0) * total;
                for i in 0..view.deg {
                    target -= f64::from((view.weight)(i).max(0.0));
                    if target <= 0.0 && (view.weight)(i) > 0.0 {
                        return Some(i);
                    }
                }
                (0..view.deg).rev().find(|&i| (view.weight)(i) > 0.0)
            }
            fn sample_scalar(
                &self,
                weights: &[f32],
                _bound: Option<f32>,
                rng: &mut dyn flexi_rng::RandomSource,
            ) -> (Option<usize>, ScalarCost) {
                flexi_sampling::scalar::sample_linear_cdf(weights, &mut { rng })
            }
        }

        let g = small_graph();
        let mut engine =
            FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), SelectionStrategy::Only("cdf"));
        engine.register_sampler(Arc::new(Cdf));
        let queries: Vec<NodeId> = (0..16u32).collect();
        let report = run(&engine, &g, &Hostile, &queries, &cfg(5)).unwrap();
        assert_eq!(
            report.sampler_steps.get("cdf"),
            report.sampler_steps.total(),
            "compiler fallback overrode a bound-free Only strategy: {}",
            report.sampler_steps
        );
        assert!(report.sampler_steps.get("cdf") > 0);
    }

    #[test]
    fn sampler_tally_merge_and_display() {
        let mut a = SamplerTally::new();
        a.record(ids::ERVS, 5);
        a.record(ids::ERJS, 2);
        let mut b = SamplerTally::new();
        b.record(ids::ERVS, 1);
        b.record("toy", 3);
        a.merge(&b);
        assert_eq!(a.get(ids::ERVS), 6);
        assert_eq!(a.get(ids::ERJS), 2);
        assert_eq!(a.get("toy"), 3);
        assert_eq!(a.get("absent"), 0);
        assert_eq!(a.total(), 11);
        assert_eq!(a.to_string(), "ervs: 6, erjs: 2, toy: 3");
    }

    #[test]
    fn report_energy_math() {
        let r = RunReport {
            engine: "x",
            graph_version: GraphVersion::default(),
            sim_seconds: 2.0,
            saturated_seconds: 2.0,
            stats: CostStats::default(),
            queries: 4,
            steps_taken: 0,
            paths: None,
            sampler_steps: SamplerTally::new(),
            sampler_state_builds: 0,
            sampler_state_hits: 0,
            profile_seconds: 0.0,
            preprocess_seconds: 0.0,
            warnings: vec![],
            watts: 100.0,
            shards: None,
            blocks: None,
        };
        assert_eq!(r.joules(), 200.0);
        assert_eq!(r.joules_per_query(), 50.0);
    }

    #[test]
    fn profile_and_preprocess_overhead_reported() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries: Vec<NodeId> = (0..32u32).collect();
        let report = run(&engine, &g, &Node2Vec::paper(true), &queries, &cfg(10)).unwrap();
        assert!(report.profile_seconds > 0.0, "profiling ran");
        assert!(report.preprocess_seconds > 0.0, "preprocess ran");
        // Overheads stay well below the main walk (Table 3's claim).
        assert!(report.profile_seconds + report.preprocess_seconds < report.sim_seconds);
    }
}
