//! The FlexiWalker execution engine (paper §5).
//!
//! One persistent warp kernel interleaves the two optimised samplers:
//! every lane owns a walk query (thread-granular eRJS trials), and when a
//! ballot finds lanes that chose reservoir sampling the whole warp executes
//! eRVS for those lanes one at a time (warp-granular), sharing query
//! parameters through shuffles — the §5.2 design. Queries are pulled from
//! the §5.3 atomic queue, and every step consults Flexi-Runtime for the
//! sampler choice.

use crate::preprocess::Aggregates;
use crate::profile::run_profile;
use crate::queue::QueryQueue;
use crate::runtime::{CostModel, RuntimeEnv, SamplerChoice, SelectionStrategy};
use crate::workload::{DynamicWalk, WalkState};
use flexi_compiler::{compile, CompileOutcome, CompiledWalk};
use flexi_gpu_sim::{CostStats, Device, DeviceSpec, WarpCtx, WARP_SIZE};
use flexi_graph::{Csr, NodeId};
use flexi_sampling::kernels::{lane_rejection, warp_ervs, warp_max_reduce, ErvsMode, NeighborView};

/// Default simulated-time budget (the paper's 12-hour OOT cutoff).
pub const DEFAULT_TIME_BUDGET: f64 = 12.0 * 3600.0;

/// Run configuration shared by every engine.
#[derive(Clone, Debug)]
pub struct WalkConfig {
    /// Steps per walk (the paper uses 80; MetaPath overrides to its schema
    /// depth via [`DynamicWalk::preferred_steps`]).
    pub steps: usize,
    /// Whether to materialise full walk paths in the report.
    pub record_paths: bool,
    /// Simulated-seconds budget; exceeding it is an OOT (paper §6.1).
    pub time_budget: f64,
    /// Host threads for warp execution (1 = deterministic).
    pub host_threads: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            steps: 80,
            record_paths: false,
            time_budget: DEFAULT_TIME_BUDGET,
            host_threads: 1,
            seed: 0x5EED,
        }
    }
}

/// Errors every engine can report (the paper's OOM / OOT / unsupported
/// table entries).
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Device memory exhausted.
    OutOfMemory {
        /// Bytes the failing allocation requested.
        requested: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// Simulated time exceeded the budget.
    OutOfTime {
        /// The exceeded budget in simulated seconds.
        budget_secs: f64,
    },
    /// The engine cannot run this workload at all.
    Unsupported(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfMemory {
                requested,
                available,
            } => write!(f, "OOM (requested {requested} B, available {available} B)"),
            Self::OutOfTime { budget_secs } => write!(f, "OOT (budget {budget_secs} s)"),
            Self::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Engine name.
    pub engine: &'static str,
    /// Main walk time in simulated seconds (excludes profile/preprocess,
    /// which the paper reports separately in Table 3).
    pub sim_seconds: f64,
    /// Walk time under full device saturation: aggregate warp work divided
    /// by total device parallelism. Equals `sim_seconds` for saturated
    /// launches and for CPU engines; the harness extrapolates from this so
    /// an underfilled test launch does not penalise a device that would be
    /// full at paper scale.
    pub saturated_seconds: f64,
    /// Device activity of the main walk.
    pub stats: CostStats,
    /// Number of walk queries processed.
    pub queries: usize,
    /// Total steps taken across all walks.
    pub steps_taken: u64,
    /// Full paths (only when [`WalkConfig::record_paths`]).
    pub paths: Option<Vec<Vec<NodeId>>>,
    /// Steps that ran eRJS.
    pub chosen_rjs: u64,
    /// Steps that ran eRVS.
    pub chosen_rvs: u64,
    /// Profiling time (Table 3).
    pub profile_seconds: f64,
    /// Preprocessing time (Table 3).
    pub preprocess_seconds: f64,
    /// Compiler / runtime warnings.
    pub warnings: Vec<String>,
    /// Board power under load (energy model input, Fig. 16).
    pub watts: f64,
}

impl RunReport {
    /// Energy of the main walk phase in joules.
    ///
    /// Uses the saturated time: load watts apply when the device is busy.
    pub fn joules(&self) -> f64 {
        self.watts * self.saturated_seconds
    }

    /// Joules per query (Fig. 16's metric).
    pub fn joules_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.joules() / self.queries as f64
        }
    }
}

/// Uniform interface over FlexiWalker and every baseline system.
pub trait WalkEngine: Sync {
    /// Engine name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Runs `queries` walks of workload `w` over `g`.
    ///
    /// # Errors
    ///
    /// [`EngineError::OutOfMemory`] / [`EngineError::OutOfTime`] /
    /// [`EngineError::Unsupported`] mirror the paper's OOM/OOT/`-` table
    /// entries.
    fn run(
        &self,
        g: &Csr,
        w: &dyn DynamicWalk,
        queries: &[NodeId],
        cfg: &WalkConfig,
    ) -> Result<RunReport, EngineError>;
}

/// The FlexiWalker engine: compile → preprocess → profile → adaptive walk.
#[derive(Clone, Debug)]
pub struct FlexiWalkerEngine {
    spec: DeviceSpec,
    /// Sampler-selection strategy (Fig. 13 compares these).
    pub strategy: SelectionStrategy,
    /// Skip the profiling kernels and use the default cost ratio.
    pub skip_profile: bool,
    /// Pin the cost model's `EdgeCost_RJS / EdgeCost_RVS` ratio instead of
    /// profiling it (ratio-sensitivity ablations).
    pub cost_ratio_override: Option<f64>,
    /// eRVS optimisation stage (the Fig. 12a ablation axis; `ExpJump` is
    /// the full kernel).
    pub ervs_mode: ErvsMode,
}

impl FlexiWalkerEngine {
    /// FlexiWalker with the paper's cost-model selection.
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            spec,
            strategy: SelectionStrategy::CostModel,
            skip_profile: false,
            cost_ratio_override: None,
            ervs_mode: ErvsMode::ExpJump,
        }
    }

    /// FlexiWalker with an explicit selection strategy (ablations).
    pub fn with_strategy(spec: DeviceSpec, strategy: SelectionStrategy) -> Self {
        Self {
            spec,
            strategy,
            skip_profile: false,
            cost_ratio_override: None,
            ervs_mode: ErvsMode::ExpJump,
        }
    }

    /// The device specification in use.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }
}

#[derive(Debug)]
struct Lane {
    query: usize,
    state: WalkState,
    path: Vec<NodeId>,
    steps_taken: u64,
}

/// Per-warp kernel output.
#[derive(Debug, Default)]
struct WarpOut {
    finished: Vec<(usize, Vec<NodeId>, u64)>,
    rjs: u64,
    rvs: u64,
}

impl WalkEngine for FlexiWalkerEngine {
    fn name(&self) -> &'static str {
        "FlexiWalker"
    }

    fn run(
        &self,
        g: &Csr,
        w: &dyn DynamicWalk,
        queries: &[NodeId],
        cfg: &WalkConfig,
    ) -> Result<RunReport, EngineError> {
        let mut warnings = Vec::new();

        // Compile-time workflow (Flexi-Compiler).
        let compiled: Option<CompiledWalk> = match compile(&w.spec()) {
            Ok(CompileOutcome::Supported(c)) => {
                warnings.extend(c.warnings.clone());
                Some(*c)
            }
            Ok(CompileOutcome::Fallback {
                warnings: fallback_warnings,
            }) => {
                warnings.extend(fallback_warnings);
                None
            }
            Err(e) => {
                warnings.push(format!("compile error: {e}; running eRVS-only"));
                None
            }
        };

        // Effective strategy: compiler fallback forces eRVS-only (§7.1).
        let strategy = if compiled.is_none() {
            SelectionStrategy::RvsOnly
        } else {
            self.strategy
        };

        let device = Device::new(self.spec.clone());
        device
            .pool()
            .try_alloc(g.memory_bytes())
            .map_err(|e| match e {
                flexi_gpu_sim::SimError::OutOfMemory {
                    requested,
                    available,
                } => EngineError::OutOfMemory {
                    requested,
                    available,
                },
            })?;

        // Runtime workflow: preprocess + profile.
        let aggregates = match &compiled {
            Some(c) if !c.preprocess.is_empty() => {
                Aggregates::compute(g, &c.preprocess, &self.spec)
            }
            _ => Aggregates::default(),
        };
        let profile = if self.skip_profile || self.cost_ratio_override.is_some() {
            None
        } else {
            Some(run_profile(&device, g, w.bytes_per_weight(g), cfg.seed))
        };
        let cost_model = match self.cost_ratio_override {
            Some(edge_cost_ratio) => CostModel { edge_cost_ratio },
            None => profile
                .as_ref()
                .map_or(CostModel::default_ratio(), |p| p.cost_model()),
        };

        let steps = w.preferred_steps().unwrap_or(cfg.steps);
        let queue = QueryQueue::new(queries.len());
        let slots = self.spec.total_warp_slots();
        let num_warps = queries.len().div_ceil(WARP_SIZE).min(slots).max(1);

        let ervs_mode = self.ervs_mode;
        let kernel = |ctx: &mut WarpCtx| {
            walk_warp(
                ctx,
                g,
                w,
                compiled.as_ref(),
                &aggregates,
                &queue,
                queries,
                steps,
                cfg.record_paths,
                strategy,
                cost_model,
                ervs_mode,
            )
        };
        let launch = if cfg.host_threads > 1 {
            device.launch_parallel(num_warps, cfg.host_threads, cfg.seed, kernel)
        } else {
            device.launch(num_warps, cfg.seed, kernel)
        };

        if launch.sim_seconds > cfg.time_budget {
            return Err(EngineError::OutOfTime {
                budget_secs: cfg.time_budget,
            });
        }

        let mut chosen_rjs = 0;
        let mut chosen_rvs = 0;
        let mut steps_taken = 0;
        let mut paths = cfg
            .record_paths
            .then(|| vec![Vec::new(); queries.len()]);
        for out in &launch.outputs {
            chosen_rjs += out.rjs;
            chosen_rvs += out.rvs;
            for (q, path, s) in &out.finished {
                steps_taken += s;
                if let Some(paths) = &mut paths {
                    paths[*q] = path.clone();
                }
            }
        }

        let saturated_seconds = self
            .spec
            .saturated_seconds(&launch.stats)
            .min(launch.sim_seconds);
        Ok(RunReport {
            engine: self.name(),
            sim_seconds: launch.sim_seconds,
            saturated_seconds,
            stats: launch.stats,
            queries: queries.len(),
            steps_taken,
            paths,
            chosen_rjs,
            chosen_rvs,
            profile_seconds: profile.as_ref().map_or(0.0, |p| p.sim_seconds),
            preprocess_seconds: aggregates.sim_seconds,
            warnings,
            watts: self.spec.load_watts,
        })
    }
}

/// The §5.2 concurrent kernel body for one warp.
#[allow(clippy::too_many_arguments)]
fn walk_warp(
    ctx: &mut WarpCtx,
    g: &Csr,
    w: &dyn DynamicWalk,
    compiled: Option<&CompiledWalk>,
    aggregates: &Aggregates,
    queue: &QueryQueue,
    queries: &[NodeId],
    steps: usize,
    record_paths: bool,
    strategy: SelectionStrategy,
    cost_model: CostModel,
    ervs_mode: ErvsMode,
) -> WarpOut {
    let mut out = WarpOut::default();
    let bytes_per_weight = w.bytes_per_weight(g);
    let mut lanes: [Option<Lane>; WARP_SIZE] = std::array::from_fn(|_| None);

    // PER_KERNEL bounds are estimated once (§4.2 flag semantics).
    let per_kernel_bound: Option<f64> = compiled.and_then(|c| {
        if c.flag == flexi_compiler::BoundGranularity::PerKernel {
            let env = RuntimeEnv {
                graph: g,
                aggregates,
                workload: w,
                state: WalkState::start(0),
            };
            ctx.alu(4);
            c.max_estimator.eval(&env)
        } else {
            None
        }
    });

    loop {
        // Refill idle lanes from the global queue (§5.3).
        let mut any_active = false;
        for lane_slot in lanes.iter_mut() {
            if lane_slot.is_none() {
                ctx.atomic();
                if let Some(q) = queue.pop() {
                    let start = queries[q];
                    let mut path = Vec::new();
                    if record_paths {
                        path.push(start);
                    }
                    *lane_slot = Some(Lane {
                        query: q,
                        state: WalkState::start(start),
                        path,
                        steps_taken: 0,
                    });
                }
            }
            any_active |= lane_slot.is_some();
        }
        if !any_active {
            break;
        }

        // Retire finished walks and pick a sampler for the rest.
        let mut choice: [Option<SamplerChoice>; WARP_SIZE] = [None; WARP_SIZE];
        for (l, lane_slot) in lanes.iter_mut().enumerate() {
            let Some(lane) = lane_slot else { continue };
            let deg = g.degree(lane.state.cur);
            if lane.state.step >= steps || deg == 0 {
                let lane = lane_slot.take().expect("checked Some");
                out.finished.push((lane.query, lane.path, lane.steps_taken));
                continue;
            }
            choice[l] = Some(select_sampler(
                ctx,
                l,
                g,
                w,
                compiled,
                aggregates,
                &lane.state,
                strategy,
                cost_model,
            ));
        }

        // Phase 1: rejection lanes run thread-granular trials.
        for l in 0..WARP_SIZE {
            if choice[l] != Some(SamplerChoice::Rjs) {
                continue;
            }
            let lane = lanes[l].as_mut().expect("choice implies lane");
            let state = lane.state;
            let bound = rjs_bound(ctx, g, w, compiled, aggregates, &state, per_kernel_bound);
            let range = g.edge_range(state.cur);
            let wf = |i: usize| w.weight(g, &state, range.start + i);
            let view = NeighborView::new(&wf, range.len(), bytes_per_weight);
            let picked = match bound {
                Some(b) => lane_rejection(ctx, l, &view, b).0,
                None => None,
            };
            out.rjs += 1;
            advance_lane(&mut lanes[l], picked, g, record_paths, &mut out);
        }

        // Ballot: does any lane need warp-granular reservoir sampling?
        let mut preds = [false; WARP_SIZE];
        for (l, p) in preds.iter_mut().enumerate() {
            *p = choice[l] == Some(SamplerChoice::Rvs);
        }
        let mask = ctx.ballot(&preds);
        if mask != 0 {
            // Phase 2: the whole warp cooperates on each RVS lane in turn,
            // sharing the query parameters via shuffles (§5.2).
            #[allow(clippy::needless_range_loop)]
            for l in 0..WARP_SIZE {
                if mask & (1 << l) == 0 {
                    continue;
                }
                let lane = lanes[l].as_mut().expect("mask implies lane");
                let state = lane.state;
                let dummy = [0u32; WARP_SIZE];
                ctx.shfl(&dummy, l); // Broadcast target node.
                ctx.shfl(&dummy, l); // Broadcast step/query id.
                let range = g.edge_range(state.cur);
                let wf = |i: usize| w.weight(g, &state, range.start + i);
                let view = NeighborView::new(&wf, range.len(), bytes_per_weight);
                let picked = warp_ervs(ctx, &view, ervs_mode);
                out.rvs += 1;
                advance_lane(&mut lanes[l], picked, g, record_paths, &mut out);
            }
        }
    }
    out
}

/// Applies a sampled neighbor index (or dead end) to a lane.
fn advance_lane(
    lane_slot: &mut Option<Lane>,
    picked: Option<usize>,
    g: &Csr,
    record_paths: bool,
    out: &mut WarpOut,
) {
    let lane = lane_slot.as_mut().expect("advance on empty lane");
    match picked {
        Some(i) => {
            let next = g.neighbor(lane.state.cur, i);
            lane.state.advance(next);
            lane.steps_taken += 1;
            if record_paths {
                lane.path.push(next);
            }
        }
        None => {
            // Dead end (all weights zero): the walk terminates here.
            let lane = lane_slot.take().expect("checked Some");
            out.finished.push((lane.query, lane.path, lane.steps_taken));
        }
    }
}

/// Flexi-Runtime's per-step selection, with cost accounting.
#[allow(clippy::too_many_arguments)]
fn select_sampler(
    ctx: &mut WarpCtx,
    lane: usize,
    g: &Csr,
    w: &dyn DynamicWalk,
    compiled: Option<&CompiledWalk>,
    aggregates: &Aggregates,
    state: &WalkState,
    strategy: SelectionStrategy,
    cost_model: CostModel,
) -> SamplerChoice {
    match strategy {
        SelectionStrategy::RvsOnly => SamplerChoice::Rvs,
        SelectionStrategy::RjsOnly => SamplerChoice::Rjs,
        SelectionStrategy::Random => {
            if ctx.draw_u32(lane) & 1 == 0 {
                SamplerChoice::Rjs
            } else {
                SamplerChoice::Rvs
            }
        }
        SelectionStrategy::DegreeThreshold(t) => {
            if g.degree(state.cur) >= t {
                SamplerChoice::Rjs
            } else {
                SamplerChoice::Rvs
            }
        }
        SelectionStrategy::CostModel => {
            let Some(c) = compiled else {
                return SamplerChoice::Rvs;
            };
            let env = RuntimeEnv {
                graph: g,
                aggregates,
                workload: w,
                state: *state,
            };
            // PER_STEP estimators read the per-node aggregates (h_MAX,
            // h_SUM); PER_KERNEL estimators are register-resident constants
            // plus the degree, which the lane already holds (§4.2).
            if c.flag == flexi_compiler::BoundGranularity::PerStep {
                ctx.read_random(4);
                ctx.read_random(4);
            }
            ctx.alu(6);
            let max_est = c.max_estimator.eval(&env);
            let sum_est = c.sum_estimator.eval(&env);
            cost_model.choose(max_est, sum_est)
        }
    }
}

/// The eRJS upper bound for the lane's current node (§3.3).
fn rjs_bound(
    ctx: &mut WarpCtx,
    g: &Csr,
    w: &dyn DynamicWalk,
    compiled: Option<&CompiledWalk>,
    aggregates: &Aggregates,
    state: &WalkState,
    per_kernel_bound: Option<f64>,
) -> Option<f32> {
    // Float-safety headroom: the estimator math is f64 while kernel weights
    // are f32; a hair of slack keeps "bound >= max" airtight.
    const SLACK: f64 = 1.0 + 1e-5;
    if let Some(b) = per_kernel_bound {
        return Some((b * SLACK) as f32);
    }
    if let Some(c) = compiled {
        let env = RuntimeEnv {
            graph: g,
            aggregates,
            workload: w,
            state: *state,
        };
        // PER_STEP bounds read h_MAX[cur]; the estimator arithmetic is a
        // handful of register ops either way.
        if c.flag == flexi_compiler::BoundGranularity::PerStep {
            ctx.read_random(4);
        }
        ctx.alu(4);
        if let Some(b) = c.max_estimator.eval(&env) {
            return Some((b * SLACK) as f32);
        }
    }
    // No estimator: pay the exact max reduction (NextDoor's cost).
    let range = g.edge_range(state.cur);
    let wf = |i: usize| w.weight(g, state, range.start + i);
    let view = NeighborView::new(&wf, range.len(), w.bytes_per_weight(g));
    let m = warp_max_reduce(ctx, &view);
    (m > 0.0).then_some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{MetaPath, Node2Vec, SecondOrderPr, UniformWalk};
    use flexi_graph::{gen, props, CsrBuilder, WeightModel};
    use flexi_sampling::stat;

    fn small_graph() -> Csr {
        let g = gen::rmat(8, 2048, gen::RmatParams::SOCIAL, 11);
        WeightModel::UniformReal.apply(g, 11)
    }

    fn cfg(steps: usize) -> WalkConfig {
        WalkConfig {
            steps,
            record_paths: true,
            ..WalkConfig::default()
        }
    }

    #[test]
    fn walks_have_requested_length_and_valid_edges() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries: Vec<NodeId> = (0..64).collect();
        let w = Node2Vec::paper(true);
        let report = engine.run(&g, &w, &queries, &cfg(10)).unwrap();
        let paths = report.paths.as_ref().unwrap();
        assert_eq!(paths.len(), 64);
        for (q, path) in paths.iter().enumerate() {
            assert_eq!(path[0], queries[q]);
            assert!(path.len() <= 11, "path too long: {}", path.len());
            for pair in path.windows(2) {
                assert!(
                    g.has_edge(pair[0], pair[1]),
                    "walk used a non-edge {} -> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
        assert_eq!(report.queries, 64);
        assert!(report.steps_taken > 0);
        assert!(report.sim_seconds > 0.0);
    }

    #[test]
    fn adaptive_engine_uses_both_kernels_on_mixed_graph() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries: Vec<NodeId> = (0..128u32).collect();
        let w = Node2Vec::paper(true);
        let report = engine.run(&g, &w, &queries, &cfg(20)).unwrap();
        assert!(
            report.chosen_rjs > 0 && report.chosen_rvs > 0,
            "expected both kernels on an R-MAT graph: rjs {} rvs {}",
            report.chosen_rjs,
            report.chosen_rvs
        );
    }

    #[test]
    fn forced_strategies_use_one_kernel() {
        let g = small_graph();
        let queries: Vec<NodeId> = (0..32u32).collect();
        let w = Node2Vec::paper(true);
        let rvs = FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), SelectionStrategy::RvsOnly)
            .run(&g, &w, &queries, &cfg(10))
            .unwrap();
        assert_eq!(rvs.chosen_rjs, 0);
        assert!(rvs.chosen_rvs > 0);
        let rjs = FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), SelectionStrategy::RjsOnly)
            .run(&g, &w, &queries, &cfg(10))
            .unwrap();
        assert_eq!(rjs.chosen_rvs, 0);
        assert!(rjs.chosen_rjs > 0);
    }

    #[test]
    fn single_step_distribution_matches_exact_sampling() {
        // Star graph: 0 -> {1..6} with distinct weights; one walk step from
        // node 0 must follow p = w̃/Σw̃. Repeat over many seeds.
        let mut b = CsrBuilder::new(7);
        let weights = [3.0f32, 2.0, 4.0, 1.0, 0.5, 2.5];
        for (i, &wgt) in weights.iter().enumerate() {
            b.push_weighted(0, (i + 1) as u32, wgt);
        }
        let g = b.build().unwrap();
        let w = UniformWalk;
        let mut counts = vec![0u64; 6];
        for seed in 0..6000u64 {
            let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
            let mut c = cfg(1);
            c.seed = seed;
            let report = engine.run(&g, &w, &[0], &c).unwrap();
            let path = &report.paths.as_ref().unwrap()[0];
            assert_eq!(path.len(), 2);
            counts[(path[1] - 1) as usize] += 1;
        }
        stat::assert_matches_distribution(&counts, &stat::normalize(&weights), "engine 1-step");
    }

    #[test]
    fn rjs_and_rvs_modes_draw_from_same_distribution() {
        // Forced eRJS and forced eRVS must both produce the target
        // distribution (the selection cannot change walk semantics).
        let mut b = CsrBuilder::new(5);
        let weights = [1.0f32, 2.0, 3.0, 4.0];
        for (i, &wgt) in weights.iter().enumerate() {
            b.push_weighted(0, (i + 1) as u32, wgt);
        }
        let g = b.build().unwrap();
        let w = UniformWalk;
        for strategy in [SelectionStrategy::RjsOnly, SelectionStrategy::RvsOnly] {
            let mut counts = vec![0u64; 4];
            for seed in 0..5000u64 {
                let engine = FlexiWalkerEngine::with_strategy(DeviceSpec::tiny(), strategy);
                let mut c = cfg(1);
                c.seed = seed;
                let report = engine.run(&g, &w, &[0], &c).unwrap();
                let path = &report.paths.as_ref().unwrap()[0];
                counts[(path[1] - 1) as usize] += 1;
            }
            stat::assert_matches_distribution(
                &counts,
                &stat::normalize(&weights),
                &format!("{strategy:?}"),
            );
        }
    }

    #[test]
    fn node2vec_never_violates_transition_support() {
        // With b tiny, distance-2 moves dominate, but every move must still
        // be a real edge; with MetaPath, every move must match the schema.
        let g = small_graph();
        let g = props::assign_uniform_labels(g, 5, 3);
        let w = MetaPath::paper(true);
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries: Vec<NodeId> = (0..128u32).collect();
        let report = engine.run(&g, &w, &queries, &cfg(5)).unwrap();
        for path in report.paths.as_ref().unwrap() {
            for (step, pair) in path.windows(2).enumerate() {
                // The traversed edge must carry the schema label.
                let r = g.edge_range(pair[0]);
                let found = r.clone().any(|e| {
                    g.edge_target(e) == pair[1] && g.label(e) == w.wanted_label(step)
                });
                assert!(found, "step {step} violated schema: {} -> {}", pair[0], pair[1]);
            }
        }
    }

    #[test]
    fn metapath_uses_schema_depth() {
        let g = props::assign_uniform_labels(small_graph(), 5, 3);
        let w = MetaPath::paper(false);
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let report = engine.run(&g, &w, &[0, 1, 2], &cfg(80)).unwrap();
        for path in report.paths.as_ref().unwrap() {
            assert!(path.len() <= 6, "MetaPath must stop at schema depth");
        }
    }

    #[test]
    fn sink_start_terminates_immediately() {
        let g = CsrBuilder::new(2).edge(0, 1).build().unwrap();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let w = UniformWalk;
        let report = engine.run(&g, &w, &[1], &cfg(10)).unwrap();
        assert_eq!(report.paths.as_ref().unwrap()[0], vec![1]);
        assert_eq!(report.steps_taken, 0);
    }

    #[test]
    fn empty_query_set_is_ok() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let report = engine
            .run(&g, &Node2Vec::paper(true), &[], &cfg(10))
            .unwrap();
        assert_eq!(report.queries, 0);
        assert_eq!(report.steps_taken, 0);
    }

    #[test]
    fn graph_larger_than_vram_is_oom() {
        let g = small_graph();
        let mut spec = DeviceSpec::tiny();
        spec.vram_bytes = 16; // Absurdly small.
        let engine = FlexiWalkerEngine::new(spec);
        let err = engine
            .run(&g, &Node2Vec::paper(true), &[0], &cfg(1))
            .unwrap_err();
        assert!(matches!(err, EngineError::OutOfMemory { .. }));
    }

    #[test]
    fn tiny_time_budget_is_oot() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let mut c = cfg(80);
        c.time_budget = 1e-12;
        let queries: Vec<NodeId> = (0..64u32).collect();
        let err = engine
            .run(&g, &Node2Vec::paper(true), &queries, &c)
            .unwrap_err();
        assert!(matches!(err, EngineError::OutOfTime { .. }));
    }

    #[test]
    fn parallel_hosts_match_sequential_aggregates() {
        let g = small_graph();
        let queries: Vec<NodeId> = (0..96u32).collect();
        let w = SecondOrderPr::paper();
        let mut c1 = cfg(10);
        c1.record_paths = false;
        let seq = FlexiWalkerEngine::new(DeviceSpec::tiny())
            .run(&g, &w, &queries, &c1)
            .unwrap();
        let mut c2 = c1.clone();
        c2.host_threads = 4;
        let par = FlexiWalkerEngine::new(DeviceSpec::tiny())
            .run(&g, &w, &queries, &c2)
            .unwrap();
        // Dynamic queue assignment differs, but every query must complete
        // with the full number of steps on a sink-light graph.
        assert_eq!(seq.queries, par.queries);
        assert!(par.steps_taken > 0);
    }

    #[test]
    fn report_energy_math() {
        let r = RunReport {
            engine: "x",
            sim_seconds: 2.0,
            saturated_seconds: 2.0,
            stats: CostStats::default(),
            queries: 4,
            steps_taken: 0,
            paths: None,
            chosen_rjs: 0,
            chosen_rvs: 0,
            profile_seconds: 0.0,
            preprocess_seconds: 0.0,
            warnings: vec![],
            watts: 100.0,
        };
        assert_eq!(r.joules(), 200.0);
        assert_eq!(r.joules_per_query(), 50.0);
    }

    #[test]
    fn profile_and_preprocess_overhead_reported() {
        let g = small_graph();
        let engine = FlexiWalkerEngine::new(DeviceSpec::tiny());
        let queries: Vec<NodeId> = (0..32u32).collect();
        let report = engine
            .run(&g, &Node2Vec::paper(true), &queries, &cfg(10))
            .unwrap();
        assert!(report.profile_seconds > 0.0, "profiling ran");
        assert!(report.preprocess_seconds > 0.0, "preprocess ran");
        // Overheads stay well below the main walk (Table 3's claim).
        assert!(report.profile_seconds + report.preprocess_seconds < report.sim_seconds);
    }
}
