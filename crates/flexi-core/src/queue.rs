//! Dynamic query scheduling (paper §5.3).
//!
//! A single atomically incremented counter indexes into the array of
//! pending walk queries; processing units (warp lanes) pop the next query
//! when their current one finishes. This is exactly the scheme the paper
//! found sufficient — no work-stealing deque needed.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A global FIFO over `len` queries, popped by atomic counter increment.
#[derive(Debug)]
pub struct QueryQueue {
    next: AtomicUsize,
    len: usize,
}

impl QueryQueue {
    /// Creates a queue over `len` queries.
    pub fn new(len: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Pops the next query index, or `None` when the batch is drained.
    ///
    /// Each successful pop corresponds to one global atomic on the device;
    /// the caller is responsible for charging it (`WarpCtx::atomic`).
    pub fn pop(&self) -> Option<usize> {
        // `fetch_add` may overshoot past `len`; indices >= len are simply
        // discarded, which keeps the hot path a single atomic.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }

    /// Pops up to `n` consecutive indices in one atomic, or `None` when
    /// the batch is drained.
    ///
    /// Host-side consumers (the drain executor's worker pool) use this to
    /// amortise contention on the shared counter: one `fetch_add` claims a
    /// whole chunk. The returned range is clamped to the queue length, so
    /// the final chunk may be shorter than `n`.
    pub fn pop_chunk(&self, n: usize) -> Option<std::ops::Range<usize>> {
        let n = n.max(1);
        let start = self.next.fetch_add(n, Ordering::Relaxed);
        (start < self.len).then(|| start..(start + n).min(self.len))
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queries handed out so far, clamped to `len` (the internal counter
    /// may overshoot past the end; the overshoot is never reported).
    pub fn popped(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pops_each_index_exactly_once() {
        let q = QueryQueue::new(5);
        let mut seen = Vec::new();
        while let Some(i) = q.pop() {
            seen.push(i);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop(), None);
        assert_eq!(q.popped(), 5);
    }

    #[test]
    fn empty_queue_pops_none() {
        let q = QueryQueue::new(0);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn chunked_pops_cover_the_queue_without_overlap() {
        let q = QueryQueue::new(10);
        assert_eq!(q.pop_chunk(4), Some(0..4));
        assert_eq!(q.pop_chunk(4), Some(4..8));
        // Final chunk is clamped to the queue length.
        assert_eq!(q.pop_chunk(4), Some(8..10));
        assert_eq!(q.pop_chunk(4), None);
        assert_eq!(q.popped(), 10);
        // A zero-sized request still makes progress (clamped to 1).
        let q = QueryQueue::new(2);
        assert_eq!(q.pop_chunk(0), Some(0..1));
        assert_eq!(q.pop_chunk(0), Some(1..2));
        assert_eq!(q.pop_chunk(0), None);
    }

    #[test]
    fn chunked_pop_on_empty_queue_is_none() {
        let q = QueryQueue::new(0);
        assert_eq!(q.pop_chunk(1), None);
        assert_eq!(q.pop_chunk(usize::MAX), None);
        assert_eq!(q.popped(), 0);
    }

    #[test]
    fn chunked_pop_on_one_item_queue_clamps_and_drains() {
        let q = QueryQueue::new(1);
        // An oversized chunk claims exactly the one item.
        assert_eq!(q.pop_chunk(64), Some(0..1));
        assert_eq!(q.pop_chunk(1), None);
        assert_eq!(q.pop(), None);
        // The overshot counter never reports past the queue length.
        assert_eq!(q.popped(), 1);
    }

    #[test]
    fn chunked_and_single_pops_interleave_disjointly() {
        let q = QueryQueue::new(7);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop_chunk(3), Some(1..4));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop_chunk(8), Some(5..7));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop_chunk(2), None);
    }

    #[test]
    fn concurrent_pops_are_disjoint_and_complete() {
        let q = Arc::new(QueryQueue::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(i) = q.pop() {
                    got.push(i);
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10_000).collect::<Vec<_>>());
    }
}
