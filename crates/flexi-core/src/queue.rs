//! Dynamic query scheduling (paper §5.3).
//!
//! A single atomically incremented counter indexes into the array of
//! pending walk queries; processing units (warp lanes) pop the next query
//! when their current one finishes. This is exactly the scheme the paper
//! found sufficient — no work-stealing deque needed.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A global FIFO over `len` queries, popped by atomic counter increment.
#[derive(Debug)]
pub struct QueryQueue {
    next: AtomicUsize,
    len: usize,
}

impl QueryQueue {
    /// Creates a queue over `len` queries.
    pub fn new(len: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Pops the next query index, or `None` when the batch is drained.
    ///
    /// Each successful pop corresponds to one global atomic on the device;
    /// the caller is responsible for charging it (`WarpCtx::atomic`).
    pub fn pop(&self) -> Option<usize> {
        // `fetch_add` may overshoot past `len`; indices >= len are simply
        // discarded, which keeps the hot path a single atomic.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queries handed out so far (may exceed `len` due to overshoot).
    pub fn popped(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pops_each_index_exactly_once() {
        let q = QueryQueue::new(5);
        let mut seen = Vec::new();
        while let Some(i) = q.pop() {
            seen.push(i);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop(), None);
        assert_eq!(q.popped(), 5);
    }

    #[test]
    fn empty_queue_pops_none() {
        let q = QueryQueue::new(0);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_pops_are_disjoint_and_complete() {
        let q = Arc::new(QueryQueue::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(i) = q.pop() {
                    got.push(i);
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10_000).collect::<Vec<_>>());
    }
}
