//! Energy model (paper §6.7, Fig. 16).
//!
//! The paper measures board power with `nvidia-smi` / RAPL; this module
//! substitutes an activity-proportional model: an engine reports its load
//! watts (device class) and the energy of a run is `watts × sim_seconds`.
//! Because both CPU and GPU engines live in the same simulated-time
//! universe, joules-per-query comparisons keep the ordering Fig. 16 shows:
//! CPU engines draw little power but run long; FlexiWalker draws GPU power
//! for a very short time.

use crate::engine::RunReport;

/// Energy summary of one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyReport {
    /// Total energy of the main walk phase.
    pub joules: f64,
    /// Energy divided by query count (Fig. 16's y-axis).
    pub joules_per_query: f64,
    /// Peak power draw (Fig. 16's secondary axis).
    pub max_watts: f64,
}

/// Computes the energy summary for a run report.
pub fn energy_of(report: &RunReport) -> EnergyReport {
    EnergyReport {
        joules: report.joules(),
        joules_per_query: report.joules_per_query(),
        max_watts: report.watts,
    }
}

/// Typical sustained package power of the CPU baselines (16-core EPYC
/// under full load), used by `flexi-baselines`.
pub const CPU_LOAD_WATTS: f64 = 145.0;

/// Typical package power of an out-of-core CPU system (adds NVMe I/O).
pub const CPU_OOC_WATTS: f64 = 165.0;

#[cfg(test)]
mod tests {
    use super::*;
    use flexi_gpu_sim::CostStats;

    fn report(watts: f64, secs: f64, queries: usize) -> RunReport {
        RunReport {
            engine: "test",
            graph_version: flexi_graph::GraphVersion::default(),
            sim_seconds: secs,
            saturated_seconds: secs,
            stats: CostStats::default(),
            queries,
            steps_taken: 0,
            paths: None,
            sampler_steps: crate::SamplerTally::new(),
            sampler_state_builds: 0,
            sampler_state_hits: 0,
            profile_seconds: 0.0,
            preprocess_seconds: 0.0,
            warnings: vec![],
            watts,
            shards: None,
            blocks: None,
        }
    }

    #[test]
    fn energy_is_watts_times_time() {
        let e = energy_of(&report(300.0, 0.5, 10));
        assert_eq!(e.joules, 150.0);
        assert_eq!(e.joules_per_query, 15.0);
        assert_eq!(e.max_watts, 300.0);
    }

    #[test]
    fn zero_queries_yield_zero_per_query() {
        let e = energy_of(&report(300.0, 1.0, 0));
        assert_eq!(e.joules_per_query, 0.0);
    }

    #[test]
    fn fast_gpu_beats_slow_cpu_on_energy() {
        // The Fig. 16 mechanism: GPU draws 2x the power but finishes 50x
        // faster → far fewer joules per query.
        let gpu = energy_of(&report(300.0, 0.1, 100));
        let cpu = energy_of(&report(CPU_LOAD_WATTS, 5.0, 100));
        assert!(gpu.joules_per_query < cpu.joules_per_query / 10.0);
        assert!(gpu.max_watts > cpu.max_watts);
    }
}
