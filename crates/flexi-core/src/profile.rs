//! Startup profiling kernels (paper §5.1).
//!
//! Two micro-kernels estimate the per-edge cost of each sampling style on
//! the actual device: one issues warp-coalesced sequential weight scans
//! (the eRVS access pattern), the other random single-lane probes (the
//! eRJS pattern). Their cycle ratio is the `EdgeCost_RJS / EdgeCost_RVS`
//! parameter of Eq. 11. The profile is tiny by design — a fixed node
//! sample and a capped neighbor budget — and its simulated time is
//! reported for Table 3.

use crate::runtime::CostModel;
use flexi_gpu_sim::Device;
use flexi_graph::Csr;

/// Outcome of the profiling pass.
#[derive(Clone, Copy, Debug)]
pub struct ProfileResult {
    /// Measured `EdgeCost_RJS / EdgeCost_RVS`.
    pub edge_cost_ratio: f64,
    /// Simulated seconds both kernels took.
    pub sim_seconds: f64,
    /// Edges touched by each kernel.
    pub edges_profiled: usize,
}

impl ProfileResult {
    /// The cost model parameterised by this profile.
    pub fn cost_model(&self) -> CostModel {
        CostModel::with_ratio(self.edge_cost_ratio)
    }
}

/// Number of nodes the profile samples.
const PROFILE_NODES: usize = 64;
/// Neighbor budget per sampled node.
const PROFILE_NEIGHBORS: usize = 32;

/// Runs the two profiling kernels for `g` on `device`.
///
/// Deterministic in `seed` (node sampling is stride-based, not random, so
/// the seed only feeds the probe RNG).
pub fn run_profile(device: &Device, g: &Csr, bytes_per_weight: usize, seed: u64) -> ProfileResult {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return ProfileResult {
            edge_cost_ratio: CostModel::default_ratio().edge_cost_ratio,
            sim_seconds: 0.0,
            edges_profiled: 0,
        };
    }
    // Stride-sample nodes across the id space; skip sinks.
    let stride = (n / PROFILE_NODES).max(1);
    let sample: Vec<u32> = (0..n)
        .step_by(stride)
        .map(|v| v as u32)
        .filter(|&v| g.degree(v) > 0)
        .take(PROFILE_NODES)
        .collect();
    if sample.is_empty() {
        return ProfileResult {
            edge_cost_ratio: CostModel::default_ratio().edge_cost_ratio,
            sim_seconds: 0.0,
            edges_profiled: 0,
        };
    }
    let edges_per_node: Vec<usize> = sample
        .iter()
        .map(|&v| g.degree(v).min(PROFILE_NEIGHBORS))
        .collect();
    let total_edges: usize = edges_per_node.iter().sum();

    // Kernel A: sequential coalesced scans (eRVS pattern) + per-chunk
    // reduction, one warp per sampled node.
    let seq = device.launch(sample.len(), seed, |ctx| {
        let count = edges_per_node[ctx.warp_id()];
        ctx.read_coalesced(count * bytes_per_weight);
        ctx.alu(count as u64);
        let zeros = [0.0f32; flexi_gpu_sim::WARP_SIZE];
        ctx.reduce_max_f32(&zeros);
    });

    // Kernel B: random probes (eRJS pattern) with per-probe RNG.
    let rnd = device.launch(sample.len(), seed ^ 0x5151, |ctx| {
        let count = edges_per_node[ctx.warp_id()];
        for _ in 0..count {
            ctx.draw_u32(0);
            ctx.draw_u32(0);
            ctx.read_random(bytes_per_weight);
            ctx.alu(2);
        }
    });

    let spec = device.spec();
    let seq_cycles = seq.stats.cycles(spec).max(1);
    let rnd_cycles = rnd.stats.cycles(spec).max(1);
    let ratio = rnd_cycles as f64 / seq_cycles as f64;
    ProfileResult {
        edge_cost_ratio: ratio.max(1.0),
        sim_seconds: seq.sim_seconds + rnd.sim_seconds,
        edges_profiled: total_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexi_gpu_sim::DeviceSpec;
    use flexi_graph::gen;

    #[test]
    fn profile_reports_random_costlier_than_sequential() {
        let g = gen::rmat(10, 8192, gen::RmatParams::SOCIAL, 3);
        let dev = Device::new(DeviceSpec::a6000());
        let p = run_profile(&dev, &g, 8, 42);
        assert!(
            p.edge_cost_ratio > 1.5,
            "ratio {} should exceed 1.5",
            p.edge_cost_ratio
        );
        assert!(p.sim_seconds > 0.0);
        assert!(p.edges_profiled > 0);
    }

    #[test]
    fn profile_is_deterministic() {
        let g = gen::rmat(9, 4096, gen::RmatParams::WEB, 5);
        let dev = Device::new(DeviceSpec::a6000());
        let a = run_profile(&dev, &g, 8, 1);
        let b = run_profile(&dev, &g, 8, 1);
        assert_eq!(a.edge_cost_ratio, b.edge_cost_ratio);
        assert_eq!(a.sim_seconds, b.sim_seconds);
    }

    #[test]
    fn profile_cost_is_small_versus_graph_size() {
        let g = gen::rmat(12, 100_000, gen::RmatParams::SOCIAL, 9);
        let dev = Device::new(DeviceSpec::a6000());
        let p = run_profile(&dev, &g, 8, 7);
        // Bounded edge budget regardless of graph size.
        assert!(p.edges_profiled <= 64 * 32);
    }

    #[test]
    fn empty_graph_uses_default_ratio() {
        let g = flexi_graph::CsrBuilder::new(0).build().unwrap();
        let dev = Device::new(DeviceSpec::tiny());
        let p = run_profile(&dev, &g, 8, 1);
        assert_eq!(
            p.edge_cost_ratio,
            CostModel::default_ratio().edge_cost_ratio
        );
        assert_eq!(p.edges_profiled, 0);
    }

    #[test]
    fn all_sink_graph_uses_default_ratio() {
        // Nodes but no edges reachable from the stride sample.
        let g = flexi_graph::CsrBuilder::new(8).build().unwrap();
        let dev = Device::new(DeviceSpec::tiny());
        let p = run_profile(&dev, &g, 8, 1);
        assert_eq!(p.edges_profiled, 0);
    }

    #[test]
    fn cost_model_conversion() {
        let p = ProfileResult {
            edge_cost_ratio: 6.5,
            sim_seconds: 0.0,
            edges_profiled: 0,
        };
        assert_eq!(p.cost_model().edge_cost_ratio, 6.5);
    }
}
