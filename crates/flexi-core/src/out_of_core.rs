//! Out-of-core block-scheduled execution — the host-memory cliff past
//! [`crate::partitioned`].
//!
//! PR 5's partitioned topology serves graphs that overflow one *device*;
//! this module serves graphs that overflow the *host*. The graph is
//! spilled into fixed-size CSR blocks
//! ([`flexi_graph::blocks::BlockStore`]) behind a budget-bounded
//! [`ResidentCache`](flexi_graph::ResidentCache), and the drain replays
//! every walk through whole-block activations: walker state lives in
//! per-block pools, the scheduler drains already-resident blocks first
//! (their pools cost no disk read) and otherwise activates whichever
//! block has the most pending walkers (ties → lowest block id — all
//! deterministic), steps each pooled walker until its path exits the
//! block, and re-enqueues it at the destination block's pool.
//!
//! # Determinism argument
//!
//! Walk *output* is computed once by the unified walker path with
//! per-query Philox streams, so it is bit-identical to
//! [`Topology::Single`](crate::Topology::Single) by construction — block
//! scheduling order cannot perturb sampling decisions. The scheduler then
//! replays the recorded paths against real block data (verifying every
//! step against the block-resident adjacency via
//! [`BlockData::has_edge`](flexi_graph::BlockData::has_edge)) to produce
//! the out-of-core cost accounting: block activations, cache hits/loads/
//! evictions, and simulated NVMe time. The replay itself is sequential,
//! so cache state evolves identically at any worker count.

use crate::engine::EngineError;
use flexi_graph::{BlockRuntime, NodeId};

/// An NVMe-like block storage device, the out-of-core analogue of
/// [`LinkSpec`](crate::LinkSpec).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskSpec {
    /// Sequential read bandwidth in GB/s (PCIe 4.0 NVMe: ~7 GB/s).
    pub gbps: f64,
    /// Per-read latency in seconds (submission + flash access).
    pub latency: f64,
}

impl DiskSpec {
    /// PCIe 4.0 NVMe defaults.
    pub fn nvme() -> Self {
        Self {
            gbps: 7.0,
            latency: 80e-6,
        }
    }

    /// Time to serve `loads` block reads totalling `bytes` payload bytes.
    pub fn seconds(&self, bytes: u64, loads: u64) -> f64 {
        bytes as f64 / (self.gbps * 1e9) + loads as f64 * self.latency
    }
}

/// Out-of-core accounting for a run executed under
/// [`Topology::OutOfCore`](crate::Topology::OutOfCore): how the block
/// scheduler moved data and what the bounded cache did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockStats {
    /// Number of blocks the graph was spilled into.
    pub blocks: usize,
    /// Block activations: how many times the scheduler picked a block and
    /// drained its pending-walker pool.
    pub launches: u64,
    /// Activations whose block had to be read from the spill file.
    pub loads: u64,
    /// Activations served from the resident cache.
    pub hits: u64,
    /// Blocks evicted from the resident cache during the run.
    pub evictions: u64,
    /// Payload bytes read from the spill file.
    pub load_bytes: u64,
    /// Simulated seconds those reads spent on the disk.
    pub io_seconds: f64,
    /// The resident-cache byte budget the run was served under.
    pub resident_budget: usize,
}

impl BlockStats {
    /// Fraction of block activations served without touching disk.
    pub fn hit_rate(&self) -> f64 {
        if self.launches == 0 {
            0.0
        } else {
            self.hits as f64 / self.launches as f64
        }
    }
}

/// Replays recorded walk `paths` through the spilled block store,
/// scheduling whole blocks resident-first, then most-pending-walkers-
/// first.
///
/// Every step is verified against the activated block's resident
/// adjacency, proving the walk could have been served from block data
/// alone. Returns the cost accounting; the walk output itself is the
/// recorded paths, untouched.
///
/// # Errors
///
/// [`EngineError::Io`] when the spill file cannot be read or a recorded
/// step is absent from the owning block's adjacency (which would mean the
/// spill diverged from the graph the walk ran on).
pub fn block_schedule(
    paths: &[Vec<NodeId>],
    rt: &BlockRuntime,
    disk: &DiskSpec,
) -> Result<BlockStats, EngineError> {
    let blocks = rt.blocks();
    let mut stats = BlockStats {
        blocks,
        resident_budget: rt.resident_budget(),
        ..Default::default()
    };
    // Per-block pools of (walker, position-in-path). A walker enters the
    // pool of the block owning its current node and leaves it only by
    // finishing or crossing into another block.
    let mut pools: Vec<Vec<(usize, usize)>> = vec![Vec::new(); blocks];
    let mut live = 0usize;
    for (wi, path) in paths.iter().enumerate() {
        if path.len() >= 2 {
            pools[rt.block_of(path[0])].push((wi, 0));
            live += 1;
        }
    }
    // The cache is shared across runs on the same cached runtime;
    // evictions are attributed to this run by delta.
    let evictions_before = rt.cache().counters().evictions;
    let mut resident = vec![false; blocks];

    while live > 0 {
        // Resident blocks with pending walkers drain first — their pools
        // cost no disk read, so deferring every load until no resident
        // work remains lets pools on cold blocks grow and amortises each
        // load over more walkers. Within a tier (resident, then cold) the
        // pick is most-pending-first, ties to the lowest block id. All
        // inputs to this choice are deterministic, so the schedule is too.
        for slot in resident.iter_mut() {
            *slot = false;
        }
        for b in rt.cache().resident_blocks() {
            if let Some(slot) = resident.get_mut(b) {
                *slot = true;
            }
        }
        let mut best = usize::MAX;
        let mut best_warm = false;
        for (b, pool) in pools.iter().enumerate() {
            if pool.is_empty() {
                continue;
            }
            let warm = resident[b];
            let better = match (warm, best_warm) {
                (true, false) => true,
                (false, true) => false,
                _ => best == usize::MAX || pool.len() > pools[best].len(),
            };
            if better {
                best = b;
                best_warm = warm;
            }
        }
        let b = best;
        let (data, hit) = rt
            .fetch_pinned(b)
            .map_err(|e| EngineError::Io(e.to_string()))?;
        stats.launches += 1;
        if hit {
            stats.hits += 1;
        } else {
            stats.loads += 1;
            stats.load_bytes += data.bytes() as u64;
        }
        for (wi, mut pos) in std::mem::take(&mut pools[b]) {
            let path = &paths[wi];
            while pos + 1 < path.len() && rt.block_of(path[pos]) == b {
                if !data.has_edge(path[pos], path[pos + 1]) {
                    rt.unpin(b);
                    return Err(EngineError::Io(format!(
                        "block {b} spill lost edge {} -> {}",
                        path[pos],
                        path[pos + 1]
                    )));
                }
                pos += 1;
            }
            if pos + 1 < path.len() {
                pools[rt.block_of(path[pos])].push((wi, pos));
            } else {
                live -= 1;
            }
        }
        rt.unpin(b);
    }

    stats.evictions = rt.cache().counters().evictions - evictions_before;
    stats.io_seconds = disk.seconds(stats.load_bytes, stats.loads);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexi_graph::gen::rmat;
    use flexi_graph::{Csr, WeightModel};
    use std::sync::Arc;

    fn graph() -> Csr {
        let g = rmat(9, 1 << 11, flexi_graph::gen::RmatParams::SOCIAL, 7);
        WeightModel::UniformReal.apply(g, 11)
    }

    /// Deterministic stand-in for recorded walk paths: greedy first-
    /// neighbor walks, so every consecutive pair is a real edge.
    fn walks(g: &Csr, queries: usize, steps: usize) -> Vec<Vec<NodeId>> {
        (0..queries)
            .map(|q| {
                let mut cur = (q * 37 % g.num_nodes()) as NodeId;
                let mut path = vec![cur];
                for s in 0..steps {
                    let ns = g.neighbors(cur);
                    if ns.is_empty() {
                        break;
                    }
                    cur = ns[(q + s) % ns.len()];
                    path.push(cur);
                }
                path
            })
            .collect()
    }

    #[test]
    fn disk_seconds_scale_with_bytes_and_loads() {
        let d = DiskSpec::nvme();
        assert_eq!(d.seconds(0, 0), 0.0);
        assert!(d.seconds(1 << 30, 100) > d.seconds(1 << 20, 100));
        assert!(d.seconds(1 << 20, 100) > d.seconds(1 << 20, 1));
    }

    #[test]
    fn schedule_accounts_every_activation() {
        let g = graph();
        let paths = walks(&g, 64, 20);
        let rt = Arc::new(BlockRuntime::build(&g, 4096, usize::MAX).unwrap());
        let stats = block_schedule(&paths, &rt, &DiskSpec::nvme()).unwrap();
        assert!(stats.blocks >= 2, "graph should spill into several blocks");
        assert!(stats.launches > 0);
        assert_eq!(stats.hits + stats.loads, stats.launches);
        assert!(
            stats.loads as usize <= stats.blocks,
            "unbounded cache never reloads"
        );
        assert!(stats.io_seconds > 0.0);
        assert_eq!(stats.evictions, 0, "unbounded cache never evicts");
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn bounded_budget_evicts_and_reloads() {
        let g = graph();
        let paths = walks(&g, 64, 20);
        let rt = Arc::new(BlockRuntime::build(&g, 4096, 8192).unwrap());
        assert!(
            rt.spilled_bytes() > rt.resident_budget(),
            "spill must exceed the budget for this test to bite"
        );
        let stats = block_schedule(&paths, &rt, &DiskSpec::nvme()).unwrap();
        assert!(stats.evictions > 0, "bounded cache must evict");
        assert!(
            stats.loads as usize > stats.blocks,
            "evicted blocks get reloaded"
        );
        assert_eq!(stats.resident_budget, 8192);
    }

    #[test]
    fn schedule_is_deterministic() {
        let g = graph();
        let paths = walks(&g, 48, 16);
        let a = {
            let rt = BlockRuntime::build(&g, 4096, 8192).unwrap();
            block_schedule(&paths, &rt, &DiskSpec::nvme()).unwrap()
        };
        let b = {
            let rt = BlockRuntime::build(&g, 4096, 8192).unwrap();
            block_schedule(&paths, &rt, &DiskSpec::nvme()).unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn fabricated_step_is_rejected() {
        let g = graph();
        let v = (g.num_nodes() - 1) as NodeId;
        // Walk an edge that does not exist (self-loop to a node picked to
        // have no such loop, or any absent pair).
        let mut dst = 0;
        while g.has_edge(v, dst) {
            dst += 1;
        }
        let rt = BlockRuntime::build(&g, 4096, usize::MAX).unwrap();
        let err = block_schedule(&[vec![v, dst]], &rt, &DiskSpec::nvme()).unwrap_err();
        assert!(matches!(err, EngineError::Io(_)));
    }

    #[test]
    fn empty_and_single_node_paths_cost_nothing() {
        let g = graph();
        let rt = BlockRuntime::build(&g, 4096, usize::MAX).unwrap();
        let stats = block_schedule(&[vec![], vec![3]], &rt, &DiskSpec::nvme()).unwrap();
        assert_eq!(stats.launches, 0);
        assert_eq!(stats.io_seconds, 0.0);
    }
}
