//! Serving-layer primitives: latency histograms and bounded admission.
//!
//! The batch pipeline (§5.3 queue → drain executor) answers *throughput*;
//! an always-on serving front-end also has to answer *latency* and
//! *overload*. This module provides the two std-only building blocks the
//! root crate's `WalkServer` composes in front of the existing
//! [`QueryQueue`](crate::QueryQueue):
//!
//! - [`LatencyHistogram`] — a fixed-size log-bucketed histogram of
//!   per-request latencies with p50/p95/p99 estimation, cheap to record
//!   into (one array increment, no allocation) and mergeable across
//!   workers, sessions and bench samples;
//! - [`AdmissionQueue`] — a bounded MPMC command queue with a pluggable
//!   overload [`AdmissionPolicy`]: *reject* new work, *block* the
//!   submitter (backpressure), or *shed the oldest* queued work to make
//!   room. Producers are client threads; the consumer is the serving
//!   loop, which pops admitted commands in FIFO order — admission order
//!   is what the serving determinism guarantee is stated against.
//!
//! Both types are deliberately independent of walk requests (the queue is
//! generic over its command type) so they are testable in isolation and
//! reusable by other front-ends.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Number of latency buckets: four per factor-of-two ("octave") above the
/// 1 µs floor, covering 1 µs · 2^39.75 ≈ 10 days in the last bucket.
const BUCKETS: usize = 160;

/// Sub-bucket resolution: buckets per octave.
const PER_OCTAVE: f64 = 4.0;

/// Floor of the first bucket, in seconds.
const FLOOR_SECONDS: f64 = 1e-6;

/// A log-bucketed latency histogram with percentile estimation.
///
/// Samples are recorded in seconds into one of 160 geometric
/// buckets (four per factor of two, 1 µs floor), so `record` is one
/// branch-free index computation plus an increment — cheap enough for the
/// serving hot path. Percentiles are read back as the upper bound of the
/// bucket containing the requested rank, clamped to the observed
/// min/max, which bounds the estimation error at ~19 % (one bucket
/// width) — ample for SLO gating.
///
/// Histograms merge bucket-wise ([`LatencyHistogram::merge`]), so
/// per-worker or per-sample recordings fold into one distribution without
/// losing resolution.
///
/// # Examples
///
/// ```
/// use flexi_core::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [1.0, 2.0, 3.0, 40.0] {
///     h.record_seconds(ms / 1e3);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.p50() >= 1e-3 && h.p50() <= 4e-3);
/// assert!(h.p99() >= 0.02 && h.p99() <= 0.05);
/// println!("{h}"); // "p50 2.38ms  p95 40.0ms  p99 40.0ms  (n=4)"
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_seconds: f64,
    min_seconds: f64,
    max_seconds: f64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_seconds: 0.0,
            min_seconds: f64::INFINITY,
            max_seconds: 0.0,
        }
    }

    /// The bucket a latency of `secs` lands in.
    fn bucket_of(secs: f64) -> usize {
        // Callers sanitise NaN/negative samples to 0.0 first; everything
        // at or below the floor lands in bucket 0.
        if secs <= FLOOR_SECONDS {
            return 0;
        }
        let idx = (PER_OCTAVE * (secs / FLOOR_SECONDS).log2()).floor() as usize + 1;
        idx.min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i`, in seconds.
    fn bucket_upper(i: usize) -> f64 {
        FLOOR_SECONDS * (i as f64 / PER_OCTAVE).exp2()
    }

    /// Records one latency sample, in seconds. Non-finite or negative
    /// samples count into the lowest bucket (they still advance `count`,
    /// so a buggy clock cannot silently thin the distribution).
    pub fn record_seconds(&mut self, secs: f64) {
        let secs = if secs.is_finite() { secs.max(0.0) } else { 0.0 };
        self.buckets[Self::bucket_of(secs)] += 1;
        self.count += 1;
        self.sum_seconds += secs;
        self.min_seconds = self.min_seconds.min(secs);
        self.max_seconds = self.max_seconds.max(secs);
    }

    /// Records one latency sample from a [`Duration`].
    pub fn record(&mut self, elapsed: Duration) {
        self.record_seconds(elapsed.as_secs_f64());
    }

    /// Folds another histogram into this one, bucket-wise.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_seconds += other.sum_seconds;
        self.min_seconds = self.min_seconds.min(other.min_seconds);
        self.max_seconds = self.max_seconds.max(other.max_seconds);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded samples, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.sum_seconds
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_seconds / self.count as f64
        }
    }

    /// Smallest recorded sample in seconds (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_seconds
        }
    }

    /// Largest recorded sample in seconds (0 when empty).
    pub fn max(&self) -> f64 {
        self.max_seconds
    }

    /// The latency at quantile `q ∈ [0, 1]`, in seconds: the upper bound
    /// of the bucket holding the sample of rank `⌈q · count⌉`, clamped to
    /// the observed min/max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min_seconds, self.max_seconds);
            }
        }
        self.max_seconds
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency in seconds.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency in seconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders seconds with an auto-scaled unit (`µs`/`ms`/`s`).
fn fmt_secs(f: &mut std::fmt::Formatter<'_>, secs: f64) -> std::fmt::Result {
    if secs < 1e-3 {
        write!(f, "{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        write!(f, "{:.2}ms", secs * 1e3)
    } else {
        write!(f, "{secs:.3}s")
    }
}

impl std::fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "p50 -  p95 -  p99 -  (n=0)");
        }
        write!(f, "p50 ")?;
        fmt_secs(f, self.p50())?;
        write!(f, "  p95 ")?;
        fmt_secs(f, self.p95())?;
        write!(f, "  p99 ")?;
        fmt_secs(f, self.p99())?;
        write!(f, "  (n={})", self.count)
    }
}

/// What an [`AdmissionQueue`] does when a push finds the queue full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AdmissionPolicy {
    /// Refuse the new command; the submitter gets it back immediately.
    /// Bounds queueing delay at the cost of dropped work — load shedding
    /// at the front door.
    Reject,
    /// Block the submitting thread until the serving loop frees a slot —
    /// classic backpressure. No work is lost and no request is refused;
    /// overload shows up as submitter-side latency instead. The default.
    #[default]
    Block,
    /// Evict the *oldest* queued commands to make room, handing them back
    /// to the submitter to fail. Bounds the staleness of queued work —
    /// the freshest requests survive overload.
    ShedOldest,
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AdmissionPolicy::Reject => "reject",
            AdmissionPolicy::Block => "block",
            AdmissionPolicy::ShedOldest => "shed-oldest",
        })
    }
}

/// Counters describing an [`AdmissionQueue`]'s overload behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Commands accepted into the queue.
    pub admitted: u64,
    /// Commands refused under [`AdmissionPolicy::Reject`].
    pub rejected: u64,
    /// Queued commands evicted under [`AdmissionPolicy::ShedOldest`].
    pub shed: u64,
    /// Submitter waits under [`AdmissionPolicy::Block`] (one per push
    /// that found the queue full, however long it then waited).
    pub block_waits: u64,
    /// High-water mark of the queue depth.
    pub peak_depth: u64,
}

/// Outcome of one [`AdmissionQueue::push`].
#[derive(Debug)]
#[must_use = "rejected and shed commands carry work the submitter must fail"]
pub enum Admission<T> {
    /// The command was queued. Under [`AdmissionPolicy::ShedOldest`],
    /// `shed` holds the older commands evicted to make room (empty for
    /// the other policies) — the caller owns failing them.
    Admitted {
        /// Older commands evicted to admit this one, oldest first.
        shed: Vec<T>,
    },
    /// The queue was full under [`AdmissionPolicy::Reject`]; the command
    /// comes back to the submitter untouched.
    Rejected(T),
    /// The queue was closed; the command comes back untouched.
    Closed(T),
}

impl<T> Admission<T> {
    /// Whether the command entered the queue.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted { .. })
    }
}

/// Interior state of an [`AdmissionQueue`], guarded by one mutex.
#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
    stats: AdmissionStats,
}

/// A bounded MPMC command queue with a configurable overload policy.
///
/// Producers call [`push`](Self::push) from any number of threads; the
/// consumer (a serving loop) calls [`pop_wait`](Self::pop_wait) /
/// [`drain_ready`](Self::drain_ready). Commands come out in FIFO
/// *admission order* — under [`AdmissionPolicy::ShedOldest`] an admitted
/// command may evict older ones, but never reorder survivors.
///
/// [`close`](Self::close) stops further admission; already-queued
/// commands still drain, and `pop_wait` returns `None` only once the
/// queue is both closed and empty — so a serving loop that pops until
/// `None` never strands accepted work.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: AdmissionPolicy,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` commands (clamped to ≥ 1)
    /// under `policy`.
    pub fn new(capacity: usize, policy: AdmissionPolicy) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
                stats: AdmissionStats::default(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The overload policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Submits one command. Under [`AdmissionPolicy::Block`] this waits
    /// for a free slot (or for [`close`](Self::close)); the other
    /// policies return immediately.
    pub fn push(&self, item: T) -> Admission<T> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        if inner.closed {
            return Admission::Closed(item);
        }
        let mut shed = Vec::new();
        if inner.items.len() >= self.capacity {
            match self.policy {
                AdmissionPolicy::Reject => {
                    inner.stats.rejected += 1;
                    return Admission::Rejected(item);
                }
                AdmissionPolicy::Block => {
                    inner.stats.block_waits += 1;
                    while inner.items.len() >= self.capacity && !inner.closed {
                        inner = self.not_full.wait(inner).expect("admission queue poisoned");
                    }
                    if inner.closed {
                        return Admission::Closed(item);
                    }
                }
                AdmissionPolicy::ShedOldest => {
                    while inner.items.len() >= self.capacity {
                        shed.push(inner.items.pop_front().expect("full queue is non-empty"));
                    }
                    inner.stats.shed += shed.len() as u64;
                }
            }
        }
        inner.items.push_back(item);
        inner.stats.admitted += 1;
        inner.stats.peak_depth = inner.stats.peak_depth.max(inner.items.len() as u64);
        self.not_empty.notify_one();
        Admission::Admitted { shed }
    }

    /// Pops the oldest admitted command, waiting while the queue is empty
    /// and open. Returns `None` only when the queue is closed **and**
    /// empty — queued commands always drain.
    pub fn pop_wait(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .expect("admission queue poisoned");
        }
    }

    /// Pops up to `max` already-queued commands without waiting (may
    /// return fewer, or none). The serving loop uses this to batch: one
    /// blocking pop, then a non-blocking sweep of whatever arrived since.
    pub fn drain_ready(&self, max: usize) -> Vec<T> {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        let n = inner.items.len().min(max);
        let drained: Vec<T> = inner.items.drain(..n).collect();
        if !drained.is_empty() {
            self.not_full.notify_all();
        }
        drained
    }

    /// Commands currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("admission queue poisoned")
            .items
            .len()
    }

    /// Whether no commands are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops further admission and wakes every waiting producer and
    /// consumer. Already-queued commands still drain.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("admission queue poisoned");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("admission queue poisoned").closed
    }

    /// A snapshot of the admission counters.
    pub fn stats(&self) -> AdmissionStats {
        self.inner.lock().expect("admission queue poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn histogram_percentiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u32 {
            h.record_seconds(i as f64 * 1e-3); // 1ms ..= 100ms
        }
        assert_eq!(h.count(), 100);
        // Bucket resolution is ~19%; allow one bucket of slack each way.
        assert!(h.p50() >= 0.040 && h.p50() <= 0.065, "p50 {}", h.p50());
        assert!(h.p95() >= 0.090 && h.p95() <= 0.115, "p95 {}", h.p95());
        assert!(h.p99() >= 0.095 && h.p99() <= 0.101, "p99 {}", h.p99());
        assert!((h.mean() - 0.0505).abs() < 1e-9);
        assert_eq!(h.min(), 1e-3);
        assert_eq!(h.max(), 0.1);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_clamped() {
        let mut h = LatencyHistogram::new();
        h.record_seconds(2e-3);
        h.record_seconds(2e-3);
        // A single-valued distribution reports that value at every
        // quantile (clamping beats bucket upper bounds).
        assert_eq!(h.p50(), 2e-3);
        assert_eq!(h.p99(), 2e-3);
        let mut prev = 0.0;
        h.record_seconds(9e-3);
        h.record_seconds(40e-3);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) regressed");
            prev = v;
        }
    }

    #[test]
    fn histogram_handles_empty_and_degenerate_samples() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(format!("{h}"), "p50 -  p95 -  p99 -  (n=0)");
        h.record_seconds(f64::NAN);
        h.record_seconds(-1.0);
        h.record_seconds(0.0);
        assert_eq!(h.count(), 3, "degenerate samples still count");
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for (i, h) in [(1u32, &mut a), (2, &mut b)] {
            for k in 0..50u32 {
                let s = (i * 7 + k) as f64 * 1e-4;
                h.record_seconds(s);
                all.record_seconds(s);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        // Sums differ only by float association order.
        assert!((a.total_seconds() - all.total_seconds()).abs() < 1e-12);
    }

    #[test]
    fn histogram_display_scales_units() {
        let mut h = LatencyHistogram::new();
        h.record_seconds(5e-6);
        assert!(format!("{h}").contains("µs"), "{h}");
        let mut h = LatencyHistogram::new();
        h.record_seconds(5e-3);
        assert!(format!("{h}").contains("ms"), "{h}");
        let mut h = LatencyHistogram::new();
        h.record_seconds(5.0);
        assert!(format!("{h}").contains('s'), "{h}");
    }

    #[test]
    fn reject_policy_refuses_when_full() {
        let q = AdmissionQueue::new(2, AdmissionPolicy::Reject);
        assert!(q.push(1).is_admitted());
        assert!(q.push(2).is_admitted());
        match q.push(3) {
            Admission::Rejected(3) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        let s = q.stats();
        assert_eq!((s.admitted, s.rejected, s.shed), (2, 1, 0));
        assert_eq!(s.peak_depth, 2);
        // A freed slot readmits.
        assert_eq!(q.pop_wait(), Some(1));
        assert!(q.push(4).is_admitted());
        assert_eq!(q.drain_ready(usize::MAX), vec![2, 4]);
    }

    #[test]
    fn shed_oldest_evicts_in_age_order_and_keeps_fifo() {
        let q = AdmissionQueue::new(2, AdmissionPolicy::ShedOldest);
        assert!(q.push(1).is_admitted());
        assert!(q.push(2).is_admitted());
        match q.push(3) {
            Admission::Admitted { shed } => assert_eq!(shed, vec![1]),
            other => panic!("expected admission with shed, got {other:?}"),
        }
        assert_eq!(q.drain_ready(usize::MAX), vec![2, 3]);
        assert_eq!(q.stats().shed, 1);
        assert_eq!(q.stats().admitted, 3);
    }

    #[test]
    fn block_policy_waits_for_a_free_slot() {
        let q = Arc::new(AdmissionQueue::new(1, AdmissionPolicy::Block));
        assert!(q.push(1).is_admitted());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2).is_admitted())
        };
        // Wait until the producer has parked in its blocked push.
        while q.stats().block_waits == 0 {
            std::thread::yield_now();
        }
        assert_eq!(q.len(), 1, "blocked push must not enqueue early");
        assert_eq!(q.pop_wait(), Some(1));
        assert!(producer.join().expect("producer panicked"));
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.stats().block_waits, 1);
    }

    #[test]
    fn close_drains_queued_work_then_stops() {
        let q = AdmissionQueue::new(4, AdmissionPolicy::Block);
        assert!(q.push(1).is_admitted());
        assert!(q.push(2).is_admitted());
        q.close();
        match q.push(3) {
            Admission::Closed(3) => {}
            other => panic!("expected closed, got {other:?}"),
        }
        // Queued commands still drain, then None.
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_wait(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn close_unblocks_a_waiting_producer() {
        let q = Arc::new(AdmissionQueue::new(1, AdmissionPolicy::Block));
        assert!(q.push(1).is_admitted());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || matches!(q.push(2), Admission::Closed(2)))
        };
        while q.stats().block_waits == 0 {
            std::thread::yield_now();
        }
        q.close();
        assert!(producer.join().expect("producer panicked"));
    }

    #[test]
    fn close_releases_every_blocked_producer_at_once() {
        // Several producers parked in push() against a full Block queue;
        // close() must hand each its own command back as Closed, while the
        // commands already admitted still drain in order.
        let q = Arc::new(AdmissionQueue::new(2, AdmissionPolicy::Block));
        assert!(q.push(0).is_admitted());
        assert!(q.push(1).is_admitted());
        let producers: Vec<_> = (10..14)
            .map(|item| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || match q.push(item) {
                    Admission::Closed(returned) => {
                        assert_eq!(returned, item, "a producer got someone else's command");
                    }
                    other => panic!("expected Closed({item}), got {other:?}"),
                })
            })
            .collect();
        // Every producer must be parked before the close, so none of the
        // four can sneak into a freed slot.
        while q.stats().block_waits < 4 {
            std::thread::yield_now();
        }
        q.close();
        for p in producers {
            p.join().expect("producer panicked");
        }
        assert_eq!(q.pop_wait(), Some(0));
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), None, "closed and drained");
        assert_eq!(q.stats().admitted, 2, "blocked producers admit nothing");
    }

    #[test]
    fn concurrent_producers_admit_everything_under_block() {
        let q = Arc::new(AdmissionQueue::new(3, AdmissionPolicy::Block));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        assert!(q.push(p * 100 + i).is_admitted());
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 100 {
            got.extend(q.pop_wait());
        }
        for p in producers {
            p.join().expect("producer panicked");
        }
        got.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..25).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(got, expected);
        assert_eq!(q.stats().admitted, 100);
    }
}
