//! The unified walker-definition surface: DSL, native and pre-parsed
//! walkers lowered through one pipeline into a [`CompiledWalker`].
//!
//! FlexiWalker's extensibility claim is that *new dynamic-walk algorithms
//! are data, not engine forks*. This module is that seam, mirroring the
//! sampler seam in `flexi-sampling`:
//!
//! - [`WalkerDef`] — one walk algorithm: a name plus a [`WalkerSource`]
//!   (`Dsl` mini-language source, a pre-built [`WalkSpec`], or a `Native`
//!   [`DynamicWalk`] implementation), with optional hyperparameters,
//!   environment arrays (e.g. a MetaPath schema) and a preferred walk
//!   length;
//! - [`WalkerDef::lower`] — the single lowering front door: every source
//!   kind runs through `flexi_compiler::compile` exactly once, producing a
//!   [`CompiledWalker`] that carries the runnable transition program, the
//!   generated bound/sum estimators, and the derived static analysis
//!   (static max-bias bound, label needs, walk order);
//! - [`WalkerRegistry`] — the named set of walker definitions a session
//!   (or engine) serves, with the four built-ins registered as ordinary
//!   entries: `"node2vec"`, `"metapath"`, `"sopr"`, `"uniform"`;
//! - [`WalkerHandle`] — how a [`WalkRequest`] addresses its walker: either
//!   already *resolved* (owning an `Arc<CompiledWalker>`) or *named*
//!   (resolved against a registry at submit/run time, with typed
//!   [`EngineError::UnknownWalker`] / [`EngineError::WalkerCompile`]
//!   errors instead of panics).
//!
//! DSL-defined walkers execute through the mini-language interpreter with
//! f32-rounded arithmetic, so a DSL walker and a hand-written native twin
//! computing the same formula produce **bit-identical paths**.
//!
//! [`WalkRequest`]: crate::engine::WalkRequest

use crate::engine::{CompiledArtifacts, EngineError};
use crate::workload::{
    DynamicWalk, MetaPath, Node2Vec, SecondOrderPr, TemporalExp, TemporalLinear, TemporalUniform,
    UniformWalk, WalkState,
};
use flexi_compiler::{
    compile, interpret_f32, parse_program, references, BoundGranularity, CompileOutcome,
    EstimatorEnv, InterpEnv, Program, RefInfo, WalkSpec,
};
use flexi_graph::{Csr, EdgeId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Where a walker's transition logic comes from.
#[derive(Clone)]
pub enum WalkerSource {
    /// Mini-language `get_weight` source, compiled and interpreted.
    Dsl(String),
    /// A pre-built walk specification (source + hyperparameters).
    Spec(WalkSpec),
    /// A hand-written Rust implementation (the fast path).
    Native(Arc<dyn DynamicWalk>),
}

impl std::fmt::Debug for WalkerSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Dsl(src) => f.debug_tuple("Dsl").field(&src.len()).finish(),
            Self::Spec(spec) => f.debug_tuple("Spec").field(&spec.source.len()).finish(),
            Self::Native(w) => f.debug_tuple("Native").field(&w.name()).finish(),
        }
    }
}

/// One walk-algorithm definition: the unit a [`WalkerRegistry`] stores and
/// [`WalkerDef::lower`] compiles.
///
/// ```
/// use flexi_core::WalkerDef;
///
/// // A decay-biased walk: revisiting the previous node is discouraged.
/// let def = WalkerDef::dsl(
///     "decay",
///     "get_weight(edge) {
///          h_e = h[edge];
///          if (has_prev == 0) return h_e;
///          if (adj[edge] == prev) return h_e * lambda;
///          return h_e;
///      }",
/// )
/// .hyperparam("lambda", 0.25);
/// let compiled = def.lower().expect("compiles");
/// assert_eq!(compiled.name(), "decay");
/// assert!(compiled.second_order(), "it consults walk history");
/// ```
#[derive(Clone, Debug)]
pub struct WalkerDef {
    name: String,
    source: WalkerSource,
    hyperparams: Vec<(String, f64)>,
    arrays: Vec<(String, Vec<f64>)>,
    preferred_steps: Option<usize>,
}

impl WalkerDef {
    /// A walker from mini-language source.
    pub fn dsl(name: impl Into<String>, source: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            source: WalkerSource::Dsl(source.into()),
            hyperparams: Vec::new(),
            arrays: Vec::new(),
            preferred_steps: None,
        }
    }

    /// A walker from a pre-built [`WalkSpec`].
    pub fn spec(name: impl Into<String>, spec: WalkSpec) -> Self {
        Self {
            name: name.into(),
            source: WalkerSource::Spec(spec),
            hyperparams: Vec::new(),
            arrays: Vec::new(),
            preferred_steps: None,
        }
    }

    /// A walker from a hand-written [`DynamicWalk`] implementation.
    pub fn native(name: impl Into<String>, walk: impl DynamicWalk + 'static) -> Self {
        Self::native_shared(name, Arc::new(walk))
    }

    /// [`WalkerDef::native`] over an already-shared implementation.
    pub fn native_shared(name: impl Into<String>, walk: Arc<dyn DynamicWalk>) -> Self {
        Self {
            name: name.into(),
            source: WalkerSource::Native(walk),
            hyperparams: Vec::new(),
            arrays: Vec::new(),
            preferred_steps: None,
        }
    }

    /// Binds a hyperparameter (DSL/Spec sources only — native walkers bake
    /// hyperparameters into the struct). Later bindings of the same name
    /// win.
    pub fn hyperparam(mut self, name: impl Into<String>, value: f64) -> Self {
        let name = name.into();
        self.hyperparams.retain(|(n, _)| *n != name);
        self.hyperparams.push((name, value));
        self
    }

    /// Binds an environment array (e.g. a MetaPath `schema`), indexable by
    /// `step`, `cur` or `prev` in the DSL; indices wrap modulo the length.
    pub fn array(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        let name = name.into();
        self.arrays.retain(|(n, _)| *n != name);
        self.arrays.push((name, values));
        self
    }

    /// Fixes the walk length this walker prescribes (like a MetaPath
    /// walking exactly its schema depth). DSL/Spec sources only.
    pub fn preferred_steps(mut self, steps: usize) -> Self {
        self.preferred_steps = Some(steps);
        self
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The definition source.
    pub fn source(&self) -> &WalkerSource {
        &self.source
    }

    /// Lowering-cache key of this definition — *not* the name, so two
    /// names over one definition share a compile.
    ///
    /// DSL/Spec sources hash by value (source, hyperparameters, arrays,
    /// preferred steps): the hashed data fully determines the lowered
    /// walker. A `Native` source additionally mixes in the
    /// implementation's `Arc` identity, because a Rust struct may carry
    /// state its `spec()` does not encode (e.g. a `MetaPath` schema) —
    /// distinct instances must never substitute for each other, while
    /// defs sharing one `Arc` still share. The *preparation* caches use
    /// the value-only [`CompiledWalker::fingerprint`] instead, which is
    /// sound there because aggregates are a function of the spec alone.
    pub fn fingerprint(&self) -> u64 {
        let spec = match &self.source {
            WalkerSource::Dsl(src) => WalkSpec {
                source: src.clone(),
                hyperparams: self.hyperparams.clone(),
            },
            WalkerSource::Spec(spec) => merge_hyperparams(spec.clone(), &self.hyperparams),
            WalkerSource::Native(w) => w.spec(),
        };
        let value = fingerprint_parts(&spec, &self.arrays, self.preferred_steps);
        match &self.source {
            WalkerSource::Native(w) => {
                let mut h = DefaultHasher::new();
                value.hash(&mut h);
                (Arc::as_ptr(w) as *const () as usize).hash(&mut h);
                h.finish()
            }
            _ => value,
        }
    }

    /// Lowers this definition through the one compilation pipeline: parse,
    /// analyze and generate estimators via `flexi_compiler::compile`, then
    /// package the runnable walk (interpreted for DSL/Spec sources, the
    /// implementation itself for native ones) together with the derived
    /// static analysis.
    ///
    /// # Errors
    ///
    /// [`EngineError::WalkerCompile`] for malformed DSL source, references
    /// to names the runtime environment cannot resolve, empty environment
    /// arrays, or hyperparameter/array/steps overrides on a native source.
    /// Analyzable-but-unsupported programs (data-dependent loops, …) are
    /// *not* errors; they lower with the sound reservoir-only fallback and
    /// carry warnings.
    pub fn lower(&self) -> Result<CompiledWalker, EngineError> {
        let err = |message: String| EngineError::WalkerCompile {
            name: self.name.clone(),
            message,
        };
        for (n, vals) in &self.arrays {
            if vals.is_empty() {
                return Err(err(format!("environment array {n:?} is empty")));
            }
        }
        match &self.source {
            WalkerSource::Native(walk) => {
                if !self.hyperparams.is_empty() || !self.arrays.is_empty() {
                    return Err(err(
                        "hyperparameter/array overrides apply to DSL walkers only; \
                         native walkers carry them in the implementation"
                            .into(),
                    ));
                }
                if self.preferred_steps.is_some() {
                    return Err(err(
                        "preferred_steps applies to DSL walkers only; native walkers \
                         implement DynamicWalk::preferred_steps"
                            .into(),
                    ));
                }
                let spec = walk.spec();
                let artifacts = compile_spec(&spec);
                let refs = parse_program(&spec.source).ok().map(|p| references(&p));
                Ok(CompiledWalker {
                    name: self.name.clone(),
                    fingerprint: fingerprint_parts(&spec, &[], None),
                    static_bound: derive_static_bound(&artifacts),
                    needs_labels: refs.as_ref().is_some_and(|r| r.arrays.contains("label")),
                    // No parse ⇒ no proof the walk ignores history.
                    second_order: refs.as_ref().is_none_or(RefInfo::second_order),
                    // No parse ⇒ no proof the weights ignore walk state.
                    static_weights: refs.as_ref().is_some_and(weights_are_static),
                    spec,
                    artifacts,
                    walk: Arc::clone(walk),
                })
            }
            WalkerSource::Dsl(_) | WalkerSource::Spec(_) => {
                let spec = match &self.source {
                    WalkerSource::Dsl(src) => WalkSpec {
                        source: src.clone(),
                        hyperparams: self.hyperparams.clone(),
                    },
                    WalkerSource::Spec(s) => merge_hyperparams(s.clone(), &self.hyperparams),
                    WalkerSource::Native(_) => unreachable!("matched above"),
                };
                let program = parse_program(&spec.source).map_err(|e| err(e.to_string()))?;
                let refs = references(&program);
                self.check_references(&refs, &spec).map_err(err)?;
                let artifacts = compile_spec(&spec);
                let walk = Arc::new(DslWalk {
                    name: self.name.clone(),
                    uses_h: refs.arrays.contains("h"),
                    uses_label: refs.arrays.contains("label"),
                    uses_linked: refs.calls.contains("linked"),
                    uses_time: refs.frees.contains("edge_time"),
                    program,
                    hyperparams: spec.hyperparams.clone(),
                    arrays: self.arrays.clone(),
                    preferred: self.preferred_steps,
                    source: spec.source.clone(),
                });
                Ok(CompiledWalker {
                    name: self.name.clone(),
                    fingerprint: fingerprint_parts(&spec, &self.arrays, self.preferred_steps),
                    static_bound: derive_static_bound(&artifacts),
                    needs_labels: refs.arrays.contains("label"),
                    second_order: refs.second_order(),
                    static_weights: weights_are_static(&refs),
                    spec,
                    artifacts,
                    walk,
                })
            }
        }
    }

    /// Rejects references the DSL runtime environment cannot resolve —
    /// surfacing the mistake at load time instead of as silent dead-end
    /// walks.
    fn check_references(&self, refs: &RefInfo, spec: &WalkSpec) -> Result<(), String> {
        const BUILTIN_ARRAYS: [&str; 4] = ["h", "adj", "label", "deg"];
        for a in &refs.arrays {
            let known =
                BUILTIN_ARRAYS.contains(&a.as_str()) || self.arrays.iter().any(|(n, _)| n == a);
            if !known {
                return Err(format!(
                    "unknown array {a:?}; provide it with WalkerDef::array or use one of \
                     h/adj/label/deg"
                ));
            }
        }
        for c in &refs.calls {
            if c != "linked" && c != "exp" {
                return Err(format!(
                    "unknown function {c:?}; only linked(a, b) and exp(x) are available"
                ));
            }
        }
        const BUILTIN_VARS: [&str; 8] = [
            "edge",
            "cur",
            "prev",
            "has_prev",
            "step",
            "iter",
            "edge_time",
            "walk_time",
        ];
        for v in &refs.frees {
            let known =
                BUILTIN_VARS.contains(&v.as_str()) || spec.hyperparams.iter().any(|(n, _)| n == v);
            if !known {
                return Err(format!(
                    "unknown variable {v:?}; bind it with WalkerDef::hyperparam or use one \
                     of edge/cur/prev/has_prev/step/edge_time/walk_time"
                ));
            }
        }
        Ok(())
    }
}

/// Later bindings override the spec's own hyperparameters.
fn merge_hyperparams(mut spec: WalkSpec, overrides: &[(String, f64)]) -> WalkSpec {
    for (name, value) in overrides {
        spec.hyperparams.retain(|(n, _)| n != name);
        spec.hyperparams.push((name.clone(), *value));
    }
    spec
}

fn fingerprint_parts(
    spec: &WalkSpec,
    arrays: &[(String, Vec<f64>)],
    preferred_steps: Option<usize>,
) -> u64 {
    let mut h = DefaultHasher::new();
    spec.source.hash(&mut h);
    for (name, value) in &spec.hyperparams {
        name.hash(&mut h);
        value.to_bits().hash(&mut h);
    }
    for (name, vals) in arrays {
        name.hash(&mut h);
        for v in vals {
            v.to_bits().hash(&mut h);
        }
    }
    preferred_steps.hash(&mut h);
    h.finish()
}

/// Runs Flexi-Compiler over a walk spec, folding hard errors into the
/// sound reservoir-only fallback (the §7.1 behavior native workloads
/// always had).
pub(crate) fn compile_spec(spec: &WalkSpec) -> CompiledArtifacts {
    match compile(spec) {
        Ok(CompileOutcome::Supported(c)) => CompiledArtifacts {
            warnings: c.warnings.clone(),
            compiled: Some(*c),
        },
        Ok(CompileOutcome::Fallback { warnings }) => CompiledArtifacts {
            compiled: None,
            warnings,
        },
        Err(e) => CompiledArtifacts {
            compiled: None,
            warnings: vec![format!(
                "compile error: {e}; falling back to reservoir-only"
            )],
        },
    }
}

/// Evaluates a `PER_KERNEL` max estimator with no runtime data — its
/// expressions are hyperparameter constants, so this is the statically
/// known max transition weight (the generalisation of the old
/// `static_max_bound` name-matching table).
fn derive_static_bound(artifacts: &CompiledArtifacts) -> Option<f32> {
    struct NoEnv;
    impl EstimatorEnv for NoEnv {
        fn edge_aggregate(&self, _: &str, _: flexi_compiler::AggKind) -> Option<f64> {
            None
        }
        fn node_scalar(&self, _: &str, _: &str) -> Option<f64> {
            None
        }
        fn var(&self, _: &str) -> Option<f64> {
            None
        }
    }
    let c = artifacts.compiled.as_ref()?;
    if c.flag != BoundGranularity::PerKernel {
        return None;
    }
    c.max_estimator.eval(&NoEnv).map(|b| b as f32)
}

/// Whether a walker's transition weights are a pure function of the edge —
/// independent of walk position, history and time. Only such walkers can
/// share a per-node sampler-state artifact (alias table / CDF) across every
/// walk and step: any free variable that varies per step would make the
/// precomputed table encode the wrong distribution.
fn weights_are_static(refs: &RefInfo) -> bool {
    const STATE_VARS: [&str; 7] = [
        "cur",
        "prev",
        "has_prev",
        "step",
        "iter",
        "edge_time",
        "walk_time",
    ];
    !refs.calls.contains("linked") && STATE_VARS.iter().all(|v| !refs.frees.contains(*v))
}

/// The statically derived max-bias bound of an arbitrary workload's spec —
/// `Some` only when the compiled bound is a kernel-wide constant (the
/// paper's "partially supports dynamic random walk" capability of
/// NextDoor/KnightKing-class systems).
pub fn spec_static_bound(spec: &WalkSpec) -> Option<f32> {
    derive_static_bound(&compile_spec(spec))
}

/// A fully lowered walker: the runnable transition program plus everything
/// the runtime and the session caches derive from it.
///
/// ```
/// use flexi_core::{WalkerDef, UniformWalk};
///
/// let native = WalkerDef::native("uniform", UniformWalk).lower().unwrap();
/// assert!(!native.second_order(), "first-order walk");
/// assert!(!native.needs_labels());
///
/// // An unweighted walk has a kernel-wide constant bound.
/// let dsl = WalkerDef::dsl("flat", "get_weight(edge) { return 1.0; }")
///     .lower()
///     .unwrap();
/// assert_eq!(dsl.static_bound(), Some(1.0));
/// ```
#[derive(Clone)]
pub struct CompiledWalker {
    name: String,
    spec: WalkSpec,
    artifacts: CompiledArtifacts,
    walk: Arc<dyn DynamicWalk>,
    fingerprint: u64,
    static_bound: Option<f32>,
    needs_labels: bool,
    second_order: bool,
    static_weights: bool,
}

impl CompiledWalker {
    /// The walker's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The canonical spec the artifact was compiled from.
    pub fn spec(&self) -> &WalkSpec {
        &self.spec
    }

    /// Compile outcome: generated estimators (or the fallback) + warnings.
    pub fn artifacts(&self) -> &CompiledArtifacts {
        &self.artifacts
    }

    /// The runnable transition program.
    pub fn walk(&self) -> &Arc<dyn DynamicWalk> {
        &self.walk
    }

    /// The runnable transition program as a trait object.
    pub fn walk_dyn(&self) -> &dyn DynamicWalk {
        self.walk.as_ref()
    }

    /// Preparation-cache key: a value hash of the canonical spec (source
    /// and hyperparameter bits), environment arrays and preferred steps.
    /// Walkers with equal fingerprints compile to identical estimators,
    /// so aggregates keyed by it are shared soundly even across distinct
    /// native instances (whose *lowering* is kept apart by the
    /// instance-aware [`WalkerDef::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Statically known max transition weight, when the compiled bound is
    /// a kernel-wide constant (unweighted Node2Vec / MetaPath).
    pub fn static_bound(&self) -> Option<f32> {
        self.static_bound
    }

    /// Whether the transition program reads edge labels.
    pub fn needs_labels(&self) -> bool {
        self.needs_labels
    }

    /// Whether the walk consults history (`prev` / `linked`) — first-order
    /// walks never do.
    pub fn second_order(&self) -> bool {
        self.second_order
    }

    /// Whether transition weights depend only on the edge itself (no walk
    /// position, history or time). Such walkers are eligible for resident
    /// per-node sampler state (alias tables / CDFs) shared across walks.
    pub fn static_weights(&self) -> bool {
        self.static_weights
    }
}

impl std::fmt::Debug for CompiledWalker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledWalker")
            .field("name", &self.name)
            .field("fingerprint", &self.fingerprint)
            .field("compiled", &self.artifacts.compiled.is_some())
            .field("static_bound", &self.static_bound)
            .field("needs_labels", &self.needs_labels)
            .field("second_order", &self.second_order)
            .field("static_weights", &self.static_weights)
            .finish()
    }
}

/// A DSL-defined workload: interprets the parsed `get_weight` with
/// f32-rounded arithmetic, so it is bit-compatible with a hand-written
/// native twin.
struct DslWalk {
    name: String,
    source: String,
    program: Program,
    hyperparams: Vec<(String, f64)>,
    arrays: Vec<(String, Vec<f64>)>,
    preferred: Option<usize>,
    uses_h: bool,
    uses_label: bool,
    uses_linked: bool,
    uses_time: bool,
}

/// Interpreter environment bridging one weight evaluation to the graph.
struct DslEnv<'a> {
    g: &'a Csr,
    st: &'a WalkState,
    edge: EdgeId,
    walk: &'a DslWalk,
}

impl InterpEnv for DslEnv<'_> {
    fn var(&self, name: &str) -> Option<f64> {
        match name {
            "edge" => Some(self.edge as f64),
            "cur" => Some(f64::from(self.st.cur)),
            "prev" => Some(f64::from(self.st.prev.unwrap_or(self.st.cur))),
            "has_prev" => Some(if self.st.prev.is_some() { 1.0 } else { 0.0 }),
            "step" | "iter" => Some(self.st.step as f64),
            "edge_time" => Some(self.g.time(self.edge) as f64),
            "walk_time" => Some(self.st.time as f64),
            _ => self
                .walk
                .hyperparams
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v),
        }
    }

    fn index(&self, array: &str, index: f64) -> Option<f64> {
        if let Some((_, vals)) = self.walk.arrays.iter().find(|(n, _)| n == array) {
            let i = index.max(0.0) as usize;
            return Some(vals[i % vals.len()]);
        }
        let i = index.max(0.0) as usize;
        match array {
            "h" if i < self.g.num_edges() => Some(f64::from(self.g.prop(i))),
            "adj" if i < self.g.num_edges() => Some(f64::from(self.g.edge_target(i))),
            "label" if i < self.g.num_edges() => Some(f64::from(self.g.label(i))),
            // Degrees are register-resident in the kernel; clamp to 1 so
            // `1 / deg[..]` stays finite at sinks (matching the native
            // workloads' `.max(1)`).
            "deg" if i < self.g.num_nodes() => Some(self.g.degree(i as u32).max(1) as f64),
            _ => None,
        }
    }

    fn call(&self, name: &str, args: &[f64]) -> Option<f64> {
        match (name, args) {
            ("linked", [a, b]) => Some(f64::from(self.g.has_edge(*a as u32, *b as u32))),
            // The interpreter rounds only arithmetic results, so the hook
            // quantizes itself — keeping DSL walks bit-identical to native
            // twins that round after every operation.
            ("exp", [x]) => Some(f64::from(x.exp() as f32)),
            _ => None,
        }
    }
}

impl DynamicWalk for DslWalk {
    fn name(&self) -> &str {
        &self.name
    }

    fn weight(&self, g: &Csr, st: &WalkState, edge: EdgeId) -> f32 {
        let env = DslEnv {
            g,
            st,
            edge,
            walk: self,
        };
        // References were validated at lower time; a residual runtime
        // failure (out-of-range index on a hostile graph) masks the edge.
        interpret_f32(&self.program, &env).unwrap_or(0.0) as f32
    }

    fn bytes_per_weight(&self, g: &Csr) -> usize {
        // Adjacency entry + the memory classes the program actually reads:
        // property weight, edge label, edge timestamp, and the linked()
        // membership probe. Degrees, schema arrays and hyperparameters are
        // register-resident.
        4 + if self.uses_h {
            g.props().bytes_per_weight()
        } else {
            0
        } + usize::from(self.uses_label)
            + if self.uses_linked { 8 } else { 0 }
            + if self.uses_time { 8 } else { 0 }
    }

    fn spec(&self) -> WalkSpec {
        WalkSpec {
            source: self.source.clone(),
            hyperparams: self.hyperparams.clone(),
        }
    }

    fn preferred_steps(&self) -> Option<usize> {
        self.preferred
    }

    fn env_scalar(&self, g: &Csr, st: &WalkState, array: &str, index: &str) -> Option<f64> {
        if let Some((_, vals)) = self.arrays.iter().find(|(n, _)| n == array) {
            let i = match index {
                "step" => st.step,
                "cur" => st.cur as usize,
                "prev" => st.prev.unwrap_or(st.cur) as usize,
                _ => return None,
            };
            return Some(vals[i % vals.len()]);
        }
        match (array, index) {
            ("deg", "cur") => Some(g.degree(st.cur) as f64),
            ("deg", "prev") => Some(g.degree(st.prev.unwrap_or(st.cur)) as f64),
            _ => None,
        }
    }

    fn hyperparam(&self, name: &str) -> Option<f64> {
        self.hyperparams
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The named set of walker definitions a session (or engine) serves —
/// the walk-algorithm mirror of `SamplerRegistry`.
///
/// Registering a definition under an existing name **replaces it in
/// place**, exactly like sampler registration; a registry never holds two
/// walkers with the same name.
///
/// ```
/// use flexi_core::{WalkerDef, WalkerRegistry};
///
/// let mut registry = WalkerRegistry::builtin();
/// assert!(registry.contains("node2vec"));
/// registry.register(WalkerDef::dsl("flat", "get_weight(edge) { return 1.0; }"));
/// assert_eq!(
///     registry.names(),
///     vec![
///         "node2vec",
///         "metapath",
///         "sopr",
///         "uniform",
///         "temporal_uniform",
///         "temporal_exp",
///         "temporal_linear",
///         "flat"
///     ]
/// );
/// ```
#[derive(Clone, Debug, Default)]
pub struct WalkerRegistry {
    defs: Vec<WalkerDef>,
}

impl WalkerRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The built-in workloads as ordinary registry entries, with the
    /// paper's hyperparameters: weighted Node2Vec (`"node2vec"`), weighted
    /// MetaPath (`"metapath"`), second-order PageRank (`"sopr"`), the
    /// static first-order walk (`"uniform"`), and the three temporal
    /// walks (`"temporal_uniform"`, `"temporal_exp"`, `"temporal_linear"`).
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register(WalkerDef::native("node2vec", Node2Vec::paper(true)));
        r.register(WalkerDef::native("metapath", MetaPath::paper(true)));
        r.register(WalkerDef::native("sopr", SecondOrderPr::paper()));
        r.register(WalkerDef::native("uniform", UniformWalk));
        r.register(WalkerDef::native("temporal_uniform", TemporalUniform));
        r.register(WalkerDef::native("temporal_exp", TemporalExp::paper()));
        r.register(WalkerDef::native(
            "temporal_linear",
            TemporalLinear::paper(),
        ));
        r
    }

    /// The built-ins defined from their canonical DSL specs instead of the
    /// native structs — every entry lowers to an interpreted walker that
    /// is bit-identical to its [`WalkerRegistry::builtin`] twin. Used by
    /// the round-trip test-suite and as a template for DSL-first setups.
    pub fn builtin_dsl() -> Self {
        let canonical = |name: &str| {
            flexi_compiler::workloads::builtin_spec(name).expect("canonical spec exists")
        };
        let mut r = Self::empty();
        r.register(WalkerDef::spec("node2vec", canonical("node2vec_weighted")));
        r.register(
            WalkerDef::spec("metapath", canonical("metapath_weighted"))
                .array("schema", vec![0.0, 1.0, 2.0, 3.0, 4.0])
                .preferred_steps(5),
        );
        r.register(WalkerDef::spec("sopr", canonical("pagerank_2nd")));
        r.register(WalkerDef::dsl(
            "uniform",
            "get_weight(edge) { return h[edge]; }",
        ));
        r.register(WalkerDef::spec(
            "temporal_uniform",
            canonical("temporal_uniform"),
        ));
        r.register(WalkerDef::spec("temporal_exp", canonical("temporal_exp")));
        r.register(WalkerDef::spec(
            "temporal_linear",
            canonical("temporal_linear"),
        ));
        r
    }

    /// Registers `def`, replacing any existing definition with the same
    /// name (in place, keeping its position).
    pub fn register(&mut self, def: WalkerDef) {
        match self.defs.iter_mut().find(|d| d.name() == def.name()) {
            Some(slot) => *slot = def,
            None => self.defs.push(def),
        }
    }

    /// Looks a definition up by name.
    pub fn get(&self, name: &str) -> Option<&WalkerDef> {
        self.defs.iter().find(|d| d.name() == name)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.defs.iter().map(WalkerDef::name).collect()
    }

    /// Iterates definitions in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &WalkerDef> {
        self.defs.iter()
    }

    /// Number of registered definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether no definition is registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Resolves `name` to a lowered walker.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownWalker`] for unregistered names, plus
    /// [`WalkerDef::lower`]'s compile errors.
    pub fn resolve(&self, name: &str) -> Result<CompiledWalker, EngineError> {
        self.get(name)
            .ok_or_else(|| EngineError::UnknownWalker {
                name: name.to_string(),
            })?
            .lower()
    }
}

/// How a [`WalkRequest`] addresses its walker: resolved (owning the
/// lowered artifact) or by registry name.
///
/// Anything convertible [`IntoWalker`] — a native workload struct, an
/// `Arc<dyn DynamicWalk>`, a `&str` name, or another handle — builds one,
/// so request construction never fails; *named* handles resolve against
/// the serving session's (or engine's) [`WalkerRegistry`] at run time,
/// surfacing unknown names as typed [`EngineError::UnknownWalker`] run
/// errors rather than panics.
///
/// ```
/// use flexi_core::{IntoWalker, UniformWalk, WalkerHandle};
///
/// let by_name: WalkerHandle = "node2vec".into_walker();
/// assert!(!by_name.is_resolved());
/// assert_eq!(by_name.name(), "node2vec");
///
/// let native = (&UniformWalk).into_walker();
/// assert!(native.is_resolved());
/// assert_eq!(native.name(), "uniform_walk");
/// ```
///
/// [`WalkRequest`]: crate::engine::WalkRequest
#[derive(Clone)]
pub struct WalkerHandle {
    state: HandleState,
}

#[derive(Clone)]
enum HandleState {
    Resolved(Arc<CompiledWalker>),
    Named(Arc<str>),
}

impl WalkerHandle {
    /// A handle that must be resolved by a registry at run time.
    pub fn named(name: impl Into<Arc<str>>) -> Self {
        Self {
            state: HandleState::Named(name.into()),
        }
    }

    /// A handle over an already-lowered walker.
    pub fn resolved(walker: Arc<CompiledWalker>) -> Self {
        Self {
            state: HandleState::Resolved(walker),
        }
    }

    /// The walker's name.
    pub fn name(&self) -> &str {
        match &self.state {
            HandleState::Resolved(cw) => cw.name(),
            HandleState::Named(n) => n,
        }
    }

    /// Whether the handle already owns its lowered walker.
    pub fn is_resolved(&self) -> bool {
        matches!(self.state, HandleState::Resolved(_))
    }

    /// The lowered walker, if resolved.
    pub fn compiled(&self) -> Option<&Arc<CompiledWalker>> {
        match &self.state {
            HandleState::Resolved(cw) => Some(cw),
            HandleState::Named(_) => None,
        }
    }

    /// The lowered walker, or the typed error a run of an unresolved
    /// handle reports.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownWalker`] when the handle is still a bare name.
    pub fn get(&self) -> Result<&Arc<CompiledWalker>, EngineError> {
        match &self.state {
            HandleState::Resolved(cw) => Ok(cw),
            HandleState::Named(n) => Err(EngineError::UnknownWalker {
                name: n.to_string(),
            }),
        }
    }
}

impl std::fmt::Debug for WalkerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            HandleState::Resolved(cw) => write!(f, "WalkerHandle({:?}, resolved)", cw.name()),
            HandleState::Named(n) => write!(f, "WalkerHandle({n:?}, named)"),
        }
    }
}

/// Conversion into the [`WalkerHandle`] a `WalkRequest` owns.
///
/// Lets request construction accept `&SomeWorkload` (lowered into an
/// anonymous resolved handle), an `Arc<dyn DynamicWalk>`, a registry name,
/// a lowered [`CompiledWalker`], or an existing handle.
///
/// Converting a bare workload struct runs the compiler pipeline at
/// request-construction time (microseconds — parse + estimator codegen
/// over a tiny program). Hot serving loops issuing many requests for one
/// walker should lower once and reuse the handle — clone a
/// `Session::load_walker` handle or pass the registry name, both of which
/// compile once per distinct definition.
pub trait IntoWalker {
    /// Produces the request's walker handle.
    fn into_walker(self) -> WalkerHandle;
}

impl IntoWalker for WalkerHandle {
    fn into_walker(self) -> WalkerHandle {
        self
    }
}

impl IntoWalker for &WalkerHandle {
    fn into_walker(self) -> WalkerHandle {
        self.clone()
    }
}

impl IntoWalker for &str {
    fn into_walker(self) -> WalkerHandle {
        WalkerHandle::named(self)
    }
}

impl IntoWalker for String {
    fn into_walker(self) -> WalkerHandle {
        WalkerHandle::named(self.as_str())
    }
}

impl IntoWalker for CompiledWalker {
    fn into_walker(self) -> WalkerHandle {
        WalkerHandle::resolved(Arc::new(self))
    }
}

impl IntoWalker for Arc<CompiledWalker> {
    fn into_walker(self) -> WalkerHandle {
        WalkerHandle::resolved(self)
    }
}

impl IntoWalker for Arc<dyn DynamicWalk> {
    fn into_walker(self) -> WalkerHandle {
        let name = self.name().to_string();
        WalkerHandle::resolved(Arc::new(
            WalkerDef::native_shared(name, self)
                .lower()
                .expect("native lowering cannot fail"),
        ))
    }
}

impl<W: DynamicWalk + Clone + 'static> IntoWalker for &W {
    fn into_walker(self) -> WalkerHandle {
        let shared: Arc<dyn DynamicWalk> = Arc::new(self.clone());
        shared.into_walker()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexi_graph::CsrBuilder;

    /// Graph: 0→{1,2}, 1→{0,2}, 2→{0}; weights = edge id + 1.
    fn g() -> Csr {
        let mut b = CsrBuilder::new(3);
        b.push_weighted(0, 1, 1.0);
        b.push_weighted(0, 2, 2.0);
        b.push_weighted(1, 0, 3.0);
        b.push_weighted(1, 2, 4.0);
        b.push_weighted(2, 0, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn dsl_walker_weights_match_native_node2vec() {
        let def = WalkerDef::spec(
            "n2v",
            flexi_compiler::workloads::builtin_spec("node2vec_weighted").unwrap(),
        );
        let cw = def.lower().unwrap();
        let native = Node2Vec::paper(true);
        let g = g();
        for cur in 0..3u32 {
            for prev in [None, Some(0), Some(1), Some(2)] {
                for step in 0..3usize {
                    let st = WalkState {
                        cur,
                        prev,
                        step,
                        time: 0,
                    };
                    for e in g.edge_range(cur) {
                        assert_eq!(
                            cw.walk_dyn().weight(&g, &st, e).to_bits(),
                            native.weight(&g, &st, e).to_bits(),
                            "cur {cur} prev {prev:?} step {step} edge {e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn temporal_dsl_twins_match_native_bit_identically() {
        // Timed graph: 0→1 @10, 0→2 @20, 1→{0 @5, 2 @30}, 2→0 @0.
        let mut b = CsrBuilder::new(3);
        b.push_timestamped(0, 1, 1.0, 10);
        b.push_timestamped(0, 2, 2.0, 20);
        b.push_timestamped(1, 0, 3.0, 5);
        b.push_timestamped(1, 2, 4.0, 30);
        b.push_timestamped(2, 0, 5.0, 0);
        let g = b.build().unwrap();
        let native = WalkerRegistry::builtin();
        let dsl = WalkerRegistry::builtin_dsl();
        for name in ["temporal_uniform", "temporal_exp", "temporal_linear"] {
            let n = native.get(name).unwrap().lower().unwrap();
            let d = dsl.get(name).unwrap().lower().unwrap();
            for cur in 0..3u32 {
                for time in [0u64, 5, 10, 21, 30, 500] {
                    let st = WalkState::start_at(cur, time);
                    for e in g.edge_range(cur) {
                        assert_eq!(
                            n.walk_dyn().weight(&g, &st, e).to_bits(),
                            d.walk_dyn().weight(&g, &st, e).to_bits(),
                            "{name}: cur {cur} time {time} edge {e}"
                        );
                    }
                }
            }
            // Twins also agree on the simulator's byte accounting.
            assert_eq!(
                n.walk_dyn().bytes_per_weight(&g),
                d.walk_dyn().bytes_per_weight(&g),
                "{name}: bytes_per_weight diverged"
            );
        }
    }

    #[test]
    fn temporal_walkers_lower_first_order_without_labels() {
        let r = WalkerRegistry::builtin();
        for name in ["temporal_uniform", "temporal_exp", "temporal_linear"] {
            let cw = r.get(name).unwrap().lower().unwrap();
            assert!(!cw.second_order(), "{name}: history-free");
            assert!(!cw.needs_labels(), "{name}");
            assert_eq!(cw.static_bound(), None, "{name}: weight depends on h");
        }
        // exp() is interpretable but not estimable: the compiled artifacts
        // carry no estimator and the engine falls back to reservoir-only.
        let exp = r.get("temporal_exp").unwrap().lower().unwrap();
        assert!(exp.artifacts().compiled.is_none());
        assert!(!exp.artifacts().warnings.is_empty());
        let uni = r.get("temporal_uniform").unwrap().lower().unwrap();
        assert!(uni.artifacts().compiled.is_some(), "uniform is estimable");
    }

    #[test]
    fn lowering_derives_analysis() {
        let n2v = WalkerDef::native("node2vec", Node2Vec::paper(true))
            .lower()
            .unwrap();
        assert!(n2v.second_order());
        assert!(!n2v.needs_labels());
        assert_eq!(n2v.static_bound(), None, "weighted: per-step bound");

        let n2v_u = WalkerDef::native("n2v_u", Node2Vec::paper(false))
            .lower()
            .unwrap();
        assert_eq!(n2v_u.static_bound(), Some(2.0), "max(1/a, 1, 1/b)");

        let mp = WalkerDef::native("metapath", MetaPath::paper(true))
            .lower()
            .unwrap();
        assert!(mp.needs_labels());

        let uniform = WalkerDef::native("uniform", UniformWalk).lower().unwrap();
        assert!(!uniform.second_order());
    }

    #[test]
    fn static_weight_analysis_separates_walkers() {
        // Edge-pure weights: eligible for resident sampler state.
        for def in [
            WalkerDef::native("uniform", UniformWalk),
            WalkerDef::dsl("h", "get_weight(edge) { return h[edge]; }"),
            WalkerDef::dsl("flat", "get_weight(edge) { return 2.5; }"),
        ] {
            let cw = def.lower().unwrap();
            assert!(cw.static_weights(), "{} is edge-pure", cw.name());
        }
        // Any walk-state dependence disqualifies.
        for def in [
            WalkerDef::native("node2vec", Node2Vec::paper(true)),
            WalkerDef::native("sopr", SecondOrderPr::paper()),
            WalkerDef::native("t", TemporalExp::paper()),
            WalkerDef::dsl("step", "get_weight(edge) { return h[edge] * step; }"),
        ] {
            let cw = def.lower().unwrap();
            assert!(!cw.static_weights(), "{} reads walk state", cw.name());
        }
        // MetaPath reads schema[step]: state-dependent even though labels
        // are static per edge.
        let mp = WalkerDef::native("metapath", MetaPath::paper(true))
            .lower()
            .unwrap();
        assert!(!mp.static_weights());
    }

    #[test]
    fn dsl_parse_error_is_typed() {
        let err = WalkerDef::dsl("broken", "get_weight() { return ; }")
            .lower()
            .unwrap_err();
        match err {
            EngineError::WalkerCompile { name, message } => {
                assert_eq!(name, "broken");
                assert!(!message.is_empty());
            }
            other => panic!("expected WalkerCompile, got {other:?}"),
        }
    }

    #[test]
    fn dsl_unknown_references_are_rejected_at_lower_time() {
        for (src, needle) in [
            ("get_weight(edge) { return w[edge]; }", "unknown array"),
            (
                "get_weight(edge) { return summon(edge); }",
                "unknown function",
            ),
            (
                "get_weight(edge) { return h[edge] * mystery; }",
                "unknown variable",
            ),
        ] {
            let err = WalkerDef::dsl("x", src).lower().unwrap_err();
            match err {
                EngineError::WalkerCompile { message, .. } => {
                    assert!(message.contains(needle), "{message}")
                }
                other => panic!("expected WalkerCompile, got {other:?}"),
            }
        }
        // Binding the missing pieces makes the same sources lower.
        assert!(WalkerDef::dsl("x", "get_weight(edge) { return w[edge]; }")
            .array("w", vec![1.0, 2.0])
            .lower()
            .is_ok());
        assert!(
            WalkerDef::dsl("x", "get_weight(edge) { return h[edge] * mystery; }")
                .hyperparam("mystery", 3.0)
                .lower()
                .is_ok()
        );
    }

    #[test]
    fn native_overrides_are_rejected() {
        assert!(matches!(
            WalkerDef::native("u", UniformWalk)
                .hyperparam("a", 1.0)
                .lower(),
            Err(EngineError::WalkerCompile { .. })
        ));
        assert!(matches!(
            WalkerDef::native("u", UniformWalk)
                .preferred_steps(3)
                .lower(),
            Err(EngineError::WalkerCompile { .. })
        ));
        assert!(matches!(
            WalkerDef::dsl("e", "get_weight(edge) { return s[step]; }")
                .array("s", vec![])
                .lower(),
            Err(EngineError::WalkerCompile { .. })
        ));
    }

    #[test]
    fn registry_replaces_duplicates_in_place() {
        let mut r = WalkerRegistry::builtin();
        let before: Vec<String> = r.names().iter().map(|n| n.to_string()).collect();
        r.register(WalkerDef::dsl(
            "node2vec",
            "get_weight(edge) { return 1.0; }",
        ));
        assert_eq!(r.names(), before, "position and count preserved");
        // The replacement definition is the one that resolves.
        let cw = r.resolve("node2vec").unwrap();
        assert_eq!(cw.static_bound(), Some(1.0), "the flat replacement won");
    }

    #[test]
    fn registry_resolve_unknown_is_typed() {
        let r = WalkerRegistry::builtin();
        match r.resolve("nope").unwrap_err() {
            EngineError::UnknownWalker { name } => assert_eq!(name, "nope"),
            other => panic!("expected UnknownWalker, got {other:?}"),
        }
    }

    #[test]
    fn native_instances_with_equal_specs_do_not_share_lowering_keys() {
        // MetaPath's schema lives in the struct, not in spec(): two
        // different schemas must key two lowering-cache rows, or a
        // session would substitute one walk for the other.
        let a = WalkerDef::native(
            "mp_a",
            MetaPath {
                schema: vec![0, 1, 2, 3, 4],
                weighted: true,
            },
        );
        let b = WalkerDef::native(
            "mp_b",
            MetaPath {
                schema: vec![2, 2],
                weighted: true,
            },
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Defs sharing one Arc share their key; the lowered preparation
        // fingerprints (spec-value hashes) still coincide — aggregates
        // are a function of the spec alone, so that sharing is sound.
        let shared: Arc<dyn DynamicWalk> = Arc::new(MetaPath::paper(true));
        let c = WalkerDef::native_shared("c", Arc::clone(&shared));
        let d = WalkerDef::native_shared("d", shared);
        assert_eq!(c.fingerprint(), d.fingerprint());
        assert_eq!(
            a.lower().unwrap().fingerprint(),
            b.lower().unwrap().fingerprint(),
            "preparation key is value-hashed"
        );
    }

    #[test]
    fn fingerprints_ignore_names_but_not_definitions() {
        let a = WalkerDef::dsl("a", "get_weight(edge) { return h[edge]; }");
        let b = WalkerDef::dsl("b", "get_weight(edge) { return h[edge]; }");
        assert_eq!(a.fingerprint(), b.fingerprint(), "same definition");
        let c = WalkerDef::dsl("a", "get_weight(edge) { return 2.0; }");
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = WalkerDef::dsl("a", "get_weight(edge) { return h[edge]; }").hyperparam("x", 1.0);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn handles_resolve_and_report_unknown() {
        let named = WalkerHandle::named("ghost");
        assert_eq!(named.name(), "ghost");
        assert!(named.compiled().is_none());
        assert!(matches!(
            named.get(),
            Err(EngineError::UnknownWalker { .. })
        ));
        let resolved = (&UniformWalk).into_walker();
        assert!(resolved.get().is_ok());
        assert_eq!(resolved.get().unwrap().name(), "uniform_walk");
    }

    #[test]
    fn metapath_dsl_twin_masks_by_schema() {
        let g = g().with_labels(vec![0, 1, 0, 1, 0]).unwrap();
        let cw = WalkerDef::spec(
            "mp",
            flexi_compiler::workloads::builtin_spec("metapath_weighted").unwrap(),
        )
        .array("schema", vec![0.0, 1.0])
        .preferred_steps(2)
        .lower()
        .unwrap();
        let w = cw.walk_dyn();
        assert_eq!(w.preferred_steps(), Some(2));
        let st0 = WalkState::start(0);
        let r = g.edge_range(0);
        assert_eq!(w.weight(&g, &st0, r.start), 1.0);
        assert_eq!(w.weight(&g, &st0, r.start + 1), 0.0);
        // schema[step] wraps, like the native wanted_label.
        assert_eq!(w.env_scalar(&g, &st0, "schema", "step"), Some(0.0));
        let st2 = WalkState {
            cur: 0,
            prev: Some(1),
            step: 2,
            time: 0,
        };
        assert_eq!(w.env_scalar(&g, &st2, "schema", "step"), Some(0.0));
    }
}
