//! Per-stage wall-time accounting for the pipelined drain executor.
//!
//! A drain moves through four host-side stages — *prepare* (sequential
//! cache resolution), *launch* (shard runs on the worker pool), *merge*
//! (folding shard reports per job) and *replay* (the out-of-core block
//! schedule) — and the executor's pipelining claim is that the latter
//! stages overlap the launches instead of serialising behind them.
//! [`StageTiming`] is the measured evidence: busy seconds per stage plus
//! the *merge tail* — merge/replay work that ran **after** the last shard
//! launch finished. A staged executor pays the whole merge in the tail; a
//! pipelined one hides most of it behind launches still in flight. The
//! session accumulates one record per drain into
//! `SessionStats::stages`, and `repro --json` / the drain benches emit it
//! through `flexi_bench::json::stages_obj`, where
//! `benches/pipeline_drain.rs` gates on the tail fraction.
//!
//! All fields are *host* wall seconds (what the calling thread and the
//! worker pool actually spent), not simulated device time; busy seconds
//! are summed across workers, so `launch_seconds` may exceed
//! `wall_seconds` on a multi-worker drain.

/// Wall-time accounting of one drain (or a cumulative sum of drains)
/// through the executor's pipeline stages.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTiming {
    /// Sequential preparation on the calling thread: snapshot pinning and
    /// cache resolution, before any shard launches.
    pub prepare_seconds: f64,
    /// Shard-launch busy seconds, summed across workers.
    pub launch_seconds: f64,
    /// Per-job merge busy seconds (report folding, migration census,
    /// link accounting), summed across workers.
    pub merge_seconds: f64,
    /// Out-of-core block-replay busy seconds (submission-ordered, so at
    /// most one replay runs at a time).
    pub replay_seconds: f64,
    /// Merge + replay seconds spent **after** the drain's last shard
    /// launch completed — the unhidden tail. A fully staged executor has
    /// `merge_tail_seconds == merge_seconds + replay_seconds`; pipelining
    /// shrinks the tail toward the final job's merge alone.
    pub merge_tail_seconds: f64,
    /// End-to-end wall seconds of the execute phase (prepare excluded).
    pub wall_seconds: f64,
}

impl StageTiming {
    /// Total merge-side work: per-job merges plus out-of-core replays.
    pub fn merge_work_seconds(&self) -> f64 {
        self.merge_seconds + self.replay_seconds
    }

    /// Merge-side seconds that ran while shard launches were still in
    /// flight — the work the pipeline hid.
    pub fn overlapped_seconds(&self) -> f64 {
        (self.merge_work_seconds() - self.merge_tail_seconds).max(0.0)
    }

    /// Fraction of merge-side work hidden behind launches (0 when there
    /// was no merge-side work at all).
    pub fn overlap_fraction(&self) -> f64 {
        let work = self.merge_work_seconds();
        if work <= 0.0 {
            0.0
        } else {
            self.overlapped_seconds() / work
        }
    }

    /// Accumulates another record (e.g. one more drain) into this one.
    pub fn add(&mut self, other: &StageTiming) {
        self.prepare_seconds += other.prepare_seconds;
        self.launch_seconds += other.launch_seconds;
        self.merge_seconds += other.merge_seconds;
        self.replay_seconds += other.replay_seconds;
        self.merge_tail_seconds += other.merge_tail_seconds;
        self.wall_seconds += other.wall_seconds;
    }
}

impl std::fmt::Display for StageTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "prepare {:.4}s | launch {:.4}s | merge {:.4}s | replay {:.4}s | \
             tail {:.4}s ({:.0}% overlapped, wall {:.4}s)",
            self.prepare_seconds,
            self.launch_seconds,
            self.merge_seconds,
            self.replay_seconds,
            self.merge_tail_seconds,
            self.overlap_fraction() * 100.0,
            self.wall_seconds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_every_field() {
        let mut a = StageTiming {
            prepare_seconds: 1.0,
            launch_seconds: 2.0,
            merge_seconds: 3.0,
            replay_seconds: 4.0,
            merge_tail_seconds: 5.0,
            wall_seconds: 6.0,
        };
        a.add(&a.clone());
        assert_eq!(a.prepare_seconds, 2.0);
        assert_eq!(a.launch_seconds, 4.0);
        assert_eq!(a.merge_seconds, 6.0);
        assert_eq!(a.replay_seconds, 8.0);
        assert_eq!(a.merge_tail_seconds, 10.0);
        assert_eq!(a.wall_seconds, 12.0);
    }

    #[test]
    fn overlap_math() {
        let t = StageTiming {
            merge_seconds: 3.0,
            replay_seconds: 1.0,
            merge_tail_seconds: 1.0,
            ..Default::default()
        };
        assert_eq!(t.merge_work_seconds(), 4.0);
        assert_eq!(t.overlapped_seconds(), 3.0);
        assert!((t.overlap_fraction() - 0.75).abs() < 1e-12);
        // No merge work at all: the fraction is defined as zero.
        assert_eq!(StageTiming::default().overlap_fraction(), 0.0);
        // A tail bigger than the work (clock skew) clamps at zero overlap.
        let skew = StageTiming {
            merge_seconds: 1.0,
            merge_tail_seconds: 2.0,
            ..Default::default()
        };
        assert_eq!(skew.overlapped_seconds(), 0.0);
    }

    #[test]
    fn display_is_compact_and_complete() {
        let t = StageTiming {
            prepare_seconds: 0.5,
            launch_seconds: 1.0,
            merge_seconds: 0.25,
            replay_seconds: 0.125,
            merge_tail_seconds: 0.125,
            wall_seconds: 1.25,
        };
        let s = t.to_string();
        assert!(s.contains("prepare 0.5000s"));
        assert!(s.contains("67% overlapped"));
    }
}
