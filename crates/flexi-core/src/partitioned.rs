//! Partitioned multi-GPU execution — the paper's §7.2 first extension.
//!
//! The evaluated multi-GPU mode ([`crate::multi_device`]) duplicates the
//! graph on every device and splits *queries*. For graphs larger than one
//! device's VRAM the paper sketches the alternative: partition the *graph*
//! across devices and migrate walkers over the interconnect, "similar to
//! distributed GNN frameworks", while expecting "considerable communication
//! overhead due to the I/O-bound nature of random walks".
//!
//! This module implements that mode: nodes are hash-partitioned, each
//! device stores only its partition's edges (1/D of the graph plus cut
//! metadata), and every step whose destination lives on another device
//! ships the walker state across an NVLink-like link. The tests demonstrate
//! both halves of the paper's claim: partitioning runs graphs that OOM a
//! single device, *and* pays a heavy migration toll relative to the
//! duplicated-graph mode.

use crate::engine::{EngineError, RunReport, SamplerTally, ShardStats, WalkEngine, WalkRequest};
use crate::workload::WalkState;
use flexi_gpu_sim::{CostStats, DeviceSpec};
use flexi_graph::{shard_of, Csr, NodeId, PartitionPlan};
use flexi_rng::{RandomSource, Xoshiro256pp};
use flexi_sampling::ids;
use flexi_sampling::scalar::sample_ervs_jump;

pub use crate::topology::LinkSpec;

/// Graph-partitioned multi-GPU engine.
#[derive(Clone, Debug)]
pub struct PartitionedEngine {
    /// Per-device specification.
    pub spec: DeviceSpec,
    /// Number of devices holding one partition each.
    pub num_devices: usize,
    /// Interconnect model.
    pub link: LinkSpec,
}

impl PartitionedEngine {
    /// Creates a partitioned engine over `num_devices` devices.
    pub fn new(spec: DeviceSpec, num_devices: usize) -> Self {
        assert!(num_devices > 0, "need at least one device");
        Self {
            spec,
            num_devices,
            link: LinkSpec::nvlink(),
        }
    }

    /// The device owning `node`'s adjacency — [`flexi_graph::shard_of`],
    /// the one ownership hash the whole system shares (the session shard
    /// executor and cached [`PartitionPlan`]s route through it too).
    pub fn owner(&self, node: NodeId) -> usize {
        shard_of(node, self.num_devices)
    }

    /// Bytes of `g` resident on each device: the partition's edges plus
    /// the full row-pointer array (needed to route remote lookups).
    pub fn partition_bytes(&self, g: &Csr) -> Vec<usize> {
        PartitionPlan::compute(g, self.num_devices).resident_bytes(g)
    }
}

impl WalkEngine for PartitionedEngine {
    fn name(&self) -> &'static str {
        "FlexiWalker-Partitioned"
    }

    fn run(&self, req: &WalkRequest) -> Result<RunReport, EngineError> {
        let snap = req.snapshot();
        let g: &Csr = &snap.graph;
        let w = req.walker.get()?.walk_dyn();
        let queries: &[NodeId] = &req.queries;
        let cfg = &req.config;
        // VRAM check per partition (the whole point of this mode), using
        // the handle's cached plan — steady-state launches over an
        // unchanged epoch reuse one census instead of re-partitioning.
        let (plan, _) = req.graph.partition_plan(&snap, self.num_devices);
        for bytes in plan.resident_bytes(g) {
            if bytes > self.spec.vram_bytes {
                return Err(EngineError::OutOfMemory {
                    requested: bytes,
                    available: self.spec.vram_bytes,
                });
            }
        }

        let steps = w.preferred_steps().unwrap_or(cfg.steps);
        let bytes_per_weight = w.bytes_per_weight(g);
        let mut device_stats = vec![CostStats::default(); self.num_devices];
        let mut steps_by_owner = vec![0u64; self.num_devices];
        let mut migrations = 0u64;
        let mut steps_taken = 0u64;
        let mut paths = cfg.record_paths.then(|| vec![Vec::new(); queries.len()]);
        let mut weights = Vec::new();

        for (qi, &start) in queries.iter().enumerate() {
            let mut rng = Xoshiro256pp::new(cfg.seed ^ 0xA11C).nth_jump(qi % 64);
            for _ in 0..(qi / 64) {
                rng.next_u64();
            }
            let mut st = WalkState::start(start);
            if let Some(paths) = &mut paths {
                paths[qi].push(start);
            }
            for _ in 0..steps {
                let range = g.edge_range(st.cur);
                if range.is_empty() {
                    break;
                }
                let owner = self.owner(st.cur);
                // The owning device scans the partition-resident adjacency
                // (eRVS access pattern) and reduces.
                weights.clear();
                weights.extend(range.clone().map(|e| w.weight(g, &st, e)));
                let stats = &mut device_stats[owner];
                stats.coalesced_transactions += ((weights.len() * bytes_per_weight)
                    .div_ceil(self.spec.transaction_bytes))
                    as u64;
                stats.alu_ops += weights.len() as u64;
                stats.shuffle_ops += 5;
                let (picked, cost) = sample_ervs_jump(&weights, &mut rng);
                stats.rng_draws += cost.rng_draws;
                let Some(i) = picked else { break };
                let next = g.neighbor(st.cur, i);
                if self.owner(next) != owner {
                    migrations += 1;
                }
                st.advance(next);
                steps_by_owner[owner] += 1;
                steps_taken += 1;
                if let Some(paths) = &mut paths {
                    paths[qi].push(next);
                }
            }
        }

        // Ensemble time: busiest device plus the (serialising) migration
        // traffic — the paper's expected communication overhead.
        let busiest = device_stats
            .iter()
            .map(|s| self.spec.saturated_seconds(s))
            .fold(0.0, f64::max);
        let comm = self.link.seconds(migrations);
        let sim_seconds = busiest + comm;
        if sim_seconds > cfg.time_budget {
            return Err(EngineError::OutOfTime {
                budget_secs: cfg.time_budget,
            });
        }
        let mut stats = CostStats::default();
        for s in &device_stats {
            stats.add(s);
        }
        Ok(RunReport {
            engine: self.name(),
            graph_version: snap.version,
            sim_seconds,
            saturated_seconds: sim_seconds,
            stats,
            queries: queries.len(),
            steps_taken,
            paths,
            sampler_steps: {
                let mut t = SamplerTally::new();
                t.record(ids::ERVS, steps_taken);
                t
            },
            sampler_state_builds: 0,
            sampler_state_hits: 0,
            profile_seconds: 0.0,
            preprocess_seconds: 0.0,
            warnings: vec![format!(
                "partitioned mode: {migrations} walker migrations \
                 ({:.1}% of steps), {comm:.3e}s communication",
                migrations as f64 / steps_taken.max(1) as f64 * 100.0
            )],
            watts: self.spec.load_watts * self.num_devices as f64,
            shards: Some(ShardStats {
                shards: self.num_devices,
                per_shard_steps: steps_by_owner,
                migrations,
                link_seconds: comm,
            }),
            blocks: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WalkConfig;
    use crate::multi_device::MultiDeviceEngine;
    use crate::workload::Node2Vec;
    use flexi_graph::{gen, WeightModel};

    fn graph() -> Csr {
        let g = gen::rmat(9, 8192, gen::RmatParams::SOCIAL, 33);
        WeightModel::UniformReal.apply(g, 33)
    }

    fn cfg() -> WalkConfig {
        WalkConfig {
            steps: 10,
            record_paths: true,
            ..WalkConfig::default()
        }
    }

    fn run(
        engine: &dyn WalkEngine,
        g: &Csr,
        w: impl crate::walker::IntoWalker,
        queries: &[NodeId],
        c: &WalkConfig,
    ) -> Result<RunReport, EngineError> {
        engine.run(&WalkRequest::new(g.clone(), w, queries).with_config(c.clone()))
    }

    #[test]
    fn walks_are_valid_and_complete() {
        let g = graph();
        let engine = PartitionedEngine::new(DeviceSpec::tiny(), 4);
        let queries: Vec<NodeId> = (0..64).collect();
        let report = run(&engine, &g, &Node2Vec::paper(true), &queries, &cfg()).unwrap();
        assert_eq!(report.queries, 64);
        for path in report.paths.as_ref().unwrap() {
            for pair in path.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn migrations_happen_and_are_reported() {
        let g = graph();
        let engine = PartitionedEngine::new(DeviceSpec::tiny(), 4);
        let queries: Vec<NodeId> = (0..64).collect();
        let report = run(&engine, &g, &Node2Vec::paper(true), &queries, &cfg()).unwrap();
        // With 4 hash partitions, ~3/4 of steps cross devices.
        assert!(report.warnings[0].contains("migrations"));
        let pct: f64 = report.warnings[0]
            .split('(')
            .nth(1)
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.parse().ok())
            .expect("migration percentage in warning");
        assert!(pct > 50.0, "migration share {pct}% suspiciously low");
    }

    #[test]
    fn partitioning_fits_graphs_that_oom_one_device() {
        let g = graph();
        let mut spec = DeviceSpec::tiny();
        // VRAM holds ~40% of the graph: duplicated mode must OOM, four
        // partitions (~25% each + row pointers) must fit.
        spec.vram_bytes = g.memory_bytes() * 2 / 5 + g.row_ptr().len() * 8;
        let duplicated = MultiDeviceEngine::new(spec.clone(), 4);
        let queries: Vec<NodeId> = (0..32).collect();
        let err = run(&duplicated, &g, &Node2Vec::paper(true), &queries, &cfg()).unwrap_err();
        assert!(matches!(err, EngineError::OutOfMemory { .. }));
        let partitioned = PartitionedEngine::new(spec, 4);
        let report = run(&partitioned, &g, &Node2Vec::paper(true), &queries, &cfg()).unwrap();
        assert!(report.steps_taken > 0);
    }

    #[test]
    fn communication_overhead_is_considerable() {
        // The paper's expectation: when the graph fits everywhere, the
        // duplicated mode beats the partitioned mode because walker
        // migration serialises on the interconnect.
        let g = graph();
        let queries: Vec<NodeId> = (0..128).collect();
        let c = WalkConfig {
            steps: 10,
            ..WalkConfig::default()
        };
        let w = Node2Vec::paper(true);
        let dup = run(
            &MultiDeviceEngine::new(DeviceSpec::a6000(), 4),
            &g,
            &w,
            &queries,
            &c,
        )
        .unwrap();
        let part = run(
            &PartitionedEngine::new(DeviceSpec::a6000(), 4),
            &g,
            &w,
            &queries,
            &c,
        )
        .unwrap();
        assert!(
            part.sim_seconds > 2.0 * dup.saturated_seconds,
            "partitioned {} not ≫ duplicated {}",
            part.sim_seconds,
            dup.saturated_seconds
        );
    }

    #[test]
    fn partition_bytes_cover_all_edges_once() {
        let g = graph();
        let engine = PartitionedEngine::new(DeviceSpec::tiny(), 3);
        let parts = engine.partition_bytes(&g);
        assert_eq!(parts.len(), 3);
        let bytes_per_edge = 4 + g.props().bytes_per_weight();
        let edge_bytes: usize = parts.iter().map(|b| b - g.row_ptr().len() * 8).sum();
        assert_eq!(edge_bytes, g.num_edges() * bytes_per_edge);
    }

    #[test]
    fn single_device_partitioning_never_migrates() {
        let g = graph();
        let engine = PartitionedEngine::new(DeviceSpec::tiny(), 1);
        let report = run(&engine, &g, &Node2Vec::paper(true), &[0, 1, 2], &cfg()).unwrap();
        assert!(report.warnings[0].contains("0 walker migrations"));
    }

    #[test]
    fn link_seconds_scale_with_migrations() {
        let link = LinkSpec::nvlink();
        assert_eq!(link.seconds(0), 0.0);
        assert!(link.seconds(1_000_000) > 100.0 * link.seconds(1000));
    }
}
