//! Application-level utilities built on the walk engine.
//!
//! The paper motivates dynamic random walks with downstream applications —
//! network embeddings and proximity measures (§1). This module packages
//! the two most common ones as ready-to-use functions over any
//! [`WalkEngine`]:
//!
//! - [`personalized_pagerank`] — random-walk-with-restart proximity scores
//!   from a set of source nodes;
//! - [`walk_corpus`] — a skip-gram training corpus (one walk per line),
//!   the standard input format for DeepWalk/Node2Vec embedding trainers.

use crate::engine::{EngineError, WalkConfig, WalkEngine, WalkRequest};
use crate::walker::IntoWalker;
use flexi_graph::{GraphHandle, NodeId};
use std::io::Write;

/// Estimates personalized PageRank by walk-visit frequency.
///
/// Runs `walks_per_source` walks from every source; a walk's visit to a
/// node at step `t` contributes `restart^t` (the survival probability of
/// a restart-`(1-restart)` walker), so scores approximate the PPR vector
/// of the uniform distribution over `sources`. Scores are normalised to
/// sum to 1.
///
/// # Errors
///
/// Propagates the engine's errors.
pub fn personalized_pagerank(
    engine: &dyn WalkEngine,
    graph: &GraphHandle,
    w: impl IntoWalker,
    sources: &[NodeId],
    walks_per_source: usize,
    restart: f64,
    cfg: &WalkConfig,
) -> Result<Vec<f64>, EngineError> {
    assert!(
        (0.0..1.0).contains(&restart),
        "restart probability must be in [0, 1)"
    );
    let w = w.into_walker();
    let mut scores = vec![0.0f64; graph.graph().num_nodes()];
    let mut mass = 0.0f64;
    for round in 0..walks_per_source {
        let mut round_cfg = cfg.clone();
        round_cfg.record_paths = true;
        round_cfg.seed = cfg
            .seed
            .wrapping_add(0x9E37_79B9u64.wrapping_mul(round as u64 + 1));
        let report =
            engine.run(&WalkRequest::new(graph, w.clone(), sources).with_config(round_cfg))?;
        for path in report.paths.as_ref().expect("recorded") {
            let mut survive = 1.0f64;
            for &v in path {
                scores[v as usize] += survive;
                mass += survive;
                survive *= restart;
            }
        }
    }
    if mass > 0.0 {
        for s in &mut scores {
            *s /= mass;
        }
    }
    Ok(scores)
}

/// Writes a walk corpus: one whitespace-separated node sequence per line.
///
/// Returns the number of lines written. Walks shorter than two nodes
/// (immediate dead ends) are skipped, matching embedding-trainer
/// expectations.
///
/// # Errors
///
/// Propagates engine and I/O errors (I/O wrapped as
/// [`EngineError::Unsupported`] with a message would lose detail, so I/O
/// failures panic-free bubble via `std::io::Error`).
pub fn walk_corpus<W: Write>(
    engine: &dyn WalkEngine,
    graph: &GraphHandle,
    w: impl IntoWalker,
    queries: &[NodeId],
    cfg: &WalkConfig,
    out: &mut W,
) -> Result<usize, CorpusError> {
    let mut run_cfg = cfg.clone();
    run_cfg.record_paths = true;
    let report = engine.run(&WalkRequest::new(graph, w, queries).with_config(run_cfg))?;
    let mut lines = 0usize;
    for path in report.paths.as_ref().expect("recorded") {
        if path.len() < 2 {
            continue;
        }
        let mut first = true;
        for &v in path {
            if !first {
                write!(out, " ")?;
            }
            write!(out, "{v}")?;
            first = false;
        }
        writeln!(out)?;
        lines += 1;
    }
    Ok(lines)
}

/// Errors from corpus generation: engine failures or sink I/O failures.
#[derive(Debug)]
pub enum CorpusError {
    /// The walk engine failed.
    Engine(EngineError),
    /// Writing to the output sink failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Engine(e) => write!(f, "engine error: {e}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<EngineError> for CorpusError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FlexiWalkerEngine;
    use crate::workload::UniformWalk;
    use flexi_gpu_sim::DeviceSpec;
    use flexi_graph::GraphHandle;
    use flexi_graph::{gen, CsrBuilder, WeightModel};

    fn engine() -> FlexiWalkerEngine {
        FlexiWalkerEngine::new(DeviceSpec::tiny())
    }

    #[test]
    fn ppr_scores_sum_to_one_and_favor_the_source_cluster() {
        // Two cliques joined by one weak link; walks from clique A should
        // concentrate mass there.
        let mut b = CsrBuilder::new(8);
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s != d {
                    b.push_weighted(s, d, 1.0);
                }
            }
        }
        for s in 4..8u32 {
            for d in 4..8u32 {
                if s != d {
                    b.push_weighted(s, d, 1.0);
                }
            }
        }
        b.push_weighted(3, 4, 0.05);
        b.push_weighted(4, 3, 0.05);
        let g = GraphHandle::new(b.build().unwrap());
        let cfg = WalkConfig {
            steps: 8,
            ..WalkConfig::default()
        };
        let scores =
            personalized_pagerank(&engine(), &g, &UniformWalk, &[0, 1], 16, 0.85, &cfg).unwrap();
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "not normalised: {total}");
        let a_mass: f64 = scores[..4].iter().sum();
        assert!(a_mass > 0.8, "source cluster mass {a_mass} too low");
    }

    #[test]
    fn ppr_on_sink_only_graph_is_all_source_mass() {
        let g = GraphHandle::new(CsrBuilder::new(2).build().unwrap());
        let cfg = WalkConfig::default();
        let scores =
            personalized_pagerank(&engine(), &g, &UniformWalk, &[1], 4, 0.5, &cfg).unwrap();
        assert_eq!(scores[1], 1.0);
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn ppr_rejects_bad_restart() {
        let g = GraphHandle::new(CsrBuilder::new(1).build().unwrap());
        let _ = personalized_pagerank(
            &engine(),
            &g,
            &UniformWalk,
            &[0],
            1,
            1.5,
            &WalkConfig::default(),
        );
    }

    #[test]
    fn corpus_emits_one_line_per_surviving_walk() {
        let g = gen::rmat(7, 1024, gen::RmatParams::SOCIAL, 3);
        let g = GraphHandle::new(WeightModel::UniformReal.apply(g, 3));
        let csr = g.graph();
        let queries: Vec<u32> = (0..32).collect();
        let cfg = WalkConfig {
            steps: 5,
            ..WalkConfig::default()
        };
        let mut buf = Vec::new();
        let lines = walk_corpus(&engine(), &g, &UniformWalk, &queries, &cfg, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), lines);
        for line in text.lines() {
            let ids: Vec<u32> = line
                .split_whitespace()
                .map(|t| t.parse().expect("node id"))
                .collect();
            assert!(ids.len() >= 2);
            for pair in ids.windows(2) {
                assert!(csr.has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn corpus_skips_instant_dead_ends() {
        let g = GraphHandle::new(CsrBuilder::new(2).edge(0, 1).build().unwrap());
        let mut buf = Vec::new();
        // Node 1 is a sink: its walk has length 1 and is skipped.
        let lines = walk_corpus(
            &engine(),
            &g,
            &UniformWalk,
            &[0, 1],
            &WalkConfig {
                steps: 3,
                ..WalkConfig::default()
            },
            &mut buf,
        )
        .unwrap();
        assert_eq!(lines, 1);
    }
}
