//! FlexiWalker: an extensible framework for efficient dynamic random walks
//! with runtime adaptation (EuroSys '26 reproduction).
//!
//! The crate wires together the three paper components:
//!
//! - **Flexi-Kernel** — the optimised eRVS/eRJS sampling kernels live in
//!   [`flexi_sampling`]; this crate drives them through the concurrent
//!   warp kernel of §5.2 ([`engine`]).
//! - **Flexi-Runtime** — the first-order cost model (Eqs. 9–11) and the
//!   per-node, per-step sampler selection ([`runtime`]), fed by the
//!   profiling kernels of §5.1 ([`profile`]) and the preprocessed
//!   aggregates ([`preprocess`]).
//! - **Flexi-Compiler** — workload analysis and estimator generation from
//!   [`flexi_compiler`]; [`workload`] carries the paper's five workloads as
//!   both DSL sources and hand-written Rust, with tests proving the two
//!   agree.
//!
//! Cross-cutting pieces: the dynamic query queue of §5.3 ([`queue`]),
//! the host-side worker pool that fans independent jobs across threads
//! with a deterministic index-ordered merge ([`pool`]), multi-device
//! execution of §6.6 ([`multi_device`]), and the energy model
//! of §6.7 ([`energy`]). The [`engine::WalkEngine`] trait is the uniform
//! interface every baseline in `flexi-baselines` also implements, which is
//! what lets the benchmark harness iterate Table 2 over all systems.

pub mod apps;
pub mod energy;
pub mod engine;
pub mod multi_device;
pub mod out_of_core;
pub mod partitioned;
pub mod pool;
pub mod preprocess;
pub mod profile;
pub mod queue;
pub mod runtime;
pub mod service;
pub mod stage;
pub mod topology;
pub mod walker;
pub mod workload;

pub use engine::{
    compile_workload, CompiledArtifacts, EngineError, FlexiWalkerEngine, IntoQueries,
    PreparedState, RunReport, SamplerTally, ShardStats, WalkConfig, WalkEngine, WalkRequest,
    DEFAULT_TIME_BUDGET,
};
// The scale-out seam: topologies, the interconnect model, and the
// migration census the shard executor accounts with.
pub use out_of_core::{block_schedule, BlockStats, DiskSpec};
pub use topology::{migration_census, LinkSpec, Topology};
// The unified walker surface: definitions, the registry, handles, and the
// lowered artifact every source kind compiles into.
pub use walker::{
    CompiledWalker, IntoWalker, WalkerDef, WalkerHandle, WalkerRegistry, WalkerSource,
};
// Re-export the graph-handle seam: requests are built over these, so
// engine users should not have to name `flexi-graph` directly.
pub use flexi_graph::{
    block_of, shard_of, BlockRuntime, CacheCounters, GraphHandle, GraphSnapshot, GraphUpdate,
    GraphVersion, PartitionPlan, PlanFetch, ResidentCache, TimeMask, TimeWindow, UpdateOutcome,
};
pub use pool::{PoolRun, WorkerPool};
// The serving seam: bounded admission in front of the query queue and
// latency-percentile tracking for SLO accounting.
pub use preprocess::Aggregates;
pub use profile::ProfileResult;
pub use queue::QueryQueue;
pub use runtime::{
    ChurnProfile, CostModel, PricedCandidate, RuntimeEnv, SamplerSelection, SelectionStrategy,
};
pub use service::{Admission, AdmissionPolicy, AdmissionQueue, AdmissionStats, LatencyHistogram};
pub use stage::StageTiming;
// Re-export the sampling seam so engine users can register strategies
// without naming `flexi-sampling` directly.
pub use flexi_sampling::{
    ids as sampler_ids, NodeState, Sampler, SamplerId, SamplerRegistry, StateTable,
};
pub use workload::{
    static_max_bound, DynamicWalk, MetaPath, Node2Vec, SecondOrderPr, TemporalExp, TemporalLinear,
    TemporalUniform, UniformWalk, WalkState,
};
