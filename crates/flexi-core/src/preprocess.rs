//! Preprocessing reductions requested by Flexi-Compiler (Fig. 9d).
//!
//! Computes the per-node `_MAX` / `_SUM` aggregates of edge-indexed arrays
//! (`h`, `label`) with one simulated coalesced pass over the edge array,
//! and reports the simulated preprocessing time for Table 3.

use flexi_compiler::{AggKind, PreprocessRequest};
use flexi_gpu_sim::{CostStats, DeviceSpec};
use flexi_graph::Csr;
use std::collections::HashMap;

/// Preprocessed per-node aggregates, keyed by source array name.
#[derive(Debug, Default, Clone)]
pub struct Aggregates {
    tables: HashMap<String, AggTable>,
    /// Simulated seconds the preprocessing kernels took.
    pub sim_seconds: f64,
}

#[derive(Debug, Clone)]
struct AggTable {
    max: Vec<f32>,
    sum: Vec<f32>,
}

impl Aggregates {
    /// Runs the requested reductions for `g` on a device described by
    /// `spec`.
    ///
    /// Unknown array names are ignored with no aggregate produced (the
    /// estimator will then evaluate to `None` and the runtime falls back
    /// to eRVS, preserving soundness).
    pub fn compute(g: &Csr, requests: &[PreprocessRequest], spec: &DeviceSpec) -> Self {
        let mut arrays: Vec<&str> = requests
            .iter()
            .map(|r| r.array.as_str())
            .filter(|a| matches!(*a, "h" | "label"))
            .collect();
        arrays.sort_unstable();
        arrays.dedup();

        let mut tables = HashMap::new();
        let mut stats = CostStats::default();
        let n = g.num_nodes();
        for name in arrays {
            let mut max = vec![1.0f32; n];
            let mut sum = vec![0.0f32; n];
            for v in 0..n {
                let r = g.edge_range(v as u32);
                if r.is_empty() {
                    continue;
                }
                let mut mx = f32::NEG_INFINITY;
                let mut sm = 0.0f32;
                for e in r {
                    let x = match name {
                        "h" => g.prop(e),
                        "label" => f32::from(g.label(e)),
                        _ => unreachable!("filtered above"),
                    };
                    mx = mx.max(x);
                    sm += x;
                }
                max[v] = mx;
                sum[v] = sm;
            }
            // One coalesced read pass over the source array, one segmented
            // reduce, two aggregate-array writes.
            let bytes = match name {
                "h" => g.props().bytes_per_weight().max(1),
                _ => 1,
            };
            stats.coalesced_transactions +=
                ((g.num_edges() * bytes).div_ceil(spec.transaction_bytes)) as u64;
            stats.alu_ops += g.num_edges() as u64;
            stats.coalesced_transactions += ((2 * n * 4).div_ceil(spec.transaction_bytes)) as u64;
            tables.insert(name.to_string(), AggTable { max, sum });
        }
        // The reduction parallelises across the whole device.
        let cycles = stats.cycles(spec) / spec.total_warp_slots().max(1) as u64;
        Self {
            tables,
            sim_seconds: spec.cycles_to_seconds(cycles),
        }
    }

    /// Incrementally recomputes the aggregates of `nodes` after a graph
    /// update (the §7.2 dynamic-graph extension).
    ///
    /// Only the listed nodes' edge ranges are re-scanned, so the cost is
    /// proportional to the dirty frontier rather than the whole graph,
    /// and the per-node recomputation is bit-identical to what
    /// [`Aggregates::compute`] produces from scratch. Pair with the
    /// dirty-node set from `flexi_graph::GraphHandle::apply_updates` (or
    /// `DynamicGraph::take_dirty_nodes`).
    ///
    /// Returns the number of in-range nodes refreshed — the session API
    /// surfaces this so callers can assert updates stay proportional to
    /// the dirty frontier.
    pub fn refresh_nodes(&mut self, g: &Csr, nodes: &[u32]) -> usize {
        if self.tables.is_empty() {
            return 0;
        }
        let n = g.num_nodes();
        let refreshed = nodes.iter().filter(|&&v| (v as usize) < n).count();
        for (name, table) in &mut self.tables {
            for &v in nodes {
                let vu = v as usize;
                if vu >= table.max.len() {
                    continue;
                }
                let r = g.edge_range(v);
                if r.is_empty() {
                    table.max[vu] = 1.0;
                    table.sum[vu] = 0.0;
                    continue;
                }
                let mut mx = f32::NEG_INFINITY;
                let mut sm = 0.0f32;
                for e in r {
                    let x = match name.as_str() {
                        "h" => g.prop(e),
                        "label" => f32::from(g.label(e)),
                        _ => continue,
                    };
                    mx = mx.max(x);
                    sm += x;
                }
                table.max[vu] = mx;
                table.sum[vu] = sm;
            }
        }
        refreshed
    }

    /// Whether two aggregate sets hold bit-identical tables.
    ///
    /// Compares every per-node value by its bit pattern (simulated timing
    /// is ignored) — the check the incremental-refresh tests use to prove
    /// `refresh_nodes` equals a from-scratch rebuild.
    pub fn content_eq(&self, other: &Self) -> bool {
        self.tables.len() == other.tables.len()
            && self.tables.iter().all(|(name, t)| {
                other.tables.get(name).is_some_and(|o| {
                    fn bits(v: &[f32]) -> impl Iterator<Item = u32> + '_ {
                        v.iter().map(|x| x.to_bits())
                    }
                    t.max.len() == o.max.len()
                        && t.sum.len() == o.sum.len()
                        && bits(&t.max).eq(bits(&o.max))
                        && bits(&t.sum).eq(bits(&o.sum))
                })
            })
    }

    /// Aggregate lookup for node `v`.
    pub fn get(&self, array: &str, kind: AggKind, v: u32) -> Option<f64> {
        let t = self.tables.get(array)?;
        let x = match kind {
            AggKind::Max => t.max.get(v as usize)?,
            AggKind::Sum => t.sum.get(v as usize)?,
        };
        Some(f64::from(*x))
    }

    /// Whether any aggregate table exists.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexi_graph::CsrBuilder;

    fn requests() -> Vec<PreprocessRequest> {
        vec![
            PreprocessRequest {
                array: "h".into(),
                kind: AggKind::Max,
            },
            PreprocessRequest {
                array: "h".into(),
                kind: AggKind::Sum,
            },
        ]
    }

    #[test]
    fn aggregates_match_manual_values() {
        let g = CsrBuilder::new(2)
            .weighted_edge(0, 0, 3.0)
            .weighted_edge(0, 1, 5.0)
            .weighted_edge(1, 0, 2.0)
            .build()
            .unwrap();
        let agg = Aggregates::compute(&g, &requests(), &DeviceSpec::tiny());
        assert_eq!(agg.get("h", AggKind::Max, 0), Some(5.0));
        assert_eq!(agg.get("h", AggKind::Sum, 0), Some(8.0));
        assert_eq!(agg.get("h", AggKind::Max, 1), Some(2.0));
        assert!(agg.sim_seconds > 0.0);
    }

    #[test]
    fn label_aggregates_supported() {
        let g = CsrBuilder::new(1)
            .edge(0, 0)
            .edge(0, 0)
            .build()
            .unwrap()
            .with_labels(vec![3, 1])
            .unwrap();
        let req = vec![PreprocessRequest {
            array: "label".into(),
            kind: AggKind::Max,
        }];
        let agg = Aggregates::compute(&g, &req, &DeviceSpec::tiny());
        assert_eq!(agg.get("label", AggKind::Max, 0), Some(3.0));
        assert_eq!(agg.get("label", AggKind::Sum, 0), Some(4.0));
    }

    #[test]
    fn unknown_arrays_are_ignored() {
        let g = CsrBuilder::new(1).edge(0, 0).build().unwrap();
        let req = vec![PreprocessRequest {
            array: "mystery".into(),
            kind: AggKind::Max,
        }];
        let agg = Aggregates::compute(&g, &req, &DeviceSpec::tiny());
        assert!(agg.is_empty());
        assert_eq!(agg.get("mystery", AggKind::Max, 0), None);
    }

    #[test]
    fn sink_nodes_get_neutral_aggregates() {
        let g = CsrBuilder::new(2).weighted_edge(0, 1, 9.0).build().unwrap();
        let agg = Aggregates::compute(&g, &requests(), &DeviceSpec::tiny());
        assert_eq!(agg.get("h", AggKind::Max, 1), Some(1.0));
        assert_eq!(agg.get("h", AggKind::Sum, 1), Some(0.0));
    }

    #[test]
    fn out_of_range_node_is_none() {
        let g = CsrBuilder::new(1).edge(0, 0).build().unwrap();
        let agg = Aggregates::compute(&g, &requests(), &DeviceSpec::tiny());
        assert_eq!(agg.get("h", AggKind::Max, 5), None);
    }

    #[test]
    fn refresh_nodes_tracks_weight_updates() {
        use flexi_graph::dynamic::DynamicGraph;
        let g = CsrBuilder::new(2)
            .weighted_edge(0, 0, 3.0)
            .weighted_edge(0, 1, 5.0)
            .weighted_edge(1, 0, 2.0)
            .build()
            .unwrap();
        let mut agg = Aggregates::compute(&g, &requests(), &DeviceSpec::tiny());
        let mut dg = DynamicGraph::new(g);
        dg.set_weight(1, 50.0); // Edge 0 -> 1 now dominates.
                                // Stale until refreshed.
        assert_eq!(agg.get("h", AggKind::Max, 0), Some(5.0));
        let dirty = dg.take_dirty_nodes();
        agg.refresh_nodes(dg.graph(), &dirty);
        assert_eq!(agg.get("h", AggKind::Max, 0), Some(50.0));
        assert_eq!(agg.get("h", AggKind::Sum, 0), Some(53.0));
        // Untouched node unchanged.
        assert_eq!(agg.get("h", AggKind::Max, 1), Some(2.0));
    }

    #[test]
    fn refresh_nodes_handles_structural_updates() {
        use flexi_graph::dynamic::{DynamicGraph, GraphUpdate};
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 4.0)
            .weighted_edge(0, 2, 1.0)
            .build()
            .unwrap();
        let mut agg = Aggregates::compute(&g, &requests(), &DeviceSpec::tiny());
        let mut dg = DynamicGraph::new(g);
        dg.queue(GraphUpdate::RemoveEdge { src: 0, dst: 1 });
        dg.commit().unwrap();
        let dirty = dg.take_dirty_nodes();
        agg.refresh_nodes(dg.graph(), &dirty);
        assert_eq!(agg.get("h", AggKind::Max, 0), Some(1.0));
        assert_eq!(agg.get("h", AggKind::Sum, 0), Some(1.0));
    }

    #[test]
    fn refresh_ignores_out_of_range_nodes() {
        let g = CsrBuilder::new(1).weighted_edge(0, 0, 2.0).build().unwrap();
        let mut agg = Aggregates::compute(&g, &requests(), &DeviceSpec::tiny());
        agg.refresh_nodes(&g, &[7]);
        assert_eq!(agg.get("h", AggKind::Max, 0), Some(2.0));
    }
}
