//! Execution topologies: how a session maps one walk job onto simulated
//! devices.
//!
//! The paper evaluates two scale-out modes and this module names them as
//! first-class session configuration:
//!
//! - [`Topology::Single`] — one device holds the whole graph (the
//!   default, and the paper's main evaluation mode);
//! - [`Topology::MultiDevice`] — the §6.6 mode: the graph is *duplicated*
//!   on every device and walk queries split across them, so per-device
//!   VRAM must still hold the full graph;
//! - [`Topology::Partitioned`] — the §7.2 extension: the graph itself is
//!   hash-partitioned over the devices (each holds its shard's edges plus
//!   the row-pointer array), walkers migrate over an NVLink-like
//!   [`LinkSpec`] when a step crosses shards, and a graph that overflows
//!   one device's VRAM still fits as long as every *shard* does;
//! - [`Topology::OutOfCore`] — the out-of-core extension: the graph is
//!   spilled to fixed-size disk-resident CSR blocks, only a bounded
//!   byte budget of blocks is memory-resident at once, and the drain
//!   schedules whole blocks most-pending-walkers-first, so a graph that
//!   overflows *host* memory still serves.
//!
//! All four run the same unified walker path ([`crate::walker`]) with
//! per-query Philox streams, so the *walk output* — paths, step counts,
//! sampler tallies — is bit-identical across topologies; only the
//! simulated timing, memory and migration accounting differ.

use flexi_graph::NodeId;

/// An NVLink-like inter-GPU interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Aggregate link bandwidth in GB/s (NVLink 3: ~56 GB/s per direction
    /// per pair; A6000 pairs use NVLink bridges).
    pub gbps: f64,
    /// Per-message latency in seconds (kernel-to-kernel, not MPI).
    pub latency: f64,
    /// Bytes per walker migration (walk state + RNG cursor + path tail).
    pub bytes_per_migration: usize,
}

impl LinkSpec {
    /// NVLink-bridge defaults.
    pub fn nvlink() -> Self {
        Self {
            gbps: 56.0,
            latency: 5e-6,
            bytes_per_migration: 64,
        }
    }

    /// Time for `n` migrations, assuming batched transfers that amortise
    /// latency over whole warps (32 walkers per message).
    pub fn seconds(&self, migrations: u64) -> f64 {
        let bytes = migrations as f64 * self.bytes_per_migration as f64;
        let messages = migrations.div_ceil(32) as f64;
        bytes / (self.gbps * 1e9) + messages * self.latency
    }
}

/// How a session (or engine) spreads one walk job over simulated devices.
///
/// ```
/// use flexi_core::{LinkSpec, Topology};
///
/// assert_eq!(Topology::Single.devices(), 1);
/// assert_eq!(Topology::multi(4).devices(), 4);
/// let p = Topology::partitioned(2);
/// assert_eq!(p.devices(), 2);
/// assert_eq!(p.link(), Some(LinkSpec::nvlink()));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Topology {
    /// One device, whole graph — the default.
    #[default]
    Single,
    /// `devices` identical devices, graph duplicated on each, queries
    /// split across them (§6.6).
    MultiDevice {
        /// Number of devices (1–4 in the paper).
        devices: usize,
    },
    /// `devices` identical devices, graph hash-partitioned across them,
    /// walkers migrating over `link` (§7.2).
    Partitioned {
        /// Number of devices holding one shard each.
        devices: usize,
        /// Interconnect model for walker migrations.
        link: LinkSpec,
    },
    /// One device, graph spilled to disk-resident CSR blocks: only
    /// `resident_budget` bytes of block payload are memory-resident at
    /// once, and the drain path schedules whole blocks
    /// (most-pending-walkers-first) through a bounded cache. Serves
    /// graphs bigger than host memory.
    OutOfCore {
        /// Byte budget for memory-resident block payloads.
        resident_budget: usize,
        /// Target payload size per spilled block.
        block_bytes: usize,
    },
}

impl Topology {
    /// A duplicated-graph fleet of `devices` devices.
    pub fn multi(devices: usize) -> Self {
        Self::MultiDevice { devices }
    }

    /// A graph-partitioned fleet of `devices` devices over NVLink.
    pub fn partitioned(devices: usize) -> Self {
        Self::Partitioned {
            devices,
            link: LinkSpec::nvlink(),
        }
    }

    /// A single device serving disk-resident blocks through a
    /// `resident_budget`-byte cache, spilled in `block_bytes` blocks.
    pub fn out_of_core(resident_budget: usize, block_bytes: usize) -> Self {
        Self::OutOfCore {
            resident_budget,
            block_bytes,
        }
    }

    /// The number of devices this topology spans.
    pub fn devices(&self) -> usize {
        match self {
            Self::Single | Self::OutOfCore { .. } => 1,
            Self::MultiDevice { devices } | Self::Partitioned { devices, .. } => *devices,
        }
    }

    /// The interconnect, for topologies whose walkers migrate.
    pub fn link(&self) -> Option<LinkSpec> {
        match self {
            Self::Partitioned { link, .. } => Some(*link),
            _ => None,
        }
    }

    /// Whether the graph itself is partitioned across devices (as opposed
    /// to duplicated or single-resident).
    pub fn is_partitioned(&self) -> bool {
        matches!(self, Self::Partitioned { .. })
    }

    /// Whether the graph is spilled to disk-resident blocks behind a
    /// bounded cache.
    pub fn is_out_of_core(&self) -> bool {
        matches!(self, Self::OutOfCore { .. })
    }

    /// Clamps a zero device count up to one, and zero out-of-core sizes
    /// up to one byte; identity otherwise.
    pub fn normalized(self) -> Self {
        match self {
            Self::MultiDevice { devices } => Self::MultiDevice {
                devices: devices.max(1),
            },
            Self::Partitioned { devices, link } => Self::Partitioned {
                devices: devices.max(1),
                link,
            },
            Self::OutOfCore {
                resident_budget,
                block_bytes,
            } => Self::OutOfCore {
                resident_budget: resident_budget.max(1),
                block_bytes: block_bytes.max(1),
            },
            Self::Single => Self::Single,
        }
    }

    /// A short tag for reports and bench JSON (`single`, `multi(2)`,
    /// `partitioned(4)`, `outofcore(64MiB/4MiB)` — budget/block).
    pub fn tag(&self) -> String {
        match self {
            Self::Single => "single".to_string(),
            Self::MultiDevice { devices } => format!("multi({devices})"),
            Self::Partitioned { devices, .. } => format!("partitioned({devices})"),
            Self::OutOfCore {
                resident_budget,
                block_bytes,
            } => format!("outofcore({resident_budget}/{block_bytes})"),
        }
    }
}

/// Counts the inter-shard migrations and per-shard step execution a set
/// of walk paths implies under an `shards`-way node partition: the step
/// leaving node `u` executes on `u`'s owner, and a step whose destination
/// lives elsewhere ships the walker across the link.
///
/// Returns `(per_shard_steps, migrations)`.
pub fn migration_census(paths: &[Vec<NodeId>], shards: usize) -> (Vec<u64>, u64) {
    let mut per_shard = vec![0u64; shards.max(1)];
    let mut migrations = 0u64;
    for path in paths {
        for pair in path.windows(2) {
            let from = flexi_graph::shard_of(pair[0], shards.max(1));
            per_shard[from] += 1;
            if flexi_graph::shard_of(pair[1], shards.max(1)) != from {
                migrations += 1;
            }
        }
    }
    (per_shard, migrations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_and_link_accessors() {
        assert_eq!(Topology::Single.devices(), 1);
        assert_eq!(Topology::Single.link(), None);
        assert!(!Topology::Single.is_partitioned());
        assert_eq!(Topology::multi(3).devices(), 3);
        assert_eq!(Topology::multi(3).link(), None);
        assert!(Topology::partitioned(2).is_partitioned());
        assert_eq!(Topology::partitioned(2).link(), Some(LinkSpec::nvlink()));
        assert_eq!(Topology::default(), Topology::Single);
    }

    #[test]
    fn normalization_clamps_zero_devices() {
        assert_eq!(Topology::multi(0).normalized().devices(), 1);
        assert_eq!(Topology::partitioned(0).normalized().devices(), 1);
        assert_eq!(Topology::multi(4).normalized(), Topology::multi(4));
        assert_eq!(
            Topology::out_of_core(0, 0).normalized(),
            Topology::out_of_core(1, 1)
        );
    }

    #[test]
    fn tags_are_compact() {
        assert_eq!(Topology::Single.tag(), "single");
        assert_eq!(Topology::multi(2).tag(), "multi(2)");
        assert_eq!(Topology::partitioned(4).tag(), "partitioned(4)");
        assert_eq!(Topology::out_of_core(1024, 64).tag(), "outofcore(1024/64)");
    }

    #[test]
    fn out_of_core_is_a_single_device_topology() {
        let t = Topology::out_of_core(1 << 20, 1 << 16);
        assert_eq!(t.devices(), 1);
        assert_eq!(t.link(), None);
        assert!(!t.is_partitioned());
        assert!(t.is_out_of_core());
        assert!(!Topology::Single.is_out_of_core());
    }

    #[test]
    fn link_seconds_scale_with_migrations() {
        let link = LinkSpec::nvlink();
        assert_eq!(link.seconds(0), 0.0);
        assert!(link.seconds(1_000_000) > 100.0 * link.seconds(1000));
    }

    #[test]
    fn census_counts_cross_shard_steps() {
        // With 1 shard nothing migrates; every step lands on shard 0.
        let paths = vec![vec![0u32, 1, 2], vec![5, 5]];
        let (steps, migrations) = migration_census(&paths, 1);
        assert_eq!(steps, vec![3]);
        assert_eq!(migrations, 0);
        // With many shards the census splits by the ownership hash.
        let (steps, migrations) = migration_census(&paths, 4);
        assert_eq!(steps.iter().sum::<u64>(), 3);
        let owners: Vec<usize> = [0u32, 1, 5]
            .iter()
            .map(|&v| flexi_graph::shard_of(v, 4))
            .collect();
        assert!(migrations <= 3);
        assert!(owners.iter().any(|&o| steps[o] > 0));
    }
}
