//! Multi-GPU execution (paper §6.6).
//!
//! The paper scales by *query parallelism*: the graph is duplicated on
//! every device and walk queries are distributed by a hash of their
//! starting node (range-based mapping scaled worse due to load imbalance —
//! both mappings are implemented so Fig. 15's observation is testable).
//! Simulated kernel time of the ensemble is the maximum over devices.
//!
//! Device launches execute on the shared host [`WorkerPool`] — the same
//! pool the session drain executor uses — instead of a serial per-device
//! loop; reports merge in device-index order, so the ensemble result is
//! bit-identical at any host-thread count.

use crate::engine::{EngineError, RunReport, SamplerTally, ShardStats, WalkEngine, WalkRequest};
use crate::pool::WorkerPool;
use crate::runtime::SelectionStrategy;
use crate::FlexiWalkerEngine;
use flexi_gpu_sim::{CostStats, DeviceSpec};
use flexi_graph::{shard_of, NodeId};
use std::sync::Arc;

/// Query-to-device mapping policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioning {
    /// `device = hash(start_node) % D` — the paper's choice.
    Hash,
    /// Contiguous index ranges — the naïve mapping the paper rejects.
    Range,
}

/// A fleet of identical simulated devices running FlexiWalker.
#[derive(Clone, Debug)]
pub struct MultiDeviceEngine {
    /// Per-device specification.
    pub spec: DeviceSpec,
    /// Number of devices (1–4 in the paper).
    pub num_devices: usize,
    /// Query mapping policy.
    pub partitioning: Partitioning,
    /// Selection strategy forwarded to each device engine.
    pub strategy: SelectionStrategy,
    /// Host worker pool driving the per-device launches concurrently.
    /// Defaults to one thread per device, capped at host parallelism;
    /// results are identical at any width.
    pub pool: WorkerPool,
}

impl MultiDeviceEngine {
    /// Creates a hash-partitioned fleet with the cost-model strategy.
    pub fn new(spec: DeviceSpec, num_devices: usize) -> Self {
        assert!(num_devices > 0, "need at least one device");
        Self {
            spec,
            num_devices,
            partitioning: Partitioning::Hash,
            strategy: SelectionStrategy::CostModel,
            pool: WorkerPool::new(num_devices.min(WorkerPool::available())),
        }
    }

    /// Replaces the host pool (e.g. to share a session's configured width).
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Splits queries by the configured policy; returns per-device batches.
    pub fn partition(&self, queries: &[NodeId]) -> Vec<Vec<NodeId>> {
        let d = self.num_devices;
        let mut parts = vec![Vec::new(); d];
        match self.partitioning {
            Partitioning::Hash => {
                for &q in queries {
                    parts[shard_of(q, d)].push(q);
                }
            }
            Partitioning::Range => {
                let chunk = queries.len().div_ceil(d).max(1);
                for (i, &q) in queries.iter().enumerate() {
                    parts[(i / chunk).min(d - 1)].push(q);
                }
            }
        }
        parts
    }
}

impl WalkEngine for MultiDeviceEngine {
    fn name(&self) -> &'static str {
        "FlexiWalker-MultiGPU"
    }

    fn run(&self, req: &WalkRequest) -> Result<RunReport, EngineError> {
        let cfg = &req.config;
        // One walker resolution for the whole ensemble; named handles
        // resolve against the built-in registry (the fleet carries no
        // custom walker registrations).
        let req = &if req.walker.is_resolved() {
            req.clone()
        } else {
            let cw = crate::walker::WalkerRegistry::builtin().resolve(req.walker.name())?;
            req.clone()
                .with_walker(crate::walker::WalkerHandle::resolved(Arc::new(cw)))
        };
        let walker = Arc::clone(req.walker.get()?);
        // One snapshot for the whole ensemble: updates landing on the
        // handle mid-run must not split the fleet across graph versions.
        let snap = req.snapshot();
        let parts = self.partition(&req.queries);
        let mut device_seconds: Vec<f64> = Vec::with_capacity(self.num_devices);
        let mut saturated_max = 0.0f64;
        let mut stats = CostStats::default();
        let mut merged = RunReport {
            engine: self.name(),
            graph_version: snap.version,
            sim_seconds: 0.0,
            saturated_seconds: 0.0,
            stats,
            queries: req.queries.len(),
            steps_taken: 0,
            paths: None,
            sampler_steps: SamplerTally::new(),
            sampler_state_builds: 0,
            sampler_state_hits: 0,
            profile_seconds: 0.0,
            preprocess_seconds: 0.0,
            warnings: Vec::new(),
            watts: self.spec.load_watts * self.num_devices as f64,
            shards: None,
            blocks: None,
        };
        // Fan the per-device launches across the host pool: each device
        // prepares and runs independently over the shared snapshot. The
        // pool returns reports in device-index order, so the merge below —
        // and any error propagation — is identical to the old serial loop.
        // (One trade-off: every device runs to completion before an error
        // surfaces, where the serial loop stopped at the first failure.)
        let launches = self.pool.run_indexed(&parts, 1, |d, part| {
            let engine = FlexiWalkerEngine::with_strategy(self.spec.clone(), self.strategy);
            let mut dev_cfg = cfg.clone();
            dev_cfg.seed = cfg.seed.wrapping_add(d as u64).wrapping_mul(0x9E37) ^ cfg.seed;
            let dev_req = WalkRequest::new(&req.graph, req.walker.clone(), part.as_slice())
                .with_config(dev_cfg);
            let prepared = engine.prepare(&snap.graph, &walker, dev_req.config.seed);
            engine.run_on(&snap, &dev_req, &prepared)
        });
        let mut per_device_steps = Vec::with_capacity(self.num_devices);
        for launch in launches.results {
            let report = launch?;
            saturated_max = saturated_max.max(report.saturated_seconds);
            device_seconds.push(report.sim_seconds);
            per_device_steps.push(report.steps_taken);
            stats.add(&report.stats);
            merged.steps_taken += report.steps_taken;
            merged.sampler_steps.merge(&report.sampler_steps);
            merged.sampler_state_builds += report.sampler_state_builds;
            merged.sampler_state_hits += report.sampler_state_hits;
            merged.profile_seconds = merged.profile_seconds.max(report.profile_seconds);
            merged.preprocess_seconds = merged.preprocess_seconds.max(report.preprocess_seconds);
        }
        // Devices run concurrently: ensemble time is the slowest device.
        merged.sim_seconds = device_seconds.iter().copied().fold(0.0, f64::max);
        // Ensemble saturated time is the busiest device's work — this is
        // what makes imbalanced partitions (range mapping, hub-heavy hash
        // buckets) scale sub-linearly, as the paper observes for AB.
        merged.saturated_seconds = saturated_max;
        merged.stats = stats;
        // Duplicated-graph mode never migrates walkers: the shard census
        // is per-device step execution only.
        merged.shards = Some(ShardStats {
            shards: self.num_devices,
            per_shard_steps: per_device_steps,
            migrations: 0,
            link_seconds: 0.0,
        });
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WalkConfig;
    use crate::workload::Node2Vec;
    use flexi_graph::{gen, Csr, WeightModel};

    fn graph() -> Csr {
        let g = gen::rmat(9, 8192, gen::RmatParams::SOCIAL, 21);
        WeightModel::UniformReal.apply(g, 21)
    }

    #[test]
    fn hash_partition_covers_all_queries() {
        let eng = MultiDeviceEngine::new(DeviceSpec::tiny(), 4);
        let queries: Vec<NodeId> = (0..1000).collect();
        let parts = eng.partition(&queries);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        // Hash mapping should be roughly balanced.
        for p in &parts {
            assert!(
                p.len() > 150 && p.len() < 350,
                "unbalanced hash partition: {}",
                p.len()
            );
        }
    }

    #[test]
    fn range_partition_is_contiguous() {
        let mut eng = MultiDeviceEngine::new(DeviceSpec::tiny(), 2);
        eng.partitioning = Partitioning::Range;
        let queries: Vec<NodeId> = (0..10).collect();
        let parts = eng.partition(&queries);
        assert_eq!(parts[0], (0..5).collect::<Vec<_>>());
        assert_eq!(parts[1], (5..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_devices_shorten_simulated_time() {
        let g = graph();
        let queries: Vec<NodeId> = (0..512u32).map(|i| i % 512).collect();
        let w = Node2Vec::paper(true);
        let cfg = WalkConfig {
            steps: 10,
            ..WalkConfig::default()
        };
        let req = WalkRequest::new(g, &w, &queries).with_config(cfg);
        let t1 = MultiDeviceEngine::new(DeviceSpec::tiny(), 1)
            .run(&req)
            .unwrap()
            .sim_seconds;
        let t4 = MultiDeviceEngine::new(DeviceSpec::tiny(), 4)
            .run(&req)
            .unwrap()
            .sim_seconds;
        assert!(
            t4 < t1 * 0.6,
            "4 devices ({t4}s) should be much faster than 1 ({t1}s)"
        );
    }

    #[test]
    fn all_walks_complete_across_devices() {
        let g = graph();
        let queries: Vec<NodeId> = (0..200u32).collect();
        let w = Node2Vec::paper(true);
        let cfg = WalkConfig {
            steps: 5,
            ..WalkConfig::default()
        };
        let report = MultiDeviceEngine::new(DeviceSpec::tiny(), 3)
            .run(&WalkRequest::new(g, &w, &queries).with_config(cfg))
            .unwrap();
        assert_eq!(report.queries, 200);
        // Walks may end early at sinks; on aggregate most should advance.
        assert!(report.steps_taken >= 200, "too few steps taken");
        assert!(report.watts > DeviceSpec::tiny().load_watts * 2.9);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        MultiDeviceEngine::new(DeviceSpec::tiny(), 0);
    }

    #[test]
    fn ensemble_report_is_identical_at_any_pool_width() {
        // The pool's index-ordered merge makes the ensemble bit-identical
        // whether devices launch serially or across host threads.
        let g = graph();
        let queries: Vec<NodeId> = (0..300u32).collect();
        let w = Node2Vec::paper(true);
        let cfg = WalkConfig {
            steps: 8,
            record_paths: true,
            ..WalkConfig::default()
        };
        let req = WalkRequest::new(g, &w, &queries).with_config(cfg);
        let reports: Vec<RunReport> = [1, 2, 8]
            .into_iter()
            .map(|width| {
                MultiDeviceEngine::new(DeviceSpec::tiny(), 3)
                    .with_pool(WorkerPool::new(width))
                    .run(&req)
                    .unwrap()
            })
            .collect();
        for r in &reports[1..] {
            assert_eq!(r.sim_seconds, reports[0].sim_seconds);
            assert_eq!(r.saturated_seconds, reports[0].saturated_seconds);
            assert_eq!(r.steps_taken, reports[0].steps_taken);
            assert_eq!(r.sampler_steps, reports[0].sampler_steps);
            assert_eq!(r.stats, reports[0].stats);
        }
    }
}
